#include "decompiler/decompile.h"

#include <set>

#include "decompiler/lifter.h"
#include "decompiler/machine_cfg.h"
#include "decompiler/structurer.h"
#include "util/metrics.h"

namespace asteria::decompiler {

namespace {

util::Counter c_functions("decompile.functions");
util::Counter c_goto_degradations("decompile.goto_degradations");

// Copies the (possibly DAG-shaped) DNode tree rooted at `id` into a fresh
// ast::Ast arena; sharing expands into distinct subtrees, so the result is
// a proper tree. Iterative to survive deep statement chains.
ast::NodeId CopyToAst(const DPool& pool, int id, ast::Ast* out) {
  struct Frame {
    int src;
    ast::NodeId dst;
    std::size_t next_child;
  };
  const auto make_node = [&](int src) {
    const DNode& n = pool.node(src);
    const ast::NodeId dst = out->AddNode(n.kind);
    out->node(dst).value = n.value;
    out->node(dst).text = n.text;
    return dst;
  };
  const ast::NodeId root = make_node(id);
  std::vector<Frame> stack{{id, root, 0}};
  while (!stack.empty()) {
    Frame& top = stack.back();
    const DNode& src = pool.node(top.src);
    if (top.next_child >= src.children.size()) {
      stack.pop_back();
      continue;
    }
    const int child_src = src.children[top.next_child++];
    const ast::NodeId child_dst = make_node(child_src);
    out->AddChild(top.dst, child_dst);
    stack.push_back({child_src, child_dst, 0});
  }
  return root;
}

}  // namespace

DecompiledFunction DecompileFunction(const binary::BinModule& module,
                                     int fn_index, int beta) {
  ASTERIA_SPAN("decompile");
  c_functions.Increment();
  const binary::BinFunction& fn =
      module.functions[static_cast<std::size_t>(fn_index)];
  DecompiledFunction out;
  out.name = fn.name;
  out.instruction_count = fn.size();
  if (fn.code.empty()) {
    out.tree.set_root(out.tree.AddNode(ast::NodeKind::kBlock));
    return out;
  }

  MachineCfg cfg(fn);
  DPool pool;
  const LiftedFunction lifted = LiftFunction(module, cfg, &pool);
  const int root = StructureFunction(cfg, lifted, &pool, &out.error);
  if (!out.error.empty()) c_goto_degradations.Increment();
  out.tree.set_root(CopyToAst(pool, root, &out.tree));

  // Callee features for the calibration (§III-C).
  std::set<std::int64_t> callees;
  for (const binary::Instruction& insn : fn.code) {
    if (insn.op == binary::Opcode::kCall) callees.insert(insn.imm);
  }
  out.callee_count_raw = static_cast<int>(callees.size());
  for (std::int64_t callee : callees) {
    if (callee < 0 ||
        callee >= static_cast<std::int64_t>(module.functions.size())) {
      continue;
    }
    const int size = module.functions[static_cast<std::size_t>(callee)].size();
    out.callee_sizes.push_back(size);
    if (size >= beta) ++out.callee_count;
  }
  return out;
}

std::vector<DecompiledFunction> DecompileModule(const binary::BinModule& module,
                                                int beta) {
  std::vector<DecompiledFunction> out;
  out.reserve(module.functions.size());
  for (std::size_t i = 0; i < module.functions.size(); ++i) {
    out.push_back(DecompileFunction(module, static_cast<int>(i), beta));
  }
  return out;
}

}  // namespace asteria::decompiler
