// Block lifting: machine instructions -> expression trees + statements.
//
// Plays the role of Hex-Rays' microcode-to-ctree stage. Within one basic
// block, registers map to symbolic expression trees (forward substitution
// rebuilds nested expressions); statements are emitted for memory stores,
// calls, and the live-out register variables at block end. The output feeds
// the structurer (structurer.h), which assembles the Table-I AST.
//
// Deliberate approximations, shared identically by all four ISAs (the
// decompiled tree feeds a similarity model, not an executor):
//  * end-of-block register assignments are sequential, not parallel
//  * a load captured in a register expression is not re-ordered against
//    later stores
//  * expression trees larger than kMaxExprNodes are materialized into
//    synthetic temporaries (guards against exponential substitution blowup)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/node_kind.h"
#include "binary/module.h"
#include "decompiler/machine_cfg.h"

namespace asteria::decompiler {

// A node in the decompiler's working tree (converted to ast::Ast at the
// end; ids index into DPool).
struct DNode {
  ast::NodeKind kind = ast::NodeKind::kOther;
  std::vector<int> children;
  std::int64_t value = 0;
  std::string text;
  int size = 1;  // subtree node count (cached for the blowup guard)
};

class DPool {
 public:
  int Add(ast::NodeKind kind, std::vector<int> children = {});
  int AddNum(std::int64_t value);
  int AddVar(const std::string& name);
  int AddStr(const std::string& literal);
  int AddCall(const std::string& callee, std::vector<int> args);

  const DNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  DNode& node(int id) { return nodes_[static_cast<std::size_t>(id)]; }
  int SizeOf(int id) const { return node(id).size; }
  std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<DNode> nodes_;
};

// How a lifted block ends.
enum class TermKind : std::uint8_t { kSeq, kCond, kSwitch, kRet };

struct SwitchArm {
  std::vector<std::int64_t> values;  // case values sharing this target
  int target = -1;                   // block id
};

struct LiftedBlock {
  std::vector<int> stmts;  // DNode ids (statement-level nodes)
  TermKind term = TermKind::kSeq;
  int cond = -1;      // kCond: expr that is true when the branch to
                      // MachineBlock::succs[0] is taken
  int ret = -1;       // kRet: returned expr (-1 = none)
  std::vector<SwitchArm> arms;  // kSwitch
  int switch_default = -1;      // kSwitch default target block
  int switch_expr = -1;
};

struct LiftedFunction {
  std::vector<LiftedBlock> blocks;
};

inline constexpr int kMaxExprNodes = 48;

// Lifts every block of `fn`. `module` provides string/function names.
LiftedFunction LiftFunction(const binary::BinModule& module,
                            const MachineCfg& cfg, DPool* pool);

}  // namespace asteria::decompiler
