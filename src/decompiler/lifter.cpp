#include "decompiler/lifter.h"

#include <array>
#include <map>

namespace asteria::decompiler {

using ast::NodeKind;
using binary::Cond;
using binary::Instruction;
using binary::Opcode;

int DPool::Add(NodeKind kind, std::vector<int> children) {
  DNode node;
  node.kind = kind;
  int size = 1;
  for (int c : children) size += SizeOf(c);
  node.size = size;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int DPool::AddNum(std::int64_t value) {
  const int id = Add(NodeKind::kNum);
  nodes_.back().value = value;
  return id;
}

int DPool::AddVar(const std::string& name) {
  const int id = Add(NodeKind::kVar);
  nodes_.back().text = name;
  return id;
}

int DPool::AddStr(const std::string& literal) {
  const int id = Add(NodeKind::kStr);
  nodes_.back().text = literal;
  return id;
}

int DPool::AddCall(const std::string& callee, std::vector<int> args) {
  const int id = Add(NodeKind::kCall, std::move(args));
  nodes_.back().text = callee;
  return id;
}

namespace {

NodeKind KindOfCond(Cond cond) {
  switch (cond) {
    case Cond::kEq: return NodeKind::kEq;
    case Cond::kNe: return NodeKind::kNe;
    case Cond::kLt: return NodeKind::kLt;
    case Cond::kLe: return NodeKind::kLe;
    case Cond::kGt: return NodeKind::kGt;
    case Cond::kGe: return NodeKind::kGe;
  }
  return NodeKind::kEq;
}

// Compound-assignment recovery: `x = x op e` prints as `x op= e` in
// Hex-Rays; `x = x + 1` / `x = x - 1` as `++x` / `--x`.
NodeKind CompoundKind(NodeKind op) {
  switch (op) {
    case NodeKind::kAdd: return NodeKind::kAsgAdd;
    case NodeKind::kSub: return NodeKind::kAsgSub;
    case NodeKind::kMul: return NodeKind::kAsgMul;
    case NodeKind::kDiv: return NodeKind::kAsgDiv;
    case NodeKind::kOr: return NodeKind::kAsgOr;
    case NodeKind::kXor: return NodeKind::kAsgXor;
    case NodeKind::kBand: return NodeKind::kAsgAnd;
    default: return NodeKind::kKindCount;
  }
}

class BlockLifter {
 public:
  BlockLifter(const binary::BinModule& module, const MachineCfg& cfg,
              DPool* pool)
      : module_(module), cfg_(cfg), fn_(cfg.function()), pool_(*pool) {}

  LiftedFunction Run() {
    LiftedFunction lifted;
    lifted.blocks.resize(static_cast<std::size_t>(cfg_.num_blocks()));
    for (int b = 0; b < cfg_.num_blocks(); ++b) {
      LiftBlock(b, &lifted.blocks[static_cast<std::size_t>(b)]);
    }
    return lifted;
  }

 private:
  // ---- expression helpers ----------------------------------------------

  int RegRead(int r) {
    int& e = reg_expr_[static_cast<std::size_t>(r)];
    if (e < 0) e = pool_.AddVar("r" + std::to_string(r));
    return e;
  }

  void RegWrite(int r, int expr) {
    // Blowup guard: huge substituted expressions become temporaries.
    if (pool_.SizeOf(expr) > kMaxExprNodes) {
      const std::string temp = "t" + std::to_string(next_temp_++);
      const int temp_var = pool_.AddVar(temp);
      stmts_->push_back(
          pool_.Add(NodeKind::kAsg, {pool_.AddVar(temp), expr}));
      expr = temp_var;
    }
    reg_expr_[static_cast<std::size_t>(r)] = expr;
    modified_[static_cast<std::size_t>(r)] = true;
  }

  std::string FrameSlotName(std::int64_t slot) const {
    if (slot < fn_.num_params) return "a" + std::to_string(slot);
    return "v" + std::to_string(slot);
  }

  int IndexExpr(int base, int index) {
    if (pool_.node(base).kind == NodeKind::kVar) {
      return pool_.Add(NodeKind::kIndex, {base, index});
    }
    return pool_.Add(NodeKind::kDeref,
                     {pool_.Add(NodeKind::kAdd, {base, index})});
  }

  int MakeAsg(int lhs, int rhs) {
    const DNode& target = pool_.node(lhs);
    const DNode& value = pool_.node(rhs);
    if (target.kind == NodeKind::kVar && value.children.size() == 2) {
      const DNode& first = pool_.node(value.children[0]);
      if (first.kind == NodeKind::kVar && first.text == target.text) {
        // ++x / --x recovery.
        const DNode& second = pool_.node(value.children[1]);
        if (second.kind == NodeKind::kNum &&
            (value.kind == NodeKind::kAdd || value.kind == NodeKind::kSub)) {
          if (second.value == 1) {
            return pool_.Add(value.kind == NodeKind::kAdd
                                 ? NodeKind::kPreInc
                                 : NodeKind::kPreDec,
                             {lhs});
          }
        }
        const NodeKind compound = CompoundKind(value.kind);
        if (compound != NodeKind::kKindCount) {
          return pool_.Add(compound, {lhs, value.children[1]});
        }
      }
    }
    return pool_.Add(NodeKind::kAsg, {lhs, rhs});
  }

  int CmpExpr(Cond cond) {
    // Flags are always set in the same block by construction; the fallback
    // keeps the lifter total on hand-crafted/fuzzed code.
    if (flag_lhs_ < 0 || flag_rhs_ < 0) {
      flag_lhs_ = pool_.AddNum(0);
      flag_rhs_ = pool_.AddNum(0);
    }
    return pool_.Add(KindOfCond(cond), {flag_lhs_, flag_rhs_});
  }

  // True when register r is consumed after instruction index i within
  // [i+1, last]; false if redefined first. Falls back to block live-out.
  bool ValueUsedLater(int block_id, int i, int r) {
    const MachineBlock& block = cfg_.block(block_id);
    std::vector<int> uses;
    for (int k = i + 1; k <= block.last; ++k) {
      const Instruction& insn = fn_.code[static_cast<std::size_t>(k)];
      uses.clear();
      MachineUses(insn, &uses);
      for (int u : uses) {
        if (u == r) return true;
      }
      if (MachineDefinesA(insn) && insn.a == r) return false;
    }
    return cfg_.live_out()[static_cast<std::size_t>(block_id)]
                          [static_cast<std::size_t>(r)] != 0;
  }

  // ---- block lifting -------------------------------------------------

  void LiftBlock(int block_id, LiftedBlock* out) {
    const MachineBlock& block = cfg_.block(block_id);
    reg_expr_.fill(-1);
    modified_.fill(false);
    staged_args_.clear();
    flag_lhs_ = flag_rhs_ = -1;
    stmts_ = &out->stmts;

    for (int i = block.first; i <= block.last; ++i) {
      const Instruction& insn = fn_.code[static_cast<std::size_t>(i)];
      switch (insn.op) {
        case Opcode::kNop:
          break;
        case Opcode::kMovImm:
          RegWrite(insn.a, pool_.AddNum(insn.imm));
          break;
        case Opcode::kMovStr: {
          const auto s = static_cast<std::size_t>(insn.imm);
          RegWrite(insn.a, pool_.AddStr(
                               s < module_.strings.size() ? module_.strings[s]
                                                          : std::string()));
          break;
        }
        case Opcode::kMov:
          RegWrite(insn.a, RegRead(insn.b));
          break;
        case Opcode::kAdd: BinOp(insn, NodeKind::kAdd); break;
        case Opcode::kSub: BinOp(insn, NodeKind::kSub); break;
        case Opcode::kMul: BinOp(insn, NodeKind::kMul); break;
        case Opcode::kDiv: BinOp(insn, NodeKind::kDiv); break;
        case Opcode::kMod: BinOp(insn, NodeKind::kMod); break;
        case Opcode::kAnd: BinOp(insn, NodeKind::kBand); break;
        case Opcode::kOr: BinOp(insn, NodeKind::kOr); break;
        case Opcode::kXor: BinOp(insn, NodeKind::kXor); break;
        case Opcode::kShl: BinOp(insn, NodeKind::kShl); break;
        case Opcode::kShr: BinOp(insn, NodeKind::kShr); break;
        case Opcode::kAddI: BinOpImm(insn, NodeKind::kAdd); break;
        case Opcode::kSubI: BinOpImm(insn, NodeKind::kSub); break;
        case Opcode::kMulI: BinOpImm(insn, NodeKind::kMul); break;
        case Opcode::kDivI: BinOpImm(insn, NodeKind::kDiv); break;
        case Opcode::kModI: BinOpImm(insn, NodeKind::kMod); break;
        case Opcode::kAndI: BinOpImm(insn, NodeKind::kBand); break;
        case Opcode::kOrI: BinOpImm(insn, NodeKind::kOr); break;
        case Opcode::kXorI: BinOpImm(insn, NodeKind::kXor); break;
        case Opcode::kShlI: BinOpImm(insn, NodeKind::kShl); break;
        case Opcode::kShrI: BinOpImm(insn, NodeKind::kShr); break;
        case Opcode::kNeg:
          RegWrite(insn.a, pool_.Add(NodeKind::kNeg, {RegRead(insn.b)}));
          break;
        case Opcode::kNot:
          RegWrite(insn.a, pool_.Add(NodeKind::kNot, {RegRead(insn.b)}));
          break;
        case Opcode::kLea:
          RegWrite(insn.a,
                   pool_.Add(NodeKind::kAdd,
                             {RegRead(insn.b),
                              pool_.Add(NodeKind::kMul,
                                        {RegRead(insn.c),
                                         pool_.AddNum(insn.imm)})}));
          break;
        case Opcode::kCmp:
          flag_lhs_ = RegRead(insn.a);
          flag_rhs_ = RegRead(insn.b);
          break;
        case Opcode::kCmpI:
          flag_lhs_ = RegRead(insn.a);
          flag_rhs_ = pool_.AddNum(insn.imm);
          break;
        case Opcode::kSetCond:
          RegWrite(insn.a, CmpExpr(insn.cond));
          break;
        case Opcode::kCsel:
          RegWrite(insn.a,
                   pool_.Add(NodeKind::kTernary,
                             {CmpExpr(insn.cond), RegRead(insn.b),
                              RegRead(insn.c)}));
          break;
        case Opcode::kFrameAddr:
          RegWrite(insn.a,
                   pool_.AddVar("arr" + std::to_string(insn.imm)));
          break;
        case Opcode::kLoad:
          RegWrite(insn.a, IndexExpr(RegRead(insn.b), RegRead(insn.c)));
          break;
        case Opcode::kLoadI:
          if (insn.b == binary::kFramePointerReg) {
            RegWrite(insn.a, pool_.AddVar(FrameSlotName(insn.imm)));
          } else {
            RegWrite(insn.a,
                     IndexExpr(RegRead(insn.b), pool_.AddNum(insn.imm)));
          }
          break;
        case Opcode::kStore:
          stmts_->push_back(MakeAsg(
              IndexExpr(RegRead(insn.b), RegRead(insn.c)), RegRead(insn.a)));
          break;
        case Opcode::kStoreI:
          if (insn.b == binary::kFramePointerReg) {
            stmts_->push_back(MakeAsg(pool_.AddVar(FrameSlotName(insn.imm)),
                                      RegRead(insn.a)));
          } else {
            stmts_->push_back(
                MakeAsg(IndexExpr(RegRead(insn.b), pool_.AddNum(insn.imm)),
                        RegRead(insn.a)));
          }
          break;
        case Opcode::kArg: {
          const auto slot = static_cast<std::size_t>(insn.imm);
          if (staged_args_.size() <= slot) staged_args_.resize(slot + 1, -1);
          staged_args_[slot] = RegRead(insn.a);
          break;
        }
        case Opcode::kCall: {
          const auto callee = static_cast<std::size_t>(insn.imm);
          const std::string name = callee < module_.functions.size()
                                       ? module_.functions[callee].name
                                       : "sub_unknown";
          std::vector<int> args;
          for (int a : staged_args_) {
            args.push_back(a >= 0 ? a : pool_.AddNum(0));
          }
          staged_args_.clear();
          const int call = pool_.AddCall(name, std::move(args));
          if (ValueUsedLater(block_id, i, insn.a)) {
            const std::string temp = "t" + std::to_string(next_temp_++);
            stmts_->push_back(
                pool_.Add(NodeKind::kAsg, {pool_.AddVar(temp), call}));
            RegWrite(insn.a, pool_.AddVar(temp));
          } else {
            stmts_->push_back(call);
            reg_expr_[insn.a] = -1;
          }
          break;
        }
        case Opcode::kBr:
          break;  // terminator handled below
        case Opcode::kBrCond:
          out->term = TermKind::kCond;
          out->cond = CmpExpr(insn.cond);
          break;
        case Opcode::kJmpTable: {
          out->term = TermKind::kSwitch;
          out->switch_expr = RegRead(insn.a);
          const auto& table =
              fn_.jump_tables[static_cast<std::size_t>(insn.imm)];
          std::map<int, SwitchArm> arms;  // keyed by target block
          for (std::size_t k = 0; k < table.targets.size(); ++k) {
            const int target = cfg_.BlockOf(table.targets[k]);
            if (target == cfg_.BlockOf(table.default_target)) continue;
            SwitchArm& arm = arms[target];
            arm.target = target;
            arm.values.push_back(table.base + static_cast<std::int64_t>(k));
          }
          for (auto& [target, arm] : arms) out->arms.push_back(std::move(arm));
          out->switch_default = cfg_.BlockOf(table.default_target);
          break;
        }
        case Opcode::kRet:
          out->term = TermKind::kRet;
          out->ret = RegRead(insn.a);
          break;
        case Opcode::kOpcodeCount:
          stmts_->push_back(pool_.Add(NodeKind::kAsm));
          break;
      }
    }

    // Materialize live-out register variables modified by this block.
    const auto& live_out = cfg_.live_out()[static_cast<std::size_t>(block_id)];
    for (int r = 0; r < binary::kNumRegs; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (!modified_[ri] || !live_out[ri]) continue;
      const int expr = reg_expr_[ri];
      const DNode& node = pool_.node(expr);
      const std::string reg_name = "r" + std::to_string(r);
      if (node.kind == NodeKind::kVar && node.text == reg_name) continue;
      stmts_->push_back(MakeAsg(pool_.AddVar(reg_name), expr));
    }
    stmts_ = nullptr;
  }

  void BinOp(const Instruction& insn, NodeKind kind) {
    RegWrite(insn.a,
             pool_.Add(kind, {RegRead(insn.b), RegRead(insn.c)}));
  }

  void BinOpImm(const Instruction& insn, NodeKind kind) {
    RegWrite(insn.a,
             pool_.Add(kind, {RegRead(insn.b), pool_.AddNum(insn.imm)}));
  }

  const binary::BinModule& module_;
  const MachineCfg& cfg_;
  const binary::BinFunction& fn_;
  DPool& pool_;
  std::array<int, binary::kNumRegs> reg_expr_{};
  std::array<bool, binary::kNumRegs> modified_{};
  std::vector<int> staged_args_;
  int flag_lhs_ = -1;
  int flag_rhs_ = -1;
  std::vector<int>* stmts_ = nullptr;
  int next_temp_ = 0;
};

}  // namespace

LiftedFunction LiftFunction(const binary::BinModule& module,
                            const MachineCfg& cfg, DPool* pool) {
  return BlockLifter(module, cfg, pool).Run();
}

}  // namespace asteria::decompiler
