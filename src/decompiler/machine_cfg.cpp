#include "decompiler/machine_cfg.h"

#include <algorithm>
#include <set>

namespace asteria::decompiler {

using binary::Instruction;
using binary::Opcode;

bool MachineDefinesA(const Instruction& insn) {
  switch (insn.op) {
    case Opcode::kCmp:
    case Opcode::kCmpI:
    case Opcode::kBr:
    case Opcode::kBrCond:
    case Opcode::kJmpTable:
    case Opcode::kStore:
    case Opcode::kStoreI:
    case Opcode::kArg:
    case Opcode::kRet:
    case Opcode::kNop:
      return false;
    default:
      return true;
  }
}

void MachineUses(const Instruction& insn, std::vector<int>* uses) {
  auto add = [&](int r) { uses->push_back(r); };
  switch (insn.op) {
    case Opcode::kNop:
    case Opcode::kMovImm:
    case Opcode::kMovStr:
    case Opcode::kFrameAddr:
    case Opcode::kBr:
    case Opcode::kBrCond:
    case Opcode::kSetCond:
    case Opcode::kCall:
      return;  // no register reads (beyond flags / staged args)
    case Opcode::kMov:
    case Opcode::kNeg:
    case Opcode::kNot:
      add(insn.b);
      return;
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr: case Opcode::kLea: case Opcode::kLoad:
      add(insn.b);
      add(insn.c);
      return;
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI: case Opcode::kLoadI:
      add(insn.b);
      return;
    case Opcode::kCsel:
      add(insn.b);
      add(insn.c);
      return;
    case Opcode::kCmp:
      add(insn.a);
      add(insn.b);
      return;
    case Opcode::kCmpI:
    case Opcode::kArg:
    case Opcode::kRet:
    case Opcode::kJmpTable:
      add(insn.a);
      return;
    case Opcode::kStore:
      add(insn.a);
      add(insn.b);
      add(insn.c);
      return;
    case Opcode::kStoreI:
      add(insn.a);
      add(insn.b);
      return;
    case Opcode::kOpcodeCount:
      return;
  }
}

MachineCfg::MachineCfg(const binary::BinFunction& fn) : fn_(&fn) {
  const int n = fn.size();
  std::set<int> leaders{0};
  for (int i = 0; i < n; ++i) {
    const Instruction& insn = fn.code[static_cast<std::size_t>(i)];
    switch (insn.op) {
      case Opcode::kBr:
        leaders.insert(static_cast<int>(insn.imm));
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      case Opcode::kBrCond:
        leaders.insert(static_cast<int>(insn.imm));
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      case Opcode::kJmpTable: {
        const auto& table = fn.jump_tables[static_cast<std::size_t>(insn.imm)];
        for (int t : table.targets) leaders.insert(t);
        leaders.insert(table.default_target);
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      }
      case Opcode::kRet:
        if (i + 1 < n) leaders.insert(i + 1);
        break;
      default:
        break;
    }
  }
  std::vector<int> starts(leaders.begin(), leaders.end());
  block_of_.assign(static_cast<std::size_t>(n), 0);
  for (std::size_t b = 0; b < starts.size(); ++b) {
    MachineBlock block;
    block.first = starts[b];
    block.last = (b + 1 < starts.size() ? starts[b + 1] : n) - 1;
    for (int i = block.first; i <= block.last; ++i) {
      block_of_[static_cast<std::size_t>(i)] = static_cast<int>(b);
    }
    blocks_.push_back(block);
  }
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    MachineBlock& block = blocks_[b];
    const Instruction& last = fn.code[static_cast<std::size_t>(block.last)];
    auto link = [&](int target_pc) {
      block.succs.push_back(BlockOf(target_pc));
    };
    switch (last.op) {
      case Opcode::kBr:
        link(static_cast<int>(last.imm));
        break;
      case Opcode::kBrCond:
        link(static_cast<int>(last.imm));
        if (block.last + 1 < n) link(block.last + 1);
        break;
      case Opcode::kJmpTable: {
        const auto& table =
            fn.jump_tables[static_cast<std::size_t>(last.imm)];
        std::set<int> seen;
        for (int t : table.targets) {
          if (seen.insert(BlockOf(t)).second) link(t);
        }
        if (seen.insert(BlockOf(table.default_target)).second) {
          link(table.default_target);
        }
        break;
      }
      case Opcode::kRet:
        break;
      default:
        if (block.last + 1 < n) link(block.last + 1);
        break;
    }
  }
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    for (int succ : blocks_[b].succs) {
      blocks_[static_cast<std::size_t>(succ)].preds.push_back(
          static_cast<int>(b));
    }
  }
  ComputeLiveness();
}

void MachineCfg::ComputeLiveness() {
  const std::size_t num_blocks = blocks_.size();
  live_in_.assign(num_blocks, std::vector<char>(binary::kNumRegs, 0));
  live_out_.assign(num_blocks, std::vector<char>(binary::kNumRegs, 0));
  std::vector<std::vector<char>> gen(num_blocks,
                                     std::vector<char>(binary::kNumRegs, 0));
  std::vector<std::vector<char>> kill(num_blocks,
                                      std::vector<char>(binary::kNumRegs, 0));
  std::vector<int> uses;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (int i = blocks_[b].first; i <= blocks_[b].last; ++i) {
      const Instruction& insn = fn_->code[static_cast<std::size_t>(i)];
      uses.clear();
      MachineUses(insn, &uses);
      for (int r : uses) {
        if (!kill[b][static_cast<std::size_t>(r)]) {
          gen[b][static_cast<std::size_t>(r)] = 1;
        }
      }
      if (MachineDefinesA(insn)) kill[b][insn.a] = 1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = num_blocks; b-- > 0;) {
      for (int succ : blocks_[b].succs) {
        const auto& succ_in = live_in_[static_cast<std::size_t>(succ)];
        for (int r = 0; r < binary::kNumRegs; ++r) {
          if (succ_in[static_cast<std::size_t>(r)] &&
              !live_out_[b][static_cast<std::size_t>(r)]) {
            live_out_[b][static_cast<std::size_t>(r)] = 1;
            changed = true;
          }
        }
      }
      for (int r = 0; r < binary::kNumRegs; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        const char value = gen[b][ri] || (live_out_[b][ri] && !kill[b][ri]);
        if (value != live_in_[b][ri]) {
          live_in_[b][ri] = value;
          changed = true;
        }
      }
    }
  }
}

}  // namespace asteria::decompiler
