// Control-flow structuring: machine CFG + lifted blocks -> statement tree.
//
// Recovers if/else (via immediate postdominators), while loops (via
// dominator-based natural loops), switch (from jump tables), break/continue
// (edges to the innermost loop's exit/header), and falls back to goto nodes
// for anything irreducible — exactly the degradation a production
// decompiler exhibits, and Table I reserves a label for it.
#pragma once

#include "decompiler/lifter.h"
#include "decompiler/machine_cfg.h"

namespace asteria::decompiler {

// Structures the function and returns the DNode id of the root kBlock.
int StructureFunction(const MachineCfg& cfg, const LiftedFunction& lifted,
                      DPool* pool);

// Dominator utilities (exposed for tests and the cfg library).
// idom[b] = immediate dominator block id (entry's is itself).
std::vector<int> ComputeIdom(const MachineCfg& cfg);
// Immediate postdominators with a virtual exit (-1 represents it).
std::vector<int> ComputeIpostdom(const MachineCfg& cfg);

}  // namespace asteria::decompiler
