// Control-flow structuring: machine CFG + lifted blocks -> statement tree.
//
// Recovers if/else (via immediate postdominators), while loops (via
// dominator-based natural loops), switch (from jump tables), break/continue
// (edges to the innermost loop's exit/header), and falls back to goto nodes
// for anything irreducible — exactly the degradation a production
// decompiler exhibits, and Table I reserves a label for it.
#pragma once

#include <string>

#include "decompiler/lifter.h"
#include "decompiler/machine_cfg.h"

namespace asteria::decompiler {

// Recursion budget for the structurer. Pathological CFGs (deeply nested
// conditionals, adversarial irreducible graphs) are flattened to gotos past
// this nesting depth instead of overflowing the stack.
inline constexpr int kMaxStructureDepth = 200;

// Structures the function and returns the DNode id of the root kBlock.
// When the walk exceeds `max_depth` nesting levels the remaining structure
// degrades to gotos (the output stays a valid statement tree) and `error`,
// if non-null, is filled with a diagnostic. `max_depth` is clamped to >= 2;
// below that the goto-fallback queue could never drain.
int StructureFunction(const MachineCfg& cfg, const LiftedFunction& lifted,
                      DPool* pool, std::string* error = nullptr,
                      int max_depth = kMaxStructureDepth);

// Dominator utilities (exposed for tests and the cfg library).
// idom[b] = immediate dominator block id (entry's is itself).
std::vector<int> ComputeIdom(const MachineCfg& cfg);
// Immediate postdominators with a virtual exit (-1 represents it).
std::vector<int> ComputeIpostdom(const MachineCfg& cfg);

}  // namespace asteria::decompiler
