// Machine-level control-flow graph and register liveness.
//
// Built directly from BinFunction code by leader analysis. The lifter uses
// liveness to decide which registers modified by a block must materialize as
// register-variable assignments (dead defs vanish, matching what a real
// decompiler's dataflow does). The cfg library reuses this graph for ACFG
// feature extraction (Gemini baseline).
#pragma once

#include <vector>

#include "binary/module.h"

namespace asteria::decompiler {

struct MachineBlock {
  int first = 0;  // instruction index range [first, last]
  int last = 0;
  std::vector<int> succs;  // block ids
  std::vector<int> preds;
};

class MachineCfg {
 public:
  // Builds the CFG of `fn` (which must be non-empty).
  explicit MachineCfg(const binary::BinFunction& fn);

  const binary::BinFunction& function() const { return *fn_; }
  int num_blocks() const { return static_cast<int>(blocks_.size()); }
  const MachineBlock& block(int id) const {
    return blocks_[static_cast<std::size_t>(id)];
  }
  // Block containing instruction index `pc`.
  int BlockOf(int pc) const { return block_of_[static_cast<std::size_t>(pc)]; }

  // live_out[b][r]: register r is live out of block b.
  const std::vector<std::vector<char>>& live_out() const { return live_out_; }
  const std::vector<std::vector<char>>& live_in() const { return live_in_; }

 private:
  void ComputeLiveness();

  const binary::BinFunction* fn_;
  std::vector<MachineBlock> blocks_;
  std::vector<int> block_of_;
  std::vector<std::vector<char>> live_in_;
  std::vector<std::vector<char>> live_out_;
};

// Register def/use sets for one machine instruction.
bool MachineDefinesA(const binary::Instruction& insn);
void MachineUses(const binary::Instruction& insn, std::vector<int>* uses);

}  // namespace asteria::decompiler
