// Top-level decompilation: BinFunction -> Table-I AST + callee features.
//
// The IDA Pro + Hex-Rays substitute of the reproduction (DESIGN.md §2):
// machine CFG -> block lifting -> structuring -> ast::Ast, plus the callee
// statistics the paper's calibration consumes (§III-C): the callee set χ of
// a function keeps only callees with at least `beta` instructions (smaller
// ones are considered inlining candidates and filtered out).
#pragma once

#include <string>
#include <vector>

#include "ast/ast.h"
#include "binary/module.h"

namespace asteria::decompiler {

inline constexpr int kDefaultBeta = 4;

struct DecompiledFunction {
  std::string name;
  ast::Ast tree;
  // |χ|: distinct callees with >= beta instructions (eq. (9) input).
  int callee_count = 0;
  // Distinct callees before the β filter.
  int callee_count_raw = 0;
  // Machine instruction count of the function itself.
  int instruction_count = 0;
  // Instruction counts of each distinct callee (lets callers re-apply the
  // β filter with other thresholds, e.g. the β-sweep ablation bench).
  std::vector<int> callee_sizes;
  // Non-empty when decompilation degraded (e.g. the structurer hit its
  // nesting bound and flattened to gotos). The tree is still valid;
  // pipelines decide whether to keep or isolate the function.
  std::string error;
};

// Re-applies the β filter: |{s in callee_sizes : s >= beta}|.
inline int CalleeCountAtBeta(const std::vector<int>& callee_sizes, int beta) {
  int count = 0;
  for (int size : callee_sizes) {
    if (size >= beta) ++count;
  }
  return count;
}

// Decompiles one function of `module`.
DecompiledFunction DecompileFunction(const binary::BinModule& module,
                                     int fn_index, int beta = kDefaultBeta);

// Decompiles every function of `module`.
std::vector<DecompiledFunction> DecompileModule(
    const binary::BinModule& module, int beta = kDefaultBeta);

}  // namespace asteria::decompiler
