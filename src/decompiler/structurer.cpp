#include "decompiler/structurer.h"

#include <algorithm>
#include <map>
#include <set>

namespace asteria::decompiler {

using ast::NodeKind;

namespace {

// Reverse postorder from the entry over successor edges.
std::vector<int> ReversePostorder(const MachineCfg& cfg) {
  std::vector<int> order;
  std::vector<char> visited(static_cast<std::size_t>(cfg.num_blocks()), 0);
  // Iterative DFS with explicit post stack.
  struct Frame {
    int block;
    std::size_t next;
  };
  std::vector<Frame> stack{{0, 0}};
  visited[0] = 1;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& succs = cfg.block(top.block).succs;
    if (top.next < succs.size()) {
      const int succ = succs[top.next++];
      if (!visited[static_cast<std::size_t>(succ)]) {
        visited[static_cast<std::size_t>(succ)] = 1;
        stack.push_back({succ, 0});
      }
      continue;
    }
    order.push_back(top.block);
    stack.pop_back();
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<int> ComputeIdom(const MachineCfg& cfg) {
  const int n = cfg.num_blocks();
  std::vector<int> idom(static_cast<std::size_t>(n), -1);
  const std::vector<int> rpo = ReversePostorder(cfg);
  std::vector<int> rpo_index(static_cast<std::size_t>(n), -1);
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    rpo_index[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }
  idom[0] = 0;
  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_index[static_cast<std::size_t>(a)] >
             rpo_index[static_cast<std::size_t>(b)]) {
        a = idom[static_cast<std::size_t>(a)];
      }
      while (rpo_index[static_cast<std::size_t>(b)] >
             rpo_index[static_cast<std::size_t>(a)]) {
        b = idom[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : rpo) {
      if (b == 0) continue;
      int new_idom = -1;
      for (int pred : cfg.block(b).preds) {
        if (idom[static_cast<std::size_t>(pred)] < 0) continue;
        if (rpo_index[static_cast<std::size_t>(pred)] < 0) continue;
        new_idom = new_idom < 0 ? pred : intersect(new_idom, pred);
      }
      if (new_idom >= 0 && idom[static_cast<std::size_t>(b)] != new_idom) {
        idom[static_cast<std::size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

std::vector<int> ComputeIpostdom(const MachineCfg& cfg) {
  // Postdominators = dominators on the reversed graph with a virtual exit
  // (index n) that every return block feeds. Simple iterative set-based
  // algorithm (blocks are small).
  const int n = cfg.num_blocks();
  const int vexit = n;
  std::vector<std::vector<int>> rsuccs(static_cast<std::size_t>(n + 1));
  std::vector<std::vector<int>> rpreds(static_cast<std::size_t>(n + 1));
  for (int b = 0; b < n; ++b) {
    const auto& succs = cfg.block(b).succs;
    if (succs.empty()) {
      rsuccs[static_cast<std::size_t>(vexit)].push_back(b);
      rpreds[static_cast<std::size_t>(b)].push_back(vexit);
    }
    for (int s : succs) {
      rsuccs[static_cast<std::size_t>(s)].push_back(b);
      rpreds[static_cast<std::size_t>(b)].push_back(s);
    }
  }
  // pdom sets via bitsets.
  std::vector<std::vector<char>> pdom(
      static_cast<std::size_t>(n + 1),
      std::vector<char>(static_cast<std::size_t>(n + 1), 1));
  std::vector<char> empty_set(static_cast<std::size_t>(n + 1), 0);
  pdom[static_cast<std::size_t>(vexit)] = empty_set;
  pdom[static_cast<std::size_t>(vexit)][static_cast<std::size_t>(vexit)] = 1;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b = n - 1; b >= 0; --b) {
      std::vector<char> next(static_cast<std::size_t>(n + 1), 1);
      bool has_succ = false;
      // successors in the original graph (preds in reversed) = rpreds[b].
      for (int s : rpreds[static_cast<std::size_t>(b)]) {
        has_succ = true;
        const auto& sd = pdom[static_cast<std::size_t>(s)];
        for (std::size_t i = 0; i < next.size(); ++i) next[i] &= sd[i];
      }
      if (!has_succ) next = empty_set;  // unreachable-from-exit (inf. loop)
      next[static_cast<std::size_t>(b)] = 1;
      if (next != pdom[static_cast<std::size_t>(b)]) {
        pdom[static_cast<std::size_t>(b)] = std::move(next);
        changed = true;
      }
    }
  }
  // Immediate postdominator: the strict postdominator postdominated by all
  // other strict postdominators (smallest strict pdom set containing b).
  std::vector<int> ipdom(static_cast<std::size_t>(n), -1);
  for (int b = 0; b < n; ++b) {
    int best = -1;
    std::size_t best_size = 0;
    for (int c = 0; c <= n; ++c) {
      if (c == b || !pdom[static_cast<std::size_t>(b)][static_cast<std::size_t>(c)]) continue;
      std::size_t size = 0;
      for (char bit : pdom[static_cast<std::size_t>(c)]) size += static_cast<std::size_t>(bit);
      if (best < 0 || size > best_size) {
        best = c;
        best_size = size;
      }
    }
    ipdom[static_cast<std::size_t>(b)] = best == vexit ? -1 : best;
  }
  return ipdom;
}

namespace {

class StructurerImpl {
 public:
  StructurerImpl(const MachineCfg& cfg, const LiftedFunction& lifted,
                 DPool* pool, int max_depth)
      : cfg_(cfg), lifted_(lifted), pool_(*pool),
        // Below depth 2 the pending loop cannot make progress: a while(1)
        // header is only marked emitted by the depth-2 walk inside
        // EmitLoop, so a depth-1-only budget would re-queue it forever.
        max_depth_(std::max(max_depth, 2)) {
    ipdom_ = ComputeIpostdom(cfg_);
    FindLoops();
    emitted_.assign(static_cast<std::size_t>(cfg_.num_blocks()), 0);
  }

  bool exceeded() const { return exceeded_; }

  int Run() {
    std::vector<int> stmts;
    Walk(0, {}, nullptr, &stmts);
    // Goto-fallback targets not emitted anywhere else land at top level.
    while (!pending_.empty()) {
      const int b = pending_.back();
      pending_.pop_back();
      if (emitted_[static_cast<std::size_t>(b)]) continue;
      Walk(b, {}, nullptr, &stmts);
    }
    return pool_.Add(NodeKind::kBlock, std::move(stmts));
  }

 private:
  struct LoopCtx {
    int header;
    int exit;
    const std::set<int>* body;
  };

  void FindLoops() {
    const std::vector<int> idom = ComputeIdom(cfg_);
    auto dominates = [&](int a, int b) {
      // walk idom chain of b up to entry
      int cur = b;
      while (true) {
        if (cur == a) return true;
        const int up = idom[static_cast<std::size_t>(cur)];
        if (up == cur || up < 0) return cur == a;
        cur = up;
      }
    };
    for (int u = 0; u < cfg_.num_blocks(); ++u) {
      for (int h : cfg_.block(u).succs) {
        if (!dominates(h, u)) continue;
        // natural loop of back edge u -> h
        std::set<int>& body = loops_[h];
        body.insert(h);
        std::vector<int> work{u};
        while (!work.empty()) {
          const int x = work.back();
          work.pop_back();
          if (!body.insert(x).second) continue;
          for (int p : cfg_.block(x).preds) {
            if (!body.count(p)) work.push_back(p);
          }
        }
      }
    }
  }

  int Negate(int cond) {
    const DNode& node = pool_.node(cond);
    NodeKind flipped;
    switch (node.kind) {
      case NodeKind::kEq: flipped = NodeKind::kNe; break;
      case NodeKind::kNe: flipped = NodeKind::kEq; break;
      case NodeKind::kLt: flipped = NodeKind::kGe; break;
      case NodeKind::kLe: flipped = NodeKind::kGt; break;
      case NodeKind::kGt: flipped = NodeKind::kLe; break;
      case NodeKind::kGe: flipped = NodeKind::kLt; break;
      default:
        return pool_.Add(NodeKind::kNot, {cond});
    }
    return pool_.Add(flipped, pool_.node(cond).children);
  }

  void EmitGoto(int target, std::vector<int>* out) {
    out->push_back(pool_.Add(NodeKind::kGoto));
    if (!emitted_[static_cast<std::size_t>(target)]) {
      pending_.push_back(target);
    }
  }

  // Structures the chain starting at `cur`; stops (without emitting) at any
  // block in `stops`, at the enclosing loop's header (continue) or exit
  // (break), or at a return.
  // Walk recurses via Side (if/switch arms) and EmitLoop (loop bodies);
  // this guard bounds that nesting so hostile CFGs cannot blow the stack.
  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    int* depth_;
  };

  void Walk(int cur, std::set<int> stops, LoopCtx* loop,
            std::vector<int>* out) {
    DepthGuard guard(&depth_);
    if (depth_ > max_depth_) {
      // Degrade to a goto; the target re-enters via the pending queue and
      // is structured from depth 1 there.
      exceeded_ = true;
      if (cur >= 0) EmitGoto(cur, out);
      return;
    }
    while (cur >= 0) {
      if (stops.count(cur)) return;
      if (loop != nullptr) {
        // An edge back to an already-emitted header is the next iteration;
        // on first entry (while(1) form) the header is processed normally.
        if (cur == loop->header && emitted_[static_cast<std::size_t>(cur)]) {
          out->push_back(pool_.Add(NodeKind::kContinue));
          return;
        }
        if (cur == loop->exit) {
          out->push_back(pool_.Add(NodeKind::kBreak));
          return;
        }
        if (!loop->body->count(cur)) {
          EmitGoto(cur, out);
          return;
        }
      }
      if (emitted_[static_cast<std::size_t>(cur)]) {
        EmitGoto(cur, out);
        return;
      }
      auto loop_it = loops_.find(cur);
      if (loop_it != loops_.end() && !walking_header_.count(cur)) {
        cur = EmitLoop(cur, loop_it->second, loop, out);
        continue;
      }
      emitted_[static_cast<std::size_t>(cur)] = 1;
      const LiftedBlock& lb = lifted_.blocks[static_cast<std::size_t>(cur)];
      for (int s : lb.stmts) out->push_back(s);
      const auto& succs = cfg_.block(cur).succs;
      switch (lb.term) {
        case TermKind::kRet: {
          std::vector<int> children;
          if (lb.ret >= 0) children.push_back(lb.ret);
          out->push_back(pool_.Add(NodeKind::kReturn, std::move(children)));
          return;
        }
        case TermKind::kSeq:
          if (succs.empty()) return;
          cur = succs[0];
          continue;
        case TermKind::kCond: {
          const int true_block = succs[0];
          const int false_block = succs.size() > 1 ? succs[1] : succs[0];
          const int join = ipdom_[static_cast<std::size_t>(cur)];
          std::vector<int> then_stmts =
              Side(true_block, join, stops, loop);
          std::vector<int> else_stmts =
              Side(false_block, join, stops, loop);
          int cond = lb.cond;
          if (then_stmts.empty() && !else_stmts.empty()) {
            cond = Negate(cond);
            std::swap(then_stmts, else_stmts);
          }
          if (!then_stmts.empty()) {
            std::vector<int> children{
                cond, pool_.Add(NodeKind::kBlock, std::move(then_stmts))};
            if (!else_stmts.empty()) {
              children.push_back(
                  pool_.Add(NodeKind::kBlock, std::move(else_stmts)));
            }
            out->push_back(pool_.Add(NodeKind::kIf, std::move(children)));
          }
          cur = join;
          continue;
        }
        case TermKind::kSwitch: {
          const int join = ipdom_[static_cast<std::size_t>(cur)];
          std::vector<int> children{lb.switch_expr};
          for (const SwitchArm& arm : lb.arms) {
            std::vector<int> arm_stmts = Side(arm.target, join, stops, loop);
            children.push_back(
                pool_.Add(NodeKind::kBlock, std::move(arm_stmts)));
          }
          if (lb.switch_default >= 0 && lb.switch_default != join) {
            std::vector<int> def_stmts =
                Side(lb.switch_default, join, stops, loop);
            if (!def_stmts.empty()) {
              children.push_back(
                  pool_.Add(NodeKind::kBlock, std::move(def_stmts)));
            }
          }
          out->push_back(pool_.Add(NodeKind::kSwitch, std::move(children)));
          cur = join;
          continue;
        }
      }
      return;
    }
  }

  std::vector<int> Side(int start, int join, const std::set<int>& stops,
                        LoopCtx* loop) {
    std::vector<int> out;
    if (start == join) return out;
    std::set<int> stops2 = stops;
    if (join >= 0) stops2.insert(join);
    Walk(start, std::move(stops2), loop, &out);
    return out;
  }

  // Emits a while loop for the natural loop with `header`; returns the
  // block where control continues after the loop (-1 when the loop never
  // exits).
  int EmitLoop(int header, const std::set<int>& body, LoopCtx* parent,
               std::vector<int>* out) {
    // Collect exit edge targets.
    std::map<int, int> exit_counts;
    for (int u : body) {
      for (int s : cfg_.block(u).succs) {
        if (!body.count(s)) ++exit_counts[s];
      }
    }
    const LiftedBlock& hb = lifted_.blocks[static_cast<std::size_t>(header)];
    const auto& hsuccs = cfg_.block(header).succs;

    int exit = -1;
    int body_entry = -1;
    int cond = -1;
    if (hb.term == TermKind::kCond && hsuccs.size() == 2) {
      const int t = hsuccs[0], f = hsuccs[1];
      if (body.count(t) && !body.count(f)) {
        exit = f;
        body_entry = t;
        cond = hb.cond;
      } else if (body.count(f) && !body.count(t)) {
        exit = t;
        body_entry = f;
        cond = Negate(hb.cond);
      }
    }
    if (exit < 0) {
      // Canonical exit = the most targeted exit block (others become gotos).
      int best_count = 0;
      for (const auto& [target, count] : exit_counts) {
        if (count > best_count) {
          best_count = count;
          exit = target;
        }
      }
    }

    LoopCtx ctx{header, exit, &body};
    if (cond >= 0 && hb.stmts.empty()) {
      // while (cond) { body }
      emitted_[static_cast<std::size_t>(header)] = 1;
      std::vector<int> body_stmts;
      if (body_entry != header) Walk(body_entry, {}, &ctx, &body_stmts);
      DropTrailingContinue(&body_stmts);
      out->push_back(pool_.Add(
          NodeKind::kWhile,
          {cond, pool_.Add(NodeKind::kBlock, std::move(body_stmts))}));
    } else {
      // while (1) { header...; } with breaks for exits.
      walking_header_.insert(header);
      std::vector<int> body_stmts;
      Walk(header, {}, &ctx, &body_stmts);
      walking_header_.erase(header);
      DropTrailingContinue(&body_stmts);
      out->push_back(pool_.Add(
          NodeKind::kWhile,
          {pool_.AddNum(1),
           pool_.Add(NodeKind::kBlock, std::move(body_stmts))}));
    }
    (void)parent;
    return exit;
  }

  void DropTrailingContinue(std::vector<int>* stmts) {
    if (!stmts->empty() &&
        pool_.node(stmts->back()).kind == NodeKind::kContinue) {
      stmts->pop_back();
    }
  }

  const MachineCfg& cfg_;
  const LiftedFunction& lifted_;
  DPool& pool_;
  int max_depth_;
  int depth_ = 0;
  bool exceeded_ = false;
  std::vector<int> ipdom_;
  std::map<int, std::set<int>> loops_;
  std::vector<char> emitted_;
  std::vector<int> pending_;
  std::set<int> walking_header_;
};

}  // namespace

int StructureFunction(const MachineCfg& cfg, const LiftedFunction& lifted,
                      DPool* pool, std::string* error, int max_depth) {
  StructurerImpl impl(cfg, lifted, pool, max_depth);
  const int root = impl.Run();
  if (impl.exceeded() && error != nullptr) {
    *error = "structuring exceeded max nesting depth " +
             std::to_string(std::max(max_depth, 2)) + "; flattened via goto";
  }
  return root;
}

}  // namespace asteria::decompiler
