#include "baselines/diaphora.h"

#include <algorithm>

namespace asteria::baselines {

DiaphoraSignature DiaphoraHashFromHistogram(std::vector<int> kind_histogram) {
  static const std::vector<std::uint32_t> kPrimes =
      FirstPrimes(ast::kNumNodeKinds);
  DiaphoraSignature sig;
  sig.histogram = std::move(kind_histogram);
  sig.histogram.resize(static_cast<std::size_t>(ast::kNumNodeKinds), 0);
  sig.product = BigUint(1);
  for (int kind = 0; kind < ast::kNumNodeKinds; ++kind) {
    const int count = sig.histogram[static_cast<std::size_t>(kind)];
    sig.total_nodes += count;
    for (int i = 0; i < count; ++i) {
      sig.product.MulSmall(kPrimes[static_cast<std::size_t>(kind)]);
    }
  }
  return sig;
}

DiaphoraSignature DiaphoraHash(const ast::Ast& tree) {
  return DiaphoraHashFromHistogram(tree.KindHistogram());
}

double DiaphoraProductSimilarity(const BigUint& a, const BigUint& b) {
  static const std::vector<std::uint32_t> kPrimes =
      FirstPrimes(ast::kNumNodeKinds);
  auto factorize = [](BigUint product) {
    DiaphoraSignature sig;
    sig.histogram.assign(static_cast<std::size_t>(ast::kNumNodeKinds), 0);
    for (std::size_t k = 0; k < kPrimes.size(); ++k) {
      for (;;) {
        BigUint quotient = product;
        if (quotient.DivModSmall(kPrimes[k]) != 0) break;
        product = std::move(quotient);
        ++sig.histogram[k];
        ++sig.total_nodes;
      }
    }
    return sig;
  };
  if (a == b) return 1.0;
  const DiaphoraSignature sa = factorize(a);
  const DiaphoraSignature sb = factorize(b);
  if (sa.total_nodes == 0 || sb.total_nodes == 0) return 0.0;
  int shared = 0;
  for (std::size_t k = 0; k < sa.histogram.size(); ++k) {
    shared += std::min(sa.histogram[k], sb.histogram[k]);
  }
  return 2.0 * shared / static_cast<double>(sa.total_nodes + sb.total_nodes);
}

double DiaphoraSimilarity(const DiaphoraSignature& a,
                          const DiaphoraSignature& b) {
  if (a.product == b.product) return 1.0;
  if (a.total_nodes == 0 || b.total_nodes == 0) return 0.0;
  int shared = 0;
  for (std::size_t k = 0; k < a.histogram.size(); ++k) {
    shared += std::min(a.histogram[k], b.histogram[k]);
  }
  return 2.0 * shared / static_cast<double>(a.total_nodes + b.total_nodes);
}

}  // namespace asteria::baselines
