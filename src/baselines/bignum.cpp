#include "baselines/bignum.h"

#include <algorithm>
#include <stdexcept>

namespace asteria::baselines {

BigUint::BigUint(std::uint64_t value) {
  limbs_.push_back(static_cast<std::uint32_t>(value));
  limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
  Trim();
}

void BigUint::Trim() {
  while (limbs_.size() > 1 && limbs_.back() == 0) limbs_.pop_back();
}

void BigUint::MulSmall(std::uint64_t factor) {
  // Split the factor into two 32-bit halves and accumulate.
  const std::uint32_t lo = static_cast<std::uint32_t>(factor);
  const std::uint32_t hi = static_cast<std::uint32_t>(factor >> 32);
  std::vector<std::uint32_t> result(limbs_.size() + 2, 0);
  auto accumulate = [&](std::uint32_t half, std::size_t shift) {
    if (half == 0) return;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(limbs_[i]) * half +
          result[i + shift] + carry;
      result[i + shift] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t i = limbs_.size() + shift;
    while (carry != 0) {
      const std::uint64_t cur = result[i] + carry;
      result[i] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++i;
    }
  };
  accumulate(lo, 0);
  accumulate(hi, 1);
  limbs_ = std::move(result);
  Trim();
}

std::uint32_t BigUint::DivModSmall(std::uint32_t divisor) {
  std::uint64_t remainder = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const std::uint64_t cur = (remainder << 32) | limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(cur / divisor);
    remainder = cur % divisor;
  }
  Trim();
  return static_cast<std::uint32_t>(remainder);
}

bool BigUint::operator<(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i];
  }
  return false;
}

std::size_t BigUint::BitLength() const {
  if (IsZero()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

std::string BigUint::ToString() const {
  // Repeated division by 1e9.
  std::vector<std::uint32_t> work = limbs_;
  std::string out;
  auto all_zero = [&] {
    return std::all_of(work.begin(), work.end(),
                       [](std::uint32_t limb) { return limb == 0; });
  };
  if (all_zero()) return "0";
  while (!all_zero()) {
    std::uint64_t remainder = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t cur = (remainder << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1'000'000'000ULL);
      remainder = cur % 1'000'000'000ULL;
    }
    std::string chunk = std::to_string(remainder);
    if (!all_zero()) chunk = std::string(9 - chunk.size(), '0') + chunk;
    out = chunk + out;
  }
  return out;
}

std::uint64_t BigUint::Hash() const {
  std::uint64_t hash = 1469598103934665603ULL;
  for (std::uint32_t limb : limbs_) {
    hash ^= limb;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<std::uint32_t> FirstPrimes(int count) {
  if (count > 10'000) throw std::invalid_argument("too many primes requested");
  std::vector<std::uint32_t> primes;
  primes.reserve(static_cast<std::size_t>(count));
  for (std::uint32_t candidate = 2; static_cast<int>(primes.size()) < count;
       ++candidate) {
    bool prime = true;
    for (std::uint32_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(candidate);
  }
  return primes;
}

}  // namespace asteria::baselines
