#include "baselines/gemini.h"

#include <cmath>

namespace asteria::baselines {

using nn::Matrix;
using nn::Tape;
using nn::Var;

GeminiModel::GeminiModel(const GeminiConfig& config, util::Rng& rng)
    : config_(config), optimizer_(config.learning_rate) {
  const int p = config_.embedding_dim;
  w1_ = store_.CreateXavier("gemini.W1", p, cfg::kAcfgFeatureDim, rng);
  p1_ = store_.CreateXavier("gemini.P1", p, p, rng);
  p2_ = store_.CreateXavier("gemini.P2", p, p, rng);
  w2_ = store_.CreateXavier("gemini.W2", p, p, rng);
}

Var GeminiModel::EmbedGraph(Tape* tape, const cfg::Acfg& graph) const {
  const int p = config_.embedding_dim;
  const int n = graph.size();
  const Var w1 = tape->Param(w1_);
  const Var p1 = tape->Param(p1_);
  const Var p2 = tape->Param(p2_);
  const Var w2 = tape->Param(w2_);

  // Symmetrized neighbor lists (message passing is undirected).
  std::vector<std::vector<int>> neighbors(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    for (int u : graph.adjacency[static_cast<std::size_t>(v)]) {
      neighbors[static_cast<std::size_t>(v)].push_back(u);
      neighbors[static_cast<std::size_t>(u)].push_back(v);
    }
  }

  // Precompute W1 x_v (constant across iterations).
  std::vector<Var> wx(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    Matrix x(cfg::kAcfgFeatureDim, 1);
    for (int f = 0; f < cfg::kAcfgFeatureDim; ++f) {
      x(f, 0) = graph.nodes[static_cast<std::size_t>(v)].features[static_cast<std::size_t>(f)];
    }
    wx[static_cast<std::size_t>(v)] = tape->MatMul(w1, tape->Leaf(std::move(x)));
  }

  std::vector<Var> mu(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) mu[static_cast<std::size_t>(v)] = tape->Leaf(Matrix(p, 1));
  for (int t = 0; t < config_.iterations; ++t) {
    std::vector<Var> next(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      Var agg = tape->Leaf(Matrix(p, 1));
      bool any = false;
      for (int u : neighbors[static_cast<std::size_t>(v)]) {
        agg = any ? tape->Add(agg, mu[static_cast<std::size_t>(u)])
                  : mu[static_cast<std::size_t>(u)];
        any = true;
      }
      // sigma(agg) = P1 relu(P2 agg)
      const Var sigma = tape->MatMul(p1, tape->Relu(tape->MatMul(p2, agg)));
      next[static_cast<std::size_t>(v)] =
          tape->Tanh(tape->Add(wx[static_cast<std::size_t>(v)], sigma));
    }
    mu = std::move(next);
  }
  Var sum = mu[0];
  for (int v = 1; v < n; ++v) sum = tape->Add(sum, mu[static_cast<std::size_t>(v)]);
  return tape->MatMul(w2, sum);
}

Matrix GeminiModel::Encode(const cfg::Acfg& graph) const {
  if (graph.size() == 0) return Matrix(config_.embedding_dim, 1);
  Tape tape;
  const Var embedding = EmbedGraph(&tape, graph);
  return tape.value(embedding);
}

double GeminiModel::CosineSimilarity(const Matrix& a, const Matrix& b) {
  const double denom = a.Norm() * b.Norm();
  if (denom < 1e-12) return 0.0;
  return Dot(a, b) / denom;
}

double GeminiModel::Similarity(const cfg::Acfg& a, const cfg::Acfg& b) const {
  return CosineSimilarity(Encode(a), Encode(b));
}

double GeminiModel::TrainPair(const cfg::Acfg& a, const cfg::Acfg& b,
                              int label) {
  if (a.size() == 0 || b.size() == 0) return 0.0;
  Tape tape;
  const Var ea = EmbedGraph(&tape, a);
  const Var eb = EmbedGraph(&tape, b);
  const Var cos = tape.Cosine(ea, eb);
  const Var loss = tape.SquaredErrorToConst(cos, static_cast<double>(label));
  const double loss_value = tape.value(loss)(0, 0);
  tape.Backward(loss);
  optimizer_.Step(store_.parameters());
  return loss_value;
}

}  // namespace asteria::baselines
