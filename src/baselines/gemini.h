// Gemini baseline: structure2vec graph embedding over ACFGs (Xu et al.,
// CCS 2017), the paper's main comparison target.
//
// Embedding network (T iterations):
//   mu_v^0 = 0
//   mu_v^{t+1} = tanh( W1 x_v + sigma( sum_{u in N(v)} mu_u^t ) )
//   sigma(l) = P1 relu(P2 l)        (two-level perceptron)
//   mu_g = W2 * sum_v mu_v^T
// Trained as a siamese network on cosine similarity with labels +1/-1 and
// squared-error loss, exactly as in the original.
#pragma once

#include <string>

#include "cfg/acfg.h"
#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "util/rng.h"

namespace asteria::baselines {

struct GeminiConfig {
  int embedding_dim = 64;  // p
  int iterations = 5;      // T
  double learning_rate = 0.01;
};

class GeminiModel {
 public:
  GeminiModel(const GeminiConfig& config, util::Rng& rng);

  // Graph embedding as a tape Var (p x 1) — training path.
  nn::Var EmbedGraph(nn::Tape* tape, const cfg::Acfg& graph) const;

  // Inference-only embedding ("G-EN" of Fig. 10(b)).
  nn::Matrix Encode(const cfg::Acfg& graph) const;

  // cos(Encode(a), Encode(b)) without a tape — online phase.
  static double CosineSimilarity(const nn::Matrix& a, const nn::Matrix& b);

  // Full-pipeline similarity.
  double Similarity(const cfg::Acfg& a, const cfg::Acfg& b) const;

  // One SGD-on-(cos - label)^2 step (label is +1 or -1); returns the loss.
  double TrainPair(const cfg::Acfg& a, const cfg::Acfg& b, int label);

  bool Save(const std::string& path) const { return store_.Save(path); }
  bool Load(const std::string& path) { return store_.Load(path); }

  const GeminiConfig& config() const { return config_; }

 private:
  GeminiConfig config_;
  nn::ParameterStore store_;
  nn::Parameter* w1_;  // p x d
  nn::Parameter* p1_;  // p x p
  nn::Parameter* p2_;  // p x p
  nn::Parameter* w2_;  // p x p
  nn::AdaGrad optimizer_;
};

}  // namespace asteria::baselines
