// Diaphora baseline: AST prime-product hashing (paper §IV-C).
//
// Diaphora maps every AST node type to a prime and multiplies them; two
// functions match when the products are equal (node-type multiset
// equality). For a graded score we use the Dice coefficient over the prime
// multisets — the "fuzzy AST hash" ratio reconstructed from Diaphora's
// published approach (documented deviation, DESIGN.md §7).
#pragma once

#include "ast/ast.h"
#include "baselines/bignum.h"

namespace asteria::baselines {

struct DiaphoraSignature {
  BigUint product;             // product of per-node primes
  std::vector<int> histogram;  // node-kind counts (the prime multiset)
  int total_nodes = 0;
};

// Computes the signature of a decompiled AST ("offline" phase, the D-H
// series of Fig. 10(b)).
DiaphoraSignature DiaphoraHash(const ast::Ast& tree);

// Same, from a node-kind histogram (index = NodeKind); lets callers hash
// preprocessed BinaryAsts via BinaryAst::LabelHistogram (label = kind + 1).
DiaphoraSignature DiaphoraHashFromHistogram(std::vector<int> kind_histogram);

// Graded similarity in [0, 1]; 1.0 iff the prime products match exactly.
double DiaphoraSimilarity(const DiaphoraSignature& a,
                          const DiaphoraSignature& b);

// The comparison Diaphora actually performs online: only the prime
// *products* are stored (its AST hash), so similarity requires factorizing
// both bignums by trial division over the prime table before comparing the
// multisets — the expensive step behind the paper's 4e-3 s/pair figure
// (Fig. 10(c)). Returns the same value as DiaphoraSimilarity.
double DiaphoraProductSimilarity(const BigUint& a, const BigUint& b);

}  // namespace asteria::baselines
