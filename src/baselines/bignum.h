// Arbitrary-precision unsigned integers, sized for Diaphora's AST prime
// products (one prime factor per AST node; products of thousands of small
// primes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::baselines {

class BigUint {
 public:
  BigUint() : limbs_{0} {}
  explicit BigUint(std::uint64_t value);

  // this *= factor (factor may be any uint64).
  void MulSmall(std::uint64_t factor);

  // Divides by a small divisor; returns the remainder and replaces *this
  // with the quotient. divisor must be nonzero.
  std::uint32_t DivModSmall(std::uint32_t divisor);

  bool operator==(const BigUint& other) const { return limbs_ == other.limbs_; }
  bool operator!=(const BigUint& other) const { return !(*this == other); }
  bool operator<(const BigUint& other) const;

  bool IsZero() const { return limbs_.size() == 1 && limbs_[0] == 0; }
  std::size_t BitLength() const;

  // Decimal rendering (tests / diagnostics).
  std::string ToString() const;

  // FNV-style hash of the limbs (bucketing in clone search).
  std::uint64_t Hash() const;

 private:
  void Trim();
  // Little-endian 32-bit limbs.
  std::vector<std::uint32_t> limbs_;
};

// First `count` primes (sieve; count <= 10'000).
std::vector<std::uint32_t> FirstPrimes(int count);

}  // namespace asteria::baselines
