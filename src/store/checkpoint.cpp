#include "store/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "store/container.h"
#include "util/log.h"

namespace asteria::store {

namespace {

constexpr std::uint32_t kTagModelMeta = FourCc('M', 'M', 'E', 'T');
constexpr std::uint32_t kTagParameter = FourCc('P', 'A', 'R', 'M');
// Checkpoint schema version (independent of the container version).
constexpr std::uint32_t kCheckpointVersion = 1;

bool Fail(const std::string& reason, std::string* error) {
  if (error != nullptr) *error = reason;
  ASTERIA_LOG(Error) << "checkpoint: " << reason;
  return false;
}

}  // namespace

std::uint32_t WeightsFingerprint(const nn::ParameterStore& params) {
  std::uint32_t crc = 0;
  for (const nn::Parameter* p : params.parameters()) {
    crc = Crc32(p->value.data(), p->value.size() * sizeof(double), crc);
  }
  return crc;
}

bool SaveModelCheckpoint(const nn::ParameterStore& params,
                         const std::string& path, std::string* error) {
  std::string io_error;
  Writer writer;
  if (!writer.Open(path, kKindModel, &io_error)) return Fail(io_error, error);

  ChunkBuilder meta;
  meta.PutU32(kCheckpointVersion);
  meta.PutU64(params.parameters().size());
  meta.PutU64(params.TotalWeights());
  meta.PutU32(WeightsFingerprint(params));
  if (!writer.WriteChunk(kTagModelMeta, meta, &io_error)) {
    return Fail(io_error, error);
  }

  for (const nn::Parameter* p : params.parameters()) {
    ChunkBuilder chunk;
    chunk.PutString(p->name);
    chunk.PutU32(static_cast<std::uint32_t>(p->value.rows()));
    chunk.PutU32(static_cast<std::uint32_t>(p->value.cols()));
    chunk.PutF64Array(p->value.data(), p->value.size());
    if (!writer.WriteChunk(kTagParameter, chunk, &io_error)) {
      return Fail(io_error, error);
    }
  }
  if (!writer.Finish(&io_error)) return Fail(io_error, error);
  return true;
}

bool LoadModelCheckpoint(nn::ParameterStore* params, const std::string& path,
                         std::string* error) {
  if (!IsContainerFile(path)) {
    // Legacy "asteria-params v1" text-header format (or garbage — the
    // legacy loader validates its own magic and reports failures).
    if (!params->Load(path)) {
      return Fail(path + ": not a container checkpoint and the legacy "
                         "asteria-params v1 loader rejected it",
                  error);
    }
    return true;
  }

  std::string io_error;
  Reader reader;
  if (!reader.Open(path, kKindModel, &io_error)) return Fail(io_error, error);

  std::uint64_t declared_count = 0;
  bool saw_meta = false;
  // Staged values: nothing is committed to `params` until every parameter
  // has been matched and parsed.
  std::vector<std::pair<nn::Parameter*, std::vector<double>>> staged;
  std::set<std::string> seen;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagModelMeta && info.tag != kTagParameter) {
      continue;  // unknown chunks are skippable by design (forward compat)
    }
    if (!reader.ReadChunk(i, &payload, &io_error)) return Fail(io_error, error);
    ChunkParser parser(payload);
    if (info.tag == kTagModelMeta) {
      std::uint32_t schema = 0, fingerprint = 0;
      std::uint64_t total_weights = 0;
      if (!parser.GetU32(&schema, &io_error) ||
          !parser.GetU64(&declared_count, &io_error) ||
          !parser.GetU64(&total_weights, &io_error) ||
          !parser.GetU32(&fingerprint, &io_error)) {
        return Fail(path + ": bad MMET chunk: " + io_error, error);
      }
      if (schema != kCheckpointVersion) {
        return Fail(path + ": unsupported checkpoint schema version " +
                        std::to_string(schema),
                    error);
      }
      saw_meta = true;
      continue;
    }
    std::string name;
    std::uint32_t rows = 0, cols = 0;
    if (!parser.GetString(&name, &io_error) ||
        !parser.GetU32(&rows, &io_error) || !parser.GetU32(&cols, &io_error)) {
      return Fail(path + ": bad PARM chunk header: " + io_error, error);
    }
    if (!seen.insert(name).second) {
      return Fail(path + ": duplicate PARM chunk for parameter '" + name + "'",
                  error);
    }
    nn::Parameter* p = params->Find(name);
    if (p == nullptr) {
      return Fail(path + ": checkpoint parameter '" + name +
                      "' does not exist in this model (config mismatch?)",
                  error);
    }
    if (p->value.rows() != static_cast<int>(rows) ||
        p->value.cols() != static_cast<int>(cols)) {
      return Fail(path + ": parameter '" + name + "' has shape " +
                      std::to_string(rows) + "x" + std::to_string(cols) +
                      " in the checkpoint but " +
                      std::to_string(p->value.rows()) + "x" +
                      std::to_string(p->value.cols()) + " in this model",
                  error);
    }
    std::vector<double> values(p->value.size());
    if (!parser.GetF64Array(values.data(), values.size(), &io_error)) {
      return Fail(path + ": parameter '" + name + "' payload truncated: " +
                      io_error,
                  error);
    }
    for (double v : values) {
      if (!std::isfinite(v)) {
        return Fail(path + ": parameter '" + name +
                        "' contains non-finite values (NaN/Inf) — refusing "
                        "to load a poisoned checkpoint",
                    error);
      }
    }
    staged.emplace_back(p, std::move(values));
  }

  if (!saw_meta) {
    return Fail(path + ": missing MMET metadata chunk", error);
  }
  if (staged.size() != declared_count) {
    return Fail(path + ": MMET declares " + std::to_string(declared_count) +
                    " parameters but " + std::to_string(staged.size()) +
                    " PARM chunks were found",
                error);
  }
  if (staged.size() != params->parameters().size()) {
    return Fail(path + ": checkpoint covers " + std::to_string(staged.size()) +
                    " parameters but this model has " +
                    std::to_string(params->parameters().size()),
                error);
  }
  for (auto& [p, values] : staged) {
    std::copy(values.begin(), values.end(), p->value.data());
  }
  return true;
}

}  // namespace asteria::store
