// Shard manifest (MANI) — the root of a sharded index (docs/FORMATS.md).
//
// A sharded index is a directory holding one immutable INDX snapshot per
// ingested batch ("shard") plus a single manifest file naming the shards
// in query order. Readers concatenate the shard entries in manifest order,
// so TopK over a sharded index is bitwise identical to a monolithic index
// built from the same entries (core::SearchIndex::OpenSharded).
//
// The manifest is the only mutable object: every ingest/compaction writes
// the shard files first, then publishes a new manifest via the Writer's
// atomic temp-file + rename. A crash at any point before the rename leaves
// the previously published manifest — and every shard it names — bitwise
// intact, which is the crash-publish contract proved by
// tests/ingest_test.cpp against the ingest.* failpoints.
//
// Besides the shard list, the manifest records:
//   - the model weights fingerprint (all shards must come from one model);
//   - a monotonically increasing publish sequence number;
//   - `searched_seq`, the delta-vuln-search high-water mark: shards with
//     created_seq > searched_seq have never been scanned for CVEs;
//   - per-shard source digests (ContentDigest64 of each ingested firmware
//     blob) so re-dropped images dedup instead of re-encoding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::store {

// 64-bit FNV-1a over a byte blob — the content digest used to dedup
// ingested firmware images. Not cryptographic; collision just means one
// redundant re-encode, never corruption.
std::uint64_t ContentDigest64(const void* data, std::size_t size);

// Canonical manifest file name inside a sharded-index directory.
inline constexpr char kManifestFileName[] = "manifest.mani";

struct ShardRecord {
  std::string file;              // shard path, relative to the manifest dir
  std::uint64_t entries = 0;     // encoded functions in the shard
  std::uint64_t bytes = 0;       // shard file size when published
  std::uint64_t created_seq = 0; // publish sequence that created the data
  std::vector<std::uint64_t> sources;  // digests of the folded-in images
};

struct ShardManifest {
  std::uint32_t model_fingerprint = 0;
  std::uint64_t sequence = 0;      // bumped by every publish
  std::uint64_t searched_seq = 0;  // delta vuln-search high-water mark
  std::vector<ShardRecord> shards; // query order

  bool HasSource(std::uint64_t digest) const;
  std::uint64_t TotalEntries() const;
  // Largest created_seq over all shards (0 when empty) — what
  // searched_seq advances to after a delta vuln search.
  std::uint64_t MaxCreatedSeq() const;
};

// Atomically publishes `manifest` at `path` (temp file + rename; see the
// Writer crash-safety contract in container.h).
bool SaveManifest(const ShardManifest& manifest, const std::string& path,
                  std::string* error);

// Loads and validates a manifest; `*manifest` is untouched on failure.
bool LoadManifest(ShardManifest* manifest, const std::string& path,
                  std::string* error);

// Directory part of `path` ("." when it has none). Shard files are stored
// relative to the manifest's directory so the whole index dir can move.
std::string DirOf(const std::string& path);

}  // namespace asteria::store
