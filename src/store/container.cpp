#include "store/container.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/metrics.h"

namespace asteria::store {

namespace {

// Fault-injection points covering every I/O step of a container's life
// (docs/ROBUSTNESS.md). store.crash simulates dying after the temp file is
// fully written but before the atomic rename — the window a real crash
// would hit.
util::Failpoint fp_open("store.open");
util::Failpoint fp_write("store.write");
util::Failpoint fp_rename("store.rename");
util::Failpoint fp_crash("store.crash");
util::Failpoint fp_read_open("store.read_open");
util::Failpoint fp_read("store.read");

// Payload traffic only (framing/header bytes excluded): what flows through
// WriteChunk and ReadChunk, so cache effectiveness is readable directly.
util::Counter c_bytes_written("store.bytes_written");
util::Counter c_bytes_read("store.bytes_read");
util::Counter c_crc_failures("store.crc_failures");

// Header: magic[8] "ASTRSTOR", u32 container version, u32 file kind
// (fourcc), u8 endianness tag (1 = little), 3 reserved zero bytes.
constexpr char kMagic[8] = {'A', 'S', 'T', 'R', 'S', 'T', 'O', 'R'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 1 + 3;
constexpr std::uint8_t kLittleEndianTag = 1;
// Per-chunk framing: u32 tag, u64 payload size, u32 payload crc32.
constexpr std::size_t kChunkHeaderSize = 4 + 8 + 4;

void AppendU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void AppendU64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t DecodeU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t DecodeU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string AtOffset(const std::string& path, std::uint64_t offset) {
  return path + " (offset " + std::to_string(offset) + ")";
}

// Validates a header in `bytes`; returns false with a reason otherwise.
bool ParseHeader(const std::string& path, const std::uint8_t* bytes,
                 std::size_t size, std::uint32_t expected_kind,
                 std::uint32_t* version, std::uint32_t* kind,
                 std::string* error) {
  if (size < kHeaderSize) {
    *error = path + ": file too small for a container header (" +
             std::to_string(size) + " < " + std::to_string(kHeaderSize) +
             " bytes)";
    return false;
  }
  if (std::memcmp(bytes, kMagic, sizeof(kMagic)) != 0) {
    *error = path + ": bad magic — not an asteria container file";
    return false;
  }
  *version = DecodeU32(bytes + 8);
  *kind = DecodeU32(bytes + 12);
  if (*version == 0 || *version > kContainerVersion) {
    *error = path + ": unsupported container version " +
             std::to_string(*version) + " (this build reads <= " +
             std::to_string(kContainerVersion) + ")";
    return false;
  }
  if (bytes[16] != kLittleEndianTag) {
    *error = path + ": unknown endianness tag " +
             std::to_string(static_cast<int>(bytes[16])) +
             " (expected 1 = little-endian)";
    return false;
  }
  if (expected_kind != 0 && *kind != expected_kind) {
    *error = path + ": wrong file kind " + FourCcName(*kind) + " (expected " +
             FourCcName(expected_kind) + ")";
    return false;
  }
  return true;
}

// Scans the chunk sequence of an open file starting at kHeaderSize.
// `file_size` must be the true size. Fills `chunks`; fails on any frame
// that does not fit, which also catches truncated files.
bool ScanChunks(std::FILE* file, const std::string& path,
                std::uint64_t file_size, std::vector<ChunkInfo>* chunks,
                std::string* error) {
  std::uint64_t offset = kHeaderSize;
  std::array<std::uint8_t, kChunkHeaderSize> frame;
  while (offset < file_size) {
    if (file_size - offset < kChunkHeaderSize) {
      *error = AtOffset(path, offset) + ": truncated chunk header (" +
               std::to_string(file_size - offset) + " trailing bytes)";
      return false;
    }
    if (std::fseek(file, static_cast<long>(offset), SEEK_SET) != 0 ||
        std::fread(frame.data(), 1, frame.size(), file) != frame.size()) {
      *error = AtOffset(path, offset) + ": read of chunk header failed";
      return false;
    }
    ChunkInfo info;
    info.tag = DecodeU32(frame.data());
    info.size = DecodeU64(frame.data() + 4);
    info.crc32 = DecodeU32(frame.data() + 12);
    info.offset = offset + kChunkHeaderSize;
    if (info.size > file_size - info.offset) {
      *error = AtOffset(path, offset) + ": chunk " + FourCcName(info.tag) +
               " declares " + std::to_string(info.size) +
               " payload bytes but only " +
               std::to_string(file_size - info.offset) +
               " remain — truncated file";
      return false;
    }
    chunks->push_back(info);
    offset = info.offset + info.size;
  }
  return true;
}

bool FileSize(std::FILE* file, const std::string& path, std::uint64_t* size,
              std::string* error) {
  if (std::fseek(file, 0, SEEK_END) != 0) {
    *error = path + ": cannot seek to end";
    return false;
  }
  const long end = std::ftell(file);
  if (end < 0) {
    *error = path + ": cannot determine file size";
    return false;
  }
  *size = static_cast<std::uint64_t>(end);
  return true;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  return util::Crc32(data, size, seed);
}

std::string FourCcName(std::uint32_t fourcc) {
  std::string name;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((fourcc >> (8 * i)) & 0xFF);
    name.push_back(c >= 32 && c < 127 ? c : '?');
  }
  return name;
}

void ChunkBuilder::PutU32(std::uint32_t v) { AppendU32(&bytes_, v); }
void ChunkBuilder::PutU64(std::uint64_t v) { AppendU64(&bytes_, v); }

void ChunkBuilder::PutF64(double v) {
  AppendU64(&bytes_, std::bit_cast<std::uint64_t>(v));
}

void ChunkBuilder::PutString(const std::string& s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void ChunkBuilder::PutBytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

void ChunkBuilder::PutF64Array(const double* data, std::size_t count) {
  bytes_.reserve(bytes_.size() + count * 8);
  for (std::size_t i = 0; i < count; ++i) PutF64(data[i]);
}

bool ChunkParser::Need(std::size_t n, std::string* error) {
  if (size_ - offset_ < n) {
    if (error != nullptr) {
      *error = "chunk payload overrun: need " + std::to_string(n) +
               " bytes at offset " + std::to_string(offset_) + " of " +
               std::to_string(size_);
    }
    return false;
  }
  return true;
}

bool ChunkParser::GetU8(std::uint8_t* v, std::string* error) {
  if (!Need(1, error)) return false;
  *v = data_[offset_++];
  return true;
}

bool ChunkParser::GetU32(std::uint32_t* v, std::string* error) {
  if (!Need(4, error)) return false;
  *v = DecodeU32(data_ + offset_);
  offset_ += 4;
  return true;
}

bool ChunkParser::GetU64(std::uint64_t* v, std::string* error) {
  if (!Need(8, error)) return false;
  *v = DecodeU64(data_ + offset_);
  offset_ += 8;
  return true;
}

bool ChunkParser::GetI32(std::int32_t* v, std::string* error) {
  std::uint32_t u = 0;
  if (!GetU32(&u, error)) return false;
  *v = static_cast<std::int32_t>(u);
  return true;
}

bool ChunkParser::GetI64(std::int64_t* v, std::string* error) {
  std::uint64_t u = 0;
  if (!GetU64(&u, error)) return false;
  *v = static_cast<std::int64_t>(u);
  return true;
}

bool ChunkParser::GetF64(double* v, std::string* error) {
  std::uint64_t u = 0;
  if (!GetU64(&u, error)) return false;
  *v = std::bit_cast<double>(u);
  return true;
}

bool ChunkParser::GetString(std::string* v, std::string* error) {
  std::uint32_t length = 0;
  if (!GetU32(&length, error)) return false;
  // Validate the declared length against the remaining payload BEFORE the
  // allocation in assign() — a hostile length must fail cleanly, not OOM.
  if (length > size_ - offset_) {
    if (error != nullptr) {
      *error = "declared string length " + std::to_string(length) +
               " exceeds the " + std::to_string(size_ - offset_) +
               " remaining payload bytes";
    }
    return false;
  }
  v->assign(reinterpret_cast<const char*>(data_ + offset_), length);
  offset_ += length;
  return true;
}

bool ChunkParser::GetF64Array(double* out, std::size_t count,
                              std::string* error) {
  // Division, not `count * 8`: the multiplication can wrap size_t for a
  // corrupt count and sail past the bounds check.
  if (count > (size_ - offset_) / 8) {
    if (error != nullptr) {
      *error = "declared f64 count " + std::to_string(count) +
               " exceeds the " + std::to_string(size_ - offset_) +
               " remaining payload bytes";
    }
    return false;
  }
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = std::bit_cast<double>(DecodeU64(data_ + offset_));
    offset_ += 8;
  }
  return true;
}

struct Writer::Impl {
  std::FILE* file = nullptr;
  std::string path;       // final artifact path (rename target)
  std::string temp_path;  // where bytes actually land until Finish
  bool failed = false;
  // Set by the store.crash failpoint: leave the temp file on disk exactly
  // as a real mid-commit crash would, instead of cleaning it up.
  bool abandoned = false;
};

Writer::~Writer() {
  if (impl_ != nullptr) {
    if (impl_->file != nullptr) std::fclose(impl_->file);
    // Never committed: drop the temp file so failures leave no debris
    // (unless a simulated crash wants the debris observable).
    if (!impl_->temp_path.empty() && !impl_->abandoned) {
      std::remove(impl_->temp_path.c_str());
    }
    delete impl_;
  }
}

bool Writer::Open(const std::string& path, std::uint32_t kind,
                  std::string* error) {
  const std::string temp_path = path + ".tmp";
  std::FILE* file =
      fp_open.ShouldFail() ? nullptr : std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    *error = temp_path + ": cannot open for writing";
    return false;
  }
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(&header, kContainerVersion);
  AppendU32(&header, kind);
  header.push_back(kLittleEndianTag);
  header.resize(kHeaderSize, 0);
  if (fp_write.ShouldFail() ||
      std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    *error = temp_path + ": header write failed";
    std::fclose(file);
    std::remove(temp_path.c_str());
    return false;
  }
  impl_ = new Impl{file, path, temp_path, false, false};
  return true;
}

bool Writer::OpenAppend(const std::string& path, std::uint32_t kind,
                        std::string* error) {
  // Validate the existing artifact first (header + chunk walk), then copy
  // it to the temp path and extend the copy; the original stays intact
  // until Finish renames over it.
  std::FILE* src =
      fp_open.ShouldFail() ? nullptr : std::fopen(path.c_str(), "rb");
  if (src == nullptr) {
    *error = path + ": cannot open for appending";
    return false;
  }
  std::uint64_t size = 0;
  if (!FileSize(src, path, &size, error)) {
    std::fclose(src);
    return false;
  }
  std::array<std::uint8_t, kHeaderSize> header;
  if (std::fseek(src, 0, SEEK_SET) != 0 ||
      std::fread(header.data(), 1, header.size(), src) != header.size()) {
    *error = path + ": header read failed";
    std::fclose(src);
    return false;
  }
  std::uint32_t version = 0, found_kind = 0;
  std::vector<ChunkInfo> chunks;
  if (!ParseHeader(path, header.data(), header.size(), kind, &version,
                   &found_kind, error) ||
      !ScanChunks(src, path, size, &chunks, error)) {
    std::fclose(src);
    return false;
  }
  const std::string temp_path = path + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    *error = temp_path + ": cannot open for writing";
    std::fclose(src);
    return false;
  }
  if (std::fseek(src, 0, SEEK_SET) != 0) {
    *error = path + ": cannot rewind for copy";
    std::fclose(src);
    std::fclose(file);
    std::remove(temp_path.c_str());
    return false;
  }
  std::array<std::uint8_t, 1 << 16> buffer;
  bool copy_failed = fp_write.ShouldFail();
  while (!copy_failed) {
    const std::size_t got = std::fread(buffer.data(), 1, buffer.size(), src);
    if (got == 0) break;
    if (std::fwrite(buffer.data(), 1, got, file) != got) copy_failed = true;
  }
  copy_failed = copy_failed || std::ferror(src) != 0;
  std::fclose(src);
  if (copy_failed) {
    *error = temp_path + ": copy for append failed";
    std::fclose(file);
    std::remove(temp_path.c_str());
    return false;
  }
  impl_ = new Impl{file, path, temp_path, false, false};
  return true;
}

bool Writer::WriteChunk(std::uint32_t tag, const ChunkBuilder& payload,
                        std::string* error) {
  if (impl_ == nullptr || impl_->file == nullptr) {
    *error = "writer not open";
    return false;
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kChunkHeaderSize);
  AppendU32(&frame, tag);
  AppendU64(&frame, payload.size());
  AppendU32(&frame, Crc32(payload.bytes().data(), payload.size()));
  if (fp_write.ShouldFail() ||
      std::fwrite(frame.data(), 1, frame.size(), impl_->file) !=
          frame.size() ||
      std::fwrite(payload.bytes().data(), 1, payload.size(), impl_->file) !=
          payload.size()) {
    impl_->failed = true;
    *error = impl_->temp_path + ": chunk write failed";
    return false;
  }
  c_bytes_written.Add(payload.size());
  return true;
}

bool Writer::Finish(std::string* error) {
  if (impl_ == nullptr || impl_->file == nullptr) {
    *error = "writer not open";
    return false;
  }
  const bool flush_ok = std::fflush(impl_->file) == 0;
  const bool close_ok = std::fclose(impl_->file) == 0;
  impl_->file = nullptr;
  if (impl_->failed || !flush_ok || !close_ok) {
    std::remove(impl_->temp_path.c_str());
    *error = impl_->path + ": finishing container failed";
    return false;
  }
  if (fp_crash.ShouldFail()) {
    // Simulated crash between "temp fully written" and the commit rename:
    // the temp file stays on disk (as after a real crash) and the final
    // path still holds the previous artifact.
    impl_->abandoned = true;
    *error = impl_->path + ": simulated crash before commit rename "
             "(failpoint store.crash)";
    return false;
  }
  if (fp_rename.ShouldFail() ||
      std::rename(impl_->temp_path.c_str(), impl_->path.c_str()) != 0) {
    std::remove(impl_->temp_path.c_str());
    *error = impl_->path + ": commit rename from " + impl_->temp_path +
             " failed";
    return false;
  }
  impl_->temp_path.clear();  // committed: nothing left to clean up
  return true;
}

struct Reader::Impl {
  std::FILE* file = nullptr;
  std::string path;
};

Reader::~Reader() {
  if (impl_ != nullptr) {
    if (impl_->file != nullptr) std::fclose(impl_->file);
    delete impl_;
  }
}

bool Reader::Open(const std::string& path, std::uint32_t expected_kind,
                  std::string* error) {
  std::FILE* file =
      fp_read_open.ShouldFail() ? nullptr : std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    *error = path + ": cannot open for reading";
    return false;
  }
  std::uint64_t size = 0;
  if (!FileSize(file, path, &size, error)) {
    std::fclose(file);
    return false;
  }
  std::array<std::uint8_t, kHeaderSize> header;
  if (std::fseek(file, 0, SEEK_SET) != 0 ||
      std::fread(header.data(), 1, header.size(), file) !=
          std::min<std::size_t>(header.size(), size)) {
    *error = path + ": header read failed";
    std::fclose(file);
    return false;
  }
  if (!ParseHeader(path, header.data(), std::min<std::size_t>(size, header.size()),
                   expected_kind, &version_, &kind_, error) ||
      !ScanChunks(file, path, size, &chunks_, error)) {
    std::fclose(file);
    chunks_.clear();
    return false;
  }
  impl_ = new Impl{file, path};
  return true;
}

bool Reader::ReadChunk(std::size_t index, std::vector<std::uint8_t>* payload,
                       std::string* error) const {
  if (impl_ == nullptr || impl_->file == nullptr) {
    *error = "reader not open";
    return false;
  }
  if (index >= chunks_.size()) {
    *error = impl_->path + ": chunk index " + std::to_string(index) +
             " out of range (" + std::to_string(chunks_.size()) + " chunks)";
    return false;
  }
  const ChunkInfo& info = chunks_[index];
  payload->resize(info.size);
  if (fp_read.ShouldFail() ||
      std::fseek(impl_->file, static_cast<long>(info.offset), SEEK_SET) != 0 ||
      std::fread(payload->data(), 1, payload->size(), impl_->file) !=
          payload->size()) {
    *error = AtOffset(impl_->path, info.offset) + ": chunk payload read failed";
    return false;
  }
  c_bytes_read.Add(payload->size());
  const std::uint32_t actual = Crc32(payload->data(), payload->size());
  if (actual != info.crc32) {
    c_crc_failures.Increment();
    char expect[16], got[16];
    std::snprintf(expect, sizeof(expect), "%08x", info.crc32);
    std::snprintf(got, sizeof(got), "%08x", actual);
    *error = AtOffset(impl_->path, info.offset) + ": CRC32 mismatch in chunk " +
             FourCcName(info.tag) + " (declared " + expect + ", computed " +
             got + ") — file is corrupted";
    return false;
  }
  return true;
}

bool IsContainerFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char magic[sizeof(kMagic)];
  const bool matches =
      std::fread(magic, 1, sizeof(magic), file) == sizeof(magic) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  std::fclose(file);
  return matches;
}

bool QuarantineFile(const std::string& path, std::string* quarantined_path) {
  const std::string target = path + ".corrupt";
  std::remove(target.c_str());  // only the latest quarantine is kept
  if (std::rename(path.c_str(), target.c_str()) != 0) return false;
  if (quarantined_path != nullptr) *quarantined_path = target;
  return true;
}

}  // namespace asteria::store
