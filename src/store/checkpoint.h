// Model checkpoints on the chunked container format (docs/FORMATS.md).
//
// A checkpoint is a kKindModel container holding one MMET chunk (schema
// version, parameter count, total weights, weights CRC fingerprint) and one
// PARM chunk per parameter (name, rows, cols, raw little-endian doubles).
// This replaces the legacy "asteria-params v1" text-header format as the
// write format; LoadModelCheckpoint still reads legacy files by dispatching
// on the file magic, so old weight files keep working.
//
// Loading is all-or-nothing: every parameter of the destination store must
// be present with matching shape before any value is committed, so a failed
// load never leaves a half-updated model behind.
#pragma once

#include <cstdint>
#include <string>

#include "nn/parameter.h"

namespace asteria::store {

// CRC32 over every parameter's raw values in creation order — a cheap
// fingerprint that ties derived artifacts (index snapshots, cached
// encodings) to the exact weights that produced them.
std::uint32_t WeightsFingerprint(const nn::ParameterStore& params);

// Writes all parameters of `params` to `path` in the container format.
bool SaveModelCheckpoint(const nn::ParameterStore& params,
                         const std::string& path, std::string* error);

// Loads parameter values into an already-constructed store. Accepts both
// container checkpoints and legacy "asteria-params v1" files. The file must
// cover exactly the store's parameter set (same names, same shapes).
bool LoadModelCheckpoint(nn::ParameterStore* params, const std::string& path,
                         std::string* error);

}  // namespace asteria::store
