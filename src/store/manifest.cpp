#include "store/manifest.h"

#include <algorithm>

#include "store/container.h"

namespace asteria::store {

namespace {

// Manifest chunk tags and schema version (see docs/FORMATS.md).
constexpr std::uint32_t kTagManifestMeta = FourCc('N', 'M', 'E', 'T');
constexpr std::uint32_t kTagManifestShard = FourCc('S', 'H', 'R', 'D');
constexpr std::uint32_t kManifestSchemaVersion = 1;

}  // namespace

std::uint64_t ContentDigest64(const void* data, std::size_t size) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;  // FNV-1a prime
  }
  return hash;
}

bool ShardManifest::HasSource(std::uint64_t digest) const {
  for (const ShardRecord& shard : shards) {
    if (std::find(shard.sources.begin(), shard.sources.end(), digest) !=
        shard.sources.end()) {
      return true;
    }
  }
  return false;
}

std::uint64_t ShardManifest::TotalEntries() const {
  std::uint64_t total = 0;
  for (const ShardRecord& shard : shards) total += shard.entries;
  return total;
}

std::uint64_t ShardManifest::MaxCreatedSeq() const {
  std::uint64_t max_seq = 0;
  for (const ShardRecord& shard : shards) {
    max_seq = std::max(max_seq, shard.created_seq);
  }
  return max_seq;
}

bool SaveManifest(const ShardManifest& manifest, const std::string& path,
                  std::string* error) {
  Writer writer;
  if (!writer.Open(path, kKindManifest, error)) return false;
  ChunkBuilder meta;
  meta.PutU32(kManifestSchemaVersion);
  meta.PutU32(manifest.model_fingerprint);
  meta.PutU64(manifest.sequence);
  meta.PutU64(manifest.searched_seq);
  meta.PutU64(manifest.shards.size());
  if (!writer.WriteChunk(kTagManifestMeta, meta, error)) return false;
  for (const ShardRecord& shard : manifest.shards) {
    ChunkBuilder chunk;
    chunk.PutString(shard.file);
    chunk.PutU64(shard.entries);
    chunk.PutU64(shard.bytes);
    chunk.PutU64(shard.created_seq);
    chunk.PutU64(shard.sources.size());
    for (std::uint64_t digest : shard.sources) chunk.PutU64(digest);
    if (!writer.WriteChunk(kTagManifestShard, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool LoadManifest(ShardManifest* manifest, const std::string& path,
                  std::string* error) {
  Reader reader;
  if (!reader.Open(path, kKindManifest, error)) return false;
  ShardManifest loaded;
  std::uint64_t declared_shards = 0;
  bool saw_meta = false;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagManifestMeta && info.tag != kTagManifestShard) {
      continue;  // unknown chunks are skippable (forward compat)
    }
    if (!reader.ReadChunk(i, &payload, error)) return false;
    ChunkParser parser(payload);
    if (info.tag == kTagManifestMeta) {
      std::uint32_t schema = 0;
      if (!parser.GetU32(&schema, error) ||
          !parser.GetU32(&loaded.model_fingerprint, error) ||
          !parser.GetU64(&loaded.sequence, error) ||
          !parser.GetU64(&loaded.searched_seq, error) ||
          !parser.GetU64(&declared_shards, error)) {
        return false;
      }
      if (schema != kManifestSchemaVersion) {
        *error = path + ": unsupported manifest schema version " +
                 std::to_string(schema);
        return false;
      }
      saw_meta = true;
      continue;
    }
    if (!saw_meta) {
      *error = path + ": SHRD chunk before NMET metadata";
      return false;
    }
    ShardRecord shard;
    std::uint64_t source_count = 0;
    if (!parser.GetString(&shard.file, error) ||
        !parser.GetU64(&shard.entries, error) ||
        !parser.GetU64(&shard.bytes, error) ||
        !parser.GetU64(&shard.created_seq, error) ||
        !parser.GetU64(&source_count, error)) {
      return false;
    }
    if (shard.file.empty()) {
      *error = path + ": shard " + std::to_string(loaded.shards.size()) +
               " has an empty file name";
      return false;
    }
    // Guard the allocation against a corrupted count: every digest costs 8
    // payload bytes, so the remaining payload bounds the real count.
    if (source_count * 8 > parser.remaining()) {
      *error = path + ": shard '" + shard.file + "' declares " +
               std::to_string(source_count) + " source digests but only " +
               std::to_string(parser.remaining()) +
               " payload bytes remain — corrupted manifest";
      return false;
    }
    shard.sources.reserve(static_cast<std::size_t>(source_count));
    for (std::uint64_t s = 0; s < source_count; ++s) {
      std::uint64_t digest = 0;
      if (!parser.GetU64(&digest, error)) return false;
      shard.sources.push_back(digest);
    }
    loaded.shards.push_back(std::move(shard));
  }
  if (!saw_meta) {
    *error = path + ": missing NMET metadata chunk";
    return false;
  }
  if (loaded.shards.size() != declared_shards) {
    *error = path + ": NMET declares " + std::to_string(declared_shards) +
             " shards but " + std::to_string(loaded.shards.size()) +
             " were stored — truncated or corrupted manifest";
    return false;
  }
  *manifest = std::move(loaded);
  return true;
}

std::string DirOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace asteria::store
