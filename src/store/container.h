// Versioned chunked binary container — the on-disk substrate of every
// persistent artifact (model checkpoints, index snapshots, cached corpora,
// firmware encodings). See docs/FORMATS.md for the byte-level spec.
//
// Layout: a fixed 20-byte header (magic, container version, file kind,
// endianness tag) followed by a sequence of self-delimiting chunks. Each
// chunk carries a 4-byte tag, a u64 payload size, and the CRC32 of its
// payload; the reader scans the sequence once to build the chunk table and
// validates the CRC on every payload it hands out. All scalars are encoded
// explicitly little-endian, byte by byte, so files are portable across
// hosts regardless of native endianness.
//
// Append support: because chunks are self-delimiting and there is no
// trailing directory, extending an artifact is "open for append, write more
// chunks". Writer::OpenAppend verifies the existing header and that the
// file ends exactly on a chunk boundary before extending it, so appends
// never bury a truncation.
//
// Error contract: every fallible operation returns false and fills a
// descriptive `error` string (path, offset, expectation vs. reality).
// Nothing in this layer loads partial state silently — a corrupted or
// truncated file is always a loud, diagnosable failure.
//
// Crash safety: the Writer streams to "<path>.tmp" and renames over the
// final path only from a successful Finish(), so a crash (or injected
// util::Failpoint failure) mid-write never leaves a file at `path` that
// opens as valid — the previous artifact, if any, survives untouched. See
// docs/ROBUSTNESS.md for the full failure-handling contract and the
// store.* failpoints threaded through this layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::store {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant).
// Chain blocks by passing the previous return value as `seed`.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

// Container format version written by this build. Readers reject files
// whose major version is newer than what they understand.
inline constexpr std::uint32_t kContainerVersion = 1;

// File kinds (what the container holds). Encoded as a four-character code.
inline constexpr std::uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}
inline constexpr std::uint32_t kKindModel = FourCc('M', 'O', 'D', 'L');
inline constexpr std::uint32_t kKindIndex = FourCc('I', 'N', 'D', 'X');
inline constexpr std::uint32_t kKindCorpus = FourCc('C', 'O', 'R', 'P');
inline constexpr std::uint32_t kKindEncodings = FourCc('F', 'E', 'N', 'C');
inline constexpr std::uint32_t kKindManifest = FourCc('M', 'A', 'N', 'I');

// Renders a fourcc as "ABCD" for error messages and index-info output.
std::string FourCcName(std::uint32_t fourcc);

// An in-memory chunk payload under construction. Scalars go through the
// explicit little-endian writers; strings and blobs are length-prefixed.
class ChunkBuilder {
 public:
  void PutU8(std::uint8_t v) { bytes_.push_back(v); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  // IEEE-754 bit pattern, little-endian.
  void PutF64(double v);
  // u32 byte length + raw bytes (no terminator).
  void PutString(const std::string& s);
  void PutBytes(const void* data, std::size_t size);
  // Contiguous run of doubles (e.g. a matrix payload).
  void PutF64Array(const double* data, std::size_t count);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked cursor over a chunk payload. Every getter returns false
// (and fills `error`) on overrun instead of reading past the end.
class ChunkParser {
 public:
  ChunkParser(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ChunkParser(const std::vector<std::uint8_t>& bytes)
      : ChunkParser(bytes.data(), bytes.size()) {}

  bool GetU8(std::uint8_t* v, std::string* error);
  bool GetU32(std::uint32_t* v, std::string* error);
  bool GetU64(std::uint64_t* v, std::string* error);
  bool GetI32(std::int32_t* v, std::string* error);
  bool GetI64(std::int64_t* v, std::string* error);
  bool GetF64(double* v, std::string* error);
  bool GetString(std::string* v, std::string* error);
  bool GetF64Array(double* out, std::size_t count, std::string* error);

  std::size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  bool Need(std::size_t n, std::string* error);

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t offset_ = 0;
};

// Streams a container to disk: header first, then WriteChunk per chunk.
// All writes go to "<path>.tmp"; Finish() atomically renames it over
// `path`, so readers only ever see the previous artifact or the complete
// new one. An abandoned Writer (destroyed without Finish, or after any
// failure) removes its temp file and leaves `path` untouched.
class Writer {
 public:
  Writer() = default;
  ~Writer();
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  // Starts a fresh container of `kind` destined for `path` (written to the
  // temp file until Finish commits it).
  bool Open(const std::string& path, std::uint32_t kind, std::string* error);
  // Opens an existing container of `kind` for appending. Validates the
  // header and walks the chunk sizes to confirm the file ends on a chunk
  // boundary (a truncated file is refused, not extended), then copies the
  // file to the temp path and appends there — the original is replaced
  // only by a successful Finish.
  bool OpenAppend(const std::string& path, std::uint32_t kind,
                  std::string* error);

  // Writes one chunk: tag + size + CRC32(payload) + payload.
  bool WriteChunk(std::uint32_t tag, const ChunkBuilder& payload,
                  std::string* error);

  // Flushes, closes, and renames the temp file over the final path;
  // returns false (removing the temp file) if anything failed.
  bool Finish(std::string* error);

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

// One entry of the reader-built chunk table.
struct ChunkInfo {
  std::uint32_t tag = 0;
  std::uint64_t offset = 0;  // file offset of the payload
  std::uint64_t size = 0;    // payload byte count
  std::uint32_t crc32 = 0;   // declared payload CRC
};

// Opens a container, validates the header, and scans the chunk sequence
// into a table. Payloads are only read (and CRC-checked) on demand.
class Reader {
 public:
  Reader() = default;
  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  // `expected_kind` 0 accepts any kind (index-info style inspection).
  bool Open(const std::string& path, std::uint32_t expected_kind,
            std::string* error);

  std::uint32_t kind() const { return kind_; }
  std::uint32_t version() const { return version_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }

  // Reads chunk `index`'s payload and verifies its CRC32.
  bool ReadChunk(std::size_t index, std::vector<std::uint8_t>* payload,
                 std::string* error) const;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  std::uint32_t kind_ = 0;
  std::uint32_t version_ = 0;
  std::vector<ChunkInfo> chunks_;
};

// True if `path` starts with the container magic (used to dispatch between
// the container checkpoint format and the legacy "asteria-params v1" text
// format when loading model weights).
bool IsContainerFile(const std::string& path);

// Moves a corrupt artifact aside to "<path>.corrupt" (replacing any
// previous quarantine) so cache loaders can rebuild from source without
// re-reading — or silently deleting — the bad bytes. Returns true when the
// file was moved and fills `quarantined_path` (may be null) with the new
// location.
bool QuarantineFile(const std::string& path, std::string* quarantined_path);

}  // namespace asteria::store
