// Streaming firmware ingest (docs/ARCHITECTURE.md "Incremental ingest").
//
// The paper's deployment is a continuously growing vendor-firmware crawl;
// this subsystem turns the one-shot corpus/index/search pipeline into an
// incremental one. An IngestService owns a sharded-index directory:
//
//   <index_dir>/manifest.mani       MANI manifest (store/manifest.h)
//   <index_dir>/shard-%08llu.idx    one immutable INDX snapshot per ingest
//   <index_dir>/cache/fenc-%016llx.fenc   per-image FENC encoding cache
//
// IngestFile processes one packed firmware image end to end: read →
// content digest (dedup against every manifest source — a re-dropped image
// costs one hash, zero encodes) → unpack → decompile (per-function fault
// isolation, same filters as the batch firmware corpus) → encode, reusing
// the image's FENC cache when the model fingerprint matches (a retrained
// model quarantines the stale cache and re-encodes) → write a new shard
// snapshot → atomically publish a manifest naming it → optionally poke a
// running asteria-serve daemon's reload path so the entries are queryable
// without a restart.
//
// Crash-publish contract: the manifest rename is the single commit point.
// Every ingest.* failpoint (ingest.read, ingest.decompile, ingest.encode,
// ingest.shard_write, ingest.publish, ingest.compact) models dying before
// that rename; tests/ingest_test.cpp proves the previously published
// manifest still loads bitwise-intact from any of them, and that a retry
// after an ingest.publish crash reuses the already-written FENC cache.
//
// Compact() folds runs of adjacent small shards into one snapshot via
// SearchIndex::AppendTo. Only *consecutive* shards merge, so the global
// entry order — and therefore every TopK/TopKBatch result — is bitwise
// unchanged by compaction.
//
// DeltaVulnSearch re-runs the CVE library queries against only the shards
// newer than the manifest's searched_seq high-water mark, then republishes
// the manifest with the mark advanced: fleet scanning cost is proportional
// to what arrived, not to the fleet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "firmware/image.h"
#include "store/manifest.h"
#include "util/pipeline_report.h"

namespace asteria::ingest {

struct IngestConfig {
  std::string index_dir;   // sharded-index directory (created if missing)
  int threads = 1;         // ParallelFor width for encoding
  int beta = 4;            // decompiler callee-expansion depth
  int min_ast_size = 5;    // drop trivial functions (firmware corpus filter)
  // Shards with at most this many entries are "small" — Compact() merges
  // adjacent runs of two or more of them.
  int compact_max_entries = 256;
  // When non-empty, every successful publish pokes this asteria-serve
  // socket's reload path (failure to poke is a warning, never an ingest
  // failure — the manifest is already durable).
  std::string serve_socket;
};

// Cumulative counters for one or more IngestFile/ScanDropDir calls.
struct IngestStats {
  int images_published = 0;   // new shards created
  int images_deduped = 0;     // content digest already in the manifest
  int images_failed = 0;      // read/unpack/write/publish failures
  int functions_indexed = 0;  // entries added across published shards
  int functions_encoded = 0;  // encodings computed (cache misses only)
  int cache_hits = 0;         // images served entirely from FENC cache
  util::PipelineReport report;  // per-function outcomes (stage "ingest")
};

class IngestService {
 public:
  // The model must outlive the service; the manifest pins its weights
  // fingerprint and Open() refuses a directory ingested by other weights.
  IngestService(const core::AsteriaModel& model, const IngestConfig& config);

  // Creates index_dir (and its cache dir) if needed and loads the manifest
  // when one exists. Fails loudly on a corrupt manifest or a model
  // fingerprint mismatch (retrained model: re-ingest into a fresh dir).
  bool Open(std::string* error);

  // Ingests one packed firmware image (see file header for the pipeline).
  // Returns false only on a failure that prevented publishing; a dedup is
  // a success that publishes nothing.
  bool IngestFile(const std::string& path, IngestStats* stats,
                  std::string* error);

  // Ingests every "*.fw" file under `drop_dir` in name order (so results
  // are deterministic for a fixed directory content). Per-file failures
  // are isolated into `stats`; returns the number of newly published
  // images.
  int ScanDropDir(const std::string& drop_dir, IngestStats* stats);

  // Merges each maximal run of >= 2 adjacent shards whose entry counts are
  // all <= compact_max_entries into one snapshot (copy first shard, then
  // SearchIndex::AppendTo for the rest), publishes the new manifest, and
  // deletes the replaced shard files. Queries are bitwise unchanged.
  // `merged_runs` (may be null) receives the number of runs folded.
  bool Compact(int* merged_runs, std::string* error);

  const store::ShardManifest& manifest() const { return manifest_; }
  std::string manifest_path() const;

  // Decompiles every function of an unpacked image with the firmware-corpus
  // filters (decompile errors fail the function, ASTs smaller than
  // `min_ast_size` are skipped); outcomes land in `report` when non-null.
  static std::vector<core::FunctionFeature> DecompileImage(
      const firmware::FirmwareImage& image, int beta, int min_ast_size,
      util::PipelineReport* report);

 private:
  bool Publish(store::ShardManifest next, std::string* error);
  void PokeServe() const;
  std::string CachePath(std::uint64_t digest) const;

  const core::AsteriaModel& model_;
  IngestConfig config_;
  store::ShardManifest manifest_;
  bool opened_ = false;
};

// One CVE row of a delta vuln search (hit indices are relative to the
// delta index over the new shards, so only name/score are reported).
struct DeltaCveRow {
  std::string cve;
  std::string software;
  std::string function;
  std::vector<core::SearchHit> hits;  // scores >= threshold, descending
};

struct DeltaVulnResult {
  std::uint64_t from_seq = 0;   // high-water mark before the run
  std::uint64_t to_seq = 0;     // mark published after the run
  int shards_searched = 0;
  int entries_searched = 0;
  std::vector<DeltaCveRow> per_cve;
  util::PipelineReport report;  // stage "delta-vuln-search"
};

// Runs every VulnLibrary() query against only the shards with
// created_seq > searched_seq, then republishes the manifest with
// searched_seq advanced to the newest shard. When compaction has folded
// unsearched entries into an older-sequence shard the entries are simply
// seen again — at-least-once semantics, never missed.
//
// Every hit is also appended to the persistent CVE-alert log (below)
// BEFORE the mark advances, so a crash between the two replays the search
// and re-appends — an alert can be duplicated (dedup on `seq`), never
// lost.
bool DeltaVulnSearch(const core::AsteriaModel& model,
                     const std::string& index_dir, double threshold,
                     int beta, int threads, DeltaVulnResult* result,
                     std::string* error);

// -- Persistent CVE-alert log ------------------------------------------------
//
// <index_dir>/alerts.jsonl accumulates every DeltaVulnSearch hit across
// runs — the durable artifact a fleet operator tails, where DeltaVulnResult
// is one run's report. Each line is
//
//   ALRT <8-hex CRC32 of the JSON bytes> <one-line JSON object>\n
//
// appended with a single O_APPEND write + fsync per run, so a crash can
// only ever tear the final line; the reader detects a torn or corrupted
// line by the CRC (or broken framing), skips it, and counts it in
// `corrupt_lines` instead of failing the whole log.

struct AlertRecord {
  std::uint64_t seq = 0;  // searched_seq the run advanced to; re-runs after
                          // a crash repeat it, so equal (seq, cve, hit)
                          // triples are duplicates
  std::string cve;
  std::string software;
  std::string function;  // the vulnerable function queried
  std::string hit;       // the fleet function that matched
  double score = 0.0;
};

std::string AlertLogPath(const std::string& index_dir);

// Appends one run's alerts as a single atomic-append write (O_APPEND +
// fsync). Guarded by the ingest.alert_append failpoint; a failed append
// fails the run before the high-water mark moves.
bool AppendAlerts(const std::string& index_dir,
                  const std::vector<AlertRecord>& alerts, std::string* error);

// Reads the whole log. A missing file is an empty log, not an error.
// Unparseable or CRC-mismatched lines (torn tail, disk corruption) are
// skipped and counted in `corrupt_lines` (may be null).
bool ReadAlertLog(const std::string& index_dir,
                  std::vector<AlertRecord>* alerts, int* corrupt_lines,
                  std::string* error);

}  // namespace asteria::ingest
