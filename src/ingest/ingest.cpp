#include "ingest/ingest.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "ast/lcrs.h"
#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "firmware/search.h"
#include "firmware/vulnlib.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "serve/client.h"
#include "store/container.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/request_log.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace asteria::ingest {

namespace {

// Failpoints: each one models a crash/failure before the manifest rename
// (the commit point), except ingest.encode which is per-function isolation
// like search.encode/firmware.encode. See docs/ROBUSTNESS.md.
util::Failpoint fp_read("ingest.read");
util::Failpoint fp_decompile("ingest.decompile");
util::Failpoint fp_encode("ingest.encode");
util::Failpoint fp_shard_write("ingest.shard_write");
util::Failpoint fp_publish("ingest.publish");
util::Failpoint fp_compact("ingest.compact");
util::Failpoint fp_alert_append("ingest.alert_append");

// Deterministic counts (docs/OBSERVABILITY.md conventions): everything here
// is a pure function of the ingested inputs, never of thread count.
util::Counter c_images("ingest.images");
util::Counter c_deduped("ingest.images_deduped");
util::Counter c_failed("ingest.images_failed");
util::Counter c_fn_encoded("ingest.functions_encoded");
util::Counter c_cache_hits("ingest.cache_hits");
util::Counter c_cache_quarantined("ingest.cache_quarantined");
util::Counter c_compactions("ingest.compactions");
util::Counter c_delta_searches("ingest.delta_searches");
util::Counter c_alerts("ingest.alerts");
util::Counter c_serve_pokes("ingest.reload_pokes");
util::Histogram h_publish_nanos("ingest.publish_nanos");
util::Gauge g_shards("ingest.shards");
util::Gauge g_entries("ingest.entries");

bool AllFinite(const nn::Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

bool ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->insert(out->end(), buffer, buffer + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::uint64_t FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool EnsureDir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST) return true;
  *error = path + ": mkdir failed: " + std::strerror(errno);
  return false;
}

bool CopyFile(const std::string& from, const std::string& to,
              std::string* error) {
  std::vector<std::uint8_t> bytes;
  if (!ReadFileBytes(from, &bytes)) {
    *error = from + ": cannot read for copy";
    return false;
  }
  std::FILE* f = std::fopen(to.c_str(), "wb");
  if (f == nullptr) {
    *error = to + ": cannot open for copy: " + std::strerror(errno);
    return false;
  }
  const bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                           bytes.size();
  std::fclose(f);
  if (!ok) {
    *error = to + ": short write during copy";
    std::remove(to.c_str());
  }
  return ok;
}

std::string SeqString(std::uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%08llu",
                static_cast<unsigned long long>(seq));
  return buffer;
}

std::string ShardFileName(std::uint64_t seq) {
  return "shard-" + SeqString(seq) + ".idx";
}

// Compiles one CVE-library query on the reference ISA and decompiles it
// into a query feature (the same recipe as RunVulnSearch's query path).
bool BuildVulnQuery(const firmware::VulnSpec& spec, int beta,
                    core::FunctionFeature* feature, std::string* why) {
  minic::Program program;
  std::string error;
  if (!minic::Parse(spec.vulnerable_source, &program, &error) ||
      !minic::Check(program, &error)) {
    *why = spec.cve + ": query source broken: " + error;
    return false;
  }
  auto compiled = compiler::CompileProgram(
      program, static_cast<binary::Isa>(firmware::kQueryIsa), spec.software);
  if (!compiled.ok) {
    *why = spec.cve + ": query compile failed: " + compiled.error;
    return false;
  }
  const int fn = compiled.module.FindFunction(spec.function);
  if (fn < 0) {
    *why = spec.cve + ": query function '" + spec.function + "' not found";
    return false;
  }
  auto query = decompiler::DecompileFunction(compiled.module, fn, beta);
  feature->name = spec.function;
  feature->tree = ast::ToLeftChildRightSibling(query.tree);
  feature->callee_count = query.callee_count;
  return true;
}

}  // namespace

IngestService::IngestService(const core::AsteriaModel& model,
                             const IngestConfig& config)
    : model_(model), config_(config) {
  if (config_.threads < 1) config_.threads = 1;
}

std::string IngestService::manifest_path() const {
  return config_.index_dir + "/" + store::kManifestFileName;
}

std::string IngestService::CachePath(std::uint64_t digest) const {
  char hex[32];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(digest));
  return config_.index_dir + "/cache/fenc-" + std::string(hex) + ".fenc";
}

bool IngestService::Open(std::string* error) {
  if (opened_) return true;
  if (config_.index_dir.empty()) {
    *error = "ingest: index_dir is empty";
    return false;
  }
  if (!EnsureDir(config_.index_dir, error) ||
      !EnsureDir(config_.index_dir + "/cache", error)) {
    return false;
  }
  if (FileExists(manifest_path())) {
    if (!LoadManifest(&manifest_, manifest_path(), error)) return false;
    if (manifest_.model_fingerprint != model_.WeightsFingerprint()) {
      *error = manifest_path() +
               ": manifest was published for different model weights "
               "(fingerprint mismatch) — the model was retrained; ingest "
               "into a fresh directory (stale FENC caches quarantine and "
               "rebuild automatically there)";
      return false;
    }
  } else {
    manifest_ = store::ShardManifest{};
    manifest_.model_fingerprint = model_.WeightsFingerprint();
  }
  g_shards.Set(static_cast<double>(manifest_.shards.size()));
  g_entries.Set(static_cast<double>(manifest_.TotalEntries()));
  opened_ = true;
  return true;
}

std::vector<core::FunctionFeature> IngestService::DecompileImage(
    const firmware::FirmwareImage& image, int beta, int min_ast_size,
    util::PipelineReport* report) {
  std::vector<core::FunctionFeature> features;
  for (const binary::BinModule& module : image.modules) {
    auto decompiled = decompiler::DecompileModule(module, beta);
    for (auto& df : decompiled) {
      if (!df.error.empty()) {
        if (report != nullptr) {
          report->AddFailed(module.name + "/" + df.name + ": " + df.error);
        }
        continue;
      }
      if (df.tree.size() < min_ast_size) {
        if (report != nullptr) report->AddSkipped();
        continue;
      }
      if (report != nullptr) report->AddOk();
      core::FunctionFeature feature;
      feature.name = module.name + "::" + df.name;
      feature.tree = ast::ToLeftChildRightSibling(df.tree);
      feature.callee_count = df.callee_count;
      features.push_back(std::move(feature));
    }
  }
  return features;
}

bool IngestService::Publish(store::ShardManifest next, std::string* error) {
  if (fp_publish.ShouldFail()) {
    *error = manifest_path() +
             ": injected crash before manifest publish (failpoint "
             "ingest.publish)";
    return false;
  }
  util::Timer timer;
  if (!SaveManifest(next, manifest_path(), error)) return false;
  h_publish_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  manifest_ = std::move(next);
  g_shards.Set(static_cast<double>(manifest_.shards.size()));
  g_entries.Set(static_cast<double>(manifest_.TotalEntries()));
  PokeServe();
  return true;
}

void IngestService::PokeServe() const {
  if (config_.serve_socket.empty()) return;
  serve::Client client;
  std::string error;
  if (!client.Connect(config_.serve_socket, &error, 30) ||
      !client.Reload(&error)) {
    // The manifest is already durable; a daemon that is down or mid-restart
    // simply picks the new shards up on its next reload.
    ASTERIA_LOG(Warn) << "ingest: serve reload poke failed ("
                      << config_.serve_socket << "): " << error;
    return;
  }
  c_serve_pokes.Increment();
  ASTERIA_LOG(Info) << "ingest: poked asteria-serve reload on "
                    << config_.serve_socket;
}

bool IngestService::IngestFile(const std::string& path, IngestStats* stats,
                               std::string* error) {
  if (!Open(error)) return false;
  ASTERIA_SPAN("ingest");
  util::PipelineReport local;
  local.stage = "ingest";
  // One wide-event record per image (docs/OBSERVABILITY.md): the pipeline's
  // wall time rides in encode_nanos (encoding dominates an ingest), the
  // image path in name, the outcome says published vs failed. Deduped
  // images cut a record too — "we did nothing" is an answer.
  util::Timer op_timer;
  const auto cut_record = [&](util::RequestOutcome outcome) {
    util::RequestRecord record;
    record.trace_id = util::MintTraceId();
    record.op = "ingest.image";
    record.outcome = outcome;
    record.encode_nanos = static_cast<std::uint64_t>(op_timer.ElapsedNanos());
    record.SetName(path);
    record.end_nanos = util::TraceNowNanos();
    util::GlobalRequestLog().Append(record);
  };
  auto fail = [&](const std::string& why) {
    *error = why;
    ++stats->images_failed;
    c_failed.Increment();
    local.AddFailed(why);
    stats->report.Merge(local);
    util::PublishPipelineReport(local);
    cut_record(util::RequestOutcome::kError);
    return false;
  };

  // 1. Read + digest. Dedup costs one hash — no unpack, no encode.
  std::vector<std::uint8_t> blob;
  if (fp_read.ShouldFail()) {
    return fail(path + ": injected read failure (failpoint ingest.read)");
  }
  if (!ReadFileBytes(path, &blob)) {
    return fail(path + ": cannot read firmware image");
  }
  const std::uint64_t digest = store::ContentDigest64(blob.data(), blob.size());
  if (manifest_.HasSource(digest)) {
    ++stats->images_deduped;
    c_deduped.Increment();
    ASTERIA_LOG(Info) << "ingest: " << path
                      << " already ingested (digest match); skipping";
    cut_record(util::RequestOutcome::kOk);
    return true;
  }

  // 2. Unpack + decompile (per-function isolation via the report).
  auto image = firmware::Unpack(blob);
  if (!image.has_value()) {
    return fail(path + ": firmware image failed to unpack");
  }
  if (fp_decompile.ShouldFail()) {
    return fail(path +
                ": injected decompile failure (failpoint ingest.decompile)");
  }
  const std::vector<core::FunctionFeature> features =
      DecompileImage(*image, config_.beta, config_.min_ast_size, &local);

  // 3. Encode — through the per-image FENC cache when possible, so a
  // retried or re-dropped image never re-encodes functions it already paid
  // for. A cache from different model weights fails the fingerprint check,
  // is quarantined, and gets rebuilt (the staleness guard).
  const std::string cache_path = CachePath(digest);
  std::vector<nn::Matrix> encodings;
  std::string cache_error;
  if (firmware::LoadFirmwareEncodings(&encodings, model_, features.size(),
                                      cache_path, &cache_error)) {
    ++stats->cache_hits;
    c_cache_hits.Increment();
    ASTERIA_LOG(Info) << "ingest: encoding cache hit: " << cache_path;
  } else {
    if (FileExists(cache_path)) {
      std::string quarantined;
      if (store::QuarantineFile(cache_path, &quarantined)) {
        c_cache_quarantined.Increment();
        ASTERIA_LOG(Warn) << "ingest: quarantined stale encoding cache to "
                          << quarantined << " (" << cache_error << ")";
      }
    }
    // Failed functions keep an empty 0x0 placeholder slot (the FENC
    // convention), so cache layout stays positionally aligned to the
    // decompiled features.
    encodings.assign(features.size(), nn::Matrix());
    std::vector<std::string> failure(features.size());
    util::ParallelFor(
        static_cast<std::int64_t>(features.size()), config_.threads,
        [&](std::int64_t i) {
          ASTERIA_SPAN("encode");
          const std::size_t slot = static_cast<std::size_t>(i);
          if (fp_encode.ShouldFail()) {
            failure[slot] = features[slot].name +
                            ": injected failure (failpoint ingest.encode)";
            return;
          }
          try {
            nn::Matrix encoding = model_.Encode(features[slot].tree);
            if (!AllFinite(encoding)) {
              failure[slot] =
                  features[slot].name + ": encoding has non-finite values";
              return;
            }
            encodings[slot] = std::move(encoding);
          } catch (const std::exception& e) {
            failure[slot] = features[slot].name + ": " + e.what();
          }
        });
    for (std::size_t i = 0; i < features.size(); ++i) {
      if (!failure[i].empty()) {
        local.AddFailed(failure[i]);
        continue;
      }
      ++stats->functions_encoded;
      c_fn_encoded.Increment();
    }
    std::string write_error;
    if (!firmware::SaveFirmwareEncodings(encodings, model_, cache_path,
                                         &write_error)) {
      // Non-fatal: the shard still publishes; the next ingest of this
      // digest just re-encodes.
      ASTERIA_LOG(Warn) << "ingest: encoding cache write failed: "
                        << write_error;
    }
  }

  // 4. Build + write the shard snapshot (immutable once published).
  core::SearchIndex shard(model_, config_.threads);
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (encodings[i].size() == 0) continue;  // failed encode (counted above)
    if (shard.AddEncoded(features[i].name, encodings[i],
                         features[i].callee_count) < 0) {
      local.AddFailed(features[i].name + ": cached encoding rejected");
    }
  }
  const std::uint64_t seq = manifest_.sequence + 1;
  const std::string shard_file = ShardFileName(seq);
  const std::string shard_path = config_.index_dir + "/" + shard_file;
  if (fp_shard_write.ShouldFail()) {
    return fail(shard_path +
                ": injected shard write failure (failpoint "
                "ingest.shard_write)");
  }
  if (!shard.Save(shard_path, error)) return fail(*error);

  // 5. Publish: the manifest rename is the single commit point — a crash
  // anywhere above leaves the previous manifest (and all its shards)
  // bitwise intact, with only an orphaned shard/cache file to overwrite on
  // retry.
  store::ShardManifest next = manifest_;
  store::ShardRecord record;
  record.file = shard_file;
  record.entries = static_cast<std::uint64_t>(shard.size());
  record.bytes = FileSize(shard_path);
  record.created_seq = seq;
  record.sources.push_back(digest);
  next.shards.push_back(std::move(record));
  next.sequence = seq;
  if (!Publish(std::move(next), error)) return fail(*error);

  ++stats->images_published;
  c_images.Increment();
  stats->functions_indexed += shard.size();
  stats->report.Merge(local);
  util::PublishPipelineReport(local);
  cut_record(util::RequestOutcome::kOk);
  ASTERIA_LOG(Info) << "ingest: published " << shard_file << " ("
                    << shard.size() << " functions) from " << path;
  return true;
}

int IngestService::ScanDropDir(const std::string& drop_dir,
                               IngestStats* stats) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(drop_dir.c_str());
  if (dir == nullptr) {
    const std::string why =
        drop_dir + ": cannot open drop directory: " + std::strerror(errno);
    ASTERIA_LOG(Warn) << "ingest: " << why;
    stats->report.AddFailed(why);
    return 0;
  }
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 3 && name.compare(name.size() - 3, 3, ".fw") == 0) {
      names.push_back(name);
    }
  }
  ::closedir(dir);
  // Name order, so a directory's worth of drops ingests identically no
  // matter how readdir happened to enumerate it.
  std::sort(names.begin(), names.end());
  int published = 0;
  for (const std::string& name : names) {
    const int before = stats->images_published;
    std::string error;
    if (!IngestFile(drop_dir + "/" + name, stats, &error)) {
      ASTERIA_LOG(Warn) << "ingest: " << error << " — continuing";
      continue;
    }
    published += stats->images_published - before;
  }
  return published;
}

bool IngestService::Compact(int* merged_runs, std::string* error) {
  if (merged_runs != nullptr) *merged_runs = 0;
  if (!Open(error)) return false;
  ASTERIA_SPAN("compact");
  const std::vector<store::ShardRecord>& shards = manifest_.shards;
  const std::uint64_t small =
      static_cast<std::uint64_t>(std::max(0, config_.compact_max_entries));
  // Only *adjacent* small shards merge: concatenation order is the query
  // order, so merging a run is invisible to TopK — bitwise.
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // [begin, end)
  for (std::size_t i = 0; i < shards.size();) {
    if (shards[i].entries > small) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < shards.size() && shards[j].entries <= small) ++j;
    if (j - i >= 2) runs.emplace_back(i, j);
    i = j;
  }
  if (merged_runs != nullptr) *merged_runs = static_cast<int>(runs.size());
  if (runs.empty()) return true;

  const std::uint64_t seq = manifest_.sequence + 1;
  store::ShardManifest next = manifest_;
  next.sequence = seq;
  std::vector<std::string> replaced;
  // Back to front, so earlier runs' indices stay valid while next.shards
  // is spliced.
  for (auto run = runs.rbegin(); run != runs.rend(); ++run) {
    const std::size_t begin = run->first;
    const std::size_t end = run->second;
    const std::string merged_file =
        "compact-" + SeqString(seq) + "-" + std::to_string(begin) + ".idx";
    const std::string merged_path = config_.index_dir + "/" + merged_file;
    // Seed the merged file with the run's first shard, then AppendTo the
    // remaining entries — the incremental-growth path, no re-encoding.
    if (!CopyFile(config_.index_dir + "/" + shards[begin].file, merged_path,
                  error)) {
      return false;
    }
    core::SearchIndex merged(model_, config_.threads);
    store::ShardRecord record;
    record.file = merged_file;
    for (std::size_t k = begin; k < end; ++k) {
      const std::size_t before = static_cast<std::size_t>(merged.size());
      if (!merged.LoadAppend(config_.index_dir + "/" + shards[k].file,
                             error)) {
        return false;
      }
      if (static_cast<std::size_t>(merged.size()) - before !=
          shards[k].entries) {
        *error = manifest_path() + ": shard '" + shards[k].file +
                 "' entry count disagrees with the manifest — refusing to "
                 "compact";
        return false;
      }
      record.created_seq = std::max(record.created_seq, shards[k].created_seq);
      record.sources.insert(record.sources.end(), shards[k].sources.begin(),
                            shards[k].sources.end());
    }
    if (!merged.AppendTo(merged_path,
                         static_cast<int>(shards[begin].entries), error)) {
      return false;
    }
    record.entries = static_cast<std::uint64_t>(merged.size());
    record.bytes = FileSize(merged_path);
    for (std::size_t k = begin; k < end; ++k) {
      replaced.push_back(shards[k].file);
    }
    next.shards.erase(next.shards.begin() + static_cast<std::ptrdiff_t>(begin),
                      next.shards.begin() + static_cast<std::ptrdiff_t>(end));
    next.shards.insert(next.shards.begin() + static_cast<std::ptrdiff_t>(begin),
                       std::move(record));
  }
  if (fp_compact.ShouldFail()) {
    *error = manifest_path() +
             ": injected crash before compacted manifest publish (failpoint "
             "ingest.compact)";
    return false;
  }
  if (!Publish(std::move(next), error)) return false;
  c_compactions.Increment();
  // The old shard files are unreferenced once the new manifest is durable;
  // deleting them is best-effort cleanup, not correctness.
  for (const std::string& file : replaced) {
    std::remove((config_.index_dir + "/" + file).c_str());
  }
  ASTERIA_LOG(Info) << "ingest: compacted " << runs.size() << " run(s) into "
                    << manifest_.shards.size() << " shard(s)";
  return true;
}

namespace {

// Minimal JSON string codec for the alert log: the writer controls the
// schema, so only the escapes it can emit need handling (quote, backslash,
// and control bytes as \u00XX).
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string AlertJson(const AlertRecord& alert) {
  std::string json = "{\"seq\":" + std::to_string(alert.seq) + ",\"cve\":";
  AppendJsonString(alert.cve, &json);
  json += ",\"software\":";
  AppendJsonString(alert.software, &json);
  json += ",\"function\":";
  AppendJsonString(alert.function, &json);
  json += ",\"hit\":";
  AppendJsonString(alert.hit, &json);
  char score[40];
  std::snprintf(score, sizeof(score), "%.17g", alert.score);
  json += ",\"score\":";
  json += score;
  json += "}";
  return json;
}

// Parses a JSON string literal starting at (*pos) == '"'; advances *pos
// past the closing quote.
bool ParseJsonString(const std::string& text, std::size_t* pos,
                     std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= text.size()) return false;
      const char esc = text[*pos + 1];
      if (esc == '"' || esc == '\\') {
        out->push_back(esc);
        *pos += 2;
        continue;
      }
      if (esc == 'u') {
        if (*pos + 5 >= text.size()) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[*pos + 2 + static_cast<std::size_t>(i)];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (value > 0xff) return false;  // the writer only emits \u00XX
        out->push_back(static_cast<char>(value));
        *pos += 6;
        continue;
      }
      return false;
    }
    out->push_back(c);
    ++*pos;
  }
  return false;
}

// Expects `key` (with quotes and colon) at *pos, e.g. "\"cve\":".
bool ExpectToken(const std::string& text, std::size_t* pos,
                 const std::string& token) {
  if (text.compare(*pos, token.size(), token) != 0) return false;
  *pos += token.size();
  return true;
}

bool ParseAlertJson(const std::string& json, AlertRecord* alert) {
  std::size_t pos = 0;
  if (!ExpectToken(json, &pos, "{\"seq\":")) return false;
  char* end = nullptr;
  errno = 0;
  alert->seq = std::strtoull(json.c_str() + pos, &end, 10);
  if (errno != 0 || end == json.c_str() + pos) return false;
  pos = static_cast<std::size_t>(end - json.c_str());
  if (!ExpectToken(json, &pos, ",\"cve\":") ||
      !ParseJsonString(json, &pos, &alert->cve) ||
      !ExpectToken(json, &pos, ",\"software\":") ||
      !ParseJsonString(json, &pos, &alert->software) ||
      !ExpectToken(json, &pos, ",\"function\":") ||
      !ParseJsonString(json, &pos, &alert->function) ||
      !ExpectToken(json, &pos, ",\"hit\":") ||
      !ParseJsonString(json, &pos, &alert->hit) ||
      !ExpectToken(json, &pos, ",\"score\":")) {
    return false;
  }
  errno = 0;
  alert->score = std::strtod(json.c_str() + pos, &end);
  if (errno != 0 || end == json.c_str() + pos) return false;
  pos = static_cast<std::size_t>(end - json.c_str());
  return ExpectToken(json, &pos, "}") && pos == json.size();
}

std::string AlertLine(const AlertRecord& alert) {
  const std::string json = AlertJson(alert);
  const std::uint32_t crc = store::Crc32(
      reinterpret_cast<const std::uint8_t*>(json.data()), json.size());
  char head[16];
  std::snprintf(head, sizeof(head), "ALRT %08x ", crc);
  return head + json + "\n";
}

}  // namespace

std::string AlertLogPath(const std::string& index_dir) {
  return index_dir + "/alerts.jsonl";
}

bool AppendAlerts(const std::string& index_dir,
                  const std::vector<AlertRecord>& alerts, std::string* error) {
  if (alerts.empty()) return true;
  const std::string path = AlertLogPath(index_dir);
  if (fp_alert_append.ShouldFail()) {
    *error = path +
             ": injected alert-log append failure (failpoint "
             "ingest.alert_append)";
    return false;
  }
  std::string buffer;
  for (const AlertRecord& alert : alerts) {
    buffer += AlertLine(alert);
  }
  // One O_APPEND write for the whole run: concurrent appenders never
  // interleave bytes, and a crash tears at most the final line — which the
  // reader's per-line CRC catches.
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    *error = path + ": open for append failed: " + std::strerror(errno);
    return false;
  }
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t n = ::write(fd, buffer.data() + done, buffer.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = path + ": append failed: " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    *error = path + ": fsync failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  for (std::size_t i = 0; i < alerts.size(); ++i) c_alerts.Increment();
  return true;
}

bool ReadAlertLog(const std::string& index_dir,
                  std::vector<AlertRecord>* alerts, int* corrupt_lines,
                  std::string* error) {
  alerts->clear();
  if (corrupt_lines != nullptr) *corrupt_lines = 0;
  const std::string path = AlertLogPath(index_dir);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return true;  // no alerts yet
    *error = path + ": open failed: " + std::strerror(errno);
    return false;
  }
  std::string contents;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    *error = path + ": read failed";
    return false;
  }
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t newline = contents.find('\n', start);
    // A final line with no terminating newline is a torn tail by
    // definition (the writer always ends lines), so it lands in the
    // corrupt count via the checks below.
    const bool terminated = newline != std::string::npos;
    if (!terminated) newline = contents.size();
    const std::string line = contents.substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;
    bool good = false;
    AlertRecord alert;
    // "ALRT " + 8 hex + " " + json, CRC over the json bytes.
    if (terminated && line.size() > 14 && line.compare(0, 5, "ALRT ") == 0 &&
        line[13] == ' ') {
      char* end = nullptr;
      errno = 0;
      const std::string hex = line.substr(5, 8);
      const unsigned long declared = std::strtoul(hex.c_str(), &end, 16);
      if (errno == 0 && end == hex.c_str() + 8) {
        const std::string json = line.substr(14);
        const std::uint32_t actual = store::Crc32(
            reinterpret_cast<const std::uint8_t*>(json.data()), json.size());
        if (actual == static_cast<std::uint32_t>(declared) &&
            ParseAlertJson(json, &alert)) {
          good = true;
        }
      }
    }
    if (good) {
      alerts->push_back(std::move(alert));
    } else if (corrupt_lines != nullptr) {
      ++*corrupt_lines;
    }
  }
  return true;
}

bool DeltaVulnSearch(const core::AsteriaModel& model,
                     const std::string& index_dir, double threshold,
                     int beta, int threads, DeltaVulnResult* result,
                     std::string* error) {
  ASTERIA_SPAN("delta-vuln-search");
  // Wide-event record for the whole sweep, cut on every exit path: the
  // sweep wall time in score_nanos, the delta's entry count in
  // scored_pairs, ok only when the scan (and its manifest advance) landed.
  struct RecordGuard {
    util::Timer timer;
    const DeltaVulnResult* result = nullptr;
    bool ok = false;
    ~RecordGuard() {
      util::RequestRecord record;
      record.trace_id = util::MintTraceId();
      record.op = "ingest.delta_search";
      record.outcome =
          ok ? util::RequestOutcome::kOk : util::RequestOutcome::kError;
      record.score_nanos = static_cast<std::uint64_t>(timer.ElapsedNanos());
      record.scored_pairs = result->entries_searched;
      record.end_nanos = util::TraceNowNanos();
      util::GlobalRequestLog().Append(record);
    }
  } record_guard;
  record_guard.result = result;
  const std::string manifest_path =
      index_dir + "/" + store::kManifestFileName;
  store::ShardManifest manifest;
  if (!LoadManifest(&manifest, manifest_path, error)) return false;
  if (manifest.model_fingerprint != model.WeightsFingerprint()) {
    *error = manifest_path +
             ": manifest was published for different model weights "
             "(fingerprint mismatch)";
    return false;
  }
  result->report.stage = "delta-vuln-search";
  result->from_seq = manifest.searched_seq;

  // Only shards newer than the high-water mark are loaded — the whole
  // point: scanning cost follows the delta, not the fleet.
  core::SearchIndex delta(model, threads < 1 ? 1 : threads);
  for (const store::ShardRecord& shard : manifest.shards) {
    if (shard.created_seq <= manifest.searched_seq) continue;
    if (!delta.LoadAppend(index_dir + "/" + shard.file, error)) return false;
    ++result->shards_searched;
  }
  result->entries_searched = delta.size();

  for (const firmware::VulnSpec& spec : firmware::VulnLibrary()) {
    DeltaCveRow row;
    row.cve = spec.cve;
    row.software = spec.software;
    row.function = spec.function;
    std::string why;
    core::FunctionFeature query;
    if (!BuildVulnQuery(spec, beta, &query, &why)) {
      result->report.AddFailed(why);
      result->per_cve.push_back(std::move(row));
      continue;
    }
    if (delta.size() > 0) {
      row.hits = delta.AboveThreshold(query, threshold);
    }
    result->report.AddOk();
    result->per_cve.push_back(std::move(row));
  }

  result->to_seq = std::max(manifest.searched_seq, manifest.MaxCreatedSeq());

  // Persist the hits BEFORE the mark advances: if the append lands but the
  // publish below crashes, the retry re-searches the same shards and
  // re-appends — duplicate alerts (same seq), never lost ones.
  std::vector<AlertRecord> alerts;
  for (const DeltaCveRow& row : result->per_cve) {
    for (const core::SearchHit& hit : row.hits) {
      AlertRecord alert;
      alert.seq = result->to_seq;
      alert.cve = row.cve;
      alert.software = row.software;
      alert.function = row.function;
      alert.hit = hit.name;
      alert.score = hit.score;
      alerts.push_back(std::move(alert));
    }
  }
  if (!AppendAlerts(index_dir, alerts, error)) return false;

  // Advance the high-water mark with the same atomic publish as ingest; a
  // crash before the rename (ingest.publish) leaves the mark — and thus
  // at-least-once scanning — intact.
  if (result->to_seq != manifest.searched_seq) {
    if (fp_publish.ShouldFail()) {
      *error = manifest_path +
               ": injected crash before manifest publish (failpoint "
               "ingest.publish)";
      return false;
    }
    store::ShardManifest next = manifest;
    next.searched_seq = result->to_seq;
    next.sequence = manifest.sequence + 1;
    if (!SaveManifest(next, manifest_path, error)) return false;
  }
  c_delta_searches.Increment();
  record_guard.ok = true;
  util::PublishPipelineReport(result->report);
  return true;
}

}  // namespace asteria::ingest
