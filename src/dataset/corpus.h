// Corpus construction: generate packages, compile for all four ISAs,
// decompile, preprocess — the Buildroot/OpenSSL dataset substitute (§IV-B).
//
// Ground truth follows the paper: functions are keyed by (package,
// function-name); the same key under two ISAs is a homologous pair,
// different keys are non-homologous. ASTs with fewer than `min_ast_size`
// nodes are dropped, as in the paper.
#pragma once

#include <array>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "ast/lcrs.h"
#include "cfg/acfg.h"
#include "dataset/generator.h"
#include "minic/ast.h"
#include "util/pipeline_report.h"

namespace asteria::dataset {

struct CorpusConfig {
  int packages = 40;
  GeneratorConfig generator;
  std::uint64_t seed = 1234;
  int min_ast_size = 5;  // paper: "node number less than 5" filter
  int beta = 4;          // callee-filter threshold (§III-C)
  bool keep_source_ast = false;  // retain the n-ary decompiled tree
  // Worker threads for package generation. Each package draws from an
  // independent Rng stream derived via util::Rng::DeriveSeed(seed, pkg), so
  // the corpus is bitwise identical for every thread count.
  int threads = 1;
};

// One decompiled function under one ISA.
struct CorpusFunction {
  std::string package;
  std::string function;
  int isa = 0;                  // binary::Isa as int
  ast::Ast tree;                // decompiled AST (kept if keep_source_ast)
  ast::BinaryAst preprocessed;  // digitalized + LCRS
  int ast_size = 0;
  int callee_count = 0;         // β-filtered |χ|
  std::vector<int> callee_sizes;  // distinct callee sizes (β re-filterable)
  int instruction_count = 0;
  cfg::Acfg acfg;               // Gemini feature
};

struct Corpus {
  std::vector<CorpusFunction> functions;
  // (package, function, isa) -> index into `functions`.
  std::map<std::tuple<std::string, std::string, int>, int> index;
  // Per-ISA binary/function counts (Table II rows).
  std::array<int, 4> binaries_per_isa{};
  std::array<int, 4> functions_per_isa{};
  // Number of functions dropped by the min-size filter.
  int filtered_small = 0;
  // Per-function outcome accounting (stage "corpus-build"): a package that
  // fails sema or a function that fails compilation/decompilation is
  // isolated and counted here instead of aborting the build.
  util::PipelineReport report;

  int Find(const std::string& package, const std::string& function,
           int isa) const {
    auto it = index.find({package, function, isa});
    return it == index.end() ? -1 : it->second;
  }
};

// Builds a corpus; deterministic for a given config.
Corpus BuildCorpus(const CorpusConfig& config);

// Labeled cross-architecture pair over corpus indices.
struct CorpusPair {
  int a = 0;
  int b = 0;
  bool homologous = false;
};

// Constructs pairs for a specific ISA combination: every homologous pair
// present under both ISAs plus an equal number of random non-homologous
// pairs (capped by max_pairs; 0 = no cap).
std::vector<CorpusPair> MakePairs(const Corpus& corpus, int isa_a, int isa_b,
                                  util::Rng& rng, int max_pairs = 0);

// All six ISA combinations mixed together (Fig. 6 protocol).
std::vector<CorpusPair> MakeMixedPairs(const Corpus& corpus, util::Rng& rng,
                                       int max_pairs_per_comb = 0);

// Deterministic 8:2 train/test split (shuffles with `rng`).
void SplitPairs(std::vector<CorpusPair> pairs, util::Rng& rng,
                std::vector<CorpusPair>* train, std::vector<CorpusPair>* test);

}  // namespace asteria::dataset
