// Corpus snapshots: persist a built dataset::Corpus so repeated experiment
// runs skip the generate/compile/decompile pipeline entirely.
//
// A snapshot is a kKindCorpus container (docs/FORMATS.md): one CMET chunk
// carrying a fingerprint of the CorpusConfig that built the corpus plus the
// per-ISA counters, then one FUNC chunk per corpus function (names, ISA,
// preprocessed LCRS tree, callee data, ACFG). The `(package, function,
// isa) -> index` map is rebuilt on load. The source n-ary AST
// (CorpusConfig::keep_source_ast) is not persisted — corpora built with
// that flag refuse to snapshot rather than silently dropping data.
//
// LoadCorpus only accepts a snapshot whose config fingerprint matches the
// requested config (thread count excluded — it never changes the corpus by
// the ParallelFor determinism contract), so a stale cache can never leak a
// wrong corpus into an experiment.
#pragma once

#include <string>

#include "dataset/corpus.h"

namespace asteria::dataset {

// Fingerprint of every config field that affects the built corpus.
std::uint32_t CorpusConfigFingerprint(const CorpusConfig& config);

// Writes `corpus` (built with `config`) to `path`.
bool SaveCorpus(const Corpus& corpus, const CorpusConfig& config,
                const std::string& path, std::string* error);

// Loads a corpus snapshot; fails on corruption, truncation, or a config
// fingerprint mismatch, leaving `corpus` untouched.
bool LoadCorpus(Corpus* corpus, const CorpusConfig& config,
                const std::string& path, std::string* error);

// BuildCorpus with a snapshot cache: when `cache_path` is non-empty and
// holds a matching snapshot, loads it; otherwise builds the corpus and
// writes the snapshot for the next run. Falls back to a plain build when
// the cache cannot be written (logged, not fatal).
Corpus BuildOrLoadCorpus(const CorpusConfig& config,
                         const std::string& cache_path);

}  // namespace asteria::dataset
