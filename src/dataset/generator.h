// Random MiniC program generator — the corpus substitute for the paper's
// 260 buildroot packages (DESIGN.md §2).
//
// Programs are generated so that execution always terminates: loops are
// counted with protected induction variables, call graphs are DAGs with
// bounded call-nesting depth, and array indices are masked in the source
// when the extent is not statically known. Every generated program passes
// sema::Check and runs trap-free in the interpreter (property-tested).
#pragma once

#include <string>

#include "minic/ast.h"
#include "util/rng.h"

namespace asteria::dataset {

struct GeneratorConfig {
  int min_functions = 3;
  int max_functions = 8;
  int max_block_stmts = 5;
  int max_stmt_depth = 3;   // nesting of if/loops
  int max_expr_depth = 3;
  int max_loop_trip = 10;   // static loop bound
  int max_call_nesting = 2; // call-graph depth bound
  double call_probability = 0.25;
  double array_probability = 0.35;
  double goto_probability = 0.05;
  double switch_probability = 0.15;
};

// Generates one program ("package") with a deterministic structure for the
// given rng state. Function names are f0, f1, ...; functions only call
// lower-indexed functions.
minic::Program GenerateProgram(const GeneratorConfig& config, util::Rng& rng);

}  // namespace asteria::dataset
