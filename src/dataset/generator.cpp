#include "dataset/generator.h"

#include <algorithm>
#include <vector>

namespace asteria::dataset {

using minic::AssignOp;
using minic::BinOp;
using minic::Expr;
using minic::ExprId;
using minic::ExprKind;
using minic::Program;
using minic::Stmt;
using minic::StmtId;
using minic::StmtKind;
using minic::UnOp;

namespace {

struct FunctionSignature {
  std::string name;
  std::vector<bool> array_params;
  int call_nesting = 0;  // 0 = leaf
};

class Generator {
 public:
  Generator(const GeneratorConfig& config, util::Rng& rng)
      : config_(config), rng_(rng) {}

  Program Generate() {
    program_ = Program();
    signatures_.clear();
    const int count = static_cast<int>(
        rng_.NextInt(config_.min_functions, config_.max_functions));
    for (int i = 0; i < count; ++i) GenerateFunction(i);
    return std::move(program_);
  }

 private:
  struct ScopeVar {
    std::string name;
    bool is_array = false;
    std::int64_t array_size = 0;
    bool protected_var = false;  // loop induction variables
  };

  // ---- helpers -----------------------------------------------------------

  ExprId Num(std::int64_t v) {
    Expr e;
    e.kind = ExprKind::kNum;
    e.num = v;
    return program_.AddExpr(std::move(e));
  }

  ExprId Var(const std::string& name) {
    Expr e;
    e.kind = ExprKind::kVar;
    e.name = name;
    return program_.AddExpr(std::move(e));
  }

  ExprId Bin(BinOp op, ExprId lhs, ExprId rhs) {
    Expr e;
    e.kind = ExprKind::kBinary;
    e.bin_op = op;
    e.lhs = lhs;
    e.rhs = rhs;
    return program_.AddExpr(std::move(e));
  }

  ExprId Assign(AssignOp op, ExprId lhs, ExprId rhs) {
    Expr e;
    e.kind = ExprKind::kAssign;
    e.assign_op = op;
    e.lhs = lhs;
    e.rhs = rhs;
    return program_.AddExpr(std::move(e));
  }

  // arr[expr & (size-1)] — size is a power of two, so the mask keeps the
  // index in bounds without the compiler's wrap sequence.
  ExprId IndexMasked(const ScopeVar& array, ExprId index) {
    Expr e;
    e.kind = ExprKind::kIndex;
    e.lhs = Var(array.name);
    e.rhs = Bin(BinOp::kBitAnd, index, Num(array.array_size - 1));
    return program_.AddExpr(std::move(e));
  }

  StmtId MakeStmt(Stmt stmt) { return program_.AddStmt(std::move(stmt)); }

  StmtId ExprStmt(ExprId expr) {
    Stmt s;
    s.kind = StmtKind::kExpr;
    s.expr = expr;
    return MakeStmt(std::move(s));
  }

  // ---- scope -------------------------------------------------------------

  std::vector<const ScopeVar*> Scalars(bool writable) const {
    std::vector<const ScopeVar*> out;
    for (const auto& scope : scopes_) {
      for (const auto& var : scope) {
        if (var.is_array) continue;
        if (writable && var.protected_var) continue;
        out.push_back(&var);
      }
    }
    return out;
  }

  std::vector<const ScopeVar*> Arrays() const {
    std::vector<const ScopeVar*> out;
    for (const auto& scope : scopes_) {
      for (const auto& var : scope) {
        if (var.is_array) out.push_back(&var);
      }
    }
    return out;
  }

  std::string FreshName(const std::string& prefix) {
    return prefix + std::to_string(next_name_++);
  }

  // ---- expressions ------------------------------------------------------

  ExprId GenExpr(int depth) {
    const auto scalars = Scalars(/*writable=*/false);
    if (depth <= 0 || rng_.NextBool(0.3)) {
      // leaf
      if (!scalars.empty() && rng_.NextBool(0.7)) {
        return Var(rng_.Choice(scalars)->name);
      }
      return Num(rng_.NextInt(-64, 64) *
                 (rng_.NextBool(0.12) ? rng_.NextInt(1000, 100000) : 1));
    }
    const auto arrays = Arrays();
    const double call_ok =
        (fn_index_ > 0 && calls_left_ > 0) ? config_.call_probability : 0.0;
    const std::size_t choice = rng_.NextWeighted(
        {5.0 /*binary*/, 1.0 /*unary*/, arrays.empty() ? 0.0 : 2.0 /*index*/,
         call_ok * 10.0 /*call*/, 1.0 /*comparison*/});
    switch (choice) {
      case 0: {
        // Heavily weighted toward the add/sub/mul mix that dominates real C
        // code, so node-type histograms are similar across functions (makes
        // the Diaphora baseline face a realistic, non-trivial task).
        static constexpr BinOp kOps[] = {
            BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv,
            BinOp::kMod, BinOp::kBitAnd, BinOp::kBitOr, BinOp::kBitXor,
            BinOp::kShl, BinOp::kShr};
        static const std::vector<double> kWeights = {8, 5, 3, 1.2, 1,
                                                     1, 1, 1, 0.8, 0.8};
        BinOp op = kOps[rng_.NextWeighted(kWeights)];
        ExprId lhs = GenExpr(depth - 1);
        ExprId rhs = GenExpr(depth - 1);
        // Keep shift amounts small so values stay interesting.
        if (op == BinOp::kShl || op == BinOp::kShr) rhs = Num(rng_.NextInt(1, 7));
        return Bin(op, lhs, rhs);
      }
      case 1: {
        static constexpr UnOp kOps[] = {UnOp::kNeg, UnOp::kBitNot,
                                        UnOp::kLogicalNot};
        Expr e;
        e.kind = ExprKind::kUnary;
        e.un_op = kOps[rng_.NextBounded(std::size(kOps))];
        e.lhs = GenExpr(depth - 1);
        return program_.AddExpr(std::move(e));
      }
      case 2:
        return IndexMasked(*rng_.Choice(arrays), GenExpr(depth - 1));
      case 3:
        return GenCall(depth);
      default:
        return GenComparison(depth - 1);
    }
  }

  ExprId GenComparison(int depth) {
    static constexpr BinOp kCmp[] = {BinOp::kEq, BinOp::kNe, BinOp::kLt,
                                     BinOp::kGt, BinOp::kLe, BinOp::kGe};
    return Bin(kCmp[rng_.NextBounded(std::size(kCmp))], GenExpr(depth),
               GenExpr(depth));
  }

  ExprId GenCondition(int depth) {
    if (depth > 0 && rng_.NextBool(0.25)) {
      const BinOp op = rng_.NextBool() ? BinOp::kLogicalAnd : BinOp::kLogicalOr;
      return Bin(op, GenComparison(depth - 1), GenComparison(depth - 1));
    }
    return GenComparison(depth);
  }

  ExprId GenCall(int depth) {
    // Pick an earlier function whose nesting allows another level.
    std::vector<int> candidates;
    for (int i = 0; i < fn_index_; ++i) {
      if (signatures_[static_cast<std::size_t>(i)].call_nesting <
          config_.max_call_nesting) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty() || calls_left_ <= 0) return GenExpr(0);
    --calls_left_;
    const int callee = candidates[rng_.NextBounded(candidates.size())];
    const FunctionSignature& sig =
        signatures_[static_cast<std::size_t>(callee)];
    max_callee_nesting_ = std::max(max_callee_nesting_, sig.call_nesting + 1);
    Expr e;
    e.kind = ExprKind::kCall;
    e.name = sig.name;
    for (bool is_array : sig.array_params) {
      if (is_array) {
        const auto arrays = Arrays();
        if (!arrays.empty() && rng_.NextBool(0.8)) {
          e.args.push_back(Var(rng_.Choice(arrays)->name));
        } else {
          // String literal argument (becomes a byte array).
          // All literals have length >= 7 so the byte array (incl. NUL) is
          // at least 8 words: callees mask param-array indices with & 7.
          static constexpr const char* kStrings[] = {
              "GET /index.html", "content-length", "ssl_ctx", "firmware",
              "admin:admin", "udhcpc_renew", "%s:%d:%s", "/etc/passwd"};
          Expr str;
          str.kind = ExprKind::kStr;
          str.name = kStrings[rng_.NextBounded(std::size(kStrings))];
          e.args.push_back(program_.AddExpr(std::move(str)));
        }
      } else {
        e.args.push_back(GenExpr(std::max(0, depth - 2)));
      }
    }
    return program_.AddExpr(std::move(e));
  }

  // ---- statements --------------------------------------------------------

  StmtId GenBlock(int depth, bool in_loop) {
    Stmt block;
    block.kind = StmtKind::kBlock;
    scopes_.emplace_back();
    const int count = static_cast<int>(rng_.NextInt(1, std::max(1, fn_block_stmts_)));
    for (int i = 0; i < count; ++i) {
      block.stmts.push_back(GenStmt(depth, in_loop));
    }
    scopes_.pop_back();
    return MakeStmt(std::move(block));
  }

  StmtId GenStmt(int depth, bool in_loop) {
    const double deeper = depth > 0 ? 1.0 : 0.0;
    const std::size_t choice = rng_.NextWeighted({
        3.0,                                   // 0: assignment
        1.5,                                   // 1: declaration
        deeper * 2.0,                          // 2: if
        deeper * 1.5,                          // 3: for loop
        deeper * config_.switch_probability * 6.0,  // 4: switch
        in_loop ? 0.5 : 0.0,                   // 5: break/continue
        0.4,                                   // 6: early return
        fn_index_ > 0 ? config_.call_probability * 2.0 : 0.0,  // 7: call stmt
        1.0,                                   // 8: inc/dec statement
    });
    switch (choice) {
      case 0: return GenAssignment(depth);
      case 1: return GenDeclaration(depth);
      case 2: return GenIf(depth, in_loop);
      case 3: return GenFor(depth);
      case 4: return GenSwitch(depth, in_loop);
      case 5: {
        Stmt s;
        s.kind = rng_.NextBool(0.6) ? StmtKind::kBreak : StmtKind::kContinue;
        return MakeStmt(std::move(s));
      }
      case 6: {
        Stmt s;
        s.kind = StmtKind::kReturn;
        s.expr = GenExpr(config_.max_expr_depth - 1);
        return MakeStmt(std::move(s));
      }
      case 7: return ExprStmt(GenCall(config_.max_expr_depth));
      default: {
        const auto scalars = Scalars(/*writable=*/true);
        if (scalars.empty()) return GenAssignment(depth);
        Expr e;
        e.kind = ExprKind::kUnary;
        e.un_op = rng_.NextBool() ? UnOp::kPostInc : UnOp::kPreDec;
        e.lhs = Var(rng_.Choice(scalars)->name);
        return ExprStmt(program_.AddExpr(std::move(e)));
      }
    }
  }

  StmtId GenAssignment(int depth) {
    const auto scalars = Scalars(/*writable=*/true);
    const auto arrays = Arrays();
    const bool to_array = !arrays.empty() &&
                          rng_.NextBool(config_.array_probability);
    static constexpr AssignOp kOps[] = {
        AssignOp::kAssign, AssignOp::kAssign, AssignOp::kAssign,
        AssignOp::kAddAssign, AssignOp::kSubAssign, AssignOp::kMulAssign,
        AssignOp::kOrAssign, AssignOp::kXorAssign, AssignOp::kAndAssign};
    const AssignOp op = kOps[rng_.NextBounded(std::size(kOps))];
    const ExprId rhs = GenExpr(depth > 0 ? config_.max_expr_depth : 1);
    if (to_array) {
      return ExprStmt(Assign(
          op, IndexMasked(*rng_.Choice(arrays), GenExpr(1)), rhs));
    }
    if (scalars.empty()) return GenDeclaration(depth);
    return ExprStmt(Assign(op, Var(rng_.Choice(scalars)->name), rhs));
  }

  StmtId GenDeclaration(int depth) {
    Stmt s;
    s.kind = StmtKind::kDecl;
    if (!scalar_only_decls_ &&
        rng_.NextBool(config_.array_probability * 0.6)) {
      // Size >= 8: arrays may be passed to array params, which mask with &7.
      const std::int64_t size = std::int64_t{1} << rng_.NextInt(3, 5);
      s.name = FreshName("buf");
      s.array_size = size;
      scopes_.back().push_back({s.name, true, size, false});
    } else {
      s.name = FreshName("x");
      s.init = GenExpr(depth > 0 ? 2 : 1);
      scopes_.back().push_back({s.name, false, 0, false});
    }
    return MakeStmt(std::move(s));
  }

  StmtId GenIf(int depth, bool in_loop) {
    Stmt s;
    s.kind = StmtKind::kIf;
    s.expr = GenCondition(1);
    s.body = GenBlock(depth - 1, in_loop);
    if (rng_.NextBool(0.45)) s.else_body = GenBlock(depth - 1, in_loop);
    return MakeStmt(std::move(s));
  }

  StmtId GenFor(int depth) {
    // for (i = 0; i < K; i++) with i protected inside the body.
    const std::string loop_var = FreshName("i");
    Stmt decl;
    decl.kind = StmtKind::kDecl;
    decl.name = loop_var;
    decl.init = Num(0);
    const StmtId decl_id = MakeStmt(std::move(decl));

    scopes_.emplace_back();
    scopes_.back().push_back({loop_var, false, 0, /*protected=*/true});
    Stmt loop;
    loop.kind = StmtKind::kFor;
    loop.expr2 = Assign(AssignOp::kAssign, Var(loop_var), Num(0));
    loop.expr = Bin(BinOp::kLt, Var(loop_var),
                    Num(rng_.NextInt(2, config_.max_loop_trip)));
    Expr step;
    step.kind = ExprKind::kUnary;
    step.un_op = UnOp::kPostInc;
    step.lhs = Var(loop_var);
    loop.expr3 = program_.AddExpr(std::move(step));
    loop.body = GenBlock(depth - 1, /*in_loop=*/true);
    const StmtId loop_id = MakeStmt(std::move(loop));
    scopes_.pop_back();

    Stmt wrapper;
    wrapper.kind = StmtKind::kBlock;
    wrapper.stmts = {decl_id, loop_id};
    // Keep the loop variable declared in an enclosing block so the induction
    // variable is invisible (and unwritable) outside.
    return MakeStmt(std::move(wrapper));
  }

  StmtId GenSwitch(int depth, bool in_loop) {
    Stmt s;
    s.kind = StmtKind::kSwitch;
    s.expr = GenExpr(1);
    const int arms = static_cast<int>(rng_.NextInt(2, 6));
    const bool dense = rng_.NextBool(0.6);
    std::int64_t value = rng_.NextInt(0, 3);
    for (int i = 0; i < arms; ++i) {
      minic::SwitchCase arm;
      arm.match_value = value;
      value += dense ? 1 : rng_.NextInt(7, 5000);
      scopes_.emplace_back();
      const int stmts = static_cast<int>(rng_.NextInt(1, 2));
      for (int k = 0; k < stmts; ++k) {
        arm.body.push_back(GenStmt(std::max(0, depth - 1), in_loop));
      }
      scopes_.pop_back();
      s.cases.push_back(std::move(arm));
    }
    if (rng_.NextBool(0.7)) {
      minic::SwitchCase def;
      def.is_default = true;
      scopes_.emplace_back();
      def.body.push_back(GenStmt(0, in_loop));
      scopes_.pop_back();
      s.cases.push_back(std::move(def));
    }
    return MakeStmt(std::move(s));
  }

  // ---- functions ----------------------------------------------------------

  void GenerateFunction(int index) {
    fn_index_ = index;
    next_name_ = 0;
    calls_left_ = 3;
    max_callee_nesting_ = 0;
    // Heavy-tailed size distribution, like real binaries (paper Fig. 10(a):
    // half of all ASTs are under 20 nodes — accessors, stubs, tiny helpers).
    scalar_only_decls_ = false;
    switch (rng_.NextWeighted({5.5, 3.0, 2.2, 0.8})) {
      case 0:  // tiny: straight-line arithmetic helper
        fn_depth_ = 0;
        fn_block_stmts_ = 1;
        fn_body_stmts_ = 1;
        loop_probability_ = 0.0;
        if_probability_ = 0.1;
        scalar_only_decls_ = true;  // no arrays: no zero-fill loops
        break;
      case 1:  // small
        fn_depth_ = 1;
        fn_block_stmts_ = 2;
        fn_body_stmts_ = 2;
        loop_probability_ = 0.45;
        if_probability_ = 0.5;
        break;
      case 2:  // medium
        fn_depth_ = 2;
        fn_block_stmts_ = 3;
        fn_body_stmts_ = 3;
        loop_probability_ = 0.75;
        if_probability_ = 0.75;
        break;
      default:  // large
        fn_depth_ = config_.max_stmt_depth;
        fn_block_stmts_ = config_.max_block_stmts;
        fn_body_stmts_ = config_.max_block_stmts + 2;
        loop_probability_ = 0.9;
        if_probability_ = 0.9;
        break;
    }
    minic::Function fn;
    fn.name = "f" + std::to_string(index);
    const int params = static_cast<int>(rng_.NextInt(0, 4));
    scopes_.clear();
    scopes_.emplace_back();
    for (int p = 0; p < params; ++p) {
      minic::Param param;
      param.name = "p" + std::to_string(p);
      param.is_array = rng_.NextBool(0.25);
      if (param.is_array) {
        // Unknown extent: treat as size-8 window, masked accesses only.
        scopes_.back().push_back({param.name, true, 8, false});
      } else {
        scopes_.back().push_back({param.name, false, 0, false});
      }
      fn.params.push_back(std::move(param));
    }

    Stmt body;
    body.kind = StmtKind::kBlock;
    scopes_.emplace_back();
    const int stmts = static_cast<int>(rng_.NextInt(1, fn_body_stmts_));
    // A couple of locals make sure expressions have material to work with
    // (tiny functions get just one).
    body.stmts.push_back(GenDeclaration(1));
    if (!scalar_only_decls_) body.stmts.push_back(GenDeclaration(1));
    // The early-goto guard below is inserted at statement position 2, so
    // remember how many body-scope names exist once two statements have been
    // emitted: on the goto path only those declarations have executed.
    std::size_t names_at_guard = scopes_.back().size();
    bool guard_scope_captured = body.stmts.size() >= 2;
    for (int i = 0; i < stmts; ++i) {
      body.stmts.push_back(GenStmt(fn_depth_, false));
      if (!guard_scope_captured && body.stmts.size() >= 2) {
        names_at_guard = scopes_.back().size();
        guard_scope_captured = true;
      }
    }
    // Most real non-trivial functions mix straight-line code with a loop
    // and a branch; nudge each size class toward that shared shape.
    if (rng_.NextBool(loop_probability_)) {
      body.stmts.push_back(GenFor(std::max(1, fn_depth_)));
    }
    if (rng_.NextBool(if_probability_)) {
      body.stmts.push_back(GenIf(std::max(1, fn_depth_), false));
    }
    // Rare goto-cleanup idiom: if (cond) goto out; ... out: return expr.
    if (rng_.NextBool(config_.goto_probability)) {
      Stmt go;
      go.kind = StmtKind::kGoto;
      go.name = "out";
      Stmt iff;
      iff.kind = StmtKind::kIf;
      // The guard is inserted near the top of the body, so its condition
      // may only reference names in scope there: scalar parameters (or a
      // constant when the function has none).
      ExprId guard_value = minic::kNoId;
      for (const minic::Param& p : fn.params) {
        if (!p.is_array) {
          guard_value = Var(p.name);
          break;
        }
      }
      if (guard_value == minic::kNoId) guard_value = Num(rng_.NextInt(-8, 8));
      iff.expr = Bin(BinOp::kLt, guard_value, Num(rng_.NextInt(-4, 4)));
      iff.body = MakeStmt(std::move(go));
      body.stmts.insert(body.stmts.begin() + 2, MakeStmt(std::move(iff)));
      Stmt ret;
      ret.kind = StmtKind::kReturn;
      // The goto skips every declaration between the guard and the label,
      // so the label's return expression may only use names already in
      // scope at the guard; anything declared later is undeclared on the
      // early-exit path (the interpreter would trap, and compiled code
      // would read an uninitialized frame slot).
      std::vector<ScopeVar> after_guard(
          scopes_.back().begin() +
              static_cast<std::ptrdiff_t>(names_at_guard),
          scopes_.back().end());
      scopes_.back().resize(names_at_guard);
      ret.expr = GenExpr(1);
      scopes_.back().insert(scopes_.back().end(), after_guard.begin(),
                            after_guard.end());
      Stmt label;
      label.kind = StmtKind::kLabel;
      label.name = "out";
      label.body = MakeStmt(std::move(ret));
      body.stmts.push_back(MakeStmt(std::move(label)));
    } else {
      Stmt ret;
      ret.kind = StmtKind::kReturn;
      ret.expr = GenExpr(config_.max_expr_depth);
      body.stmts.push_back(MakeStmt(std::move(ret)));
    }
    scopes_.pop_back();
    fn.body = MakeStmt(std::move(body));

    FunctionSignature sig;
    sig.name = fn.name;
    for (const auto& p : fn.params) sig.array_params.push_back(p.is_array);
    sig.call_nesting = max_callee_nesting_;
    signatures_.push_back(std::move(sig));
    program_.AddFunction(std::move(fn));
  }

  const GeneratorConfig& config_;
  util::Rng& rng_;
  Program program_;
  std::vector<FunctionSignature> signatures_;
  std::vector<std::vector<ScopeVar>> scopes_;
  int fn_index_ = 0;
  int next_name_ = 0;
  int calls_left_ = 0;
  int max_callee_nesting_ = 0;
  // Per-function size-class knobs (set in GenerateFunction).
  int fn_depth_ = 2;
  int fn_block_stmts_ = 3;
  int fn_body_stmts_ = 3;
  double loop_probability_ = 0.75;
  double if_probability_ = 0.75;
  bool scalar_only_decls_ = false;
};

}  // namespace

minic::Program GenerateProgram(const GeneratorConfig& config, util::Rng& rng) {
  Generator generator(config, rng);
  return generator.Generate();
}

}  // namespace asteria::dataset
