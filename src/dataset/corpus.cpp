#include "dataset/corpus.h"

#include <algorithm>
#include <array>
#include <set>

#include "compiler/compile.h"
#include "decompiler/decompile.h"
#include "minic/sema.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace asteria::dataset {

namespace {

// Injects a per-function failure into corpus generation, exercising the
// fault-isolation path (function skipped + counted, build continues).
util::Failpoint fp_corpus_function("corpus.function");

// AST sizes are deterministic per seed, so this histogram's buckets are
// identical across runs and thread counts (the determinism contract).
util::Histogram h_ast_size("corpus.ast_size");

// Everything one package contributes to the corpus, accumulated privately
// per package index so generation can run on any number of threads and be
// merged in package order afterwards.
struct PackageResult {
  std::vector<CorpusFunction> functions;
  std::array<int, 4> binaries_per_isa{};
  std::array<int, 4> functions_per_isa{};
  int filtered_small = 0;
  util::PipelineReport report;
};

PackageResult BuildPackage(const CorpusConfig& config, int pkg) {
  PackageResult result;
  const std::string package = "pkg" + std::to_string(pkg);
  // Independent per-package stream: sequential and parallel builds see the
  // exact same draws (util::Rng::DeriveSeed is a pure function of its args).
  util::Rng rng(util::Rng::DeriveSeed(config.seed, static_cast<std::uint64_t>(pkg)));
  minic::Program program = GenerateProgram(config.generator, rng);
  std::string error;
  if (!minic::Check(program, &error)) {
    // Generator invariant violation; skip the package but scream.
    ASTERIA_LOG(Error) << "generated package failed sema: " << error;
    result.report.AddFailed(package + ": sema check failed: " + error);
    return result;
  }
  for (int isa = 0; isa < binary::kNumIsas; ++isa) {
    auto compiled = compiler::CompileProgram(
        program, static_cast<binary::Isa>(isa), package);
    if (!compiled.ok) {
      ASTERIA_LOG(Error) << "compile failed: " << compiled.error;
      result.report.AddFailed(package + ": compile failed: " + compiled.error);
      continue;
    }
    ++result.binaries_per_isa[static_cast<std::size_t>(isa)];
    auto decompiled =
        decompiler::DecompileModule(compiled.module, config.beta);
    for (std::size_t f = 0; f < decompiled.size(); ++f) {
      decompiler::DecompiledFunction& df = decompiled[f];
      ++result.functions_per_isa[static_cast<std::size_t>(isa)];
      if (fp_corpus_function.ShouldFail()) {
        result.report.AddFailed(package + "/" + df.name +
                                ": injected failure (failpoint "
                                "corpus.function)");
        continue;
      }
      if (!df.error.empty()) {
        result.report.AddFailed(package + "/" + df.name + ": " + df.error);
        continue;
      }
      if (df.tree.size() < config.min_ast_size) {
        ++result.filtered_small;
        result.report.AddSkipped();
        continue;
      }
      result.report.AddOk();
      h_ast_size.Observe(static_cast<std::uint64_t>(df.tree.size()));
      CorpusFunction entry;
      entry.package = package;
      entry.function = df.name;
      entry.isa = isa;
      entry.preprocessed = ast::ToLeftChildRightSibling(df.tree);
      entry.ast_size = df.tree.size();
      entry.callee_count = df.callee_count;
      entry.callee_sizes = std::move(df.callee_sizes);
      entry.instruction_count = df.instruction_count;
      entry.acfg = cfg::BuildAcfg(
          compiled.module.functions[f]);
      if (config.keep_source_ast) entry.tree = std::move(df.tree);
      result.functions.push_back(std::move(entry));
    }
  }
  return result;
}

}  // namespace

Corpus BuildCorpus(const CorpusConfig& config) {
  ASTERIA_SPAN("corpus-build");
  std::vector<PackageResult> results(
      static_cast<std::size_t>(std::max(0, config.packages)));
  util::ParallelFor(config.packages, config.threads, [&](std::int64_t pkg) {
    results[static_cast<std::size_t>(pkg)] =
        BuildPackage(config, static_cast<int>(pkg));
  });
  // Merge in package order; indices match the sequential build exactly.
  Corpus corpus;
  corpus.report.stage = "corpus-build";
  for (PackageResult& result : results) {
    corpus.report.Merge(result.report);
    for (int isa = 0; isa < binary::kNumIsas; ++isa) {
      corpus.binaries_per_isa[static_cast<std::size_t>(isa)] +=
          result.binaries_per_isa[static_cast<std::size_t>(isa)];
      corpus.functions_per_isa[static_cast<std::size_t>(isa)] +=
          result.functions_per_isa[static_cast<std::size_t>(isa)];
    }
    corpus.filtered_small += result.filtered_small;
    for (CorpusFunction& entry : result.functions) {
      corpus.index[{entry.package, entry.function, entry.isa}] =
          static_cast<int>(corpus.functions.size());
      corpus.functions.push_back(std::move(entry));
    }
  }
  util::PublishPipelineReport(corpus.report);
  return corpus;
}

std::vector<CorpusPair> MakePairs(const Corpus& corpus, int isa_a, int isa_b,
                                  util::Rng& rng, int max_pairs) {
  std::vector<CorpusPair> pairs;
  // Homologous: same (package, function) under both ISAs.
  std::vector<int> pool_b;  // candidate partners for negatives
  for (const auto& [key, idx] : corpus.index) {
    if (std::get<2>(key) == isa_b) pool_b.push_back(idx);
  }
  if (pool_b.empty()) return pairs;
  for (const auto& [key, idx_a] : corpus.index) {
    if (std::get<2>(key) != isa_a) continue;
    const int idx_b =
        corpus.Find(std::get<0>(key), std::get<1>(key), isa_b);
    if (idx_b < 0) continue;
    pairs.push_back({idx_a, idx_b, true});
    // One negative per positive: a random non-matching isa_b function,
    // preferring a size-matched candidate (the hard negatives that dominate
    // a real clone-search corpus; trivially size-mismatched negatives would
    // make every method look perfect).
    const int size_a =
        corpus.functions[static_cast<std::size_t>(idx_a)].ast_size;
    int fallback = -1;
    double best_ratio = -1.0;
    for (int attempt = 0; attempt < 24; ++attempt) {
      const int other = pool_b[rng.NextBounded(pool_b.size())];
      const CorpusFunction& cand = corpus.functions[static_cast<std::size_t>(other)];
      if (cand.package == std::get<0>(key) &&
          cand.function == std::get<1>(key)) {
        continue;
      }
      // Prefer same-package negatives (the paper's non-homologous pairs
      // come from the same binaries) and similar AST sizes; keep the best
      // candidate seen.
      double ratio =
          static_cast<double>(std::min(size_a, cand.ast_size)) /
          static_cast<double>(std::max(size_a, cand.ast_size));
      if (cand.package == std::get<0>(key)) ratio += 0.15;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        fallback = other;
      }
      if (best_ratio >= 0.95) break;
    }
    if (fallback >= 0) pairs.push_back({idx_a, fallback, false});
  }
  rng.Shuffle(pairs);
  if (max_pairs > 0 && static_cast<int>(pairs.size()) > max_pairs) {
    pairs.resize(static_cast<std::size_t>(max_pairs));
  }
  return pairs;
}

std::vector<CorpusPair> MakeMixedPairs(const Corpus& corpus, util::Rng& rng,
                                       int max_pairs_per_comb) {
  std::vector<CorpusPair> all;
  for (int a = 0; a < binary::kNumIsas; ++a) {
    for (int b = a + 1; b < binary::kNumIsas; ++b) {
      auto pairs = MakePairs(corpus, a, b, rng, max_pairs_per_comb);
      all.insert(all.end(), pairs.begin(), pairs.end());
    }
  }
  rng.Shuffle(all);
  return all;
}

void SplitPairs(std::vector<CorpusPair> pairs, util::Rng& rng,
                std::vector<CorpusPair>* train,
                std::vector<CorpusPair>* test) {
  rng.Shuffle(pairs);
  const std::size_t train_count = pairs.size() * 8 / 10;
  train->assign(pairs.begin(), pairs.begin() + static_cast<std::ptrdiff_t>(train_count));
  test->assign(pairs.begin() + static_cast<std::ptrdiff_t>(train_count), pairs.end());
}

}  // namespace asteria::dataset
