#include "dataset/corpus_io.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "store/container.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace asteria::dataset {

namespace {

util::Counter c_cache_hit("corpus.cache_hit");
util::Counter c_cache_miss("corpus.cache_miss");
util::Counter c_cache_quarantined("corpus.cache_quarantined");

bool FileExists(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  std::fclose(file);
  return true;
}

constexpr std::uint32_t kTagCorpusMeta = store::FourCc('C', 'M', 'E', 'T');
constexpr std::uint32_t kTagCorpusFunction = store::FourCc('F', 'U', 'N', 'C');
constexpr std::uint32_t kCorpusSchemaVersion = 1;

// Serializes the config fields that determine the built corpus (threads
// excluded: it never changes the output by the determinism contract).
void PutConfig(const CorpusConfig& config, store::ChunkBuilder* out) {
  out->PutI32(config.packages);
  out->PutU64(config.seed);
  out->PutI32(config.min_ast_size);
  out->PutI32(config.beta);
  const GeneratorConfig& g = config.generator;
  out->PutI32(g.min_functions);
  out->PutI32(g.max_functions);
  out->PutI32(g.max_block_stmts);
  out->PutI32(g.max_stmt_depth);
  out->PutI32(g.max_expr_depth);
  out->PutI32(g.max_loop_trip);
  out->PutI32(g.max_call_nesting);
  out->PutF64(g.call_probability);
  out->PutF64(g.array_probability);
  out->PutF64(g.goto_probability);
  out->PutF64(g.switch_probability);
}

void PutBinaryAst(const ast::BinaryAst& tree, store::ChunkBuilder* out) {
  out->PutU32(static_cast<std::uint32_t>(tree.size()));
  out->PutI32(tree.root());
  for (ast::NodeId id = 0; id < tree.size(); ++id) {
    const ast::BinaryNode& node = tree.node(id);
    out->PutI32(node.label);
    out->PutI32(node.payload_bucket);
    out->PutI32(node.left);
    out->PutI32(node.right);
  }
}

bool GetBinaryAst(store::ChunkParser* parser, ast::BinaryAst* tree,
                  std::string* error) {
  std::uint32_t count = 0;
  ast::NodeId root = ast::kInvalidNode;
  if (!parser->GetU32(&count, error) || !parser->GetI32(&root, error)) {
    return false;
  }
  // 16 payload bytes per node bounds `count` against the chunk size.
  if (static_cast<std::uint64_t>(count) * 16 > parser->remaining()) {
    *error = "binary AST declares " + std::to_string(count) +
             " nodes but the chunk is too small — corrupted";
    return false;
  }
  std::vector<ast::BinaryNode> nodes(count);
  for (ast::BinaryNode& node : nodes) {
    if (!parser->GetI32(&node.label, error) ||
        !parser->GetI32(&node.payload_bucket, error) ||
        !parser->GetI32(&node.left, error) ||
        !parser->GetI32(&node.right, error)) {
      return false;
    }
  }
  if (count > 0 && (root < 0 || root >= static_cast<ast::NodeId>(count))) {
    *error = "binary AST root " + std::to_string(root) + " out of range";
    return false;
  }
  *tree = ast::BinaryAst(std::move(nodes), root);
  return true;
}

void PutAcfg(const cfg::Acfg& acfg, store::ChunkBuilder* out) {
  out->PutU32(static_cast<std::uint32_t>(acfg.nodes.size()));
  for (const cfg::AcfgNode& node : acfg.nodes) {
    out->PutF64Array(node.features.data(), node.features.size());
  }
  for (const std::vector<int>& successors : acfg.adjacency) {
    out->PutU32(static_cast<std::uint32_t>(successors.size()));
    for (int succ : successors) out->PutI32(succ);
  }
}

bool GetAcfg(store::ChunkParser* parser, cfg::Acfg* acfg, std::string* error) {
  std::uint32_t count = 0;
  if (!parser->GetU32(&count, error)) return false;
  if (static_cast<std::uint64_t>(count) * cfg::kAcfgFeatureDim * 8 >
      parser->remaining()) {
    *error = "ACFG declares " + std::to_string(count) +
             " nodes but the chunk is too small — corrupted";
    return false;
  }
  acfg->nodes.resize(count);
  for (cfg::AcfgNode& node : acfg->nodes) {
    if (!parser->GetF64Array(node.features.data(), node.features.size(),
                             error)) {
      return false;
    }
  }
  acfg->adjacency.resize(count);
  for (std::vector<int>& successors : acfg->adjacency) {
    std::uint32_t degree = 0;
    if (!parser->GetU32(&degree, error)) return false;
    if (static_cast<std::uint64_t>(degree) * 4 > parser->remaining()) {
      *error = "ACFG adjacency list truncated";
      return false;
    }
    successors.resize(degree);
    for (int& succ : successors) {
      if (!parser->GetI32(&succ, error)) return false;
      if (succ < 0 || succ >= static_cast<int>(count)) {
        *error = "ACFG successor " + std::to_string(succ) + " out of range";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::uint32_t CorpusConfigFingerprint(const CorpusConfig& config) {
  store::ChunkBuilder fields;
  PutConfig(config, &fields);
  return store::Crc32(fields.bytes().data(), fields.size());
}

bool SaveCorpus(const Corpus& corpus, const CorpusConfig& config,
                const std::string& path, std::string* error) {
  if (config.keep_source_ast) {
    *error = "corpus snapshots do not persist the source n-ary AST; build "
             "with keep_source_ast=false to cache";
    return false;
  }
  store::Writer writer;
  if (!writer.Open(path, store::kKindCorpus, error)) return false;

  store::ChunkBuilder meta;
  meta.PutU32(kCorpusSchemaVersion);
  meta.PutU32(CorpusConfigFingerprint(config));
  for (int count : corpus.binaries_per_isa) meta.PutI32(count);
  for (int count : corpus.functions_per_isa) meta.PutI32(count);
  meta.PutI32(corpus.filtered_small);
  meta.PutU64(corpus.functions.size());
  if (!writer.WriteChunk(kTagCorpusMeta, meta, error)) return false;

  for (const CorpusFunction& fn : corpus.functions) {
    store::ChunkBuilder chunk;
    chunk.PutString(fn.package);
    chunk.PutString(fn.function);
    chunk.PutI32(fn.isa);
    chunk.PutI32(fn.ast_size);
    chunk.PutI32(fn.callee_count);
    chunk.PutU32(static_cast<std::uint32_t>(fn.callee_sizes.size()));
    for (int size : fn.callee_sizes) chunk.PutI32(size);
    chunk.PutI32(fn.instruction_count);
    PutBinaryAst(fn.preprocessed, &chunk);
    PutAcfg(fn.acfg, &chunk);
    if (!writer.WriteChunk(kTagCorpusFunction, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool LoadCorpus(Corpus* corpus, const CorpusConfig& config,
                const std::string& path, std::string* error) {
  store::Reader reader;
  if (!reader.Open(path, store::kKindCorpus, error)) return false;

  Corpus loaded;
  loaded.report.stage = "corpus-load";
  std::uint64_t declared_functions = 0;
  bool saw_meta = false;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const store::ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagCorpusMeta && info.tag != kTagCorpusFunction) continue;
    if (!reader.ReadChunk(i, &payload, error)) return false;
    store::ChunkParser parser(payload);
    if (info.tag == kTagCorpusMeta) {
      std::uint32_t schema = 0, fingerprint = 0;
      if (!parser.GetU32(&schema, error) ||
          !parser.GetU32(&fingerprint, error)) {
        return false;
      }
      if (schema != kCorpusSchemaVersion) {
        *error = path + ": unsupported corpus snapshot version " +
                 std::to_string(schema);
        return false;
      }
      if (fingerprint != CorpusConfigFingerprint(config)) {
        *error = path + ": snapshot was built from a different CorpusConfig "
                        "(fingerprint mismatch) — stale cache";
        return false;
      }
      for (int& count : loaded.binaries_per_isa) {
        if (!parser.GetI32(&count, error)) return false;
      }
      for (int& count : loaded.functions_per_isa) {
        if (!parser.GetI32(&count, error)) return false;
      }
      if (!parser.GetI32(&loaded.filtered_small, error) ||
          !parser.GetU64(&declared_functions, error)) {
        return false;
      }
      saw_meta = true;
      continue;
    }
    if (!saw_meta) {
      *error = path + ": FUNC chunk before CMET metadata";
      return false;
    }
    CorpusFunction fn;
    std::uint32_t callee_sizes = 0;
    if (!parser.GetString(&fn.package, error) ||
        !parser.GetString(&fn.function, error) ||
        !parser.GetI32(&fn.isa, error) ||
        !parser.GetI32(&fn.ast_size, error) ||
        !parser.GetI32(&fn.callee_count, error) ||
        !parser.GetU32(&callee_sizes, error)) {
      return false;
    }
    if (static_cast<std::uint64_t>(callee_sizes) * 4 > parser.remaining()) {
      *error = path + ": callee-size list truncated";
      return false;
    }
    fn.callee_sizes.resize(callee_sizes);
    for (int& size : fn.callee_sizes) {
      if (!parser.GetI32(&size, error)) return false;
    }
    if (!parser.GetI32(&fn.instruction_count, error) ||
        !GetBinaryAst(&parser, &fn.preprocessed, error) ||
        !GetAcfg(&parser, &fn.acfg, error)) {
      return false;
    }
    loaded.index[{fn.package, fn.function, fn.isa}] =
        static_cast<int>(loaded.functions.size());
    loaded.functions.push_back(std::move(fn));
    loaded.report.AddOk();
  }
  if (!saw_meta) {
    *error = path + ": missing CMET metadata chunk";
    return false;
  }
  if (loaded.functions.size() != declared_functions) {
    *error = path + ": CMET declares " + std::to_string(declared_functions) +
             " functions but " + std::to_string(loaded.functions.size()) +
             " FUNC chunks were found";
    return false;
  }
  *corpus = std::move(loaded);
  return true;
}

Corpus BuildOrLoadCorpus(const CorpusConfig& config,
                         const std::string& cache_path) {
  if (cache_path.empty()) return BuildCorpus(config);
  std::string error;
  Corpus corpus;
  util::Timer timer;
  if (LoadCorpus(&corpus, config, cache_path, &error)) {
    c_cache_hit.Increment();
    ASTERIA_LOG(Info) << "corpus cache hit: " << cache_path << " ("
                      << corpus.functions.size() << " functions in "
                      << timer.ElapsedSeconds() << "s)";
    return corpus;
  }
  c_cache_miss.Increment();
  ASTERIA_LOG(Info) << "corpus cache miss (" << error << "); rebuilding";
  // A cache that exists but failed to load is corrupt or stale: move it
  // aside (never silently delete evidence) so the rebuild below can write a
  // fresh snapshot in its place.
  if (FileExists(cache_path)) {
    std::string quarantined;
    if (store::QuarantineFile(cache_path, &quarantined)) {
      c_cache_quarantined.Increment();
      ASTERIA_LOG(Warn) << "quarantined corrupt corpus cache to "
                        << quarantined;
    }
  }
  corpus = BuildCorpus(config);
  if (!SaveCorpus(corpus, config, cache_path, &error)) {
    ASTERIA_LOG(Warn) << "corpus cache write failed: " << error;
  } else {
    ASTERIA_LOG(Info) << "corpus cached to " << cache_path;
  }
  return corpus;
}

}  // namespace asteria::dataset
