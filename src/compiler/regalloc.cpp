#include "compiler/regalloc.h"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "compiler/liveness.h"

namespace asteria::compiler {

namespace {

struct Assignment {
  // vreg -> physical register, or -1 when spilled.
  std::unordered_map<int, int> reg_of;
  // vreg -> frame slot for spilled vregs.
  std::unordered_map<int, int> slot_of;
};

Assignment LinearScan(IrFunction* fn, int num_regs, RegAllocStats* stats) {
  Assignment assignment;
  const LivenessInfo liveness = ComputeLiveness(*fn);
  std::vector<Interval> intervals = ComputeIntervals(*fn, liveness);

  std::vector<int> free_regs;
  for (int r = num_regs - 1; r >= 0; --r) free_regs.push_back(r);
  // Active intervals sorted by increasing end.
  std::list<Interval> active;

  auto spill_to_slot = [&](int vreg) {
    assignment.reg_of[vreg] = -1;
    assignment.slot_of[vreg] = fn->frame_words++;
    ++stats->spilled_vregs;
  };

  for (const Interval& current : intervals) {
    // Expire intervals that ended before this one starts.
    for (auto it = active.begin(); it != active.end();) {
      if (it->end < current.start) {
        free_regs.push_back(assignment.reg_of[it->vreg]);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
    if (!free_regs.empty()) {
      const int reg = free_regs.back();
      free_regs.pop_back();
      assignment.reg_of[current.vreg] = reg;
      auto pos = std::find_if(active.begin(), active.end(),
                              [&](const Interval& i) { return i.end > current.end; });
      active.insert(pos, current);
      continue;
    }
    // Spill the interval with the furthest end (Poletto heuristic).
    Interval& victim = active.back();
    if (victim.end > current.end) {
      assignment.reg_of[current.vreg] = assignment.reg_of[victim.vreg];
      spill_to_slot(victim.vreg);
      active.pop_back();
      auto pos = std::find_if(active.begin(), active.end(),
                              [&](const Interval& i) { return i.end > current.end; });
      active.insert(pos, current);
    } else {
      spill_to_slot(current.vreg);
    }
  }
  return assignment;
}

// Rewrites one function from vregs to physical registers, inserting spill
// loads/stores around instructions that touch spilled vregs.
void RewriteWithAssignment(IrFunction* fn, const Assignment& assignment,
                           RegAllocStats* stats) {
  auto phys = [&](int v) -> int {
    if (v == kNoVReg) return kNoVReg;
    if (v == kFpVReg) return binary::kFramePointerReg;
    auto it = assignment.reg_of.find(v);
    if (it == assignment.reg_of.end()) return kScratchA;  // dead def
    return it->second;
  };
  auto slot = [&](int v) { return assignment.slot_of.at(v); };
  auto spilled = [&](int v) {
    if (v == kNoVReg || v == kFpVReg) return false;
    auto it = assignment.reg_of.find(v);
    return it != assignment.reg_of.end() && it->second == -1;
  };

  for (IrBlock& block : fn->blocks) {
    std::vector<IrInsn> out;
    out.reserve(block.insns.size());
    for (IrInsn insn : block.insns) {
      const bool defines = DefinesA(insn.op) && insn.a != kNoVReg;
      // Uses in field a (stores, args, rets, compares, jump tables).
      const bool a_is_use = !defines && insn.a != kNoVReg &&
                            (insn.op == Opcode::kCmp || insn.op == Opcode::kCmpI ||
                             insn.op == Opcode::kStore || insn.op == Opcode::kStoreI ||
                             insn.op == Opcode::kArg || insn.op == Opcode::kRet ||
                             insn.op == Opcode::kJmpTable);
      auto reload = [&](int v, int scratch) {
        out.push_back(IrInsn::Make(Opcode::kLoadI, scratch,
                                   binary::kFramePointerReg, kNoVReg,
                                   slot(v)));
        ++stats->spill_loads;
        return scratch;
      };
      int a = insn.a, b = insn.b, c = insn.c;
      if (b != kNoVReg) b = spilled(b) ? reload(insn.b, kScratchB) : phys(b);
      if (c != kNoVReg) c = spilled(c) ? reload(insn.c, kScratchC) : phys(c);
      bool store_def = false;
      if (a != kNoVReg) {
        if (a_is_use) {
          a = spilled(a) ? reload(insn.a, kScratchA) : phys(a);
        } else if (defines) {
          if (spilled(a)) {
            store_def = true;
            a = kScratchA;
          } else {
            a = phys(a);
          }
        }
      }
      const int def_slot = store_def ? slot(insn.a) : -1;
      insn.a = a;
      insn.b = b;
      insn.c = c;
      // kCsel additionally *reads* its destination on neither-side... no:
      // csel always writes; but the triangle form uses the old value as one
      // of its operands (already handled as a normal use of b/c).
      out.push_back(insn);
      if (store_def) {
        out.push_back(IrInsn::Make(Opcode::kStoreI, kScratchA,
                                   binary::kFramePointerReg, kNoVReg,
                                   def_slot));
        ++stats->spill_stores;
      }
    }
    block.insns = std::move(out);
  }
}

bool IsThreeOpAlu(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr:
      return true;
    default:
      return false;
  }
}

bool IsCommutative(Opcode op) {
  return op == Opcode::kAdd || op == Opcode::kMul || op == Opcode::kAnd ||
         op == Opcode::kOr || op == Opcode::kXor;
}

bool IsTwoOpImmAlu(Opcode op) {
  switch (op) {
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI:
      return true;
    default:
      return false;
  }
}

// Enforces the dst==lhs constraint of two-operand ISAs after allocation.
void TwoOperandFixup(IrFunction* fn, RegAllocStats* stats) {
  for (IrBlock& block : fn->blocks) {
    std::vector<IrInsn> out;
    out.reserve(block.insns.size());
    for (IrInsn insn : block.insns) {
      if (IsThreeOpAlu(insn.op) && insn.a != insn.b) {
        if (insn.a == insn.c) {
          if (IsCommutative(insn.op)) {
            std::swap(insn.b, insn.c);
          } else {
            // mov tmp, c; mov dst, b; op dst, dst, tmp
            const int tmp = (insn.b == kScratchB) ? kScratchC : kScratchB;
            out.push_back(IrInsn::Make(Opcode::kMov, tmp, insn.c));
            out.push_back(IrInsn::Make(Opcode::kMov, insn.a, insn.b));
            insn.b = insn.a;
            insn.c = tmp;
            out.push_back(insn);
            stats->fixup_moves += 2;
            continue;
          }
        }
        if (insn.a != insn.b) {
          out.push_back(IrInsn::Make(Opcode::kMov, insn.a, insn.b));
          insn.b = insn.a;
          ++stats->fixup_moves;
        }
      } else if (IsTwoOpImmAlu(insn.op) && insn.a != insn.b) {
        out.push_back(IrInsn::Make(Opcode::kMov, insn.a, insn.b));
        insn.b = insn.a;
        ++stats->fixup_moves;
      }
      out.push_back(insn);
    }
    block.insns = std::move(out);
  }
}

}  // namespace

RegAllocStats AllocateRegisters(IrFunction* fn, const binary::IsaSpec& spec) {
  RegAllocStats stats;
  const Assignment assignment = LinearScan(fn, spec.allocatable_registers,
                                           &stats);
  RewriteWithAssignment(fn, assignment, &stats);
  if (spec.two_operand_alu) TwoOperandFixup(fn, &stats);
  return stats;
}

}  // namespace asteria::compiler
