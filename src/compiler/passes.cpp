#include "compiler/passes.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "minic/interp.h"

namespace asteria::compiler {

namespace sem = minic::semantics;

namespace {

bool IsPure(Opcode op) {
  switch (op) {
    case Opcode::kMovImm:
    case Opcode::kMovStr:
    case Opcode::kMov:
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI:
    case Opcode::kNeg: case Opcode::kNot: case Opcode::kLea:
    case Opcode::kSetCond: case Opcode::kCsel:
    case Opcode::kFrameAddr:
    case Opcode::kLoad: case Opcode::kLoadI:
      return true;
    default:
      return false;
  }
}

bool TouchesFlags(Opcode op) {
  return op == Opcode::kCmp || op == Opcode::kCmpI;
}

bool ReadsFlags(Opcode op) {
  return op == Opcode::kSetCond || op == Opcode::kCsel ||
         op == Opcode::kBrCond;
}

// Replaces vreg uses in an instruction according to `rename`, returning a
// value < 0 from rename to keep the original.
template <typename Fn>
void RenameUses(IrInsn* insn, Fn rename) {
  auto apply = [&](int* field) {
    if (*field == kNoVReg) return;
    const int replacement = rename(*field);
    if (replacement >= 0) *field = replacement;
  };
  if (!DefinesA(insn->op)) apply(&insn->a);
  apply(&insn->b);
  apply(&insn->c);
}

}  // namespace

void CopyPropagate(IrFunction* fn) {
  for (IrBlock& block : fn->blocks) {
    // copy_of[v] = w means v currently holds the same value as w.
    std::unordered_map<int, int> copy_of;
    auto resolve = [&](int v) -> int {
      auto it = copy_of.find(v);
      return it == copy_of.end() ? -1 : it->second;
    };
    for (IrInsn& insn : block.insns) {
      RenameUses(&insn, resolve);
      if (DefinesA(insn.op) && insn.a != kNoVReg) {
        // The def invalidates all copies involving insn.a.
        copy_of.erase(insn.a);
        for (auto it = copy_of.begin(); it != copy_of.end();) {
          if (it->second == insn.a) {
            it = copy_of.erase(it);
          } else {
            ++it;
          }
        }
        if (insn.op == Opcode::kMov && insn.b != insn.a) {
          copy_of[insn.a] = insn.b;
        }
      }
    }
  }
}

void FoldConstants(IrFunction* fn) {
  for (IrBlock& block : fn->blocks) {
    std::unordered_map<int, std::int64_t> consts;
    auto known = [&](int v, std::int64_t* out) {
      auto it = consts.find(v);
      if (it == consts.end()) return false;
      *out = it->second;
      return true;
    };
    for (IrInsn& insn : block.insns) {
      const bool defines = DefinesA(insn.op) && insn.a != kNoVReg;
      std::int64_t bv = 0, cv = 0;
      switch (insn.op) {
        case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
        case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
        case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
        case Opcode::kShr:
          if (known(insn.b, &bv) && known(insn.c, &cv)) {
            std::int64_t result = 0;
            switch (insn.op) {
              case Opcode::kAdd: result = sem::Add(bv, cv); break;
              case Opcode::kSub: result = sem::Sub(bv, cv); break;
              case Opcode::kMul: result = sem::Mul(bv, cv); break;
              case Opcode::kDiv: result = sem::Div(bv, cv); break;
              case Opcode::kMod: result = sem::Mod(bv, cv); break;
              case Opcode::kAnd: result = bv & cv; break;
              case Opcode::kOr: result = bv | cv; break;
              case Opcode::kXor: result = bv ^ cv; break;
              case Opcode::kShl: result = sem::Shl(bv, cv); break;
              case Opcode::kShr: result = sem::Shr(bv, cv); break;
              default: break;
            }
            insn = IrInsn::Make(Opcode::kMovImm, insn.a, kNoVReg, kNoVReg,
                                result);
          }
          break;
        case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
        case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
        case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
        case Opcode::kShrI:
          if (known(insn.b, &bv)) {
            std::int64_t result = 0;
            switch (insn.op) {
              case Opcode::kAddI: result = sem::Add(bv, insn.imm); break;
              case Opcode::kSubI: result = sem::Sub(bv, insn.imm); break;
              case Opcode::kMulI: result = sem::Mul(bv, insn.imm); break;
              case Opcode::kDivI: result = sem::Div(bv, insn.imm); break;
              case Opcode::kModI: result = sem::Mod(bv, insn.imm); break;
              case Opcode::kAndI: result = bv & insn.imm; break;
              case Opcode::kOrI: result = bv | insn.imm; break;
              case Opcode::kXorI: result = bv ^ insn.imm; break;
              case Opcode::kShlI: result = sem::Shl(bv, insn.imm); break;
              case Opcode::kShrI: result = sem::Shr(bv, insn.imm); break;
              default: break;
            }
            insn = IrInsn::Make(Opcode::kMovImm, insn.a, kNoVReg, kNoVReg,
                                result);
          }
          break;
        case Opcode::kNeg:
          if (known(insn.b, &bv)) {
            insn = IrInsn::Make(Opcode::kMovImm, insn.a, kNoVReg, kNoVReg,
                                sem::Neg(bv));
          }
          break;
        case Opcode::kNot:
          if (known(insn.b, &bv)) {
            insn = IrInsn::Make(Opcode::kMovImm, insn.a, kNoVReg, kNoVReg,
                                ~bv);
          }
          break;
        case Opcode::kMov:
          if (known(insn.b, &bv)) {
            insn = IrInsn::Make(Opcode::kMovImm, insn.a, kNoVReg, kNoVReg, bv);
          }
          break;
        default:
          break;
      }
      if (defines) {
        if (insn.op == Opcode::kMovImm) {
          consts[insn.a] = insn.imm;
        } else {
          consts.erase(insn.a);
        }
      }
    }
  }
}

void FoldImmediates(IrFunction* fn, const binary::IsaSpec& spec) {
  auto imm_form = [](Opcode op) {
    switch (op) {
      case Opcode::kAdd: return Opcode::kAddI;
      case Opcode::kSub: return Opcode::kSubI;
      case Opcode::kMul: return Opcode::kMulI;
      case Opcode::kDiv: return Opcode::kDivI;
      case Opcode::kMod: return Opcode::kModI;
      case Opcode::kAnd: return Opcode::kAndI;
      case Opcode::kOr: return Opcode::kOrI;
      case Opcode::kXor: return Opcode::kXorI;
      case Opcode::kShl: return Opcode::kShlI;
      case Opcode::kShr: return Opcode::kShrI;
      default: return Opcode::kNop;
    }
  };
  auto commutative = [](Opcode op) {
    return op == Opcode::kAdd || op == Opcode::kMul || op == Opcode::kAnd ||
           op == Opcode::kOr || op == Opcode::kXor;
  };
  for (IrBlock& block : fn->blocks) {
    std::unordered_map<int, std::int64_t> consts;
    for (IrInsn& insn : block.insns) {
      const Opcode imm_op = imm_form(insn.op);
      if (imm_op != Opcode::kNop) {
        auto cit = consts.find(insn.c);
        if (cit != consts.end() && std::llabs(cit->second) <= spec.max_alu_imm) {
          insn.op = imm_op;
          insn.imm = cit->second;
          insn.c = kNoVReg;
        } else if (commutative(insn.op)) {
          auto bit = consts.find(insn.b);
          if (bit != consts.end() &&
              std::llabs(bit->second) <= spec.max_alu_imm) {
            insn.op = imm_op;
            insn.imm = bit->second;
            insn.b = insn.c;
            insn.c = kNoVReg;
          }
        }
      } else if (insn.op == Opcode::kCmp) {
        auto bit = consts.find(insn.b);
        if (bit != consts.end() && std::llabs(bit->second) <= spec.max_alu_imm) {
          insn.op = Opcode::kCmpI;
          insn.imm = bit->second;
          insn.b = kNoVReg;
        }
      }
      if (DefinesA(insn.op) && insn.a != kNoVReg) {
        if (insn.op == Opcode::kMovImm) {
          consts[insn.a] = insn.imm;
        } else {
          consts.erase(insn.a);
        }
      }
    }
  }
}

void EliminateDeadCode(IrFunction* fn) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> use_count(static_cast<std::size_t>(fn->num_vregs), 0);
    std::vector<int> uses;
    for (const IrBlock& block : fn->blocks) {
      for (const IrInsn& insn : block.insns) {
        uses.clear();
        CollectUses(insn, &uses);
        for (int v : uses) ++use_count[static_cast<std::size_t>(v)];
      }
    }
    for (IrBlock& block : fn->blocks) {
      auto removable = [&](const IrInsn& insn) {
        return IsPure(insn.op) && DefinesA(insn.op) && insn.a != kNoVReg &&
               insn.a != kFpVReg &&
               use_count[static_cast<std::size_t>(insn.a)] == 0;
      };
      const auto before = block.insns.size();
      block.insns.erase(
          std::remove_if(block.insns.begin(), block.insns.end(), removable),
          block.insns.end());
      if (block.insns.size() != before) changed = true;
    }
  }
}

void StrengthReduceMul(IrFunction* fn) {
  for (IrBlock& block : fn->blocks) {
    std::vector<IrInsn> out;
    out.reserve(block.insns.size());
    for (const IrInsn& insn : block.insns) {
      if (insn.op != Opcode::kMulI || insn.imm <= 0) {
        out.push_back(insn);
        continue;
      }
      const auto imm = static_cast<std::uint64_t>(insn.imm);
      const bool pow2 = (imm & (imm - 1)) == 0;
      if (pow2) {
        int shift = 0;
        while ((imm >> shift) != 1) ++shift;
        out.push_back(IrInsn::Make(Opcode::kShlI, insn.a, insn.b, kNoVReg,
                                   shift));
        continue;
      }
      // imm = 2^k + 2^j: two shifts and an add.
      const std::uint64_t high = std::uint64_t{1}
                                 << (63 - __builtin_clzll(imm));
      const std::uint64_t rest = imm - high;
      if (rest != 0 && (rest & (rest - 1)) == 0) {
        int k = 0, j = 0;
        while ((high >> k) != 1) ++k;
        while ((rest >> j) != 1) ++j;
        const int t1 = fn->NewVReg();
        const int t2 = fn->NewVReg();
        out.push_back(IrInsn::Make(Opcode::kShlI, t1, insn.b, kNoVReg, k));
        out.push_back(IrInsn::Make(Opcode::kShlI, t2, insn.b, kNoVReg, j));
        out.push_back(IrInsn::Make(Opcode::kAdd, insn.a, t1, t2));
        continue;
      }
      // imm = 2^k - 1: shift and subtract.
      if (((imm + 1) & imm) == 0) {
        int k = 0;
        while (((imm + 1) >> k) != 1) ++k;
        const int t1 = fn->NewVReg();
        out.push_back(IrInsn::Make(Opcode::kShlI, t1, insn.b, kNoVReg, k));
        out.push_back(IrInsn::Make(Opcode::kSub, insn.a, t1, insn.b));
        continue;
      }
      out.push_back(insn);
    }
    block.insns = std::move(out);
  }
}

namespace {
bool IsPow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

int Log2(std::int64_t v) {
  int k = 0;
  while ((v >> k) != 1) ++k;
  return k;
}
}  // namespace

int MaskWrapIdiom(IrFunction* fn) {
  int rewrites = 0;
  for (IrBlock& block : fn->blocks) {
    for (std::size_t i = 0; i + 3 < block.insns.size(); ++i) {
      IrInsn& mod = block.insns[i];
      IrInsn& shr = block.insns[i + 1];
      IrInsn& andi = block.insns[i + 2];
      IrInsn& add = block.insns[i + 3];
      if (mod.op != Opcode::kModI || !IsPow2(mod.imm)) continue;
      if (shr.op != Opcode::kShrI || shr.b != mod.a || shr.imm != 63) continue;
      if (andi.op != Opcode::kAndI || andi.b != shr.a || andi.imm != mod.imm) continue;
      if (add.op != Opcode::kAdd) continue;
      const bool operands_match = (add.b == mod.a && add.c == andi.a) ||
                                  (add.b == andi.a && add.c == mod.a);
      if (!operands_match) continue;
      const int result = add.a;
      const int input = mod.b;
      const std::int64_t mask = mod.imm - 1;
      mod = IrInsn::Make(Opcode::kAndI, result, input, kNoVReg, mask);
      shr = IrInsn::Make(Opcode::kNop);
      andi = IrInsn::Make(Opcode::kNop);
      add = IrInsn::Make(Opcode::kNop);
      ++rewrites;
    }
    block.insns.erase(std::remove_if(block.insns.begin(), block.insns.end(),
                                     [](const IrInsn& insn) {
                                       return insn.op == Opcode::kNop;
                                     }),
                      block.insns.end());
  }
  return rewrites;
}

int ShiftDivision(IrFunction* fn) {
  int rewrites = 0;
  for (IrBlock& block : fn->blocks) {
    std::vector<IrInsn> out;
    out.reserve(block.insns.size());
    for (const IrInsn& insn : block.insns) {
      if (insn.op != Opcode::kDivI || !IsPow2(insn.imm) || insn.imm < 2) {
        out.push_back(insn);
        continue;
      }
      const int k = Log2(insn.imm);
      const int sign = fn->NewVReg();
      const int fix = fn->NewVReg();
      const int adjusted = fn->NewVReg();
      out.push_back(IrInsn::Make(Opcode::kShrI, sign, insn.b, kNoVReg, 63));
      out.push_back(
          IrInsn::Make(Opcode::kAndI, fix, sign, kNoVReg, insn.imm - 1));
      out.push_back(IrInsn::Make(Opcode::kAdd, adjusted, insn.b, fix));
      out.push_back(IrInsn::Make(Opcode::kShrI, insn.a, adjusted, kNoVReg, k));
      ++rewrites;
    }
    block.insns = std::move(out);
  }
  return rewrites;
}

void FoldLea(IrFunction* fn) {
  // mul by 3/5/9 -> lea b + b*{2,4,8} (the classic x86 idiom).
  for (IrBlock& block : fn->blocks) {
    for (IrInsn& insn : block.insns) {
      if (insn.op == Opcode::kMulI &&
          (insn.imm == 3 || insn.imm == 5 || insn.imm == 9)) {
        insn = IrInsn::Make(Opcode::kLea, insn.a, insn.b, insn.b,
                            insn.imm - 1);
      }
    }
  }
  // Single-use defs of `t = c << k` (k <= 3) or `t = c * {1,2,4,8}`
  // feeding `dst = b + t` become `dst = lea b + c*scale`.
  std::vector<int> use_count(static_cast<std::size_t>(fn->num_vregs), 0);
  std::vector<int> uses;
  for (const IrBlock& block : fn->blocks) {
    for (const IrInsn& insn : block.insns) {
      uses.clear();
      CollectUses(insn, &uses);
      for (int v : uses) ++use_count[static_cast<std::size_t>(v)];
    }
  }
  for (IrBlock& block : fn->blocks) {
    for (std::size_t i = 0; i < block.insns.size(); ++i) {
      IrInsn& add = block.insns[i];
      if (add.op != Opcode::kAdd) continue;
      // Look backwards in the same block for the defining shift/mul.
      for (std::size_t j = i; j-- > 0;) {
        IrInsn& def = block.insns[j];
        if (!DefinesA(def.op) || def.a == kNoVReg) continue;
        if (def.a == add.b || def.a == add.c) {
          const int t = def.a;
          if (use_count[static_cast<std::size_t>(t)] != 1) break;
          std::int64_t scale = 0;
          if (def.op == Opcode::kShlI && def.imm >= 1 && def.imm <= 3) {
            scale = std::int64_t{1} << def.imm;
          } else if (def.op == Opcode::kMulI &&
                     (def.imm == 2 || def.imm == 4 || def.imm == 8)) {
            scale = def.imm;
          } else {
            break;
          }
          const int index = def.b;
          const int base = (add.b == t) ? add.c : add.b;
          add = IrInsn::Make(Opcode::kLea, add.a, base, index, scale);
          def = IrInsn::Make(Opcode::kNop);
          break;
        }
        // A redefinition of either add operand between def and use ends the
        // search (values no longer line up).
        if (def.a == add.b || def.a == add.c) break;
      }
    }
    block.insns.erase(std::remove_if(block.insns.begin(), block.insns.end(),
                                     [](const IrInsn& insn) {
                                       return insn.op == Opcode::kNop;
                                     }),
                      block.insns.end());
  }
}

namespace {

// Analysis of a potential if-conversion side: a block whose instructions are
// pure and flag-free, ending with kBr, whose final def writes `value_reg`.
struct SideInfo {
  bool viable = false;
  std::vector<IrInsn> prefix;  // everything but the terminator
  int value_reg = kNoVReg;     // vreg holding the side's result
  int defined_var = kNoVReg;   // the variable assigned (last def target)
  int join = -1;
};

// Counts, per vreg, how many uses occur inside `block_id` vs anywhere.
// If a prefix def is observable outside its side block, hoisting it would
// execute it unconditionally and change behaviour — such sides are rejected.
bool PrefixDefsLocal(const IrFunction& fn, int block_id,
                     const std::vector<IrInsn>& prefix, int final_var) {
  std::vector<int> uses;
  for (const IrInsn& def : prefix) {
    if (!DefinesA(def.op) || def.a == kNoVReg || def.a == final_var) continue;
    const int v = def.a;
    int total = 0, inside = 0;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      for (const IrInsn& insn : fn.blocks[b].insns) {
        uses.clear();
        CollectUses(insn, &uses);
        for (int u : uses) {
          if (u != v) continue;
          ++total;
          if (static_cast<int>(b) == block_id) ++inside;
        }
      }
    }
    if (total != inside) return false;
  }
  return true;
}

SideInfo AnalyzeSide(const IrFunction& fn, int block_id, int max_insns) {
  SideInfo info;
  const IrBlock& block = fn.blocks[static_cast<std::size_t>(block_id)];
  if (block.insns.empty() ||
      static_cast<int>(block.insns.size()) > max_insns + 1) {
    return info;
  }
  const IrInsn& last = block.insns.back();
  if (last.op != Opcode::kBr) return info;
  info.join = last.target;
  for (std::size_t i = 0; i + 1 < block.insns.size(); ++i) {
    const IrInsn& insn = block.insns[i];
    if (!IsPure(insn.op) || TouchesFlags(insn.op) || ReadsFlags(insn.op)) {
      return info;
    }
    info.prefix.push_back(insn);
  }
  if (info.prefix.empty()) return info;
  const IrInsn& final_def = info.prefix.back();
  if (final_def.op != Opcode::kMov && final_def.op != Opcode::kMovImm) {
    return info;
  }
  info.defined_var = final_def.a;
  if (!PrefixDefsLocal(fn, block_id, info.prefix, info.defined_var)) {
    return info;
  }
  info.viable = true;
  return info;
}

}  // namespace

int IfConvert(IrFunction* fn) {
  int conversions = 0;
  constexpr int kMaxSideInsns = 6;
  for (std::size_t b = 0; b < fn->blocks.size(); ++b) {
    IrBlock& block = fn->blocks[b];
    if (block.insns.empty()) continue;
    IrInsn& term = block.insns.back();
    if (term.op != Opcode::kBrCond) continue;
    const int t_block = term.target;
    const int f_block = term.target2;
    if (t_block == static_cast<int>(b) || f_block == static_cast<int>(b)) {
      continue;
    }

    SideInfo t_info = AnalyzeSide(*fn, t_block, kMaxSideInsns);

    // Diamond: brcond -> T, F; both sides assign the same vreg and join.
    if (t_info.viable && f_block != t_info.join) {
      SideInfo f_info = AnalyzeSide(*fn, f_block, kMaxSideInsns);
      auto redefines_var = [](const SideInfo& side) {
        for (std::size_t i = 0; i + 1 < side.prefix.size(); ++i) {
          if (DefinesA(side.prefix[i].op) &&
              side.prefix[i].a == side.defined_var) {
            return true;
          }
        }
        return false;
      };
      if (f_info.viable && f_info.join == t_info.join &&
          f_info.defined_var == t_info.defined_var &&
          !redefines_var(t_info) && !redefines_var(f_info)) {
        const Cond cond = term.cond;
        const int join = t_info.join;
        const int var = t_info.defined_var;
        block.insns.pop_back();  // drop brcond
        auto value_of = [&](SideInfo& side) {
          IrInsn final_def = side.prefix.back();
          side.prefix.pop_back();
          for (const IrInsn& insn : side.prefix) block.insns.push_back(insn);
          if (final_def.op == Opcode::kMovImm) {
            const int tmp = fn->NewVReg();
            block.insns.push_back(IrInsn::Make(Opcode::kMovImm, tmp, kNoVReg,
                                               kNoVReg, final_def.imm));
            return tmp;
          }
          return final_def.b;
        };
        const int tv = value_of(t_info);
        const int fv = value_of(f_info);
        block.insns.push_back(
            IrInsn::Make(Opcode::kCsel, var, tv, fv, 0, cond));
        IrInsn br = IrInsn::Make(Opcode::kBr);
        br.target = join;
        block.insns.push_back(br);
        ++conversions;
        continue;
      }
    }

    // Triangle: brcond -> T, J where T joins at J.
    if (t_info.viable && t_info.join == f_block) {
      // csel var, value, var requires the old value of var; only safe when
      // the side's prefix does not redefine var before the final def.
      bool redefines = false;
      for (std::size_t i = 0; i + 1 < t_info.prefix.size(); ++i) {
        if (DefinesA(t_info.prefix[i].op) &&
            t_info.prefix[i].a == t_info.defined_var) {
          redefines = true;
        }
      }
      if (redefines) continue;
      const Cond cond = term.cond;
      const int join = f_block;
      const int var = t_info.defined_var;
      block.insns.pop_back();
      IrInsn final_def = t_info.prefix.back();
      t_info.prefix.pop_back();
      for (const IrInsn& insn : t_info.prefix) block.insns.push_back(insn);
      int tv;
      if (final_def.op == Opcode::kMovImm) {
        tv = fn->NewVReg();
        block.insns.push_back(
            IrInsn::Make(Opcode::kMovImm, tv, kNoVReg, kNoVReg, final_def.imm));
      } else {
        tv = final_def.b;
      }
      block.insns.push_back(IrInsn::Make(Opcode::kCsel, var, tv, var, 0, cond));
      IrInsn br = IrInsn::Make(Opcode::kBr);
      br.target = join;
      block.insns.push_back(br);
      ++conversions;
    }
  }
  if (conversions > 0) RemoveUnreachableBlocks(fn);
  return conversions;
}

int NormalizeComparisons(IrFunction* fn) {
  int rewrites = 0;
  for (IrBlock& block : fn->blocks) {
    for (std::size_t i = 0; i < block.insns.size(); ++i) {
      IrInsn& cmp = block.insns[i];
      if (cmp.op != Opcode::kCmpI) continue;
      if (cmp.imm == std::numeric_limits<std::int64_t>::min() ||
          cmp.imm == std::numeric_limits<std::int64_t>::max()) {
        continue;
      }
      // Collect the flag consumers up to the next flag-setting instruction.
      std::vector<IrInsn*> consumers;
      bool convertible_down = true;  // lt/ge family: imm - 1
      bool convertible_up = true;    // gt/le family: imm + 1
      for (std::size_t j = i + 1; j < block.insns.size(); ++j) {
        IrInsn& insn = block.insns[j];
        if (TouchesFlags(insn.op)) break;
        if (!ReadsFlags(insn.op)) continue;
        consumers.push_back(&insn);
        if (insn.cond != Cond::kLt && insn.cond != Cond::kGe) {
          convertible_down = false;
        }
        if (insn.cond != Cond::kGt && insn.cond != Cond::kLe) {
          convertible_up = false;
        }
      }
      if (consumers.empty()) continue;
      if (convertible_down) {
        cmp.imm -= 1;  // x < K  ==  x <= K-1 ; x >= K == x > K-1
        for (IrInsn* insn : consumers) {
          insn->cond = insn->cond == Cond::kLt ? Cond::kLe : Cond::kGt;
        }
        ++rewrites;
      } else if (convertible_up) {
        cmp.imm += 1;  // x > K  ==  x >= K+1 ; x <= K == x < K+1
        for (IrInsn* insn : consumers) {
          insn->cond = insn->cond == Cond::kGt ? Cond::kGe : Cond::kLt;
        }
        ++rewrites;
      }
    }
  }
  return rewrites;
}

int RotateLoops(IrFunction* fn) {
  int rotated = 0;
  const std::size_t original_blocks = fn->blocks.size();
  // header id -> duplicated bottom-test block id.
  std::map<int, int> duplicate_of;
  for (std::size_t b = 0; b < original_blocks; ++b) {
    // (no references held across the push_back below — it reallocates)
    if (fn->blocks[b].insns.back().op != Opcode::kBr) continue;
    const int header = fn->blocks[b].insns.back().target;
    if (header >= static_cast<int>(b)) continue;  // only back edges
    if (fn->blocks[static_cast<std::size_t>(header)].insns.back().op !=
        Opcode::kBrCond) {
      continue;
    }
    auto [it, inserted] = duplicate_of.try_emplace(header, -1);
    if (inserted) {
      it->second = static_cast<int>(fn->blocks.size());
      IrBlock copy = fn->blocks[static_cast<std::size_t>(header)];
      fn->blocks.push_back(std::move(copy));
      ++rotated;
    }
    fn->blocks[b].insns.back().target = it->second;
  }
  return rotated;
}

void RemoveUnreachableBlocks(IrFunction* fn) {
  std::vector<char> reachable(fn->blocks.size(), 0);
  std::vector<int> stack{0};
  while (!stack.empty()) {
    const int b = stack.back();
    stack.pop_back();
    if (reachable[static_cast<std::size_t>(b)]) continue;
    reachable[static_cast<std::size_t>(b)] = 1;
    for (int succ : fn->Successors(b)) stack.push_back(succ);
  }
  std::vector<int> remap(fn->blocks.size(), -1);
  std::vector<IrBlock> kept;
  for (std::size_t b = 0; b < fn->blocks.size(); ++b) {
    if (reachable[b]) {
      remap[b] = static_cast<int>(kept.size());
      kept.push_back(std::move(fn->blocks[b]));
    }
  }
  fn->blocks = std::move(kept);
  for (IrBlock& block : fn->blocks) {
    for (IrInsn& insn : block.insns) {
      if (insn.target >= 0) insn.target = remap[static_cast<std::size_t>(insn.target)];
      if (insn.target2 >= 0) insn.target2 = remap[static_cast<std::size_t>(insn.target2)];
    }
  }
  // Garbage-collect jump tables whose owning kJmpTable block was removed:
  // their targets would remap to -1 and later passes/emission index block
  // tables with them. A surviving kJmpTable keeps every one of its targets
  // reachable (Successors includes them), so kept tables remap cleanly.
  std::vector<int> table_remap(fn->jump_tables.size(), -1);
  std::vector<IrJumpTable> kept_tables;
  for (IrBlock& block : fn->blocks) {
    for (IrInsn& insn : block.insns) {
      if (insn.op != Opcode::kJmpTable) continue;
      int& index = insn.table;
      if (table_remap[static_cast<std::size_t>(index)] == -1) {
        table_remap[static_cast<std::size_t>(index)] =
            static_cast<int>(kept_tables.size());
        kept_tables.push_back(
            std::move(fn->jump_tables[static_cast<std::size_t>(index)]));
      }
      index = table_remap[static_cast<std::size_t>(index)];
    }
  }
  fn->jump_tables = std::move(kept_tables);
  for (IrJumpTable& table : fn->jump_tables) {
    for (int& t : table.targets) t = remap[static_cast<std::size_t>(t)];
    table.default_target = remap[static_cast<std::size_t>(table.default_target)];
  }
}

namespace {

// Splices `callee` (a leaf function) into `caller`, replacing the kCall at
// (block_id, insn_idx). Lowering guarantees the callee's kArg instructions
// immediately precede the kCall; they become stores into a fresh frame
// extension that plays the callee's frame.
void InlineCallSite(IrFunction* caller, int block_id, int insn_idx,
                    const IrFunction& callee) {
  const int vreg_offset = caller->num_vregs;
  caller->num_vregs += callee.num_vregs;
  const int frame_base = caller->frame_words;
  caller->frame_words += callee.frame_words;
  const int block_offset = static_cast<int>(caller->blocks.size());
  const int table_offset = static_cast<int>(caller->jump_tables.size());

  auto remap_vreg = [&](int v) {
    if (v == kNoVReg || v == kFpVReg) return v;
    return vreg_offset + v;
  };

  // Split the call block.
  std::vector<IrInsn> tail;
  IrInsn call;
  {
    IrBlock& cb = caller->blocks[static_cast<std::size_t>(block_id)];
    call = cb.insns[static_cast<std::size_t>(insn_idx)];
    tail.assign(cb.insns.begin() + insn_idx + 1, cb.insns.end());
    cb.insns.resize(static_cast<std::size_t>(insn_idx));
    // Rewrite the kArg group into stores to the callee's inlined frame.
    for (int i = 0; i < callee.num_params; ++i) {
      IrInsn& arg =
          cb.insns[cb.insns.size() - static_cast<std::size_t>(callee.num_params - i)];
      arg = IrInsn::Make(Opcode::kStoreI, arg.a, kFpVReg, kNoVReg,
                         frame_base + arg.imm);
    }
    IrInsn br = IrInsn::Make(Opcode::kBr);
    br.target = block_offset;  // callee entry
    cb.insns.push_back(br);
  }

  // Continuation block receives the rest of the original block.
  caller->blocks.emplace_back();
  // (emplace first so the callee entry lands at block_offset + 1? No:
  // continuation must not shift callee block ids — append the continuation
  // AFTER the callee blocks instead.)
  caller->blocks.pop_back();

  // Copy callee blocks.
  for (const IrBlock& src : callee.blocks) {
    IrBlock dst;
    for (IrInsn insn : src.insns) {
      if (insn.op == Opcode::kRet) {
        IrInsn mov = IrInsn::Make(Opcode::kMov, call.a, remap_vreg(insn.a));
        dst.insns.push_back(mov);
        IrInsn br = IrInsn::Make(Opcode::kBr);
        br.target = block_offset + static_cast<int>(callee.blocks.size());
        dst.insns.push_back(br);
        continue;
      }
      // Frame-relative accesses shift by the inlined frame base.
      if ((insn.op == Opcode::kLoadI || insn.op == Opcode::kStoreI) &&
          insn.b == kFpVReg) {
        insn.imm += frame_base;
      } else if (insn.op == Opcode::kFrameAddr) {
        insn.imm += frame_base;
      }
      if (DefinesA(insn.op)) {
        insn.a = remap_vreg(insn.a);
      } else if (insn.op == Opcode::kCmp || insn.op == Opcode::kCmpI ||
                 insn.op == Opcode::kStore || insn.op == Opcode::kStoreI ||
                 insn.op == Opcode::kArg || insn.op == Opcode::kJmpTable) {
        insn.a = remap_vreg(insn.a);
      }
      insn.b = remap_vreg(insn.b);
      insn.c = remap_vreg(insn.c);
      if (insn.target >= 0) insn.target += block_offset;
      if (insn.target2 >= 0) insn.target2 += block_offset;
      if (insn.table >= 0) insn.table += table_offset;
      dst.insns.push_back(insn);
    }
    caller->blocks.push_back(std::move(dst));
  }
  for (const IrJumpTable& src : callee.jump_tables) {
    IrJumpTable table = src;
    for (int& t : table.targets) t += block_offset;
    table.default_target += block_offset;
    caller->jump_tables.push_back(std::move(table));
  }

  // Continuation block (id = block_offset + callee.blocks.size()).
  IrBlock continuation;
  continuation.insns = std::move(tail);
  caller->blocks.push_back(std::move(continuation));
}

}  // namespace

int InlineSmallCalls(IrProgram* program, const binary::IsaSpec& spec,
                     int limit_override) {
  const int limit = limit_override >= 0 ? limit_override : spec.inline_limit;
  int inlined = 0;
  for (std::size_t f = 0; f < program->functions.size(); ++f) {
    IrFunction& caller = program->functions[f];
    bool changed = true;
    int guard = 0;
    while (changed && guard++ < 16) {
      changed = false;
      for (std::size_t b = 0; b < caller.blocks.size() && !changed; ++b) {
        for (std::size_t i = 0; i < caller.blocks[b].insns.size(); ++i) {
          const IrInsn& insn = caller.blocks[b].insns[i];
          if (insn.op != Opcode::kCall) continue;
          const auto callee_index = static_cast<std::size_t>(insn.imm);
          if (callee_index == f) continue;  // no self-inlining
          const IrFunction& callee = program->functions[callee_index];
          if (!callee.IsLeaf() ||
              static_cast<int>(callee.TotalInsns()) > limit) {
            continue;
          }
          InlineCallSite(&caller, static_cast<int>(b), static_cast<int>(i),
                         callee);
          ++inlined;
          changed = true;
          break;
        }
      }
    }
  }
  return inlined;
}

}  // namespace asteria::compiler
