// Top-level compilation driver: MiniC program -> BinModule for one ISA.
//
// Pipeline: lower -> inline (per-ISA threshold) -> copy-prop -> const-fold
// -> imm-fold(ISA) -> strength-reduce (PPC) -> lea-fold (x86/x64) ->
// if-convert (ARM) -> copy-prop -> DCE -> unreachable sweep -> regalloc ->
// emit. All ISA-specific behaviour flows from the IsaSpec.
#pragma once

#include <string>

#include "binary/module.h"
#include "minic/ast.h"

namespace asteria::compiler {

struct CompileOptions {
  bool optimize = true;        // run the pass pipeline
  bool inline_small = true;    // allow inlining (requires optimize)
  int inline_limit_override = -1;  // >= 0 overrides the ISA default
};

struct CompileResult {
  bool ok = false;
  std::string error;
  binary::BinModule module;
  int inlined_calls = 0;
};

// Compiles a sema-checked program for `isa`. `module_name` becomes the
// BinModule name (the paper keys ground truth on library + function name).
CompileResult CompileProgram(const minic::Program& program, binary::Isa isa,
                             const std::string& module_name,
                             const CompileOptions& options);

inline CompileResult CompileProgram(const minic::Program& program,
                                    binary::Isa isa,
                                    const std::string& module_name) {
  return CompileProgram(program, isa, module_name, CompileOptions{});
}

}  // namespace asteria::compiler
