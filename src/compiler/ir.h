// Three-address intermediate representation.
//
// The IR reuses the binary Opcode vocabulary but with unbounded virtual
// registers and symbolic basic-block targets. Lowering (lower.h) produces
// it, optimization passes (passes.h) rewrite it per ISA, the register
// allocator (regalloc.h) maps vregs to physical registers, and emit.h
// linearizes blocks into a BinFunction.
#pragma once

#include <string>
#include <vector>

#include "binary/isa.h"
#include "binary/module.h"

namespace asteria::compiler {

using binary::Cond;
using binary::Opcode;

inline constexpr int kNoVReg = -1;
// Virtual register 0 is the frame pointer, pre-colored to physical r31.
inline constexpr int kFpVReg = 0;

// One IR instruction. For branch ops, `target` / `target2` are block ids
// (target2 is the false/fallthrough successor of kBrCond). Calls keep the
// callee function index in imm.
struct IrInsn {
  Opcode op = Opcode::kNop;
  Cond cond = Cond::kEq;
  int a = kNoVReg;  // def for most ops (see DefinesA)
  int b = kNoVReg;
  int c = kNoVReg;
  std::int64_t imm = 0;
  int target = -1;
  int target2 = -1;
  int table = -1;  // jump table id for kJmpTable

  static IrInsn Make(Opcode op, int a = kNoVReg, int b = kNoVReg,
                     int c = kNoVReg, std::int64_t imm = 0,
                     Cond cond = Cond::kEq) {
    IrInsn insn;
    insn.op = op;
    insn.a = a;
    insn.b = b;
    insn.c = c;
    insn.imm = imm;
    insn.cond = cond;
    return insn;
  }
};

// True when register field `a` is written by the instruction.
bool DefinesA(Opcode op);
// Appends the vregs read by `insn` to `uses` (ignores kNoVReg fields).
void CollectUses(const IrInsn& insn, std::vector<int>* uses);

// Jump table at IR level (block-id targets).
struct IrJumpTable {
  std::int64_t base = 0;
  std::vector<int> targets;  // block ids
  int default_target = -1;   // block id
};

// A basic block: straight-line instructions ending in a terminator
// (kBr / kBrCond / kJmpTable / kRet). Lowering guarantees the terminator
// invariant; Successors() derives CFG edges from it.
struct IrBlock {
  std::vector<IrInsn> insns;
};

struct IrFunction {
  std::string name;
  int num_params = 0;
  std::vector<std::uint8_t> param_is_array;
  int num_vregs = 0;
  // Frame slots already allocated (params + local arrays); the register
  // allocator appends spill slots after these.
  int frame_words = 0;
  std::vector<IrBlock> blocks;  // block 0 is the entry
  std::vector<IrJumpTable> jump_tables;

  int NewVReg() { return num_vregs++; }

  // Successor block ids of `block_id`, derived from its terminator.
  std::vector<int> Successors(int block_id) const;

  // Checks the terminator invariant and target validity.
  bool Validate(std::string* error = nullptr) const;

  std::size_t TotalInsns() const;

  // True when the function contains no kCall (used by the inliner).
  bool IsLeaf() const;

  std::string ToString() const;
};

struct IrProgram {
  std::vector<IrFunction> functions;
  std::vector<std::string> strings;

  int FindFunction(const std::string& name) const;
};

}  // namespace asteria::compiler
