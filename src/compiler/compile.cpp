#include "compiler/compile.h"

#include "compiler/emit.h"
#include "compiler/lower.h"
#include "compiler/passes.h"
#include "compiler/regalloc.h"

namespace asteria::compiler {

CompileResult CompileProgram(const minic::Program& program, binary::Isa isa,
                             const std::string& module_name,
                             const CompileOptions& options) {
  CompileResult result;
  const binary::IsaSpec& spec = binary::GetIsaSpec(isa);

  IrProgram ir;
  LoweringOptions lowering;
  lowering.jump_table_min = spec.jump_table_min;
  if (!LowerProgram(program, lowering, &ir, &result.error)) return result;

  if (options.optimize && options.inline_small) {
    result.inlined_calls =
        InlineSmallCalls(&ir, spec, options.inline_limit_override);
  }
  for (IrFunction& fn : ir.functions) {
    if (options.optimize) {
      // Pattern passes that rely on raw lowering shapes run first.
      if (spec.mask_wrap_idiom) MaskWrapIdiom(&fn);
      CopyPropagate(&fn);
      FoldConstants(&fn);
      FoldImmediates(&fn, spec);
      if (spec.shift_division) ShiftDivision(&fn);
      if (spec.strength_reduce_mul) StrengthReduceMul(&fn);
      // RISC-style constant-comparison canonicalization (same targets as
      // the mask-wrap idiom: ARM and PPC).
      if (spec.mask_wrap_idiom) NormalizeComparisons(&fn);
      if (spec.has_lea) FoldLea(&fn);
      // DCE before if-conversion: dead snapshot moves otherwise hide the
      // single-assignment diamond shape.
      EliminateDeadCode(&fn);
      if (spec.has_csel) IfConvert(&fn);
      CopyPropagate(&fn);
      EliminateDeadCode(&fn);
      if (spec.rotate_loops) RotateLoops(&fn);
      RemoveUnreachableBlocks(&fn);
    }
    if (!fn.Validate(&result.error)) return result;
    AllocateRegisters(&fn, spec);
    if (!fn.Validate(&result.error)) return result;
  }

  result.module.isa = isa;
  result.module.name = module_name;
  result.module.strings = ir.strings;
  for (const IrFunction& fn : ir.functions) {
    result.module.functions.push_back(EmitFunction(fn));
  }
  result.ok = true;
  return result;
}

}  // namespace asteria::compiler
