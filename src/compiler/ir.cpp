#include "compiler/ir.h"

#include <sstream>

namespace asteria::compiler {

bool DefinesA(Opcode op) {
  switch (op) {
    case Opcode::kCmp:
    case Opcode::kCmpI:
    case Opcode::kBr:
    case Opcode::kBrCond:
    case Opcode::kJmpTable:
    case Opcode::kStore:
    case Opcode::kStoreI:
    case Opcode::kArg:
    case Opcode::kRet:
    case Opcode::kNop:
      return false;
    default:
      return true;
  }
}

void CollectUses(const IrInsn& insn, std::vector<int>* uses) {
  auto add = [&](int v) {
    if (v != kNoVReg) uses->push_back(v);
  };
  // Field `a` is a *use* for ops that read it (store/arg/ret/cmp/jmptable).
  if (!DefinesA(insn.op)) {
    switch (insn.op) {
      case Opcode::kCmp:
      case Opcode::kCmpI:
      case Opcode::kStore:
      case Opcode::kStoreI:
      case Opcode::kArg:
      case Opcode::kRet:
      case Opcode::kJmpTable:
        add(insn.a);
        break;
      default:
        break;
    }
  }
  add(insn.b);
  add(insn.c);
}

std::vector<int> IrFunction::Successors(int block_id) const {
  std::vector<int> out;
  const IrBlock& block = blocks[static_cast<std::size_t>(block_id)];
  if (block.insns.empty()) return out;
  const IrInsn& last = block.insns.back();
  switch (last.op) {
    case Opcode::kBr:
      out.push_back(last.target);
      break;
    case Opcode::kBrCond:
      out.push_back(last.target);
      out.push_back(last.target2);
      break;
    case Opcode::kJmpTable: {
      const IrJumpTable& table = jump_tables[static_cast<std::size_t>(last.table)];
      for (int t : table.targets) out.push_back(t);
      out.push_back(table.default_target);
      break;
    }
    case Opcode::kRet:
      break;
    default:
      break;  // invalid; Validate() reports it
  }
  return out;
}

bool IrFunction::Validate(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error) *error = name + ": " + message;
    return false;
  };
  if (blocks.empty()) return fail("no blocks");
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const IrBlock& block = blocks[b];
    if (block.insns.empty()) return fail("empty block " + std::to_string(b));
    const IrInsn& last = block.insns.back();
    if (last.op != Opcode::kBr && last.op != Opcode::kBrCond &&
        last.op != Opcode::kJmpTable && last.op != Opcode::kRet) {
      return fail("block " + std::to_string(b) + " lacks terminator");
    }
    for (std::size_t i = 0; i + 1 < block.insns.size(); ++i) {
      const Opcode op = block.insns[i].op;
      if (op == Opcode::kBr || op == Opcode::kBrCond ||
          op == Opcode::kJmpTable || op == Opcode::kRet) {
        return fail("terminator in the middle of block " + std::to_string(b));
      }
    }
    for (int succ : Successors(static_cast<int>(b))) {
      if (succ < 0 || succ >= static_cast<int>(blocks.size())) {
        return fail("invalid successor from block " + std::to_string(b));
      }
    }
  }
  return true;
}

std::size_t IrFunction::TotalInsns() const {
  std::size_t total = 0;
  for (const IrBlock& block : blocks) total += block.insns.size();
  return total;
}

bool IrFunction::IsLeaf() const {
  for (const IrBlock& block : blocks) {
    for (const IrInsn& insn : block.insns) {
      if (insn.op == Opcode::kCall) return false;
    }
  }
  return true;
}

std::string IrFunction::ToString() const {
  std::ostringstream out;
  out << "func " << name << " params=" << num_params
      << " frame=" << frame_words << " vregs=" << num_vregs << "\n";
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    out << " bb" << b << ":\n";
    for (const IrInsn& insn : blocks[b].insns) {
      out << "   " << OpcodeName(insn.op);
      if (insn.op == Opcode::kBrCond || insn.op == Opcode::kSetCond ||
          insn.op == Opcode::kCsel) {
        out << "." << CondName(insn.cond);
      }
      out << " a=" << insn.a << " b=" << insn.b << " c=" << insn.c
          << " imm=" << insn.imm;
      if (insn.target >= 0) out << " ->bb" << insn.target;
      if (insn.target2 >= 0) out << " /bb" << insn.target2;
      if (insn.table >= 0) out << " table#" << insn.table;
      out << "\n";
    }
  }
  return out.str();
}

int IrProgram::FindFunction(const std::string& name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace asteria::compiler
