// Emission: register-allocated IR -> binary::BinFunction.
//
// Linearizes blocks in layout order, resolves block targets to instruction
// indices, elides unconditional branches to the immediately following block,
// and converts kBrCond's two-way form into brc + (optional) br.
#pragma once

#include "binary/module.h"
#include "compiler/ir.h"

namespace asteria::compiler {

binary::BinFunction EmitFunction(const IrFunction& fn);

}  // namespace asteria::compiler
