// IR optimization passes.
//
// Besides the usual cleanups (copy propagation, constant folding, DCE),
// these passes are where the four ISAs diverge — the source of the
// cross-architecture AST/CFG variation the paper studies:
//  * FoldImmediates respects each ISA's immediate width
//  * StrengthReduceMul fires only on PPC
//  * FoldLea fires only on x86/x64
//  * IfConvert (kCsel) fires only on ARM, merging small diamonds into
//    straight-line code (the Fig. 2 CFG-collapse effect)
//  * InlineSmallCalls uses per-ISA size thresholds, making callee counts
//    differ across architectures (motivates the paper's β-filter, §III-C)
#pragma once

#include "binary/isa.h"
#include "compiler/ir.h"

namespace asteria::compiler {

// Per-block copy propagation (kMov chains), clobber-aware.
void CopyPropagate(IrFunction* fn);

// Per-block constant folding through kMovImm/ALU chains.
void FoldConstants(IrFunction* fn);

// Rewrites reg-reg ALU ops whose rhs is a known constant fitting the ISA's
// immediate width into the -I form.
void FoldImmediates(IrFunction* fn, const binary::IsaSpec& spec);

// Removes pure instructions whose results are never used (keeps stores,
// calls, branches, compares, args, rets). Runs to fixpoint.
void EliminateDeadCode(IrFunction* fn);

// kMulI by power-of-two(-ish) constants -> shift/add sequences (PPC).
void StrengthReduceMul(IrFunction* fn);

// Rewrites the lowering's 4-instruction Euclidean wrap
//   m = i % N;  s = m >> 63;  t = s & N;  w = m + t      (N a power of two)
// into a single `w = i & (N-1)` (exactly equivalent in two's complement).
// Fires on ISAs with mask_wrap_idiom, changing the node multiset of every
// variable-index array access. Returns the number of rewrites.
int MaskWrapIdiom(IrFunction* fn);

// Rewrites kDivI by a positive power of two into the sign-fix shift
// sequence (s = i >> 63; t = s & (N-1); u = i + t; d = u >> k), PPC-style.
// Exactly matches C truncating division. Returns the number of rewrites.
int ShiftDivision(IrFunction* fn);

// shl/mul-by-{1,2,4,8} + add -> kLea, and mul-by-{3,5,9} -> lea b + b*{2,4,8}
// (x86/x64).
void FoldLea(IrFunction* fn);

// Canonicalizes constant comparisons the way RISC backends do:
// x < K  ->  x <= K-1   and   x > K  ->  x >= K+1 (ARM/PPC). Changes the
// comparison node kinds in the decompiled multiset on every loop bound.
// Returns the number of rewrites.
int NormalizeComparisons(IrFunction* fn);

// Converts small if-diamonds/triangles whose sides are pure, flag-free and
// single-assignment into kCsel (ARM). Returns the number of conversions.
int IfConvert(IrFunction* fn);

// Drops blocks unreachable from the entry and renumbers targets.
void RemoveUnreachableBlocks(IrFunction* fn);

// Loop rotation (x64/ARM): every back edge targeting a conditional header
// is redirected to a duplicate of that header placed as a separate block,
// yielding the guarded do-while shape of gcc -O2. The duplicate is an exact
// copy with identical successors, so the rewrite is semantics-preserving
// for any CFG. Returns the number of rotated headers.
int RotateLoops(IrFunction* fn);

// Inlines calls to small leaf functions (per-ISA threshold, or
// `limit_override` >= 0). Returns the number of inlined call sites.
int InlineSmallCalls(IrProgram* program, const binary::IsaSpec& spec,
                     int limit_override = -1);

}  // namespace asteria::compiler
