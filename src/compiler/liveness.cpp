#include "compiler/liveness.h"

#include <algorithm>

namespace asteria::compiler {

LivenessInfo ComputeLiveness(const IrFunction& fn) {
  const std::size_t num_blocks = fn.blocks.size();
  const std::size_t num_vregs = static_cast<std::size_t>(fn.num_vregs);
  LivenessInfo info;
  info.live_in.assign(num_blocks, std::vector<char>(num_vregs, 0));
  info.live_out.assign(num_blocks, std::vector<char>(num_vregs, 0));
  info.block_start.resize(num_blocks);
  int pos = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    info.block_start[b] = pos;
    pos += static_cast<int>(fn.blocks[b].insns.size());
  }
  info.total_positions = pos;

  // Per-block gen (use before def) and kill (defined) sets.
  std::vector<std::vector<char>> gen(num_blocks,
                                     std::vector<char>(num_vregs, 0));
  std::vector<std::vector<char>> kill(num_blocks,
                                      std::vector<char>(num_vregs, 0));
  std::vector<int> uses;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    for (const IrInsn& insn : fn.blocks[b].insns) {
      uses.clear();
      CollectUses(insn, &uses);
      for (int v : uses) {
        const auto vi = static_cast<std::size_t>(v);
        if (!kill[b][vi]) gen[b][vi] = 1;
      }
      if (DefinesA(insn.op) && insn.a != kNoVReg) {
        kill[b][static_cast<std::size_t>(insn.a)] = 1;
      }
    }
  }

  // Iterate to fixpoint (reverse order converges fast on reducible CFGs).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t b = num_blocks; b-- > 0;) {
      std::vector<char>& out = info.live_out[b];
      for (int succ : fn.Successors(static_cast<int>(b))) {
        const std::vector<char>& succ_in =
            info.live_in[static_cast<std::size_t>(succ)];
        for (std::size_t v = 0; v < num_vregs; ++v) {
          if (succ_in[v] && !out[v]) {
            out[v] = 1;
            changed = true;
          }
        }
      }
      std::vector<char>& in = info.live_in[b];
      for (std::size_t v = 0; v < num_vregs; ++v) {
        const char value = gen[b][v] || (out[v] && !kill[b][v]);
        if (value != in[v]) {
          in[v] = value;
          changed = true;
        }
      }
    }
  }
  return info;
}

std::vector<Interval> ComputeIntervals(const IrFunction& fn,
                                       const LivenessInfo& liveness) {
  const std::size_t num_vregs = static_cast<std::size_t>(fn.num_vregs);
  std::vector<Interval> intervals(num_vregs);
  for (std::size_t v = 0; v < num_vregs; ++v) {
    intervals[v].vreg = static_cast<int>(v);
  }
  auto touch = [&](int v, int position) {
    Interval& interval = intervals[static_cast<std::size_t>(v)];
    if (interval.start < 0 || position < interval.start) {
      interval.start = position;
    }
    if (position > interval.end) interval.end = position;
  };
  std::vector<int> uses;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const int base = liveness.block_start[b];
    const int block_end =
        base + static_cast<int>(fn.blocks[b].insns.size()) - 1;
    for (std::size_t v = 0; v < num_vregs; ++v) {
      // A vreg live across the block spans all of it.
      if (liveness.live_in[b][v]) touch(static_cast<int>(v), base);
      if (liveness.live_out[b][v]) touch(static_cast<int>(v), block_end);
    }
    for (std::size_t i = 0; i < fn.blocks[b].insns.size(); ++i) {
      const IrInsn& insn = fn.blocks[b].insns[i];
      const int position = base + static_cast<int>(i);
      uses.clear();
      CollectUses(insn, &uses);
      for (int v : uses) touch(v, position);
      if (DefinesA(insn.op) && insn.a != kNoVReg) touch(insn.a, position);
    }
  }
  std::vector<Interval> result;
  for (const Interval& interval : intervals) {
    if (interval.vreg == kFpVReg) continue;  // pre-colored
    if (interval.start >= 0) result.push_back(interval);
  }
  std::sort(result.begin(), result.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start ||
                     (a.start == b.start && a.vreg < b.vreg);
            });
  return result;
}

}  // namespace asteria::compiler
