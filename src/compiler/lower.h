// Lowering: MiniC source AST -> IR.
//
// One IrFunction per MiniC function. Conventions established here (and
// relied on by the register allocator, emitter, VM and decompiler):
//  * vreg 0 is the frame pointer, pre-colored to physical register 31
//  * frame slots [0, num_params) hold incoming arguments (scalar value or
//    array address); scalar params are loaded into fresh vregs at entry
//  * local arrays occupy frame slabs; their base address is materialized
//    with kFrameAddr at each use
//  * every array access wraps its index Euclidean-modulo the array size
//    (branch-free mod/shift/and/add sequence), matching the interpreter
//  * switch statements lower to a jump table when they have >= 4 dense
//    cases, otherwise to a compare chain
#pragma once

#include <string>

#include "compiler/ir.h"
#include "minic/ast.h"

namespace asteria::compiler {

// Target-dependent lowering knobs (derived from the IsaSpec).
struct LoweringOptions {
  // Minimum dense case count for a jump table; <= 0 disables tables.
  int jump_table_min = 4;
};

// Lowers a whole (sema-checked) program. Returns false and fills `error` on
// an internal invariant violation.
bool LowerProgram(const minic::Program& program, IrProgram* out,
                  std::string* error);
bool LowerProgram(const minic::Program& program, const LoweringOptions& options,
                  IrProgram* out, std::string* error);

}  // namespace asteria::compiler
