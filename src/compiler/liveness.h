// Classic backward dataflow liveness on the IR CFG.
//
// Produces per-block live-in/live-out sets and, for the linear-scan
// allocator, the position hull [start, end) of each vreg over the linearized
// instruction order (block layout order). Back edges extend hulls correctly
// because a vreg live around a loop is live-out of the back-edge block.
#pragma once

#include <vector>

#include "compiler/ir.h"

namespace asteria::compiler {

struct LivenessInfo {
  // live_in[b] / live_out[b]: bitsets indexed by vreg.
  std::vector<std::vector<char>> live_in;
  std::vector<std::vector<char>> live_out;
  // Linear position of the first instruction of each block.
  std::vector<int> block_start;
  int total_positions = 0;
};

LivenessInfo ComputeLiveness(const IrFunction& fn);

// Live interval hull of one vreg in linear positions.
struct Interval {
  int vreg = kNoVReg;
  int start = -1;  // first position where the vreg is defined or live
  int end = -1;    // last position (inclusive) where it is used or live
};

// Intervals for all vregs that appear in the function (excluding the frame
// pointer), sorted by start position.
std::vector<Interval> ComputeIntervals(const IrFunction& fn,
                                       const LivenessInfo& liveness);

}  // namespace asteria::compiler
