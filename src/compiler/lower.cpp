#include "compiler/lower.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "minic/interp.h"

namespace asteria::compiler {

namespace {

using minic::ExprId;
using minic::ExprKind;
using minic::StmtId;
using minic::StmtKind;

struct LowerError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Lowerer {
 public:
  Lowerer(const minic::Program& program, const LoweringOptions& options,
          IrProgram* out)
      : program_(program), options_(options), out_(out) {}

  void Run() {
    // Intern all string literals first so indices are stable.
    for (std::size_t i = 0; i < program_.expr_count(); ++i) {
      const minic::Expr& e = program_.expr(static_cast<ExprId>(i));
      if (e.kind == ExprKind::kStr) InternString(e.name);
    }
    for (const minic::Function& fn : program_.functions()) {
      out_->functions.push_back(LowerFunction(fn));
    }
  }

 private:
  struct VarSlot {
    bool is_array = false;
    int vreg = kNoVReg;          // scalars
    int frame_offset = -1;       // arrays (and array params: offset of the
                                 // slot holding the address)
    std::int64_t array_size = 0; // local arrays; 0 for array params
    bool param_array = false;    // array param: frame slot holds an address
  };

  int InternString(const std::string& s) {
    for (std::size_t i = 0; i < out_->strings.size(); ++i) {
      if (out_->strings[i] == s) return static_cast<int>(i);
    }
    out_->strings.push_back(s);
    return static_cast<int>(out_->strings.size()) - 1;
  }

  // ---- block plumbing -----------------------------------------------------

  int NewBlock() {
    fn_->blocks.emplace_back();
    return static_cast<int>(fn_->blocks.size()) - 1;
  }

  IrBlock& Cur() { return fn_->blocks[static_cast<std::size_t>(cur_block_)]; }

  bool CurTerminated() {
    if (Cur().insns.empty()) return false;
    const Opcode op = Cur().insns.back().op;
    return op == Opcode::kBr || op == Opcode::kBrCond ||
           op == Opcode::kJmpTable || op == Opcode::kRet;
  }

  void Emit(IrInsn insn) {
    if (!CurTerminated()) Cur().insns.push_back(insn);
    // Silently drop unreachable instructions after a terminator.
  }

  void Branch(int target) {
    if (!CurTerminated()) {
      IrInsn insn = IrInsn::Make(Opcode::kBr);
      insn.target = target;
      Cur().insns.push_back(insn);
    }
  }

  void BranchCond(Cond cond, int if_true, int if_false) {
    if (!CurTerminated()) {
      IrInsn insn = IrInsn::Make(Opcode::kBrCond);
      insn.cond = cond;
      insn.target = if_true;
      insn.target2 = if_false;
      Cur().insns.push_back(insn);
    }
  }

  // ---- scoping ---------------------------------------------------------

  VarSlot& Declare(const std::string& name) { return scopes_.back()[name]; }

  const VarSlot& Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return found->second;
    }
    throw LowerError("lowering: unknown variable " + name);
  }

  // ---- function ------------------------------------------------------

  IrFunction LowerFunction(const minic::Function& fn) {
    IrFunction out;
    out.name = fn.name;
    out.num_params = static_cast<int>(fn.params.size());
    out.num_vregs = 1;  // vreg 0 = frame pointer
    out.frame_words = out.num_params;
    fn_ = &out;
    scopes_.clear();
    scopes_.emplace_back();
    label_blocks_.clear();
    break_stack_.clear();
    continue_stack_.clear();
    cur_block_ = NewBlock();

    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      VarSlot& slot = Declare(fn.params[i].name);
      if (fn.params[i].is_array) {
        slot.is_array = true;
        slot.param_array = true;
        slot.frame_offset = static_cast<int>(i);
        out.param_is_array.push_back(1);
      } else {
        slot.vreg = out.NewVReg();
        Emit(IrInsn::Make(Opcode::kLoadI, slot.vreg, kFpVReg, kNoVReg,
                          static_cast<std::int64_t>(i)));
        out.param_is_array.push_back(0);
      }
    }

    LowerStmt(fn.body);

    // Implicit `return 0` on every path that falls off the end; also caps
    // any block left open (e.g. unreachable code after goto).
    for (std::size_t b = 0; b < out.blocks.size(); ++b) {
      cur_block_ = static_cast<int>(b);
      if (!CurTerminated()) {
        const int zero = out.NewVReg();
        Emit(IrInsn::Make(Opcode::kMovImm, zero, kNoVReg, kNoVReg, 0));
        Emit(IrInsn::Make(Opcode::kRet, zero));
      }
    }
    fn_ = nullptr;
    return out;
  }

  // ---- statements -----------------------------------------------------

  void LowerStmt(StmtId id) {
    const minic::Stmt& s = program_.stmt(id);
    switch (s.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (StmtId child : s.stmts) LowerStmt(child);
        scopes_.pop_back();
        return;
      }
      case StmtKind::kExpr:
        LowerExpr(s.expr);
        return;
      case StmtKind::kDecl: {
        if (s.array_size > 0) {
          const int offset = fn_->frame_words;
          fn_->frame_words += static_cast<int>(s.array_size);
          VarSlot& slot = Declare(s.name);
          slot.is_array = true;
          slot.frame_offset = offset;
          slot.array_size = s.array_size;
          // Zero-initialize with an inline memset loop: MiniC arrays are
          // zeroed at declaration (fresh storage per execution of the decl,
          // matching the interpreter even when declared inside loops).
          const int base = fn_->NewVReg();
          Emit(IrInsn::Make(Opcode::kFrameAddr, base, kNoVReg, kNoVReg,
                            offset));
          const int zero = fn_->NewVReg();
          Emit(IrInsn::Make(Opcode::kMovImm, zero, kNoVReg, kNoVReg, 0));
          const int idx = fn_->NewVReg();
          Emit(IrInsn::Make(Opcode::kMovImm, idx, kNoVReg, kNoVReg, 0));
          const int loop = NewBlock();
          const int exit = NewBlock();
          Branch(loop);
          cur_block_ = loop;
          Emit(IrInsn::Make(Opcode::kStore, zero, base, idx));
          Emit(IrInsn::Make(Opcode::kAddI, idx, idx, kNoVReg, 1));
          Emit(IrInsn::Make(Opcode::kCmpI, idx, kNoVReg, kNoVReg,
                            s.array_size));
          BranchCond(Cond::kLt, loop, exit);
          cur_block_ = exit;
        } else {
          const int vreg = fn_->NewVReg();
          if (s.init != minic::kNoId) {
            const int value = LowerExpr(s.init);
            Emit(IrInsn::Make(Opcode::kMov, vreg, value));
          } else {
            Emit(IrInsn::Make(Opcode::kMovImm, vreg, kNoVReg, kNoVReg, 0));
          }
          Declare(s.name).vreg = vreg;
        }
        return;
      }
      case StmtKind::kIf: {
        const int then_block = NewBlock();
        const int end_block = NewBlock();
        int else_block = end_block;
        if (s.else_body != minic::kNoId) else_block = NewBlock();
        LowerCondBranch(s.expr, then_block, else_block);
        cur_block_ = then_block;
        LowerStmt(s.body);
        Branch(end_block);
        if (s.else_body != minic::kNoId) {
          cur_block_ = else_block;
          LowerStmt(s.else_body);
          Branch(end_block);
        }
        cur_block_ = end_block;
        return;
      }
      case StmtKind::kWhile: {
        const int header = NewBlock();
        const int body = NewBlock();
        const int exit = NewBlock();
        Branch(header);
        cur_block_ = header;
        LowerCondBranch(s.expr, body, exit);
        continue_stack_.push_back(header);
        break_stack_.push_back(exit);
        cur_block_ = body;
        LowerStmt(s.body);
        Branch(header);
        continue_stack_.pop_back();
        break_stack_.pop_back();
        cur_block_ = exit;
        return;
      }
      case StmtKind::kFor: {
        if (s.expr2 != minic::kNoId) LowerExpr(s.expr2);
        const int header = NewBlock();
        const int body = NewBlock();
        const int step = NewBlock();
        const int exit = NewBlock();
        Branch(header);
        cur_block_ = header;
        if (s.expr != minic::kNoId) {
          LowerCondBranch(s.expr, body, exit);
        } else {
          Branch(body);
        }
        continue_stack_.push_back(step);
        break_stack_.push_back(exit);
        cur_block_ = body;
        LowerStmt(s.body);
        Branch(step);
        continue_stack_.pop_back();
        break_stack_.pop_back();
        cur_block_ = step;
        if (s.expr3 != minic::kNoId) LowerExpr(s.expr3);
        Branch(header);
        cur_block_ = exit;
        return;
      }
      case StmtKind::kSwitch:
        LowerSwitch(s);
        return;
      case StmtKind::kReturn: {
        int value;
        if (s.expr != minic::kNoId) {
          value = LowerExpr(s.expr);
        } else {
          value = fn_->NewVReg();
          Emit(IrInsn::Make(Opcode::kMovImm, value, kNoVReg, kNoVReg, 0));
        }
        Emit(IrInsn::Make(Opcode::kRet, value));
        return;
      }
      case StmtKind::kBreak:
        if (break_stack_.empty()) throw LowerError("break outside loop");
        Branch(break_stack_.back());
        return;
      case StmtKind::kContinue:
        if (continue_stack_.empty()) throw LowerError("continue outside loop");
        Branch(continue_stack_.back());
        return;
      case StmtKind::kGoto:
        Branch(LabelBlock(s.name));
        return;
      case StmtKind::kLabel: {
        const int block = LabelBlock(s.name);
        Branch(block);
        cur_block_ = block;
        LowerStmt(s.body);
        return;
      }
    }
    throw LowerError("unknown statement kind");
  }

  int LabelBlock(const std::string& name) {
    auto [it, inserted] = label_blocks_.try_emplace(name, -1);
    if (inserted) it->second = NewBlock();
    return it->second;
  }

  void LowerSwitch(const minic::Stmt& s) {
    const int value = LowerExpr(s.expr);
    const int end_block = NewBlock();
    // Pre-create arm blocks.
    std::vector<int> arm_blocks;
    int default_block = end_block;
    std::vector<std::pair<std::int64_t, int>> cases;  // value -> block
    for (const minic::SwitchCase& arm : s.cases) {
      const int block = NewBlock();
      arm_blocks.push_back(block);
      if (arm.is_default) {
        default_block = block;
      } else {
        cases.emplace_back(arm.match_value, block);
      }
    }
    std::sort(cases.begin(), cases.end());

    bool use_table = false;
    if (options_.jump_table_min > 0 &&
        static_cast<int>(cases.size()) >= options_.jump_table_min) {
      const std::int64_t span = cases.back().first - cases.front().first + 1;
      use_table = span <= static_cast<std::int64_t>(cases.size()) * 3 &&
                  span <= 512;
    }
    if (use_table) {
      IrJumpTable table;
      table.base = cases.front().first;
      table.default_target = default_block;
      const std::int64_t span = cases.back().first - cases.front().first + 1;
      table.targets.assign(static_cast<std::size_t>(span), default_block);
      for (const auto& [match, block] : cases) {
        table.targets[static_cast<std::size_t>(match - table.base)] = block;
      }
      fn_->jump_tables.push_back(std::move(table));
      IrInsn insn = IrInsn::Make(Opcode::kJmpTable, value);
      insn.table = static_cast<int>(fn_->jump_tables.size()) - 1;
      Emit(insn);
    } else {
      // Compare chain.
      for (const auto& [match, block] : cases) {
        const int next = NewBlock();
        Emit(IrInsn::Make(Opcode::kCmpI, value, kNoVReg, kNoVReg, match));
        BranchCond(Cond::kEq, block, next);
        cur_block_ = next;
      }
      Branch(default_block);
    }

    // Arm bodies: implicit break at the end of each arm; explicit `break`
    // also targets end_block.
    break_stack_.push_back(end_block);
    for (std::size_t i = 0; i < s.cases.size(); ++i) {
      cur_block_ = arm_blocks[i];
      scopes_.emplace_back();
      for (StmtId child : s.cases[i].body) LowerStmt(child);
      scopes_.pop_back();
      Branch(end_block);
    }
    break_stack_.pop_back();
    cur_block_ = end_block;
  }

  // ---- conditions -------------------------------------------------------

  static Cond CondOfBinOp(minic::BinOp op) {
    switch (op) {
      case minic::BinOp::kEq: return Cond::kEq;
      case minic::BinOp::kNe: return Cond::kNe;
      case minic::BinOp::kLt: return Cond::kLt;
      case minic::BinOp::kGt: return Cond::kGt;
      case minic::BinOp::kLe: return Cond::kLe;
      case minic::BinOp::kGe: return Cond::kGe;
      default: throw LowerError("not a comparison");
    }
  }

  static bool IsComparison(minic::BinOp op) {
    switch (op) {
      case minic::BinOp::kEq:
      case minic::BinOp::kNe:
      case minic::BinOp::kLt:
      case minic::BinOp::kGt:
      case minic::BinOp::kLe:
      case minic::BinOp::kGe:
        return true;
      default:
        return false;
    }
  }

  // Lowers `expr` as a branch condition: control flows to if_true/if_false.
  // Comparisons and short-circuit operators branch directly without
  // materializing a 0/1 value.
  void LowerCondBranch(ExprId id, int if_true, int if_false) {
    const minic::Expr& e = program_.expr(id);
    if (e.kind == ExprKind::kBinary) {
      if (IsComparison(e.bin_op)) {
        const int lhs = LowerExpr(e.lhs);
        const int rhs = LowerExpr(e.rhs);
        Emit(IrInsn::Make(Opcode::kCmp, lhs, rhs));
        BranchCond(CondOfBinOp(e.bin_op), if_true, if_false);
        return;
      }
      if (e.bin_op == minic::BinOp::kLogicalAnd) {
        const int mid = NewBlock();
        LowerCondBranch(e.lhs, mid, if_false);
        cur_block_ = mid;
        LowerCondBranch(e.rhs, if_true, if_false);
        return;
      }
      if (e.bin_op == minic::BinOp::kLogicalOr) {
        const int mid = NewBlock();
        LowerCondBranch(e.lhs, if_true, mid);
        cur_block_ = mid;
        LowerCondBranch(e.rhs, if_true, if_false);
        return;
      }
    }
    if (e.kind == ExprKind::kUnary && e.un_op == minic::UnOp::kLogicalNot) {
      LowerCondBranch(e.lhs, if_false, if_true);
      return;
    }
    const int value = LowerExpr(id);
    Emit(IrInsn::Make(Opcode::kCmpI, value, kNoVReg, kNoVReg, 0));
    BranchCond(Cond::kNe, if_true, if_false);
  }

  // ---- expressions -----------------------------------------------------

  static Opcode OpcodeOfBinOp(minic::BinOp op) {
    switch (op) {
      case minic::BinOp::kAdd: return Opcode::kAdd;
      case minic::BinOp::kSub: return Opcode::kSub;
      case minic::BinOp::kMul: return Opcode::kMul;
      case minic::BinOp::kDiv: return Opcode::kDiv;
      case minic::BinOp::kMod: return Opcode::kMod;
      case minic::BinOp::kShl: return Opcode::kShl;
      case minic::BinOp::kShr: return Opcode::kShr;
      case minic::BinOp::kBitAnd: return Opcode::kAnd;
      case minic::BinOp::kBitOr: return Opcode::kOr;
      case minic::BinOp::kBitXor: return Opcode::kXor;
      default: throw LowerError("no direct opcode for binop");
    }
  }

  int LowerExpr(ExprId id) {
    const minic::Expr& e = program_.expr(id);
    switch (e.kind) {
      case ExprKind::kNum: {
        const int dst = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kMovImm, dst, kNoVReg, kNoVReg, e.num));
        return dst;
      }
      case ExprKind::kStr: {
        // Scalar context: string length (see interp.h).
        const int dst = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kMovImm, dst, kNoVReg, kNoVReg,
                          static_cast<std::int64_t>(e.name.size())));
        return dst;
      }
      case ExprKind::kVar: {
        const VarSlot& slot = Lookup(e.name);
        if (slot.is_array) return ArrayBase(slot);
        // Snapshot into a fresh vreg: a later side effect in the same
        // expression (e.g. `x + (x = 3)`) must not clobber this operand.
        // Copy propagation cleans up the cases where no clobber follows.
        const int copy = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kMov, copy, slot.vreg));
        return copy;
      }
      case ExprKind::kIndex: {
        const VarSlot& slot = Lookup(program_.expr(e.lhs).name);
        const ArrayRef ref = LowerArrayRef(slot, e.rhs);
        const int dst = fn_->NewVReg();
        EmitLoadRef(ref, dst);
        return dst;
      }
      case ExprKind::kCall:
        return LowerCall(e);
      case ExprKind::kUnary:
        return LowerUnary(e);
      case ExprKind::kBinary:
        return LowerBinary(e);
      case ExprKind::kAssign:
        return LowerAssign(e);
    }
    throw LowerError("unknown expression kind");
  }

  // Materializes the base address of an array variable.
  int ArrayBase(const VarSlot& slot) {
    const int base = fn_->NewVReg();
    if (slot.param_array) {
      // Address stored in the parameter frame slot.
      Emit(IrInsn::Make(Opcode::kLoadI, base, kFpVReg, kNoVReg,
                        slot.frame_offset));
    } else {
      Emit(IrInsn::Make(Opcode::kFrameAddr, base, kNoVReg, kNoVReg,
                        slot.frame_offset));
    }
    return base;
  }

  // A resolved array element address: base register plus either an
  // immediate or a register index. Computed once per source-level access so
  // side-effecting index expressions evaluate exactly once (matching the
  // interpreter's LValue resolution).
  struct ArrayRef {
    int base = kNoVReg;
    int idx = kNoVReg;
    std::int64_t imm = 0;
    bool is_imm = false;
  };

  // Emits the wrap-and-address sequence for arr[index]. For local arrays
  // the size is static; array parameters have unknown extent, so the wrap
  // is skipped (the generator guarantees in-bounds indices for them via
  // explicit masking in the source).
  ArrayRef LowerArrayRef(const VarSlot& slot, ExprId index_expr) {
    ArrayRef ref;
    const minic::Expr& index = program_.expr(index_expr);
    if (index.kind == ExprKind::kNum && slot.array_size > 0) {
      ref.base = ArrayBase(slot);
      ref.is_imm = true;
      ref.imm = minic::semantics::WrapIndex(index.num, slot.array_size);
      return ref;
    }
    int idx = LowerExpr(index_expr);
    ref.base = ArrayBase(slot);
    if (slot.array_size > 0) {
      // Branch-free Euclidean wrap: m = i % N; m += (m >> 63) & N.
      const std::int64_t size = slot.array_size;
      const int m = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kModI, m, idx, kNoVReg, size));
      const int sign = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kShrI, sign, m, kNoVReg, 63));
      const int add = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kAndI, add, sign, kNoVReg, size));
      const int wrapped = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kAdd, wrapped, m, add));
      idx = wrapped;
    }
    ref.idx = idx;
    return ref;
  }

  void EmitLoadRef(const ArrayRef& ref, int dst) {
    if (ref.is_imm) {
      Emit(IrInsn::Make(Opcode::kLoadI, dst, ref.base, kNoVReg, ref.imm));
    } else {
      Emit(IrInsn::Make(Opcode::kLoad, dst, ref.base, ref.idx));
    }
  }

  void EmitStoreRef(const ArrayRef& ref, int src) {
    if (ref.is_imm) {
      Emit(IrInsn::Make(Opcode::kStoreI, src, ref.base, kNoVReg, ref.imm));
    } else {
      Emit(IrInsn::Make(Opcode::kStore, src, ref.base, ref.idx));
    }
  }

  int LowerCall(const minic::Expr& e) {
    const int callee = program_.FindFunction(e.name);
    if (callee < 0) throw LowerError("unknown callee " + e.name);
    const minic::Function& fn =
        program_.functions()[static_cast<std::size_t>(callee)];
    std::vector<int> arg_regs;
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const minic::Expr& arg = program_.expr(e.args[i]);
      if (fn.params[i].is_array && arg.kind == ExprKind::kStr) {
        const int reg = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kMovStr, reg, kNoVReg, kNoVReg,
                          InternString(arg.name)));
        arg_regs.push_back(reg);
      } else {
        arg_regs.push_back(LowerExpr(e.args[i]));
      }
    }
    for (std::size_t i = 0; i < arg_regs.size(); ++i) {
      Emit(IrInsn::Make(Opcode::kArg, arg_regs[i], kNoVReg, kNoVReg,
                        static_cast<std::int64_t>(i)));
    }
    const int dst = fn_->NewVReg();
    Emit(IrInsn::Make(Opcode::kCall, dst, kNoVReg, kNoVReg, callee));
    return dst;
  }

  int LowerUnary(const minic::Expr& e) {
    switch (e.un_op) {
      case minic::UnOp::kNeg: {
        const int src = LowerExpr(e.lhs);
        const int dst = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kNeg, dst, src));
        return dst;
      }
      case minic::UnOp::kBitNot: {
        const int src = LowerExpr(e.lhs);
        const int dst = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kNot, dst, src));
        return dst;
      }
      case minic::UnOp::kLogicalNot: {
        const int src = LowerExpr(e.lhs);
        const int dst = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kCmpI, src, kNoVReg, kNoVReg, 0));
        Emit(IrInsn::Make(Opcode::kSetCond, dst, kNoVReg, kNoVReg, 0,
                          Cond::kEq));
        return dst;
      }
      case minic::UnOp::kPreInc:
        return LowerBump(e.lhs, +1, /*return_old=*/false);
      case minic::UnOp::kPreDec:
        return LowerBump(e.lhs, -1, /*return_old=*/false);
      case minic::UnOp::kPostInc:
        return LowerBump(e.lhs, +1, /*return_old=*/true);
      case minic::UnOp::kPostDec:
        return LowerBump(e.lhs, -1, /*return_old=*/true);
    }
    throw LowerError("unknown unary op");
  }

  int LowerBump(ExprId target, int delta, bool return_old) {
    const minic::Expr& t = program_.expr(target);
    if (t.kind == ExprKind::kVar) {
      const VarSlot& slot = Lookup(t.name);
      int old_copy = kNoVReg;
      if (return_old) {
        old_copy = fn_->NewVReg();
        Emit(IrInsn::Make(Opcode::kMov, old_copy, slot.vreg));
      }
      Emit(IrInsn::Make(Opcode::kAddI, slot.vreg, slot.vreg, kNoVReg, delta));
      if (return_old) return old_copy;
      const int new_copy = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kMov, new_copy, slot.vreg));
      return new_copy;
    }
    // Array element: resolve the address once, then read-modify-write.
    const VarSlot& slot = Lookup(program_.expr(t.lhs).name);
    const ArrayRef ref = LowerArrayRef(slot, t.rhs);
    const int old_value = fn_->NewVReg();
    EmitLoadRef(ref, old_value);
    const int new_value = fn_->NewVReg();
    Emit(IrInsn::Make(Opcode::kAddI, new_value, old_value, kNoVReg, delta));
    EmitStoreRef(ref, new_value);
    return return_old ? old_value : new_value;
  }

  int LowerBinary(const minic::Expr& e) {
    if (IsComparison(e.bin_op)) {
      const int lhs = LowerExpr(e.lhs);
      const int rhs = LowerExpr(e.rhs);
      const int dst = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kCmp, lhs, rhs));
      Emit(IrInsn::Make(Opcode::kSetCond, dst, kNoVReg, kNoVReg, 0,
                        CondOfBinOp(e.bin_op)));
      return dst;
    }
    if (e.bin_op == minic::BinOp::kLogicalAnd ||
        e.bin_op == minic::BinOp::kLogicalOr) {
      // Short-circuit with a materialized 0/1 result.
      const int dst = fn_->NewVReg();
      const int true_block = NewBlock();
      const int false_block = NewBlock();
      const int end_block = NewBlock();
      const ExprId self = FindSelf(e);
      LowerCondBranch(self, true_block, false_block);
      cur_block_ = true_block;
      Emit(IrInsn::Make(Opcode::kMovImm, dst, kNoVReg, kNoVReg, 1));
      Branch(end_block);
      cur_block_ = false_block;
      Emit(IrInsn::Make(Opcode::kMovImm, dst, kNoVReg, kNoVReg, 0));
      Branch(end_block);
      cur_block_ = end_block;
      return dst;
    }
    const int lhs = LowerExpr(e.lhs);
    const int rhs = LowerExpr(e.rhs);
    const int dst = fn_->NewVReg();
    Emit(IrInsn::Make(OpcodeOfBinOp(e.bin_op), dst, lhs, rhs));
    return dst;
  }

  // Recovers the ExprId of an Expr reference (arena scan; expressions are
  // unique objects so pointer identity is sound).
  ExprId FindSelf(const minic::Expr& e) const {
    for (std::size_t i = 0; i < program_.expr_count(); ++i) {
      if (&program_.expr(static_cast<ExprId>(i)) == &e) {
        return static_cast<ExprId>(i);
      }
    }
    throw LowerError("expression not in arena");
  }

  int LowerAssign(const minic::Expr& e) {
    const minic::Expr& target = program_.expr(e.lhs);
    const int rhs = LowerExpr(e.rhs);
    if (target.kind == ExprKind::kVar) {
      const VarSlot& slot = Lookup(target.name);
      if (e.assign_op == minic::AssignOp::kAssign) {
        Emit(IrInsn::Make(Opcode::kMov, slot.vreg, rhs));
      } else {
        Emit(IrInsn::Make(CompoundOpcode(e.assign_op), slot.vreg, slot.vreg,
                          rhs));
      }
      // Snapshot the assigned value (see kVar case for why).
      const int copy = fn_->NewVReg();
      Emit(IrInsn::Make(Opcode::kMov, copy, slot.vreg));
      return copy;
    }
    // Array element target: resolve the address once.
    const VarSlot& slot = Lookup(program_.expr(target.lhs).name);
    const ArrayRef ref = LowerArrayRef(slot, target.rhs);
    int value = rhs;
    if (e.assign_op != minic::AssignOp::kAssign) {
      const int old_value = fn_->NewVReg();
      EmitLoadRef(ref, old_value);
      value = fn_->NewVReg();
      Emit(IrInsn::Make(CompoundOpcode(e.assign_op), value, old_value, rhs));
    }
    EmitStoreRef(ref, value);
    return value;
  }

  static Opcode CompoundOpcode(minic::AssignOp op) {
    switch (op) {
      case minic::AssignOp::kAddAssign: return Opcode::kAdd;
      case minic::AssignOp::kSubAssign: return Opcode::kSub;
      case minic::AssignOp::kMulAssign: return Opcode::kMul;
      case minic::AssignOp::kDivAssign: return Opcode::kDiv;
      case minic::AssignOp::kAndAssign: return Opcode::kAnd;
      case minic::AssignOp::kOrAssign: return Opcode::kOr;
      case minic::AssignOp::kXorAssign: return Opcode::kXor;
      case minic::AssignOp::kAssign: break;
    }
    throw LowerError("not a compound assignment");
  }

  const minic::Program& program_;
  const LoweringOptions& options_;
  IrProgram* out_;
  IrFunction* fn_ = nullptr;
  int cur_block_ = 0;
  std::vector<std::map<std::string, VarSlot>> scopes_;
  std::map<std::string, int> label_blocks_;
  std::vector<int> break_stack_;
  std::vector<int> continue_stack_;
};

}  // namespace

bool LowerProgram(const minic::Program& program, IrProgram* out,
                  std::string* error) {
  return LowerProgram(program, LoweringOptions{}, out, error);
}

bool LowerProgram(const minic::Program& program,
                  const LoweringOptions& options, IrProgram* out,
                  std::string* error) {
  *out = IrProgram();
  try {
    Lowerer lowerer(program, options, out);
    lowerer.Run();
  } catch (const LowerError& err) {
    *error = err.what();
    return false;
  }
  for (const IrFunction& fn : out->functions) {
    if (!fn.Validate(error)) return false;
  }
  return true;
}

}  // namespace asteria::compiler
