// Linear-scan register allocation (Poletto & Sarkar) with spilling.
//
// Rewrites the IrFunction in place: after the pass every register field
// holds a *physical* register. Allocatable registers are r0..r<K-1> (K from
// the IsaSpec), r28-r30 are reserved spill scratches, r31 is the frame
// pointer. Spilled vregs receive frame slots; each use loads into a scratch
// and each def stores back, producing exactly the memory traffic that makes
// register-starved targets (x86) decompile with extra temporaries.
//
// For two-operand ISAs (x86/x64) a post-pass rewrites 3-op ALU instructions
// into mov+op pairs honouring the dst==lhs constraint.
#pragma once

#include "binary/isa.h"
#include "compiler/ir.h"

namespace asteria::compiler {

inline constexpr int kScratchA = 30;  // def / value-operand scratch
inline constexpr int kScratchB = 28;
inline constexpr int kScratchC = 29;

struct RegAllocStats {
  int spilled_vregs = 0;
  int spill_loads = 0;
  int spill_stores = 0;
  int fixup_moves = 0;
};

// Allocates registers for `fn` targeting `spec`. Returns statistics.
RegAllocStats AllocateRegisters(IrFunction* fn, const binary::IsaSpec& spec);

}  // namespace asteria::compiler
