#include "compiler/emit.h"

#include <cassert>

namespace asteria::compiler {

binary::BinFunction EmitFunction(const IrFunction& fn) {
  binary::BinFunction out;
  out.name = fn.name;
  out.num_params = fn.num_params;
  out.param_is_array = fn.param_is_array;
  out.frame_words = fn.frame_words;

  // First pass: compute the emitted index of each block's first instruction.
  // Layout = block order. A kBrCond expands to brc(+br); a trailing kBr to
  // the next block is elided.
  std::vector<int> block_index(fn.blocks.size(), 0);
  int cursor = 0;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    block_index[b] = cursor;
    const IrBlock& block = fn.blocks[b];
    for (std::size_t i = 0; i < block.insns.size(); ++i) {
      const IrInsn& insn = block.insns[i];
      switch (insn.op) {
        case Opcode::kBr:
          // Elide a fallthrough branch (always the block's last insn).
          if (insn.target != static_cast<int>(b) + 1) ++cursor;
          break;
        case Opcode::kBrCond:
          ++cursor;
          if (insn.target2 != static_cast<int>(b) + 1) ++cursor;
          break;
        default:
          ++cursor;
          break;
      }
    }
  }

  // Second pass: emit.
  auto reg = [](int v) {
    assert(v >= 0 && v < binary::kNumRegs);
    return static_cast<binary::Reg>(v);
  };
  auto reg_or_zero = [&](int v) {
    return v == kNoVReg ? binary::Reg{0} : reg(v);
  };
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (const IrInsn& insn : fn.blocks[b].insns) {
      binary::Instruction machine;
      machine.op = insn.op;
      machine.cond = insn.cond;
      machine.a = reg_or_zero(insn.a);
      machine.b = reg_or_zero(insn.b);
      machine.c = reg_or_zero(insn.c);
      machine.imm = insn.imm;
      switch (insn.op) {
        case Opcode::kBr:
          if (insn.target == static_cast<int>(b) + 1) continue;  // elided
          machine.imm = block_index[static_cast<std::size_t>(insn.target)];
          break;
        case Opcode::kBrCond: {
          machine.imm = block_index[static_cast<std::size_t>(insn.target)];
          out.code.push_back(machine);
          if (insn.target2 != static_cast<int>(b) + 1) {
            binary::Instruction fallthrough;
            fallthrough.op = Opcode::kBr;
            fallthrough.imm =
                block_index[static_cast<std::size_t>(insn.target2)];
            out.code.push_back(fallthrough);
          }
          continue;
        }
        case Opcode::kJmpTable:
          machine.imm = insn.table;
          break;
        default:
          break;
      }
      out.code.push_back(machine);
    }
  }

  for (const IrJumpTable& table : fn.jump_tables) {
    binary::JumpTable out_table;
    out_table.base = table.base;
    out_table.default_target =
        block_index[static_cast<std::size_t>(table.default_target)];
    for (int t : table.targets) {
      out_table.targets.push_back(block_index[static_cast<std::size_t>(t)]);
    }
    out.jump_tables.push_back(std::move(out_table));
  }
  return out;
}

}  // namespace asteria::compiler
