// Optimizers: AdaGrad (the paper's choice, §IV-A) and plain SGD.
//
// Optimizer state is keyed by Parameter pointer, so one optimizer instance
// can drive any parameter subset across training steps.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/parameter.h"

namespace asteria::nn {

// Interface shared by all optimizers.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently accumulated in the
  // parameters, then zeroes the gradients.
  virtual void Step(const std::vector<Parameter*>& params) = 0;
};

// AdaGrad: per-weight learning rates that shrink with accumulated squared
// gradients (Duchi et al.). Matches torch.optim.Adagrad's update rule.
class AdaGrad final : public Optimizer {
 public:
  explicit AdaGrad(double learning_rate = 0.05, double eps = 1e-10)
      : learning_rate_(learning_rate), eps_(eps) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  double learning_rate_;
  double eps_;
  std::unordered_map<Parameter*, Matrix> accum_;
};

// Plain SGD with optional gradient clipping (by global max-abs).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate = 0.01, double clip = 0.0)
      : learning_rate_(learning_rate), clip_(clip) {}

  void Step(const std::vector<Parameter*>& params) override;

 private:
  double learning_rate_;
  double clip_;
};

}  // namespace asteria::nn
