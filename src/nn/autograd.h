// Reverse-mode automatic differentiation on a dynamic tape.
//
// The Tree-LSTM's compute graph depends on the shape of each input AST
// ("batch size always 1", §IV-A), so the graph is rebuilt per example: ops
// append nodes to a Tape, Backward() walks the tape in reverse. Parameter
// leaves accumulate into Parameter::grad; everything is gradient-checked
// against central finite differences in tests/nn_gradcheck_test.cpp.
#pragma once

#include <functional>
#include <vector>

#include "nn/matrix.h"
#include "nn/parameter.h"

namespace asteria::nn {

class Tape;

// Lightweight handle to a tape node.
struct Var {
  int id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  // ---- graph construction ------------------------------------------------
  // Constant leaf (no gradient flows into it).
  Var Leaf(Matrix value);
  // Trainable leaf; Backward accumulates into p->grad.
  Var Param(Parameter* p);
  // Row `row` of `table`, returned as a (dim x 1) column vector; gradients
  // scatter into the corresponding row of table->grad.
  Var EmbeddingRow(Parameter* table, int row);

  Var Add(Var a, Var b);
  Var Sub(Var a, Var b);
  // Matrix product.
  Var MatMul(Var a, Var b);
  // a^T * b (used by the eq. (8) output head: W is stored (2n x 2)).
  Var MatMulTransA(Var a, Var b);
  // Elementwise product.
  Var Hadamard(Var a, Var b);
  // Elementwise quotient a / b (b must be nonzero everywhere).
  Var DivElem(Var a, Var b);
  Var Sigmoid(Var a);
  Var Tanh(Var a);
  Var Relu(Var a);
  // Elementwise |x|; subgradient 0 at x == 0.
  Var Abs(Var a);
  Var Square(Var a);
  Var Sqrt(Var a);
  Var Scale(Var a, double s);
  Var AddConst(Var a, double c);
  // Stacks two column vectors (a over b).
  Var ConcatRows(Var a, Var b);
  // Sum of all elements -> 1x1.
  Var Sum(Var a);
  // <a, b> viewed as flat vectors -> 1x1.
  Var Dot(Var a, Var b);
  // Numerically stable softmax over a column vector.
  Var Softmax(Var a);
  // Binary cross entropy between prediction p (column vector in (0,1)) and a
  // constant target of the same shape; mean over elements -> 1x1.
  // Predictions are clamped to [eps, 1-eps] for stability.
  Var BceLoss(Var pred, const Matrix& target);
  // (mean(a) - target)^2 for 1x1 a -> 1x1; used by the Gemini baseline and
  // the cosine "regression" ablation head.
  Var SquaredErrorToConst(Var a, double target);
  // cos(a, b) for column vectors -> 1x1 (composed from primitive ops).
  Var Cosine(Var a, Var b);

  // ---- execution -----------------------------------------------------------
  const Matrix& value(Var v) const { return nodes_[static_cast<std::size_t>(v.id)].value; }
  // Valid after Backward(); zero matrix if no gradient reached the node.
  const Matrix& grad(Var v) const { return nodes_[static_cast<std::size_t>(v.id)].grad; }

  // Runs reverse-mode accumulation from `loss` (must be 1x1).
  void Backward(Var loss);

  // Pre-allocates room for `nodes` tape nodes so graph construction does not
  // reallocate mid-example (TreeLstmEncoder::Encode reserves from the AST
  // size before its post-order walk).
  void Reserve(std::size_t nodes) { nodes_.reserve(nodes); }

  // Drops all nodes so the tape can be reused for the next example. Keeps
  // the node vector's capacity: a tape reused across training examples
  // reaches steady state after the largest one and stops reallocating.
  void Clear();

  std::size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    Matrix value;
    Matrix grad;
    // Propagates this node's grad to its inputs; null for constants.
    std::function<void(Tape&)> backward;
  };

  Var Push(Matrix value, std::function<void(Tape&)> backward = nullptr);
  Matrix& MutableGrad(int id) { return nodes_[static_cast<std::size_t>(id)].grad; }

  std::vector<Node> nodes_;
};

}  // namespace asteria::nn
