#include "nn/optimizer.h"

#include <cmath>

namespace asteria::nn {

void AdaGrad::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    auto [it, inserted] =
        accum_.try_emplace(p, Matrix(p->value.rows(), p->value.cols()));
    Matrix& acc = it->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      acc[i] += g * g;
      p->value[i] -= learning_rate_ * g / (std::sqrt(acc[i]) + eps_);
    }
    p->ZeroGrad();
  }
}

void Sgd::Step(const std::vector<Parameter*>& params) {
  double scale = 1.0;
  if (clip_ > 0.0) {
    double max_abs = 0.0;
    for (Parameter* p : params) max_abs = std::max(max_abs, p->grad.MaxAbs());
    if (max_abs > clip_) scale = clip_ / max_abs;
  }
  for (Parameter* p : params) {
    p->value.AddScaled(p->grad, -learning_rate_ * scale);
    p->ZeroGrad();
  }
}

}  // namespace asteria::nn
