// Trainable parameters and a store that owns them.
//
// Parameters are owned by a ParameterStore (stable addresses; models hold
// Parameter* handles). Gradients are accumulated by Tape::Backward and
// consumed by an optimizer (see optimizer.h). The store also provides
// save/load so trained models can be reused by examples and benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/matrix.h"
#include "util/rng.h"

namespace asteria::nn {

// One trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Matrix value;
  Matrix grad;

  Parameter(std::string name, int rows, int cols)
      : name(std::move(name)), value(rows, cols), grad(rows, cols) {}

  void ZeroGrad() { grad.SetZero(); }
};

// Owns parameters; addresses remain valid for the store's lifetime.
class ParameterStore {
 public:
  // Creates a zero-initialized parameter. Names must be unique (they key
  // the save/load format); duplicate names throw.
  Parameter* Create(const std::string& name, int rows, int cols);

  // Creates a parameter with Xavier/Glorot uniform init.
  Parameter* CreateXavier(const std::string& name, int rows, int cols,
                          util::Rng& rng);

  const std::vector<Parameter*>& parameters() const { return handles_; }
  Parameter* Find(const std::string& name) const;

  void ZeroGrads();

  // Total number of scalar weights.
  std::size_t TotalWeights() const;

  // Legacy "asteria-params v1" codec (text header + raw doubles). New code
  // should go through store::SaveModelCheckpoint / LoadModelCheckpoint
  // (src/store/checkpoint.h), which write the versioned CRC-checked
  // container format and fall back to this reader for old files.
  bool Save(const std::string& path) const;
  // Loads values for parameters already created with matching names/shapes.
  // All-or-nothing: validates the declared count against the file size and
  // every name/shape before committing any value; failures are logged with
  // a reason and leave the store untouched.
  bool Load(const std::string& path);

 private:
  std::vector<std::unique_ptr<Parameter>> owned_;
  std::vector<Parameter*> handles_;
};

}  // namespace asteria::nn
