#include "nn/parameter.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace asteria::nn {

Parameter* ParameterStore::Create(const std::string& name, int rows,
                                  int cols) {
  if (Find(name) != nullptr) {
    throw std::invalid_argument("duplicate parameter name: " + name);
  }
  owned_.push_back(std::make_unique<Parameter>(name, rows, cols));
  handles_.push_back(owned_.back().get());
  return handles_.back();
}

Parameter* ParameterStore::CreateXavier(const std::string& name, int rows,
                                        int cols, util::Rng& rng) {
  Parameter* p = Create(name, rows, cols);
  const double bound = std::sqrt(6.0 / (rows + cols));
  for (std::size_t i = 0; i < p->value.size(); ++i) {
    p->value[i] = rng.NextDouble(-bound, bound);
  }
  return p;
}

Parameter* ParameterStore::Find(const std::string& name) const {
  for (Parameter* p : handles_) {
    if (p->name == name) return p;
  }
  return nullptr;
}

void ParameterStore::ZeroGrads() {
  for (Parameter* p : handles_) p->ZeroGrad();
}

std::size_t ParameterStore::TotalWeights() const {
  std::size_t total = 0;
  for (Parameter* p : handles_) total += p->value.size();
  return total;
}

bool ParameterStore::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "asteria-params v1\n" << handles_.size() << "\n";
  for (Parameter* p : handles_) {
    out << p->name << " " << p->value.rows() << " " << p->value.cols() << "\n";
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    out << "\n";
  }
  return static_cast<bool>(out);
}

bool ParameterStore::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string magic, version;
  in >> magic >> version;
  if (magic != "asteria-params" || version != "v1") return false;
  std::size_t count = 0;
  in >> count;
  for (std::size_t i = 0; i < count; ++i) {
    std::string name;
    int rows = 0, cols = 0;
    in >> name >> rows >> cols;
    in.ignore();  // newline before the raw block
    Parameter* p = Find(name);
    if (p == nullptr || p->value.rows() != rows || p->value.cols() != cols) {
      return false;
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    if (!in) return false;
    in.ignore();  // trailing newline
  }
  return true;
}

}  // namespace asteria::nn
