#include "nn/parameter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>

#include "util/failpoint.h"
#include "util/log.h"

namespace asteria::nn {

namespace {

// Fault-injection points for the legacy text weight format (the container
// checkpoint path has its own store.* failpoints).
util::Failpoint fp_params_open("params.open");
util::Failpoint fp_params_write("params.write");
util::Failpoint fp_params_rename("params.rename");
util::Failpoint fp_params_read("params.read");

}  // namespace

Parameter* ParameterStore::Create(const std::string& name, int rows,
                                  int cols) {
  if (Find(name) != nullptr) {
    throw std::invalid_argument("duplicate parameter name: " + name);
  }
  owned_.push_back(std::make_unique<Parameter>(name, rows, cols));
  handles_.push_back(owned_.back().get());
  return handles_.back();
}

Parameter* ParameterStore::CreateXavier(const std::string& name, int rows,
                                        int cols, util::Rng& rng) {
  Parameter* p = Create(name, rows, cols);
  const double bound = std::sqrt(6.0 / (rows + cols));
  for (std::size_t i = 0; i < p->value.size(); ++i) {
    p->value[i] = rng.NextDouble(-bound, bound);
  }
  return p;
}

Parameter* ParameterStore::Find(const std::string& name) const {
  for (Parameter* p : handles_) {
    if (p->name == name) return p;
  }
  return nullptr;
}

void ParameterStore::ZeroGrads() {
  for (Parameter* p : handles_) p->ZeroGrad();
}

std::size_t ParameterStore::TotalWeights() const {
  std::size_t total = 0;
  for (Parameter* p : handles_) total += p->value.size();
  return total;
}

bool ParameterStore::Save(const std::string& path) const {
  // Same crash-safety discipline as store::Writer: stream to a temp file
  // and rename over the final path only once everything is on disk.
  const std::string temp_path = path + ".tmp";
  if (fp_params_open.ShouldFail()) return false;
  std::ofstream out(temp_path, std::ios::binary);
  if (!out) return false;
  out << "asteria-params v1\n" << handles_.size() << "\n";
  for (Parameter* p : handles_) {
    out << p->name << " " << p->value.rows() << " " << p->value.cols() << "\n";
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(double)));
    out << "\n";
  }
  if (fp_params_write.ShouldFail()) out.setstate(std::ios::failbit);
  const bool wrote = static_cast<bool>(out);
  out.close();
  if (!wrote || fp_params_rename.ShouldFail() ||
      std::rename(temp_path.c_str(), path.c_str()) != 0) {
    std::remove(temp_path.c_str());
    return false;
  }
  return true;
}

bool ParameterStore::Load(const std::string& path) {
  const auto reject = [&path](const std::string& reason) {
    ASTERIA_LOG(Error) << "ParameterStore::Load(" << path << "): " << reason;
    return false;
  };
  if (fp_params_read.ShouldFail()) {
    return reject("read failed (failpoint params.read)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return reject("cannot open file");
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::string magic, version;
  in >> magic >> version;
  if (!in || magic != "asteria-params" || version != "v1") {
    return reject("bad magic/version (expected 'asteria-params v1')");
  }
  std::uint64_t count = 0;
  in >> count;
  if (!in) return reject("unreadable parameter count");
  // Each parameter record is at least a 1-char name, " r c\n", one double,
  // and the trailing newline; a count that cannot fit in the file is a
  // corrupted or truncated header, not something to iterate on.
  if (count > file_size / (sizeof(double) + 6)) {
    return reject("declared parameter count " + std::to_string(count) +
                  " cannot fit in a " + std::to_string(file_size) +
                  "-byte file — corrupted header");
  }
  if (count != handles_.size()) {
    return reject("file declares " + std::to_string(count) +
                  " parameters but this store has " +
                  std::to_string(handles_.size()));
  }
  // Stage every value first so a failure never leaves the store partially
  // overwritten (all-or-nothing, matching store::LoadModelCheckpoint).
  std::vector<std::pair<Parameter*, std::vector<double>>> staged;
  staged.reserve(count);
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    long long rows = 0, cols = 0;
    in >> name >> rows >> cols;
    if (!in) {
      return reject("truncated header for parameter record " +
                    std::to_string(i));
    }
    in.ignore();  // newline before the raw block
    if (!seen.insert(name).second) {
      return reject("duplicate parameter record '" + name + "'");
    }
    Parameter* p = Find(name);
    if (p == nullptr) {
      return reject("unknown parameter '" + name +
                    "' (model/checkpoint mismatch)");
    }
    if (p->value.rows() != rows || p->value.cols() != cols) {
      return reject("parameter '" + name + "' has shape " +
                    std::to_string(rows) + "x" + std::to_string(cols) +
                    " in the file but " + std::to_string(p->value.rows()) +
                    "x" + std::to_string(p->value.cols()) + " in this store");
    }
    std::vector<double> values(p->value.size());
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(double)));
    if (!in || in.gcount() !=
                   static_cast<std::streamsize>(values.size() * sizeof(double))) {
      return reject("raw value block of parameter '" + name +
                    "' is truncated (wanted " +
                    std::to_string(values.size() * sizeof(double)) +
                    " bytes)");
    }
    in.ignore();  // trailing newline
    for (double v : values) {
      if (!std::isfinite(v)) {
        return reject("parameter '" + name +
                      "' contains non-finite values (NaN/Inf) — refusing to "
                      "load a poisoned weight file");
      }
    }
    staged.emplace_back(p, std::move(values));
  }
  for (auto& [p, values] : staged) {
    std::copy(values.begin(), values.end(), p->value.data());
  }
  return true;
}

}  // namespace asteria::nn
