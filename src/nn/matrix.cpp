#include "nn/matrix.h"

#include <cmath>
#include <sstream>

namespace asteria::nn {

Matrix Matrix::Filled(int rows, int cols, double value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::ColVector(std::vector<double> values) {
  const int n = static_cast<int>(values.size());
  return Matrix(n, 1, std::move(values));
}

void Matrix::Fill(double value) {
  for (auto& x : data_) x = value;
}

void Matrix::AddInPlace(const Matrix& other) {
  assert(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(double factor) {
  for (auto& x : data_) x *= factor;
}

double Matrix::SumAll() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::Norm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

std::string Matrix::DebugString() const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  for (int r = 0; r < rows_; ++r) {
    if (r) out << "; ";
    for (int c = 0; c < cols_; ++c) {
      if (c) out << ", ";
      out << (*this)(r, c);
    }
  }
  out << "]";
  return out.str();
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out(i, j) += aki * b(k, j);
      }
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace asteria::nn
