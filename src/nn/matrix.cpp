#include "nn/matrix.h"

#include <cmath>
#include <sstream>

namespace asteria::nn {

Matrix Matrix::Filled(int rows, int cols, double value) {
  Matrix m(rows, cols);
  m.Fill(value);
  return m;
}

Matrix Matrix::ColVector(std::vector<double> values) {
  const int n = static_cast<int>(values.size());
  return Matrix(n, 1, std::move(values));
}

void Matrix::Gemv(const double* x, double* y) const {
  const int m = rows_;
  const int n = cols_;
  const double* a = data_.data();
  int i = 0;
  // Four rows per pass: four independent accumulator chains hide the FP-add
  // latency that serializes a single row's sum, and each x[k] load is shared.
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    const double* r1 = r0 + n;
    const double* r2 = r1 + n;
    const double* r3 = r2 + n;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (int k = 0; k < n; ++k) {
      const double xk = x[k];
      s0 += r0[k] * xk;
      s1 += r1[k] * xk;
      s2 += r2[k] * xk;
      s3 += r3[k] * xk;
    }
    y[i] = s0;
    y[i + 1] = s1;
    y[i + 2] = s2;
    y[i + 3] = s3;
  }
  for (; i < m; ++i) {
    const double* row = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    double sum = 0.0;
    for (int k = 0; k < n; ++k) sum += row[k] * x[k];
    y[i] = sum;
  }
}

void Matrix::Gemm(const Matrix& b, Matrix* out) const {
  assert(cols_ == b.rows_);
  if (out->rows_ != rows_ || out->cols_ != b.cols_) {
    *out = Matrix(rows_, b.cols_);
  }
  GemmRaw(data_.data(), b.data_.data(), out->data_.data(), rows_, cols_,
          b.cols_);
}

void Matrix::GemmRaw(const double* a, const double* b, double* c, int m,
                     int k, int n) {
  // Four rows of A per pass — the Gemv blocking applied per column of B.
  // Each c element keeps its own accumulator chain over ascending k, so the
  // per-element association matches Gemv/MatMul bit for bit.
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    const double* r1 = r0 + k;
    const double* r2 = r1 + k;
    const double* r3 = r2 + k;
    for (int j = 0; j < n; ++j) {
      const double* bj = b + j;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const double bv = bj[static_cast<std::size_t>(kk) * static_cast<std::size_t>(n)];
        s0 += r0[kk] * bv;
        s1 += r1[kk] * bv;
        s2 += r2[kk] * bv;
        s3 += r3[kk] * bv;
      }
      double* cj = c + static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + j;
      cj[0] = s0;
      cj[static_cast<std::size_t>(n)] = s1;
      cj[2 * static_cast<std::size_t>(n)] = s2;
      cj[3 * static_cast<std::size_t>(n)] = s3;
    }
  }
  for (; i < m; ++i) {
    const double* row = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (int j = 0; j < n; ++j) {
      const double* bj = b + j;
      double sum = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        sum += row[kk] * bj[static_cast<std::size_t>(kk) * static_cast<std::size_t>(n)];
      }
      c[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) + j] = sum;
    }
  }
}

void Matrix::Fill(double value) {
  for (auto& x : data_) x = value;
}

void Matrix::AddInPlace(const Matrix& other) {
  assert(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  assert(SameShape(other));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

void Matrix::Scale(double factor) {
  for (auto& x : data_) x *= factor;
}

double Matrix::SumAll() const {
  double sum = 0.0;
  for (double x : data_) sum += x;
  return sum;
}

double Matrix::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Matrix::Norm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

std::string Matrix::DebugString() const {
  std::ostringstream out;
  out << rows_ << "x" << cols_ << " [";
  for (int r = 0; r < rows_; ++r) {
    if (r) out << "; ";
    for (int c = 0; c < cols_; ++c) {
      if (c) out << ", ";
      out << (*this)(r, c);
    }
  }
  out << "]";
  return out.str();
}

// The inner loops deliberately have no `a == 0.0` skip: the operands here
// are dense trained weights, where a data-dependent branch mispredicts far
// more than it saves.
Matrix MatMul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      for (int j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix out(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      for (int j = 0; j < b.cols(); ++j) {
        out(i, j) += aki * b(k, j);
      }
    }
  }
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (int k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Matrix Add(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

double Dot(const Matrix& a, const Matrix& b) {
  assert(a.SameShape(b));
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace asteria::nn
