// Dense row-major matrix of doubles: the numeric substrate replacing PyTorch
// tensors. Sized for the paper's scales (embedding/hidden dims 8..128), so
// simplicity and correctness are preferred over blocking/vectorization.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace asteria::nn {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {
    assert(rows >= 0 && cols >= 0);
  }
  Matrix(int rows, int cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  static Matrix Zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix Filled(int rows, int cols, double value);
  // Column vector (n x 1).
  static Matrix ColVector(std::vector<double> values);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c)];
  }
  double operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) + static_cast<std::size_t>(c)];
  }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  void Fill(double value);
  void SetZero() { Fill(0.0); }

  // y = (*this) · x, with x a dense cols()-length vector and y rows() long.
  // Each output row accumulates strictly in ascending-k order starting from
  // 0.0 — the same per-row association as MatMul with a (cols x 1) right
  // operand — so a row of a fused/stacked weight matrix yields a bitwise
  // identical sum to the unstacked per-gate MatMul. Rows are processed four
  // at a time (independent accumulator chains) purely for instruction-level
  // parallelism; the within-row order is unchanged.
  void Gemv(const double* x, double* y) const;

  // out = (*this) · b — Gemv extended to multiple right-hand sides (the
  // batch-scoring path of SearchIndex). Every out(i, j) accumulates in
  // ascending-k order from 0.0, i.e. exactly the Gemv/MatMul per-element
  // association, so Gemm results are bitwise identical to calling Gemv once
  // per column of b (and to MatMul). `out` is resized as needed.
  void Gemm(const Matrix& b, Matrix* out) const;

  // Raw-buffer core of Gemm: c (m x n, row-major) = a (m x k, row-major) ·
  // b (k x n, row-major). Same ascending-k accumulation contract; rows are
  // blocked four at a time for instruction-level parallelism. Buffers must
  // not alias.
  static void GemmRaw(const double* a, const double* b, double* c, int m,
                      int k, int n);

  // this += other (shapes must match).
  void AddInPlace(const Matrix& other);
  // this += scale * other.
  void AddScaled(const Matrix& other, double scale);
  void Scale(double factor);

  double SumAll() const;
  double MaxAbs() const;
  // Frobenius norm.
  double Norm() const;

  std::string DebugString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

// out = a * b (matrix product). Shapes: (m x k) * (k x n) -> (m x n).
Matrix MatMul(const Matrix& a, const Matrix& b);
// out = a^T * b.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);
// out = a * b^T.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);
// Elementwise product.
Matrix Hadamard(const Matrix& a, const Matrix& b);
// Elementwise sum / difference.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);
// Dot product of two same-shaped matrices viewed as flat vectors.
double Dot(const Matrix& a, const Matrix& b);

}  // namespace asteria::nn
