#include "nn/autograd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace asteria::nn {

namespace {
constexpr double kBceEps = 1e-7;
constexpr double kCosineEps = 1e-12;
}  // namespace

Var Tape::Push(Matrix value, std::function<void(Tape&)> backward) {
  Node node;
  node.grad = Matrix(value.rows(), value.cols());
  node.value = std::move(value);
  node.backward = std::move(backward);
  nodes_.push_back(std::move(node));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

Var Tape::Leaf(Matrix value) { return Push(std::move(value)); }

Var Tape::Param(Parameter* p) {
  Var v = Push(p->value);
  const int id = v.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, p](Tape& t) {
    p->grad.AddInPlace(t.nodes_[static_cast<std::size_t>(id)].grad);
  };
  return v;
}

Var Tape::EmbeddingRow(Parameter* table, int row) {
  assert(row >= 0 && row < table->value.rows());
  const int dim = table->value.cols();
  Matrix value(dim, 1);
  for (int c = 0; c < dim; ++c) value(c, 0) = table->value(row, c);
  Var v = Push(std::move(value));
  const int id = v.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, table, row, dim](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    for (int c = 0; c < dim; ++c) table->grad(row, c) += g(c, 0);
  };
  return v;
}

Var Tape::Add(Var a, Var b) {
  Var v = Push(nn::Add(value(a), value(b)));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    t.MutableGrad(ia).AddInPlace(g);
    t.MutableGrad(ib).AddInPlace(g);
  };
  return v;
}

Var Tape::Sub(Var a, Var b) {
  Var v = Push(nn::Sub(value(a), value(b)));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    t.MutableGrad(ia).AddInPlace(g);
    t.MutableGrad(ib).AddScaled(g, -1.0);
  };
  return v;
}

Var Tape::MatMul(Var a, Var b) {
  Var v = Push(nn::MatMul(value(a), value(b)));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    // dA = g * B^T ; dB = A^T * g
    t.MutableGrad(ia).AddInPlace(nn::MatMulTransB(g, t.value(Var{ib})));
    t.MutableGrad(ib).AddInPlace(nn::MatMulTransA(t.value(Var{ia}), g));
  };
  return v;
}

Var Tape::MatMulTransA(Var a, Var b) {
  Var v = Push(nn::MatMulTransA(value(a), value(b)));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    // out = A^T B  =>  dA = B g^T ; dB = A g
    t.MutableGrad(ia).AddInPlace(MatMulTransB(t.value(Var{ib}), g));
    t.MutableGrad(ib).AddInPlace(nn::MatMul(t.value(Var{ia}), g));
  };
  return v;
}

Var Tape::Hadamard(Var a, Var b) {
  Var v = Push(nn::Hadamard(value(a), value(b)));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    t.MutableGrad(ia).AddInPlace(nn::Hadamard(g, t.value(Var{ib})));
    t.MutableGrad(ib).AddInPlace(nn::Hadamard(g, t.value(Var{ia})));
  };
  return v;
}

Var Tape::DivElem(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.SameShape(bv));
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] / bv[i];
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& aval = t.value(Var{ia});
    const Matrix& bval = t.value(Var{ib});
    Matrix& ga = t.MutableGrad(ia);
    Matrix& gb = t.MutableGrad(ib);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] / bval[i];
      gb[i] -= g[i] * aval[i] / (bval[i] * bval[i]);
    }
  };
  return v;
}

Var Tape::Sigmoid(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-av[i]));
  }
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& y = t.value(Var{id});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * y[i] * (1.0 - y[i]);
    }
  };
  return v;
}

Var Tape::Tanh(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(av[i]);
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& y = t.value(Var{id});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * (1.0 - y[i] * y[i]);
    }
  };
  return v;
}

Var Tape::Relu(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] > 0.0 ? av[i] : 0.0;
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& x = t.value(Var{ia});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (x[i] > 0.0) ga[i] += g[i];
    }
  };
  return v;
}

Var Tape::Abs(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::fabs(av[i]);
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& x = t.value(Var{ia});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (x[i] > 0.0) ga[i] += g[i];
      else if (x[i] < 0.0) ga[i] -= g[i];
    }
  };
  return v;
}

Var Tape::Square(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = av[i] * av[i];
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& x = t.value(Var{ia});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) ga[i] += 2.0 * x[i] * g[i];
  };
  return v;
}

Var Tape::Sqrt(Var a) {
  const Matrix& av = value(a);
  Matrix out(av.rows(), av.cols());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::sqrt(av[i]);
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& y = t.value(Var{id});
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * 0.5 / (y[i] > 1e-12 ? y[i] : 1e-12);
    }
  };
  return v;
}

Var Tape::Scale(Var a, double s) {
  Matrix out = value(a);
  out.Scale(s);
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, s](Tape& t) {
    t.MutableGrad(ia).AddScaled(t.nodes_[static_cast<std::size_t>(id)].grad, s);
  };
  return v;
}

Var Tape::AddConst(Var a, double c) {
  Matrix out = value(a);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += c;
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    t.MutableGrad(ia).AddInPlace(t.nodes_[static_cast<std::size_t>(id)].grad);
  };
  return v;
}

Var Tape::ConcatRows(Var a, Var b) {
  const Matrix& av = value(a);
  const Matrix& bv = value(b);
  assert(av.cols() == 1 && bv.cols() == 1);
  // Hoist the row counts: av/bv alias nodes_, which Push may reallocate.
  const int na = av.rows(), nb = bv.rows();
  Matrix out(na + nb, 1);
  for (int r = 0; r < na; ++r) out(r, 0) = av(r, 0);
  for (int r = 0; r < nb; ++r) out(na + r, 0) = bv(r, 0);
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib, na, nb](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    Matrix& ga = t.MutableGrad(ia);
    Matrix& gb = t.MutableGrad(ib);
    for (int r = 0; r < na; ++r) ga(r, 0) += g(r, 0);
    for (int r = 0; r < nb; ++r) gb(r, 0) += g(na + r, 0);
  };
  return v;
}

Var Tape::Sum(Var a) {
  Matrix out(1, 1);
  out(0, 0) = value(a).SumAll();
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const double g = t.nodes_[static_cast<std::size_t>(id)].grad(0, 0);
    Matrix& ga = t.MutableGrad(ia);
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += g;
  };
  return v;
}

Var Tape::Dot(Var a, Var b) {
  Matrix out(1, 1);
  out(0, 0) = nn::Dot(value(a), value(b));
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id, ib = b.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia, ib](Tape& t) {
    const double g = t.nodes_[static_cast<std::size_t>(id)].grad(0, 0);
    t.MutableGrad(ia).AddScaled(t.value(Var{ib}), g);
    t.MutableGrad(ib).AddScaled(t.value(Var{ia}), g);
  };
  return v;
}

Var Tape::Softmax(Var a) {
  const Matrix& av = value(a);
  assert(av.cols() == 1);
  double max = av(0, 0);
  for (int r = 1; r < av.rows(); ++r) max = std::max(max, av(r, 0));
  Matrix out(av.rows(), 1);
  double denom = 0.0;
  for (int r = 0; r < av.rows(); ++r) {
    out(r, 0) = std::exp(av(r, 0) - max);
    denom += out(r, 0);
  }
  for (int r = 0; r < av.rows(); ++r) out(r, 0) /= denom;
  Var v = Push(std::move(out));
  const int id = v.id, ia = a.id;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ia](Tape& t) {
    const Matrix& g = t.nodes_[static_cast<std::size_t>(id)].grad;
    const Matrix& y = t.value(Var{id});
    // dx = (diag(y) - y y^T) g  =  y ⊙ (g - <y, g>)
    double dot = 0.0;
    for (int r = 0; r < y.rows(); ++r) dot += y(r, 0) * g(r, 0);
    Matrix& ga = t.MutableGrad(ia);
    for (int r = 0; r < y.rows(); ++r) {
      ga(r, 0) += y(r, 0) * (g(r, 0) - dot);
    }
  };
  return v;
}

Var Tape::BceLoss(Var pred, const Matrix& target) {
  const Matrix& p = value(pred);
  assert(p.SameShape(target));
  const double n = static_cast<double>(p.size());
  Matrix out(1, 1);
  double loss = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = std::clamp(p[i], kBceEps, 1.0 - kBceEps);
    loss += -(target[i] * std::log(pi) + (1.0 - target[i]) * std::log(1.0 - pi));
  }
  out(0, 0) = loss / n;
  Var v = Push(std::move(out));
  const int id = v.id, ip = pred.id;
  Matrix t_copy = target;
  nodes_[static_cast<std::size_t>(id)].backward = [id, ip, t_copy, n](Tape& t) {
    const double g = t.nodes_[static_cast<std::size_t>(id)].grad(0, 0);
    const Matrix& p = t.value(Var{ip});
    Matrix& gp = t.MutableGrad(ip);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double pi = std::clamp(p[i], kBceEps, 1.0 - kBceEps);
      gp[i] += g / n * (-(t_copy[i] / pi) + (1.0 - t_copy[i]) / (1.0 - pi));
    }
  };
  return v;
}

Var Tape::SquaredErrorToConst(Var a, double target) {
  assert(value(a).size() == 1);
  Var diff = AddConst(a, -target);
  return Square(diff);
}

Var Tape::Cosine(Var a, Var b) {
  Var ab = Dot(a, b);
  Var aa = AddConst(Dot(a, a), kCosineEps);
  Var bb = AddConst(Dot(b, b), kCosineEps);
  Var denom = Sqrt(Hadamard(aa, bb));
  return DivElem(ab, denom);
}

void Tape::Backward(Var loss) {
  if (!loss.valid() || nodes_.empty()) {
    throw std::logic_error("Backward on invalid var/empty tape");
  }
  Node& top = nodes_[static_cast<std::size_t>(loss.id)];
  if (top.value.size() != 1) {
    throw std::logic_error("Backward requires a scalar loss");
  }
  top.grad(0, 0) = 1.0;
  for (int id = loss.id; id >= 0; --id) {
    Node& node = nodes_[static_cast<std::size_t>(id)];
    if (node.backward && node.grad.MaxAbs() != 0.0) node.backward(*this);
  }
}

void Tape::Clear() { nodes_.clear(); }

}  // namespace asteria::nn
