#include "cfg/acfg.h"

#include "decompiler/machine_cfg.h"

namespace asteria::cfg {

using binary::Instruction;
using binary::Opcode;

namespace {

bool IsArithmetic(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI:
    case Opcode::kNeg: case Opcode::kNot: case Opcode::kLea:
      return true;
    default:
      return false;
  }
}

bool HasNumericImmediate(Opcode op) {
  switch (op) {
    case Opcode::kMovImm:
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI: case Opcode::kCmpI:
      return true;
    default:
      return false;
  }
}

}  // namespace

Acfg BuildAcfg(const binary::BinFunction& fn) {
  Acfg acfg;
  if (fn.code.empty()) return acfg;
  decompiler::MachineCfg cfg(fn);
  acfg.nodes.resize(static_cast<std::size_t>(cfg.num_blocks()));
  acfg.adjacency.resize(static_cast<std::size_t>(cfg.num_blocks()));
  for (int b = 0; b < cfg.num_blocks(); ++b) {
    const decompiler::MachineBlock& block = cfg.block(b);
    AcfgNode& node = acfg.nodes[static_cast<std::size_t>(b)];
    for (int i = block.first; i <= block.last; ++i) {
      const Instruction& insn = fn.code[static_cast<std::size_t>(i)];
      if (insn.op == Opcode::kMovStr) node.features[0] += 1;
      if (HasNumericImmediate(insn.op)) node.features[1] += 1;
      if (binary::IsBranch(insn)) node.features[2] += 1;
      if (binary::IsCall(insn)) node.features[3] += 1;
      node.features[4] += 1;
      if (IsArithmetic(insn.op)) node.features[5] += 1;
    }
    node.features[6] = static_cast<double>(block.succs.size());
    acfg.adjacency[static_cast<std::size_t>(b)] = block.succs;
  }
  const std::vector<double> centrality =
      BetweennessCentrality(acfg.adjacency);
  for (int b = 0; b < acfg.size(); ++b) {
    acfg.nodes[static_cast<std::size_t>(b)].features[7] =
        centrality[static_cast<std::size_t>(b)];
  }
  return acfg;
}

std::vector<double> BetweennessCentrality(
    const std::vector<std::vector<int>>& adjacency) {
  const int n = static_cast<int>(adjacency.size());
  std::vector<double> centrality(static_cast<std::size_t>(n), 0.0);
  // Brandes' algorithm, unweighted (BFS from every source).
  for (int s = 0; s < n; ++s) {
    std::vector<std::vector<int>> preds(static_cast<std::size_t>(n));
    std::vector<double> sigma(static_cast<std::size_t>(n), 0.0);
    std::vector<int> dist(static_cast<std::size_t>(n), -1);
    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    std::vector<int> queue{s};
    std::vector<int> order;
    std::size_t head = 0;
    while (head < queue.size()) {
      const int v = queue[head++];
      order.push_back(v);
      for (int w : adjacency[static_cast<std::size_t>(v)]) {
        if (dist[static_cast<std::size_t>(w)] < 0) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] += sigma[static_cast<std::size_t>(v)];
          preds[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(static_cast<std::size_t>(n), 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int w = *it;
      for (int v : preds[static_cast<std::size_t>(w)]) {
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      }
      if (w != s) {
        centrality[static_cast<std::size_t>(w)] +=
            delta[static_cast<std::size_t>(w)];
      }
    }
  }
  return centrality;
}

}  // namespace asteria::cfg
