// Attributed control-flow graphs (ACFG) — the function feature of
// Genius/Gemini (paper §VI, Xu et al. 2017).
//
// Each basic block carries the statistical features Gemini's graph
// embedding network consumes. Feature order follows the Genius paper:
//   0: number of string constants        (kMovStr)
//   1: number of numeric constants       (kMovImm + immediate ALU forms)
//   2: number of transfer instructions   (branches / jump tables)
//   3: number of call instructions
//   4: number of instructions
//   5: number of arithmetic instructions
//   6: number of offspring               (CFG successors)
//   7: betweenness centrality            (Brandes, unweighted)
#pragma once

#include <array>
#include <vector>

#include "binary/module.h"

namespace asteria::cfg {

inline constexpr int kAcfgFeatureDim = 8;

struct AcfgNode {
  std::array<double, kAcfgFeatureDim> features{};
};

struct Acfg {
  std::vector<AcfgNode> nodes;
  // adjacency[i] = successor node ids (directed edges, like the CFG).
  std::vector<std::vector<int>> adjacency;

  int size() const { return static_cast<int>(nodes.size()); }
};

// Builds the ACFG of one function.
Acfg BuildAcfg(const binary::BinFunction& fn);

// Unweighted betweenness centrality of every node (Brandes' algorithm on
// the directed graph).
std::vector<double> BetweennessCentrality(
    const std::vector<std::vector<int>>& adjacency);

}  // namespace asteria::cfg
