#include "minic/printer.h"

#include <sstream>

namespace asteria::minic {

namespace {

class PrinterImpl {
 public:
  explicit PrinterImpl(const Program& program) : program_(program) {}

  std::string Function(const minic::Function& fn) {
    out_.str("");
    out_ << "int " << fn.name << "(";
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      if (i) out_ << ", ";
      out_ << "int " << fn.params[i].name;
      if (fn.params[i].is_array) out_ << "[]";
    }
    out_ << ") ";
    Stmt(fn.body, 0);
    out_ << "\n";
    return out_.str();
  }

  std::string Expression(ExprId id) {
    out_.str("");
    Expr(id);
    return out_.str();
  }

 private:
  void Indent(int depth) {
    for (int i = 0; i < depth; ++i) out_ << "  ";
  }

  void Expr(ExprId id) {
    const minic::Expr& e = program_.expr(id);
    switch (e.kind) {
      case ExprKind::kNum:
        if (e.num < 0) {
          // Negative literals only arise from constant folding; keep them
          // re-parseable as unary minus applied to a positive literal.
          out_ << "(-" << -(e.num + 1) << " - 1)";
        } else {
          out_ << e.num;
        }
        break;
      case ExprKind::kStr:
        out_ << '"';
        for (char ch : e.name) {
          if (ch == '"' || ch == '\\') out_ << '\\';
          if (ch == '\n') { out_ << "\\n"; continue; }
          out_ << ch;
        }
        out_ << '"';
        break;
      case ExprKind::kVar:
        out_ << e.name;
        break;
      case ExprKind::kIndex:
        Expr(e.lhs);
        out_ << '[';
        Expr(e.rhs);
        out_ << ']';
        break;
      case ExprKind::kCall:
        out_ << e.name << '(';
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i) out_ << ", ";
          Expr(e.args[i]);
        }
        out_ << ')';
        break;
      case ExprKind::kUnary:
        if (e.un_op == UnOp::kPostInc || e.un_op == UnOp::kPostDec) {
          Expr(e.lhs);
          out_ << UnOpSpelling(e.un_op);
        } else {
          out_ << UnOpSpelling(e.un_op) << '(';
          Expr(e.lhs);
          out_ << ')';
        }
        break;
      case ExprKind::kBinary:
        out_ << '(';
        Expr(e.lhs);
        out_ << ' ' << BinOpSpelling(e.bin_op) << ' ';
        Expr(e.rhs);
        out_ << ')';
        break;
      case ExprKind::kAssign:
        Expr(e.lhs);
        out_ << ' ' << AssignOpSpelling(e.assign_op) << ' ';
        Expr(e.rhs);
        break;
    }
  }

  void Stmt(StmtId id, int depth) {
    const minic::Stmt& s = program_.stmt(id);
    switch (s.kind) {
      case StmtKind::kBlock:
        out_ << "{\n";
        for (StmtId child : s.stmts) {
          Indent(depth + 1);
          Stmt(child, depth + 1);
          out_ << "\n";
        }
        Indent(depth);
        out_ << "}";
        break;
      case StmtKind::kExpr:
        Expr(s.expr);
        out_ << ';';
        break;
      case StmtKind::kDecl:
        out_ << "int " << s.name;
        if (s.array_size > 0) out_ << '[' << s.array_size << ']';
        if (s.init != kNoId) {
          out_ << " = ";
          Expr(s.init);
        }
        out_ << ';';
        break;
      case StmtKind::kIf:
        out_ << "if (";
        Expr(s.expr);
        out_ << ") ";
        Stmt(s.body, depth);
        if (s.else_body != kNoId) {
          out_ << " else ";
          Stmt(s.else_body, depth);
        }
        break;
      case StmtKind::kWhile:
        out_ << "while (";
        Expr(s.expr);
        out_ << ") ";
        Stmt(s.body, depth);
        break;
      case StmtKind::kFor:
        out_ << "for (";
        if (s.expr2 != kNoId) Expr(s.expr2);
        out_ << "; ";
        if (s.expr != kNoId) Expr(s.expr);
        out_ << "; ";
        if (s.expr3 != kNoId) Expr(s.expr3);
        out_ << ") ";
        Stmt(s.body, depth);
        break;
      case StmtKind::kSwitch:
        out_ << "switch (";
        Expr(s.expr);
        out_ << ") {\n";
        for (const SwitchCase& arm : s.cases) {
          Indent(depth + 1);
          if (arm.is_default) {
            out_ << "default:\n";
          } else {
            out_ << "case " << arm.match_value << ":\n";
          }
          for (StmtId child : arm.body) {
            Indent(depth + 2);
            Stmt(child, depth + 2);
            out_ << "\n";
          }
        }
        Indent(depth);
        out_ << "}";
        break;
      case StmtKind::kReturn:
        out_ << "return";
        if (s.expr != kNoId) {
          out_ << ' ';
          Expr(s.expr);
        }
        out_ << ';';
        break;
      case StmtKind::kBreak:
        out_ << "break;";
        break;
      case StmtKind::kContinue:
        out_ << "continue;";
        break;
      case StmtKind::kGoto:
        out_ << "goto " << s.name << ';';
        break;
      case StmtKind::kLabel:
        out_ << s.name << ": ";
        Stmt(s.body, depth);
        break;
    }
  }

  const Program& program_;
  std::ostringstream out_;
};

}  // namespace

std::string Print(const Program& program) {
  std::string out;
  PrinterImpl printer(program);
  for (const Function& fn : program.functions()) {
    out += printer.Function(fn);
    out += "\n";
  }
  return out;
}

std::string PrintFunction(const Program& program, const Function& fn) {
  return PrinterImpl(program).Function(fn);
}

std::string PrintExpr(const Program& program, ExprId id) {
  return PrinterImpl(program).Expression(id);
}

}  // namespace asteria::minic
