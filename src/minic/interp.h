// MiniC tree-walking interpreter: the semantic oracle.
//
// The compiler + VM must agree with this interpreter on every generated
// program (differential testing, DESIGN.md §6). The shared semantics:
//  * 64-bit two's-complement integers with wraparound on overflow
//  * x / 0 == 0 and x % 0 == 0 (defined, so no UB anywhere in the pipeline)
//  * shift amounts are masked to [0, 63]; >> is arithmetic
//  * array indices wrap Euclidean-modulo the array size (the compiler emits
//    the same wrap code, see compiler/lower.cpp)
//  * && and || short-circuit and yield 0/1; comparisons yield 0/1
//  * a string literal evaluates to its length in scalar context and converts
//    to a NUL-terminated byte array when passed to an array parameter
//  * falling off the end of a function returns 0
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "minic/ast.h"

namespace asteria::minic {

// One call argument / out-value. Arrays are passed by reference; after the
// call, Result::arrays holds their (possibly mutated) contents.
struct ArgValue {
  bool is_array = false;
  std::int64_t scalar = 0;
  std::vector<std::int64_t> array;

  static ArgValue Scalar(std::int64_t v) { return {false, v, {}}; }
  static ArgValue Array(std::vector<std::int64_t> v) {
    return {true, 0, std::move(v)};
  }
};

class Interpreter {
 public:
  struct Options {
    // Aborts execution after this many evaluated nodes (runaway-loop guard).
    std::int64_t max_steps = 2'000'000;
    // Maximum call depth.
    int max_call_depth = 200;
  };

  struct Result {
    bool ok = false;
    std::string trap;  // reason when !ok ("step limit", "call depth", ...)
    std::int64_t value = 0;
    // Contents of array arguments after the call, positionally matching the
    // array entries of `args` (scalars are skipped).
    std::vector<std::vector<std::int64_t>> arrays;
  };

  explicit Interpreter(const Program& program)
      : program_(program), options_(Options{}) {}
  Interpreter(const Program& program, Options options)
      : program_(program), options_(options) {}

  // Calls `function_name` with the given arguments. The program must have
  // passed sema::Check.
  Result Call(const std::string& function_name, std::vector<ArgValue> args);

 private:
  friend class InterpImpl;
  const Program& program_;
  Options options_;
};

// Deterministic semantic helpers shared with the VM and constant folding.
namespace semantics {
std::int64_t Add(std::int64_t a, std::int64_t b);
std::int64_t Sub(std::int64_t a, std::int64_t b);
std::int64_t Mul(std::int64_t a, std::int64_t b);
std::int64_t Div(std::int64_t a, std::int64_t b);  // x/0 == 0
std::int64_t Mod(std::int64_t a, std::int64_t b);  // x%0 == 0
std::int64_t Shl(std::int64_t a, std::int64_t b);
std::int64_t Shr(std::int64_t a, std::int64_t b);  // arithmetic
std::int64_t Neg(std::int64_t a);
// Euclidean wrap of an index into [0, size).
std::int64_t WrapIndex(std::int64_t index, std::int64_t size);
// Applies a BinOp (logical ops non-short-circuit here: both sides given).
std::int64_t EvalBinOp(BinOp op, std::int64_t a, std::int64_t b);
std::int64_t EvalAssignArith(AssignOp op, std::int64_t old_value,
                             std::int64_t rhs);
}  // namespace semantics

}  // namespace asteria::minic
