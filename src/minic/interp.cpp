#include "minic/interp.h"

#include <limits>
#include <map>
#include <stdexcept>

namespace asteria::minic {

namespace semantics {

namespace {
std::uint64_t U(std::int64_t x) { return static_cast<std::uint64_t>(x); }
std::int64_t S(std::uint64_t x) { return static_cast<std::int64_t>(x); }
}  // namespace

std::int64_t Add(std::int64_t a, std::int64_t b) { return S(U(a) + U(b)); }
std::int64_t Sub(std::int64_t a, std::int64_t b) { return S(U(a) - U(b)); }
std::int64_t Mul(std::int64_t a, std::int64_t b) { return S(U(a) * U(b)); }

std::int64_t Div(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return a;
  return a / b;
}

std::int64_t Mod(std::int64_t a, std::int64_t b) {
  if (b == 0) return 0;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return a % b;
}

std::int64_t Shl(std::int64_t a, std::int64_t b) {
  return S(U(a) << (U(b) & 63));
}

std::int64_t Shr(std::int64_t a, std::int64_t b) {
  return a >> (U(b) & 63);  // implementation-defined pre-C++20; arithmetic
                            // since C++20, which this project requires
}

std::int64_t Neg(std::int64_t a) { return S(~U(a) + 1); }

std::int64_t WrapIndex(std::int64_t index, std::int64_t size) {
  if (size <= 0) return 0;
  std::int64_t m = Mod(index, size);
  // Mod() may be negative for negative index (C-style truncation).
  if (m < 0) m += size;
  return m;
}

std::int64_t EvalBinOp(BinOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case BinOp::kAdd: return Add(a, b);
    case BinOp::kSub: return Sub(a, b);
    case BinOp::kMul: return Mul(a, b);
    case BinOp::kDiv: return Div(a, b);
    case BinOp::kMod: return Mod(a, b);
    case BinOp::kShl: return Shl(a, b);
    case BinOp::kShr: return Shr(a, b);
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kBitXor: return a ^ b;
    case BinOp::kLogicalAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kLogicalOr: return (a != 0 || b != 0) ? 1 : 0;
    case BinOp::kEq: return a == b ? 1 : 0;
    case BinOp::kNe: return a != b ? 1 : 0;
    case BinOp::kLt: return a < b ? 1 : 0;
    case BinOp::kGt: return a > b ? 1 : 0;
    case BinOp::kLe: return a <= b ? 1 : 0;
    case BinOp::kGe: return a >= b ? 1 : 0;
  }
  return 0;
}

std::int64_t EvalAssignArith(AssignOp op, std::int64_t old_value,
                             std::int64_t rhs) {
  switch (op) {
    case AssignOp::kAssign: return rhs;
    case AssignOp::kAddAssign: return Add(old_value, rhs);
    case AssignOp::kSubAssign: return Sub(old_value, rhs);
    case AssignOp::kMulAssign: return Mul(old_value, rhs);
    case AssignOp::kDivAssign: return Div(old_value, rhs);
    case AssignOp::kAndAssign: return old_value & rhs;
    case AssignOp::kOrAssign: return old_value | rhs;
    case AssignOp::kXorAssign: return old_value ^ rhs;
  }
  return rhs;
}

}  // namespace semantics

namespace {

struct Trap {
  std::string reason;
};

// Runtime value: scalar or handle into the array heap.
struct Value {
  bool is_array = false;
  std::int64_t scalar = 0;
  int array_ref = -1;
};

enum class Signal { kNormal, kReturn, kBreak, kContinue, kGoto };

}  // namespace

class InterpImpl {
 public:
  InterpImpl(const Program& program, const Interpreter::Options& options)
      : program_(program), options_(options) {}

  Interpreter::Result Run(const std::string& function_name,
                          std::vector<ArgValue> args) {
    Interpreter::Result result;
    const int fn_index = program_.FindFunction(function_name);
    if (fn_index < 0) {
      result.trap = "unknown function '" + function_name + "'";
      return result;
    }
    // Materialize argument arrays on the heap; remember which heap slots
    // belong to caller-visible arrays.
    std::vector<Value> values;
    std::vector<int> out_refs;
    for (ArgValue& arg : args) {
      if (arg.is_array) {
        heap_.push_back(std::move(arg.array));
        const int ref = static_cast<int>(heap_.size()) - 1;
        out_refs.push_back(ref);
        values.push_back(Value{true, 0, ref});
      } else {
        values.push_back(Value{false, arg.scalar, -1});
      }
    }
    try {
      result.value = CallFunction(fn_index, values);
      result.ok = true;
      for (int ref : out_refs) {
        result.arrays.push_back(heap_[static_cast<std::size_t>(ref)]);
      }
    } catch (const Trap& trap) {
      result.trap = trap.reason;
    }
    return result;
  }

 private:
  struct Frame {
    std::vector<std::map<std::string, Value>> scopes;
  };

  void Tick() {
    if (--steps_left_ <= 0) throw Trap{"step limit exceeded"};
  }

  Value* Lookup(const std::string& name) {
    Frame& frame = frames_.back();
    for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  std::int64_t CallFunction(int fn_index, const std::vector<Value>& args) {
    if (static_cast<int>(frames_.size()) >= options_.max_call_depth) {
      throw Trap{"call depth exceeded"};
    }
    const Function& fn = program_.functions()[static_cast<std::size_t>(fn_index)];
    frames_.emplace_back();
    frames_.back().scopes.emplace_back();
    for (std::size_t i = 0; i < fn.params.size(); ++i) {
      frames_.back().scopes.back()[fn.params[i].name] = args[i];
    }
    std::int64_t return_value = 0;
    const Signal signal = ExecStmt(fn.body, &return_value);
    if (signal == Signal::kGoto) throw Trap{"unresolved goto"};
    frames_.pop_back();
    return signal == Signal::kReturn ? return_value : 0;
  }

  // Executes a statement. On kReturn, *return_value holds the value. On
  // kGoto, pending_label_ names the target.
  Signal ExecStmt(StmtId id, std::int64_t* return_value) {
    Tick();
    const Stmt& s = program_.stmt(id);
    switch (s.kind) {
      case StmtKind::kBlock:
        return ExecBlock(s.stmts, return_value);
      case StmtKind::kExpr:
        EvalExpr(s.expr);
        return Signal::kNormal;
      case StmtKind::kDecl: {
        Value v;
        if (s.array_size > 0) {
          heap_.emplace_back(static_cast<std::size_t>(s.array_size), 0);
          v.is_array = true;
          v.array_ref = static_cast<int>(heap_.size()) - 1;
        } else if (s.init != kNoId) {
          v.scalar = EvalExpr(s.init);
        }
        frames_.back().scopes.back()[s.name] = v;
        return Signal::kNormal;
      }
      case StmtKind::kIf:
        if (EvalExpr(s.expr) != 0) return ExecStmt(s.body, return_value);
        if (s.else_body != kNoId) return ExecStmt(s.else_body, return_value);
        return Signal::kNormal;
      case StmtKind::kWhile:
        while (EvalExpr(s.expr) != 0) {
          Tick();
          const Signal signal = ExecStmt(s.body, return_value);
          if (signal == Signal::kBreak) break;
          if (signal == Signal::kReturn || signal == Signal::kGoto) {
            return signal;
          }
        }
        return Signal::kNormal;
      case StmtKind::kFor: {
        if (s.expr2 != kNoId) EvalExpr(s.expr2);
        while (s.expr == kNoId || EvalExpr(s.expr) != 0) {
          Tick();
          const Signal signal = ExecStmt(s.body, return_value);
          if (signal == Signal::kBreak) break;
          if (signal == Signal::kReturn || signal == Signal::kGoto) {
            return signal;
          }
          if (s.expr3 != kNoId) EvalExpr(s.expr3);
        }
        return Signal::kNormal;
      }
      case StmtKind::kSwitch: {
        const std::int64_t value = EvalExpr(s.expr);
        const SwitchCase* chosen = nullptr;
        for (const SwitchCase& arm : s.cases) {
          if (!arm.is_default && arm.match_value == value) {
            chosen = &arm;
            break;
          }
        }
        if (chosen == nullptr) {
          for (const SwitchCase& arm : s.cases) {
            if (arm.is_default) {
              chosen = &arm;
              break;
            }
          }
        }
        if (chosen == nullptr) return Signal::kNormal;
        frames_.back().scopes.emplace_back();
        Signal signal = ExecBlock(chosen->body, return_value);
        frames_.back().scopes.pop_back();
        if (signal == Signal::kBreak) signal = Signal::kNormal;  // break exits switch
        return signal;
      }
      case StmtKind::kReturn:
        *return_value = s.expr != kNoId ? EvalExpr(s.expr) : 0;
        return Signal::kReturn;
      case StmtKind::kBreak:
        return Signal::kBreak;
      case StmtKind::kContinue:
        return Signal::kContinue;
      case StmtKind::kGoto:
        pending_label_ = s.name;
        return Signal::kGoto;
      case StmtKind::kLabel:
        return ExecStmt(s.body, return_value);
    }
    throw Trap{"unknown statement"};
  }

  // Executes statements sequentially with goto resolution: when a child
  // signals kGoto and a (possibly nested first-level) kLabel in this list
  // matches, control transfers there; otherwise the signal propagates up.
  Signal ExecBlock(const std::vector<StmtId>& stmts,
                   std::int64_t* return_value) {
    frames_.back().scopes.emplace_back();
    Signal result = Signal::kNormal;
    std::size_t i = 0;
    while (i < stmts.size()) {
      const Signal signal = ExecStmt(stmts[i], return_value);
      if (signal == Signal::kGoto) {
        bool found = false;
        for (std::size_t j = 0; j < stmts.size(); ++j) {
          const Stmt& candidate = program_.stmt(stmts[j]);
          if (candidate.kind == StmtKind::kLabel &&
              candidate.name == pending_label_) {
            i = j;
            found = true;
            break;
          }
        }
        if (found) continue;
        result = Signal::kGoto;
        break;
      }
      if (signal != Signal::kNormal) {
        result = signal;
        break;
      }
      ++i;
    }
    frames_.back().scopes.pop_back();
    return result;
  }

  std::vector<std::int64_t>& ArrayOf(const Value& v) {
    if (!v.is_array || v.array_ref < 0) throw Trap{"not an array"};
    return heap_[static_cast<std::size_t>(v.array_ref)];
  }

  std::int64_t EvalExpr(ExprId id) {
    Tick();
    const Expr& e = program_.expr(id);
    switch (e.kind) {
      case ExprKind::kNum:
        return e.num;
      case ExprKind::kStr:
        return static_cast<std::int64_t>(e.name.size());
      case ExprKind::kVar: {
        Value* v = Lookup(e.name);
        if (v == nullptr) throw Trap{"undeclared variable " + e.name};
        if (v->is_array) throw Trap{"array used as scalar"};
        return v->scalar;
      }
      case ExprKind::kIndex: {
        // Evaluate the index BEFORE touching heap_: nested calls or decls
        // can grow the heap and invalidate array references.
        const std::int64_t raw_index = EvalExpr(e.rhs);
        const Expr& base = program_.expr(e.lhs);
        Value* v = Lookup(base.name);
        if (v == nullptr) throw Trap{"undeclared variable " + base.name};
        auto& array = ArrayOf(*v);
        const std::int64_t index = semantics::WrapIndex(
            raw_index, static_cast<std::int64_t>(array.size()));
        return array[static_cast<std::size_t>(index)];
      }
      case ExprKind::kCall: {
        const int callee = program_.FindFunction(e.name);
        if (callee < 0) throw Trap{"unknown function " + e.name};
        std::vector<Value> args;
        const Function& fn =
            program_.functions()[static_cast<std::size_t>(callee)];
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          const Expr& arg = program_.expr(e.args[i]);
          const bool want_array = fn.params[i].is_array;
          if (want_array && arg.kind == ExprKind::kStr) {
            // String literal -> NUL-terminated byte array.
            std::vector<std::int64_t> bytes;
            bytes.reserve(arg.name.size() + 1);
            for (char ch : arg.name) bytes.push_back(static_cast<unsigned char>(ch));
            bytes.push_back(0);
            heap_.push_back(std::move(bytes));
            args.push_back(Value{true, 0, static_cast<int>(heap_.size()) - 1});
          } else if (want_array) {
            Value* v = Lookup(arg.name);
            if (v == nullptr || !v->is_array) throw Trap{"bad array argument"};
            args.push_back(*v);
          } else {
            args.push_back(Value{false, EvalExpr(e.args[i]), -1});
          }
        }
        return CallFunction(callee, args);
      }
      case ExprKind::kUnary: {
        switch (e.un_op) {
          case UnOp::kNeg: return semantics::Neg(EvalExpr(e.lhs));
          case UnOp::kLogicalNot: return EvalExpr(e.lhs) == 0 ? 1 : 0;
          case UnOp::kBitNot: return ~EvalExpr(e.lhs);
          case UnOp::kPreInc: return Bump(e.lhs, +1, /*return_old=*/false);
          case UnOp::kPreDec: return Bump(e.lhs, -1, /*return_old=*/false);
          case UnOp::kPostInc: return Bump(e.lhs, +1, /*return_old=*/true);
          case UnOp::kPostDec: return Bump(e.lhs, -1, /*return_old=*/true);
        }
        throw Trap{"unknown unary op"};
      }
      case ExprKind::kBinary: {
        if (e.bin_op == BinOp::kLogicalAnd) {
          return (EvalExpr(e.lhs) != 0 && EvalExpr(e.rhs) != 0) ? 1 : 0;
        }
        if (e.bin_op == BinOp::kLogicalOr) {
          return (EvalExpr(e.lhs) != 0 || EvalExpr(e.rhs) != 0) ? 1 : 0;
        }
        const std::int64_t lhs = EvalExpr(e.lhs);
        const std::int64_t rhs = EvalExpr(e.rhs);
        return semantics::EvalBinOp(e.bin_op, lhs, rhs);
      }
      case ExprKind::kAssign: {
        const std::int64_t rhs = EvalExpr(e.rhs);
        std::int64_t* slot = LValue(e.lhs);
        *slot = semantics::EvalAssignArith(e.assign_op, *slot, rhs);
        return *slot;
      }
    }
    throw Trap{"unknown expression"};
  }

  // Resolves an lvalue (kVar or kIndex) to a storage slot.
  std::int64_t* LValue(ExprId id) {
    const Expr& e = program_.expr(id);
    if (e.kind == ExprKind::kVar) {
      Value* v = Lookup(e.name);
      if (v == nullptr || v->is_array) throw Trap{"bad lvalue"};
      return &v->scalar;
    }
    if (e.kind == ExprKind::kIndex) {
      // Index first: its evaluation may grow heap_ (see EvalExpr::kIndex).
      const std::int64_t raw_index = EvalExpr(e.rhs);
      const Expr& base = program_.expr(e.lhs);
      Value* v = Lookup(base.name);
      if (v == nullptr) throw Trap{"bad lvalue"};
      auto& array = ArrayOf(*v);
      const std::int64_t index = semantics::WrapIndex(
          raw_index, static_cast<std::int64_t>(array.size()));
      return &array[static_cast<std::size_t>(index)];
    }
    throw Trap{"bad lvalue"};
  }

  std::int64_t Bump(ExprId target, int delta, bool return_old) {
    std::int64_t* slot = LValue(target);
    const std::int64_t old_value = *slot;
    *slot = semantics::Add(old_value, delta);
    return return_old ? old_value : *slot;
  }

  const Program& program_;
  const Interpreter::Options& options_;
  std::vector<Frame> frames_;
  std::vector<std::vector<std::int64_t>> heap_;
  std::string pending_label_;
  std::int64_t steps_left_ = 0;

 public:
  void set_steps(std::int64_t steps) { steps_left_ = steps; }
};

Interpreter::Result Interpreter::Call(const std::string& function_name,
                                      std::vector<ArgValue> args) {
  InterpImpl impl(program_, options_);
  impl.set_steps(options_.max_steps);
  return impl.Run(function_name, std::move(args));
}

}  // namespace asteria::minic
