#include "minic/parser.h"

#include <sstream>

#include "minic/lexer.h"

namespace asteria::minic {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* out)
      : tokens_(std::move(tokens)), out_(out) {}

  bool Run(std::string* error) {
    while (!At(TokenKind::kEnd)) {
      if (!ParseFunction()) {
        *error = error_;
        return false;
      }
    }
    if (out_->functions().empty()) {
      *error = "no functions in translation unit";
      return false;
    }
    return true;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Advance() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    ++pos_;
    return true;
  }
  bool Expect(TokenKind kind, const char* what) {
    if (Accept(kind)) return true;
    return Fail(std::string("expected ") + what);
  }
  bool Fail(const std::string& message) {
    std::ostringstream out;
    out << "line " << Peek().line << ": " << message;
    error_ = out.str();
    return false;
  }

  bool ParseFunction() {
    if (!Expect(TokenKind::kKwInt, "'int' at function start")) return false;
    if (!At(TokenKind::kIdent)) return Fail("expected function name");
    Function fn;
    fn.name = Advance().text;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    if (!Accept(TokenKind::kRParen)) {
      do {
        if (!Expect(TokenKind::kKwInt, "'int' in parameter")) return false;
        if (!At(TokenKind::kIdent)) return Fail("expected parameter name");
        Param param;
        param.name = Advance().text;
        if (Accept(TokenKind::kLBracket)) {
          if (!Expect(TokenKind::kRBracket, "']'")) return false;
          param.is_array = true;
        }
        fn.params.push_back(std::move(param));
      } while (Accept(TokenKind::kComma));
      if (!Expect(TokenKind::kRParen, "')'")) return false;
    }
    StmtId body = kNoId;
    if (!ParseBlock(&body)) return false;
    fn.body = body;
    out_->AddFunction(std::move(fn));
    return true;
  }

  bool ParseBlock(StmtId* id) {
    if (!Expect(TokenKind::kLBrace, "'{'")) return false;
    Stmt block;
    block.kind = StmtKind::kBlock;
    while (!At(TokenKind::kRBrace)) {
      if (At(TokenKind::kEnd)) return Fail("unterminated block");
      StmtId child = kNoId;
      if (!ParseStmt(&child)) return false;
      block.stmts.push_back(child);
    }
    Advance();  // consume '}'
    *id = out_->AddStmt(std::move(block));
    return true;
  }

  bool ParseStmt(StmtId* id) {
    switch (Peek().kind) {
      case TokenKind::kLBrace:
        return ParseBlock(id);
      case TokenKind::kKwInt:
        return ParseDecl(id);
      case TokenKind::kKwIf:
        return ParseIf(id);
      case TokenKind::kKwWhile:
        return ParseWhile(id);
      case TokenKind::kKwFor:
        return ParseFor(id);
      case TokenKind::kKwSwitch:
        return ParseSwitch(id);
      case TokenKind::kKwReturn: {
        Advance();
        Stmt s;
        s.kind = StmtKind::kReturn;
        if (!At(TokenKind::kSemicolon)) {
          if (!ParseExpr(&s.expr)) return false;
        }
        if (!Expect(TokenKind::kSemicolon, "';'")) return false;
        *id = out_->AddStmt(std::move(s));
        return true;
      }
      case TokenKind::kKwBreak: {
        Advance();
        if (!Expect(TokenKind::kSemicolon, "';'")) return false;
        Stmt s;
        s.kind = StmtKind::kBreak;
        *id = out_->AddStmt(std::move(s));
        return true;
      }
      case TokenKind::kKwContinue: {
        Advance();
        if (!Expect(TokenKind::kSemicolon, "';'")) return false;
        Stmt s;
        s.kind = StmtKind::kContinue;
        *id = out_->AddStmt(std::move(s));
        return true;
      }
      case TokenKind::kKwGoto: {
        Advance();
        if (!At(TokenKind::kIdent)) return Fail("expected label after goto");
        Stmt s;
        s.kind = StmtKind::kGoto;
        s.name = Advance().text;
        if (!Expect(TokenKind::kSemicolon, "';'")) return false;
        *id = out_->AddStmt(std::move(s));
        return true;
      }
      case TokenKind::kIdent:
        if (Peek(1).kind == TokenKind::kColon) {
          Stmt s;
          s.kind = StmtKind::kLabel;
          s.name = Advance().text;
          Advance();  // ':'
          if (!ParseStmt(&s.body)) return false;
          *id = out_->AddStmt(std::move(s));
          return true;
        }
        [[fallthrough]];
      default: {
        Stmt s;
        s.kind = StmtKind::kExpr;
        if (!ParseExpr(&s.expr)) return false;
        if (!Expect(TokenKind::kSemicolon, "';'")) return false;
        *id = out_->AddStmt(std::move(s));
        return true;
      }
    }
  }

  bool ParseDecl(StmtId* id) {
    Advance();  // 'int'
    if (!At(TokenKind::kIdent)) return Fail("expected variable name");
    Stmt s;
    s.kind = StmtKind::kDecl;
    s.name = Advance().text;
    if (Accept(TokenKind::kLBracket)) {
      if (!At(TokenKind::kNumber)) return Fail("expected array size");
      s.array_size = Advance().number;
      if (s.array_size <= 0) return Fail("array size must be positive");
      if (!Expect(TokenKind::kRBracket, "']'")) return false;
    } else if (Accept(TokenKind::kAssign)) {
      if (!ParseExpr(&s.init)) return false;
    }
    if (!Expect(TokenKind::kSemicolon, "';'")) return false;
    *id = out_->AddStmt(std::move(s));
    return true;
  }

  bool ParseIf(StmtId* id) {
    Advance();  // 'if'
    Stmt s;
    s.kind = StmtKind::kIf;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    if (!ParseExpr(&s.expr)) return false;
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    if (!ParseStmt(&s.body)) return false;
    if (Accept(TokenKind::kKwElse)) {
      if (!ParseStmt(&s.else_body)) return false;
    }
    *id = out_->AddStmt(std::move(s));
    return true;
  }

  bool ParseWhile(StmtId* id) {
    Advance();  // 'while'
    Stmt s;
    s.kind = StmtKind::kWhile;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    if (!ParseExpr(&s.expr)) return false;
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    if (!ParseStmt(&s.body)) return false;
    *id = out_->AddStmt(std::move(s));
    return true;
  }

  bool ParseFor(StmtId* id) {
    Advance();  // 'for'
    Stmt s;
    s.kind = StmtKind::kFor;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    if (!At(TokenKind::kSemicolon) && !ParseExpr(&s.expr2)) return false;
    if (!Expect(TokenKind::kSemicolon, "';'")) return false;
    if (!At(TokenKind::kSemicolon) && !ParseExpr(&s.expr)) return false;
    if (!Expect(TokenKind::kSemicolon, "';'")) return false;
    if (!At(TokenKind::kRParen) && !ParseExpr(&s.expr3)) return false;
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    if (!ParseStmt(&s.body)) return false;
    *id = out_->AddStmt(std::move(s));
    return true;
  }

  bool ParseSwitch(StmtId* id) {
    Advance();  // 'switch'
    Stmt s;
    s.kind = StmtKind::kSwitch;
    if (!Expect(TokenKind::kLParen, "'('")) return false;
    if (!ParseExpr(&s.expr)) return false;
    if (!Expect(TokenKind::kRParen, "')'")) return false;
    if (!Expect(TokenKind::kLBrace, "'{'")) return false;
    while (!Accept(TokenKind::kRBrace)) {
      if (At(TokenKind::kEnd)) return Fail("unterminated switch");
      SwitchCase arm;
      if (Accept(TokenKind::kKwCase)) {
        bool negative = Accept(TokenKind::kMinus);
        if (!At(TokenKind::kNumber)) return Fail("expected case value");
        arm.match_value = Advance().number;
        if (negative) arm.match_value = -arm.match_value;
      } else if (Accept(TokenKind::kKwDefault)) {
        arm.is_default = true;
      } else {
        return Fail("expected 'case' or 'default'");
      }
      if (!Expect(TokenKind::kColon, "':'")) return false;
      while (!At(TokenKind::kKwCase) && !At(TokenKind::kKwDefault) &&
             !At(TokenKind::kRBrace)) {
        if (At(TokenKind::kEnd)) return Fail("unterminated switch arm");
        StmtId child = kNoId;
        if (!ParseStmt(&child)) return false;
        arm.body.push_back(child);
      }
      s.cases.push_back(std::move(arm));
    }
    *id = out_->AddStmt(std::move(s));
    return true;
  }

  // ---- expressions (precedence climbing) ---------------------------------

  bool ParseExpr(ExprId* id) { return ParseAssign(id); }

  bool ParseAssign(ExprId* id) {
    ExprId lhs = kNoId;
    if (!ParseLogicalOr(&lhs)) return false;
    AssignOp op;
    switch (Peek().kind) {
      case TokenKind::kAssign: op = AssignOp::kAssign; break;
      case TokenKind::kPlusAssign: op = AssignOp::kAddAssign; break;
      case TokenKind::kMinusAssign: op = AssignOp::kSubAssign; break;
      case TokenKind::kStarAssign: op = AssignOp::kMulAssign; break;
      case TokenKind::kSlashAssign: op = AssignOp::kDivAssign; break;
      case TokenKind::kAmpAssign: op = AssignOp::kAndAssign; break;
      case TokenKind::kPipeAssign: op = AssignOp::kOrAssign; break;
      case TokenKind::kCaretAssign: op = AssignOp::kXorAssign; break;
      default:
        *id = lhs;
        return true;
    }
    const ExprKind lhs_kind = out_->expr(lhs).kind;
    if (lhs_kind != ExprKind::kVar && lhs_kind != ExprKind::kIndex) {
      return Fail("assignment target must be a variable or array element");
    }
    Advance();
    ExprId rhs = kNoId;
    if (!ParseAssign(&rhs)) return false;
    Expr e;
    e.kind = ExprKind::kAssign;
    e.assign_op = op;
    e.lhs = lhs;
    e.rhs = rhs;
    *id = out_->AddExpr(std::move(e));
    return true;
  }

  using BinaryParser = bool (Parser::*)(ExprId*);

  bool ParseBinaryLevel(ExprId* id, BinaryParser next,
                        std::initializer_list<std::pair<TokenKind, BinOp>> ops) {
    if (!(this->*next)(id)) return false;
    for (;;) {
      BinOp matched{};
      bool found = false;
      for (const auto& [token, op] : ops) {
        if (At(token)) {
          matched = op;
          found = true;
          break;
        }
      }
      if (!found) return true;
      Advance();
      ExprId rhs = kNoId;
      if (!(this->*next)(&rhs)) return false;
      Expr e;
      e.kind = ExprKind::kBinary;
      e.bin_op = matched;
      e.lhs = *id;
      e.rhs = rhs;
      *id = out_->AddExpr(std::move(e));
    }
  }

  bool ParseLogicalOr(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseLogicalAnd,
                            {{TokenKind::kPipePipe, BinOp::kLogicalOr}});
  }
  bool ParseLogicalAnd(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseBitOr,
                            {{TokenKind::kAmpAmp, BinOp::kLogicalAnd}});
  }
  bool ParseBitOr(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseBitXor,
                            {{TokenKind::kPipe, BinOp::kBitOr}});
  }
  bool ParseBitXor(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseBitAnd,
                            {{TokenKind::kCaret, BinOp::kBitXor}});
  }
  bool ParseBitAnd(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseEquality,
                            {{TokenKind::kAmp, BinOp::kBitAnd}});
  }
  bool ParseEquality(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseRelational,
                            {{TokenKind::kEq, BinOp::kEq},
                             {TokenKind::kNe, BinOp::kNe}});
  }
  bool ParseRelational(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseShift,
                            {{TokenKind::kLt, BinOp::kLt},
                             {TokenKind::kGt, BinOp::kGt},
                             {TokenKind::kLe, BinOp::kLe},
                             {TokenKind::kGe, BinOp::kGe}});
  }
  bool ParseShift(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseAdditive,
                            {{TokenKind::kShl, BinOp::kShl},
                             {TokenKind::kShr, BinOp::kShr}});
  }
  bool ParseAdditive(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseMultiplicative,
                            {{TokenKind::kPlus, BinOp::kAdd},
                             {TokenKind::kMinus, BinOp::kSub}});
  }
  bool ParseMultiplicative(ExprId* id) {
    return ParseBinaryLevel(id, &Parser::ParseUnary,
                            {{TokenKind::kStar, BinOp::kMul},
                             {TokenKind::kSlash, BinOp::kDiv},
                             {TokenKind::kPercent, BinOp::kMod}});
  }

  bool ParseUnary(ExprId* id) {
    UnOp op;
    switch (Peek().kind) {
      case TokenKind::kMinus: op = UnOp::kNeg; break;
      case TokenKind::kBang: op = UnOp::kLogicalNot; break;
      case TokenKind::kTilde: op = UnOp::kBitNot; break;
      case TokenKind::kPlusPlus: op = UnOp::kPreInc; break;
      case TokenKind::kMinusMinus: op = UnOp::kPreDec; break;
      default:
        return ParsePostfix(id);
    }
    Advance();
    ExprId operand = kNoId;
    if (!ParseUnary(&operand)) return false;
    if ((op == UnOp::kPreInc || op == UnOp::kPreDec)) {
      const ExprKind k = out_->expr(operand).kind;
      if (k != ExprKind::kVar && k != ExprKind::kIndex) {
        return Fail("++/-- target must be a variable or array element");
      }
    }
    Expr e;
    e.kind = ExprKind::kUnary;
    e.un_op = op;
    e.lhs = operand;
    *id = out_->AddExpr(std::move(e));
    return true;
  }

  bool ParsePostfix(ExprId* id) {
    if (!ParsePrimary(id)) return false;
    for (;;) {
      if (Accept(TokenKind::kLBracket)) {
        ExprId index = kNoId;
        if (!ParseExpr(&index)) return false;
        if (!Expect(TokenKind::kRBracket, "']'")) return false;
        Expr e;
        e.kind = ExprKind::kIndex;
        e.lhs = *id;
        e.rhs = index;
        *id = out_->AddExpr(std::move(e));
        continue;
      }
      if (At(TokenKind::kPlusPlus) || At(TokenKind::kMinusMinus)) {
        const ExprKind k = out_->expr(*id).kind;
        if (k != ExprKind::kVar && k != ExprKind::kIndex) {
          return Fail("++/-- target must be a variable or array element");
        }
        Expr e;
        e.kind = ExprKind::kUnary;
        e.un_op = At(TokenKind::kPlusPlus) ? UnOp::kPostInc : UnOp::kPostDec;
        e.lhs = *id;
        Advance();
        *id = out_->AddExpr(std::move(e));
        continue;
      }
      return true;
    }
  }

  bool ParsePrimary(ExprId* id) {
    if (At(TokenKind::kNumber)) {
      Expr e;
      e.kind = ExprKind::kNum;
      e.num = Advance().number;
      *id = out_->AddExpr(std::move(e));
      return true;
    }
    if (At(TokenKind::kString)) {
      Expr e;
      e.kind = ExprKind::kStr;
      e.name = Advance().text;
      *id = out_->AddExpr(std::move(e));
      return true;
    }
    if (Accept(TokenKind::kLParen)) {
      if (!ParseExpr(id)) return false;
      return Expect(TokenKind::kRParen, "')'");
    }
    if (At(TokenKind::kIdent)) {
      std::string name = Advance().text;
      if (Accept(TokenKind::kLParen)) {
        Expr e;
        e.kind = ExprKind::kCall;
        e.name = std::move(name);
        if (!Accept(TokenKind::kRParen)) {
          do {
            ExprId arg = kNoId;
            if (!ParseExpr(&arg)) return false;
            e.args.push_back(arg);
          } while (Accept(TokenKind::kComma));
          if (!Expect(TokenKind::kRParen, "')'")) return false;
        }
        *id = out_->AddExpr(std::move(e));
        return true;
      }
      Expr e;
      e.kind = ExprKind::kVar;
      e.name = std::move(name);
      *id = out_->AddExpr(std::move(e));
      return true;
    }
    return Fail("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Program* out_;
  std::string error_;
};

}  // namespace

bool Parse(const std::string& source, Program* out, std::string* error) {
  *out = Program();
  std::vector<Token> tokens = Lex(source);
  if (!tokens.empty() && tokens.back().kind == TokenKind::kError) {
    *error = "lex error: " + tokens.back().text;
    return false;
  }
  Parser parser(std::move(tokens), out);
  return parser.Run(error);
}

}  // namespace asteria::minic
