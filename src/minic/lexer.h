// MiniC lexical analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::minic {

enum class TokenKind : std::uint8_t {
  kEnd,
  kIdent,
  kNumber,
  kString,
  // keywords
  kKwInt, kKwIf, kKwElse, kKwWhile, kKwFor, kKwDo, kKwSwitch, kKwCase,
  kKwDefault, kKwReturn, kKwBreak, kKwContinue, kKwGoto,
  // punctuation
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kColon,
  // operators
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kAmpAmp, kPipePipe,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kAmpAssign, kPipeAssign, kCaretAssign,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kPlusPlus, kMinusMinus,
  kError,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier / string payload
  std::int64_t number = 0; // kNumber payload
  int line = 1;
};

// Tokenizes MiniC source. On a lexical error the last token has kind kError
// and text holds the message.
std::vector<Token> Lex(const std::string& source);

}  // namespace asteria::minic
