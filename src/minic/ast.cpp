#include "minic/ast.h"

namespace asteria::minic {

int Program::FindFunction(const std::string& name) const {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string_view BinOpSpelling(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kLogicalAnd: return "&&";
    case BinOp::kLogicalOr: return "||";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kGt: return ">";
    case BinOp::kLe: return "<=";
    case BinOp::kGe: return ">=";
  }
  return "?";
}

std::string_view UnOpSpelling(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kLogicalNot: return "!";
    case UnOp::kBitNot: return "~";
    case UnOp::kPreInc: return "++";
    case UnOp::kPreDec: return "--";
    case UnOp::kPostInc: return "++";
    case UnOp::kPostDec: return "--";
  }
  return "?";
}

std::string_view AssignOpSpelling(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAddAssign: return "+=";
    case AssignOp::kSubAssign: return "-=";
    case AssignOp::kMulAssign: return "*=";
    case AssignOp::kDivAssign: return "/=";
    case AssignOp::kAndAssign: return "&=";
    case AssignOp::kOrAssign: return "|=";
    case AssignOp::kXorAssign: return "^=";
  }
  return "?";
}

}  // namespace asteria::minic
