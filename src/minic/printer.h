// MiniC pretty printer.
//
// Emits parseable MiniC source from a Program; Print(Parse(x)) is a fixpoint
// modulo whitespace, which the round-trip property test exploits.
#pragma once

#include <string>

#include "minic/ast.h"

namespace asteria::minic {

// Renders the whole program.
std::string Print(const Program& program);

// Renders a single function.
std::string PrintFunction(const Program& program, const Function& fn);

// Renders a single expression (mainly for diagnostics).
std::string PrintExpr(const Program& program, ExprId id);

}  // namespace asteria::minic
