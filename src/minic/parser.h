// MiniC recursive-descent parser.
//
// Notable semantics (shared by interpreter, compiler and VM):
//  * switch arms do not fall through: each case body runs and exits the
//    switch (the generator never relies on fallthrough; keeps all four
//    backends simple and equivalent).
//  * for-init and for-step are expressions, not declarations.
#pragma once

#include <string>

#include "minic/ast.h"

namespace asteria::minic {

// Parses MiniC source into `out`. Returns false and fills `error` (with line
// info) on failure; `out` is left in an unspecified state on failure.
bool Parse(const std::string& source, Program* out, std::string* error);

}  // namespace asteria::minic
