#include "minic/sema.h"

#include <map>
#include <set>
#include <sstream>
#include <vector>

namespace asteria::minic {

namespace {

// Per-function checker with a lexical scope stack.
class Checker {
 public:
  Checker(const Program& program, const Function& fn)
      : program_(program), fn_(fn) {}

  bool Run(std::string* error) {
    CollectLabels(fn_.body);
    scopes_.emplace_back();
    for (const Param& p : fn_.params) Declare(p.name, p.is_array);
    const bool ok = CheckStmt(fn_.body, /*loop_depth=*/0, /*switch_depth=*/0);
    if (!ok) {
      std::ostringstream out;
      out << "function " << fn_.name << ": " << error_;
      *error = out.str();
    }
    return ok;
  }

 private:
  struct VarInfo {
    bool is_array = false;
  };

  bool Fail(const std::string& message) {
    error_ = message;
    return false;
  }

  void Declare(const std::string& name, bool is_array) {
    scopes_.back()[name] = VarInfo{is_array};
  }

  const VarInfo* Lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  void CollectLabels(StmtId id) {
    if (id == kNoId) return;
    const Stmt& s = program_.stmt(id);
    if (s.kind == StmtKind::kLabel) labels_.insert(s.name);
    CollectLabels(s.body);
    CollectLabels(s.else_body);
    for (StmtId child : s.stmts) CollectLabels(child);
    for (const SwitchCase& arm : s.cases) {
      for (StmtId child : arm.body) CollectLabels(child);
    }
  }

  bool CheckStmt(StmtId id, int loop_depth, int switch_depth) {
    const Stmt& s = program_.stmt(id);
    switch (s.kind) {
      case StmtKind::kBlock: {
        scopes_.emplace_back();
        for (StmtId child : s.stmts) {
          if (!CheckStmt(child, loop_depth, switch_depth)) return false;
        }
        scopes_.pop_back();
        return true;
      }
      case StmtKind::kExpr:
        return CheckExpr(s.expr, nullptr);
      case StmtKind::kDecl: {
        if (s.init != kNoId && !CheckExpr(s.init, nullptr)) return false;
        Declare(s.name, s.array_size > 0);
        return true;
      }
      case StmtKind::kIf:
        if (!CheckExpr(s.expr, nullptr)) return false;
        if (!CheckStmt(s.body, loop_depth, switch_depth)) return false;
        if (s.else_body != kNoId &&
            !CheckStmt(s.else_body, loop_depth, switch_depth)) {
          return false;
        }
        return true;
      case StmtKind::kWhile:
        if (!CheckExpr(s.expr, nullptr)) return false;
        return CheckStmt(s.body, loop_depth + 1, switch_depth);
      case StmtKind::kFor:
        if (s.expr2 != kNoId && !CheckExpr(s.expr2, nullptr)) return false;
        if (s.expr != kNoId && !CheckExpr(s.expr, nullptr)) return false;
        if (s.expr3 != kNoId && !CheckExpr(s.expr3, nullptr)) return false;
        return CheckStmt(s.body, loop_depth + 1, switch_depth);
      case StmtKind::kSwitch: {
        if (!CheckExpr(s.expr, nullptr)) return false;
        std::set<std::int64_t> seen;
        bool has_default = false;
        for (const SwitchCase& arm : s.cases) {
          if (arm.is_default) {
            if (has_default) return Fail("duplicate default arm");
            has_default = true;
          } else if (!seen.insert(arm.match_value).second) {
            return Fail("duplicate case value");
          }
          scopes_.emplace_back();
          for (StmtId child : arm.body) {
            if (!CheckStmt(child, loop_depth, switch_depth + 1)) return false;
          }
          scopes_.pop_back();
        }
        return true;
      }
      case StmtKind::kReturn:
        return s.expr == kNoId || CheckExpr(s.expr, nullptr);
      case StmtKind::kBreak:
        if (loop_depth == 0 && switch_depth == 0) {
          return Fail("break outside loop/switch");
        }
        return true;
      case StmtKind::kContinue:
        if (loop_depth == 0) return Fail("continue outside loop");
        return true;
      case StmtKind::kGoto:
        if (!labels_.contains(s.name)) {
          return Fail("goto to unknown label '" + s.name + "'");
        }
        return true;
      case StmtKind::kLabel:
        return CheckStmt(s.body, loop_depth, switch_depth);
    }
    return Fail("unknown statement kind");
  }

  // is_array_out: when non-null, receives whether the expression denotes a
  // whole array (only kVar can).
  bool CheckExpr(ExprId id, bool* is_array_out) {
    const Expr& e = program_.expr(id);
    if (is_array_out) *is_array_out = false;
    switch (e.kind) {
      case ExprKind::kNum:
        return true;
      case ExprKind::kStr:
        return true;
      case ExprKind::kVar: {
        const VarInfo* info = Lookup(e.name);
        if (info == nullptr) return Fail("undeclared variable '" + e.name + "'");
        if (info->is_array) {
          if (is_array_out == nullptr) {
            return Fail("array '" + e.name + "' used as a scalar");
          }
          *is_array_out = true;
        }
        return true;
      }
      case ExprKind::kIndex: {
        const Expr& base = program_.expr(e.lhs);
        if (base.kind != ExprKind::kVar) {
          return Fail("indexing requires an array variable");
        }
        const VarInfo* info = Lookup(base.name);
        if (info == nullptr) {
          return Fail("undeclared variable '" + base.name + "'");
        }
        if (!info->is_array) {
          return Fail("scalar '" + base.name + "' cannot be indexed");
        }
        return CheckExpr(e.rhs, nullptr);
      }
      case ExprKind::kCall: {
        const int callee = program_.FindFunction(e.name);
        if (callee < 0) return Fail("call to unknown function '" + e.name + "'");
        const Function& fn = program_.functions()[static_cast<std::size_t>(callee)];
        if (fn.params.size() != e.args.size()) {
          return Fail("call to '" + e.name + "' with wrong arity");
        }
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          bool arg_is_array = false;
          if (!CheckExpr(e.args[i], &arg_is_array)) return false;
          const bool want_array = fn.params[i].is_array;
          const bool is_string = program_.expr(e.args[i]).kind == ExprKind::kStr;
          if (want_array && !arg_is_array && !is_string) {
            return Fail("argument " + std::to_string(i) + " of '" + e.name +
                        "' must be an array");
          }
          if (!want_array && arg_is_array) {
            return Fail("argument " + std::to_string(i) + " of '" + e.name +
                        "' must be a scalar");
          }
        }
        return true;
      }
      case ExprKind::kUnary:
        return CheckExpr(e.lhs, nullptr);
      case ExprKind::kBinary:
        return CheckExpr(e.lhs, nullptr) && CheckExpr(e.rhs, nullptr);
      case ExprKind::kAssign: {
        const Expr& target = program_.expr(e.lhs);
        if (target.kind == ExprKind::kVar) {
          const VarInfo* info = Lookup(target.name);
          if (info == nullptr) {
            return Fail("undeclared variable '" + target.name + "'");
          }
          if (info->is_array) {
            return Fail("cannot assign to whole array '" + target.name + "'");
          }
        } else if (target.kind == ExprKind::kIndex) {
          if (!CheckExpr(e.lhs, nullptr)) return false;
        } else {
          return Fail("invalid assignment target");
        }
        return CheckExpr(e.rhs, nullptr);
      }
    }
    return Fail("unknown expression kind");
  }

  const Program& program_;
  const Function& fn_;
  std::vector<std::map<std::string, VarInfo>> scopes_;
  std::set<std::string> labels_;
  std::string error_;
};

}  // namespace

bool Check(const Program& program, std::string* error) {
  std::set<std::string> names;
  for (const Function& fn : program.functions()) {
    if (!names.insert(fn.name).second) {
      *error = "duplicate function name '" + fn.name + "'";
      return false;
    }
    std::set<std::string> param_names;
    for (const Param& p : fn.params) {
      if (!param_names.insert(p.name).second) {
        *error = "function " + fn.name + ": duplicate parameter '" + p.name + "'";
        return false;
      }
    }
  }
  for (const Function& fn : program.functions()) {
    Checker checker(program, fn);
    if (!checker.Run(error)) return false;
  }
  return true;
}

}  // namespace asteria::minic
