// MiniC semantic checks.
//
// Validates a parsed Program before it reaches the interpreter or compiler:
//  * every referenced variable is declared (block scoping, shadowing allowed)
//  * scalars are not indexed; arrays are only indexed or passed whole
//  * calls target functions defined in the same program with matching arity;
//    array parameters receive array arguments, scalar parameters receive
//    scalar expressions (string literals are allowed for any parameter and
//    evaluate to their length — a stand-in for C string pointers)
//  * goto targets exist within the same function
//  * break/continue appear inside loops (break also inside switch)
#pragma once

#include <string>

#include "minic/ast.h"

namespace asteria::minic {

// Returns true when the program is well-formed; otherwise fills `error`.
bool Check(const Program& program, std::string* error);

}  // namespace asteria::minic
