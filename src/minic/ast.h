// MiniC: the C-subset source language of the reproduction pipeline.
//
// The paper compiles 260 real packages with buildroot; we synthesize MiniC
// programs instead (DESIGN.md §2). MiniC has 64-bit integers, fixed-size
// local arrays, array parameters, the full statement repertoire of Table I
// (if/while/for/switch/goto/...), compound assignments, and calls. Division
// and modulo by zero are *defined* to yield 0 so the interpreter, the VM and
// all four backends agree (no UB in differential tests).
//
// This header defines the source-level AST: a flat arena of Expr and Stmt
// nodes owned by a Program. It is distinct from ast::Ast, which models the
// *decompiled* tree of Table I.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::minic {

using ExprId = std::int32_t;
using StmtId = std::int32_t;
inline constexpr std::int32_t kNoId = -1;

enum class UnOp : std::uint8_t {
  kNeg,      // -x
  kLogicalNot,  // !x
  kBitNot,   // ~x
  kPreInc,   // ++x
  kPreDec,   // --x
  kPostInc,  // x++
  kPostDec,  // x--
};

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kShl, kShr,
  kBitAnd, kBitOr, kBitXor,
  kLogicalAnd, kLogicalOr,
  kEq, kNe, kLt, kGt, kLe, kGe,
};

enum class AssignOp : std::uint8_t {
  kAssign,     // =
  kAddAssign,  // +=
  kSubAssign,  // -=
  kMulAssign,  // *=
  kDivAssign,  // /=
  kAndAssign,  // &=
  kOrAssign,   // |=
  kXorAssign,  // ^=
};

enum class ExprKind : std::uint8_t {
  kNum,     // integer literal           (num)
  kStr,     // string literal            (text) — call arguments only
  kVar,     // variable reference        (name)
  kIndex,   // a[i]                      (lhs = base var expr, rhs = index)
  kCall,    // f(args...)                (name, args)
  kUnary,   // op applied to lhs
  kBinary,  // lhs op rhs
  kAssign,  // lhs op= rhs; lhs is kVar or kIndex
};

// One expression node. A single struct with a kind tag keeps the arena flat
// and copyable; unused fields stay at their defaults.
struct Expr {
  ExprKind kind = ExprKind::kNum;
  UnOp un_op = UnOp::kNeg;
  BinOp bin_op = BinOp::kAdd;
  AssignOp assign_op = AssignOp::kAssign;
  std::int64_t num = 0;
  std::string name;          // kVar / kCall / kStr payload
  ExprId lhs = kNoId;
  ExprId rhs = kNoId;
  std::vector<ExprId> args;  // kCall
};

enum class StmtKind : std::uint8_t {
  kBlock,     // { body... }
  kExpr,      // expression statement
  kDecl,      // int name [= init];  or  int name[size];
  kIf,        // if (cond) then_stmt [else else_stmt]
  kWhile,     // while (cond) body
  kFor,       // for (init_expr; cond; step_expr) body
  kSwitch,    // switch (value) { case k: ... default: ... }
  kReturn,    // return [value];
  kBreak,
  kContinue,
  kGoto,      // goto label;
  kLabel,     // label: stmt
};

// One switch arm; is_default ignores `match_value`.
struct SwitchCase {
  bool is_default = false;
  std::int64_t match_value = 0;
  std::vector<StmtId> body;  // statements until the next case (no fallthrough
                             // across arms: each arm ends with implicit break)
};

struct Stmt {
  StmtKind kind = StmtKind::kBlock;
  ExprId expr = kNoId;          // kExpr / kIf cond / kWhile cond / kSwitch
                                // value / kReturn value / kFor cond
  ExprId expr2 = kNoId;         // kFor init
  ExprId expr3 = kNoId;         // kFor step
  StmtId body = kNoId;          // kIf then / loop body / kLabel stmt
  StmtId else_body = kNoId;     // kIf else
  std::vector<StmtId> stmts;    // kBlock children
  std::vector<SwitchCase> cases;  // kSwitch
  std::string name;             // kDecl var name / kGoto / kLabel label
  std::int64_t array_size = 0;  // kDecl: >0 means array of that size
  ExprId init = kNoId;          // kDecl initializer
};

struct Param {
  std::string name;
  bool is_array = false;  // `int name[]` — passed by reference
};

struct Function {
  std::string name;
  std::vector<Param> params;
  StmtId body = kNoId;  // always a kBlock
};

// A MiniC translation unit plus its node arenas.
class Program {
 public:
  ExprId AddExpr(Expr expr) {
    exprs_.push_back(std::move(expr));
    return static_cast<ExprId>(exprs_.size() - 1);
  }
  StmtId AddStmt(Stmt stmt) {
    stmts_.push_back(std::move(stmt));
    return static_cast<StmtId>(stmts_.size() - 1);
  }
  int AddFunction(Function fn) {
    functions_.push_back(std::move(fn));
    return static_cast<int>(functions_.size() - 1);
  }

  const Expr& expr(ExprId id) const { return exprs_[static_cast<std::size_t>(id)]; }
  Expr& expr(ExprId id) { return exprs_[static_cast<std::size_t>(id)]; }
  const Stmt& stmt(StmtId id) const { return stmts_[static_cast<std::size_t>(id)]; }
  Stmt& stmt(StmtId id) { return stmts_[static_cast<std::size_t>(id)]; }

  const std::vector<Function>& functions() const { return functions_; }
  std::vector<Function>& functions() { return functions_; }

  // Returns the index of the named function, or -1.
  int FindFunction(const std::string& name) const;

  std::size_t expr_count() const { return exprs_.size(); }
  std::size_t stmt_count() const { return stmts_.size(); }

 private:
  std::vector<Expr> exprs_;
  std::vector<Stmt> stmts_;
  std::vector<Function> functions_;
};

// Convenience spellings used by the parser, printer and tests.
std::string_view BinOpSpelling(BinOp op);
std::string_view UnOpSpelling(UnOp op);
std::string_view AssignOpSpelling(AssignOp op);

}  // namespace asteria::minic
