#include "minic/lexer.h"

#include <cctype>
#include <unordered_map>

namespace asteria::minic {

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const std::unordered_map<std::string, TokenKind> kMap = {
      {"int", TokenKind::kKwInt},         {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},       {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},         {"do", TokenKind::kKwDo},
      {"switch", TokenKind::kKwSwitch},   {"case", TokenKind::kKwCase},
      {"default", TokenKind::kKwDefault}, {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},     {"continue", TokenKind::kKwContinue},
      {"goto", TokenKind::kKwGoto},
  };
  return kMap;
}

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto push = [&](TokenKind kind) {
    tokens.push_back({kind, "", 0, line});
  };
  auto error = [&](const std::string& message) {
    tokens.push_back({TokenKind::kError, message, 0, line});
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // comments
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n) {
        error("unterminated block comment");
        return tokens;
      }
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_')) {
        ++i;
      }
      std::string word = source.substr(start, i - start);
      auto it = Keywords().find(word);
      if (it != Keywords().end()) {
        push(it->second);
      } else {
        tokens.push_back({TokenKind::kIdent, std::move(word), 0, line});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      Token t;
      t.kind = TokenKind::kNumber;
      t.line = line;
      t.number = std::stoll(source.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
          switch (source[i]) {
            case 'n': value += '\n'; break;
            case 't': value += '\t'; break;
            default: value += source[i]; break;
          }
        } else {
          if (source[i] == '\n') ++line;
          value += source[i];
        }
        ++i;
      }
      if (i >= n) {
        error("unterminated string literal");
        return tokens;
      }
      ++i;  // closing quote
      tokens.push_back({TokenKind::kString, std::move(value), 0, line});
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && source[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case '{': push(TokenKind::kLBrace); ++i; break;
      case '}': push(TokenKind::kRBrace); ++i; break;
      case '[': push(TokenKind::kLBracket); ++i; break;
      case ']': push(TokenKind::kRBracket); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case ';': push(TokenKind::kSemicolon); ++i; break;
      case ':': push(TokenKind::kColon); ++i; break;
      case '~': push(TokenKind::kTilde); ++i; break;
      case '%': push(TokenKind::kPercent); ++i; break;
      case '+':
        if (two('+')) { push(TokenKind::kPlusPlus); i += 2; }
        else if (two('=')) { push(TokenKind::kPlusAssign); i += 2; }
        else { push(TokenKind::kPlus); ++i; }
        break;
      case '-':
        if (two('-')) { push(TokenKind::kMinusMinus); i += 2; }
        else if (two('=')) { push(TokenKind::kMinusAssign); i += 2; }
        else { push(TokenKind::kMinus); ++i; }
        break;
      case '*':
        if (two('=')) { push(TokenKind::kStarAssign); i += 2; }
        else { push(TokenKind::kStar); ++i; }
        break;
      case '/':
        if (two('=')) { push(TokenKind::kSlashAssign); i += 2; }
        else { push(TokenKind::kSlash); ++i; }
        break;
      case '&':
        if (two('&')) { push(TokenKind::kAmpAmp); i += 2; }
        else if (two('=')) { push(TokenKind::kAmpAssign); i += 2; }
        else { push(TokenKind::kAmp); ++i; }
        break;
      case '|':
        if (two('|')) { push(TokenKind::kPipePipe); i += 2; }
        else if (two('=')) { push(TokenKind::kPipeAssign); i += 2; }
        else { push(TokenKind::kPipe); ++i; }
        break;
      case '^':
        if (two('=')) { push(TokenKind::kCaretAssign); i += 2; }
        else { push(TokenKind::kCaret); ++i; }
        break;
      case '!':
        if (two('=')) { push(TokenKind::kNe); i += 2; }
        else { push(TokenKind::kBang); ++i; }
        break;
      case '=':
        if (two('=')) { push(TokenKind::kEq); i += 2; }
        else { push(TokenKind::kAssign); ++i; }
        break;
      case '<':
        if (two('<')) { push(TokenKind::kShl); i += 2; }
        else if (two('=')) { push(TokenKind::kLe); i += 2; }
        else { push(TokenKind::kLt); ++i; }
        break;
      case '>':
        if (two('>')) { push(TokenKind::kShr); i += 2; }
        else if (two('=')) { push(TokenKind::kGe); i += 2; }
        else { push(TokenKind::kGt); ++i; }
        break;
      default:
        error(std::string("unexpected character '") + c + "'");
        return tokens;
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace asteria::minic
