// Similarity calibration with callee counts (§III-C, equations (9)-(10)).
//
//   S(C1, C2) = e^{-|C1 - C2|}
//   F(F1, F2) = M(T1, T2) * S(C1, C2)
// C is the size of the β-filtered callee set χ (decompiler::DecompiledFunction
// computes it). Calibration is applied at inference only — training sees raw
// AST similarity so the Tree-LSTM "effectively learns semantic differences
// between ASTs" (§IV-A).
#pragma once

#include <cmath>
#include <cstdlib>

namespace asteria::core {

// Equation (9).
inline double CalleeSimilarity(int c1, int c2) {
  return std::exp(-static_cast<double>(std::abs(c1 - c2)));
}

// Equation (10).
inline double CalibratedSimilarity(double ast_similarity, int c1, int c2) {
  return ast_similarity * CalleeSimilarity(c1, c2);
}

}  // namespace asteria::core
