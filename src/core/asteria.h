// ASTERIA public API: preprocessing, AST similarity, calibrated function
// similarity, and the training loop.
//
// Pipeline per the paper's Fig. 3: AST extraction (decompiler) ->
// preprocessing (digitalization + LCRS; Preprocess()) -> Tree-LSTM encoding
// -> Siamese similarity -> callee-count calibration.
#pragma once

#include <string>
#include <vector>

#include "core/calibration.h"
#include "core/siamese.h"
#include "util/pipeline_report.h"

namespace asteria::core {

struct AsteriaConfig {
  SiameseConfig siamese;
  // Seed for weight initialization.
  std::uint64_t seed = 1;
};

// A preprocessed function ready for encoding/similarity.
struct FunctionFeature {
  std::string name;       // "<module>::<function>"
  ast::BinaryAst tree;    // digitalized, LCRS-binarized AST
  int callee_count = 0;   // |χ| (β-filtered)
};

// One labeled training/evaluation pair (indices into a feature vector).
struct LabeledPair {
  int a = 0;
  int b = 0;
  bool homologous = false;
};

class AsteriaModel {
 public:
  explicit AsteriaModel(const AsteriaConfig& config);

  // §III-A preprocessing: digitalization + left-child right-sibling.
  static ast::BinaryAst Preprocess(const ast::Ast& tree);

  // M(T1, T2) — the Siamese AST similarity in [0, 1].
  double AstSimilarity(const ast::BinaryAst& a, const ast::BinaryAst& b) const {
    return siamese_.Similarity(a, b);
  }

  // F(F1, F2) = M x S — calibrated function similarity (eq. (10)).
  double FunctionSimilarity(const FunctionFeature& a,
                            const FunctionFeature& b) const {
    return CalibratedSimilarity(AstSimilarity(a.tree, b.tree),
                                a.callee_count, b.callee_count);
  }

  // Offline encoding / online scoring split (Fig. 10).
  nn::Matrix Encode(const ast::BinaryAst& tree) const {
    return siamese_.Encode(tree);
  }
  double SimilarityFromEncodings(const nn::Matrix& a,
                                 const nn::Matrix& b) const {
    return siamese_.SimilarityFromEncodings(a, b);
  }
  // Batched online scoring: out[i] = M over the encoding pair (a[i], b[i]),
  // each a hidden_dim-length column. One blocked GEMM per block instead of
  // per-pair feature allocations; bitwise identical per pair to
  // SimilarityFromEncodings (see SiameseModel::SimilarityFromEncodingsBatch).
  void SimilarityFromEncodingsBatch(const double* const* a,
                                    const double* const* b, int count,
                                    double* out,
                                    EncodingScoreScratch* scratch) const {
    siamese_.SimilarityFromEncodingsBatch(a, b, count, out, scratch);
  }

  // One SGD step; returns the pair loss.
  double TrainPair(const ast::BinaryAst& a, const ast::BinaryAst& b,
                   bool homologous) {
    return siamese_.TrainPair(a, b, homologous);
  }

  // Trains one epoch over shuffled pairs; returns the mean loss over the
  // pairs that actually trained. Pairs with empty trees are skipped; pairs
  // whose loss comes back non-finite are isolated (no weight update, not
  // counted in the mean). `report`, when non-null, accumulates the per-pair
  // outcomes (stage "train-epoch").
  double TrainEpoch(const std::vector<FunctionFeature>& features,
                    std::vector<LabeledPair> pairs, util::Rng& rng,
                    util::PipelineReport* report = nullptr);

  bool Save(const std::string& path) const { return siamese_.Save(path); }
  bool Load(const std::string& path) { return siamese_.Load(path); }

  const AsteriaConfig& config() const { return config_; }
  std::size_t TotalWeights() const { return siamese_.TotalWeights(); }

  // CRC32 fingerprint of the current weights. Index snapshots embed it so a
  // snapshot is only ever loaded back under the model that encoded it.
  std::uint32_t WeightsFingerprint() const;

 private:
  AsteriaConfig config_;
  util::Rng rng_;
  SiameseModel siamese_;
};

}  // namespace asteria::core
