#include "core/tree_lstm_fast.h"

#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "ast/node_kind.h"

namespace asteria::core {

using ast::BinaryAst;
using ast::kInvalidNode;
using ast::NodeId;
using nn::Matrix;

namespace {

// Per-thread scratch arena. One arena serves every encoder on the thread:
// the vectors are grown (never shrunk) at the start of each call, so after
// the largest tree has been seen an encode performs no heap allocation
// beyond the post-order index vector.
struct Scratch {
  std::vector<double> h;      // n x hidden, node hidden states
  std::vector<double> c;      // n x hidden, node cell states
  std::vector<double> leaf;   // hidden, the missing-child initialization
  std::vector<double> ul;     // 5h, UL_all · h_left
  std::vector<double> ur;     // 5h, UR_all · h_right
  std::vector<double> wx;     // 4h, W_all · e for payload nodes
  std::vector<double> e;      // embedding_dim, label + payload embedding
  std::vector<double> gates;  // 5h, activated gate values

  void Grow(std::vector<double>* v, std::size_t n) {
    if (v->size() < n) v->resize(n);
  }
};

Scratch& LocalScratch() {
  static thread_local Scratch scratch;
  return scratch;
}

// Copies `src` into rows [row_offset, row_offset + src.rows()) of `dst`.
void CopyBlock(Matrix* dst, int row_offset, const Matrix& src) {
  for (int r = 0; r < src.rows(); ++r) {
    for (int c = 0; c < src.cols(); ++c) {
      (*dst)(row_offset + r, c) = src(r, c);
    }
  }
}

double SigmoidScalar(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

TreeLstmFastEncoder::TreeLstmFastEncoder(const TreeLstmConfig& config,
                                         const nn::ParameterStore& store,
                                         const std::string& prefix)
    : config_(config), prefix_(prefix) {
  const int e = config_.embedding_dim;
  const int h = config_.hidden_dim;
  w_all_ = Matrix(4 * h, e);
  ul_all_ = Matrix(5 * h, h);
  ur_all_ = Matrix(5 * h, h);
  b_all_.resize(5 * static_cast<std::size_t>(h));
  RefreshFrom(store);
}

void TreeLstmFastEncoder::RefreshFrom(const nn::ParameterStore& store) {
  const int e = config_.embedding_dim;
  const int h = config_.hidden_dim;
  auto find = [&](const std::string& name, int rows, int cols) -> const Matrix& {
    const nn::Parameter* param = store.Find(prefix_ + "." + name);
    if (param == nullptr) {
      throw std::runtime_error("TreeLstmFastEncoder: parameter '" + prefix_ +
                               "." + name + "' not found in store");
    }
    if (param->value.rows() != rows || param->value.cols() != cols) {
      throw std::runtime_error(
          "TreeLstmFastEncoder: parameter '" + prefix_ + "." + name +
          "' has shape " + std::to_string(param->value.rows()) + "x" +
          std::to_string(param->value.cols()) + ", expected " +
          std::to_string(rows) + "x" + std::to_string(cols));
    }
    return param->value;
  };

  // W stack (Wf is shared by both forget gates, so it appears once).
  CopyBlock(&w_all_, 0 * h, find("Wf", h, e));
  CopyBlock(&w_all_, 1 * h, find("Wi", h, e));
  CopyBlock(&w_all_, 2 * h, find("Wo", h, e));
  CopyBlock(&w_all_, 3 * h, find("Wu", h, e));

  // U stacks in gate row order fl, fr, i, o, u.
  CopyBlock(&ul_all_, kForgetLeft * h, find("Ufll", h, h));
  CopyBlock(&ul_all_, kForgetRight * h, find("Ufrl", h, h));
  CopyBlock(&ul_all_, kInput * h, find("Uil", h, h));
  CopyBlock(&ul_all_, kOutput * h, find("Uol", h, h));
  CopyBlock(&ul_all_, kCached * h, find("Uul", h, h));
  CopyBlock(&ur_all_, kForgetLeft * h, find("Uflr", h, h));
  CopyBlock(&ur_all_, kForgetRight * h, find("Ufrr", h, h));
  CopyBlock(&ur_all_, kInput * h, find("Uir", h, h));
  CopyBlock(&ur_all_, kOutput * h, find("Uor", h, h));
  CopyBlock(&ur_all_, kCached * h, find("Uur", h, h));

  // Biases: bf twice (both forget gates share it).
  const Matrix& bf = find("bf", h, 1);
  const Matrix& bi = find("bi", h, 1);
  const Matrix& bo = find("bo", h, 1);
  const Matrix& bu = find("bu", h, 1);
  for (int r = 0; r < h; ++r) {
    b_all_[static_cast<std::size_t>(kForgetLeft * h + r)] = bf(r, 0);
    b_all_[static_cast<std::size_t>(kForgetRight * h + r)] = bf(r, 0);
    b_all_[static_cast<std::size_t>(kInput * h + r)] = bi(r, 0);
    b_all_[static_cast<std::size_t>(kOutput * h + r)] = bo(r, 0);
    b_all_[static_cast<std::size_t>(kCached * h + r)] = bu(r, 0);
  }

  const int vocab = ast::kMaxNodeLabel + 1;
  embedding_ = find("embedding", vocab, e);
  if (config_.embed_payloads) {
    payload_embedding_ = find("payload_embedding", ast::kPayloadVocab, e);
  } else {
    payload_embedding_ = Matrix();
  }

  // Per-label input projections: wx_table_[label] = W_all · embedding[label].
  // Gemv accumulates each row in the same order as the tape path's
  // MatMul(W, EmbeddingRow(label)), so the table entries are bitwise what
  // the tape computes per node.
  wx_table_.resize(static_cast<std::size_t>(vocab) *
                   static_cast<std::size_t>(4 * h));
  std::vector<double> column(static_cast<std::size_t>(e));
  for (int label = 0; label < vocab; ++label) {
    for (int k = 0; k < e; ++k) column[static_cast<std::size_t>(k)] = embedding_(label, k);
    w_all_.Gemv(column.data(),
                wx_table_.data() +
                    static_cast<std::size_t>(label) * static_cast<std::size_t>(4 * h));
  }
}

Matrix TreeLstmFastEncoder::EncodeVector(const BinaryAst& tree) const {
  const int h = config_.hidden_dim;
  if (tree.empty()) return Matrix(h, 1);
  const int e_dim = config_.embedding_dim;
  const std::size_t n = static_cast<std::size_t>(tree.size());
  const std::size_t hs = static_cast<std::size_t>(h);

  Scratch& s = LocalScratch();
  s.Grow(&s.h, n * hs);
  s.Grow(&s.c, n * hs);
  s.Grow(&s.ul, 5 * hs);
  s.Grow(&s.ur, 5 * hs);
  s.Grow(&s.wx, 4 * hs);
  s.Grow(&s.e, static_cast<std::size_t>(e_dim));
  s.Grow(&s.gates, 5 * hs);
  // Leaf initialization (Fig. 9: zeros vs ones) for both h and c.
  s.leaf.assign(hs, config_.leaf_init_ones ? 1.0 : 0.0);

  const bool payloads = config_.embed_payloads;
  // Offset of each gate's rows inside the 4h-tall W stack (forget gates
  // share the Wf block).
  static constexpr int kWxBlock[5] = {0, 0, 1, 2, 3};

  for (NodeId id : tree.PostOrder()) {
    const ast::BinaryNode& node = tree.node(id);
    const double* hl = node.left != kInvalidNode
                           ? s.h.data() + static_cast<std::size_t>(node.left) * hs
                           : s.leaf.data();
    const double* cl = node.left != kInvalidNode
                           ? s.c.data() + static_cast<std::size_t>(node.left) * hs
                           : s.leaf.data();
    const double* hr = node.right != kInvalidNode
                           ? s.h.data() + static_cast<std::size_t>(node.right) * hs
                           : s.leaf.data();
    const double* cr = node.right != kInvalidNode
                           ? s.c.data() + static_cast<std::size_t>(node.right) * hs
                           : s.leaf.data();

    // Input projection W_all · e: a table lookup unless the node carries a
    // payload bucket, in which case e = emb[label] + pay[bucket] must be
    // summed first (projecting the two halves separately would change the
    // tape path's per-row summation order).
    const double* wx;
    if (payloads && node.payload_bucket != 0) {
      for (int k = 0; k < e_dim; ++k) {
        s.e[static_cast<std::size_t>(k)] =
            embedding_(node.label, k) +
            payload_embedding_(node.payload_bucket, k);
      }
      w_all_.Gemv(s.e.data(), s.wx.data());
      wx = s.wx.data();
    } else {
      wx = wx_table_.data() +
           static_cast<std::size_t>(node.label) * 4 * hs;
    }

    // The two fused GEMVs covering all ten U applications of eqs. (1)-(5).
    ul_all_.Gemv(hl, s.ul.data());
    ur_all_.Gemv(hr, s.ur.data());

    // Gate activations. Association order matches the tape path exactly:
    // ((W·e + (UL·hl + UR·hr)) + b).
    for (int gate = 0; gate < 5; ++gate) {
      const double* wrow = wx + static_cast<std::size_t>(kWxBlock[gate]) * hs;
      const double* ulg = s.ul.data() + static_cast<std::size_t>(gate) * hs;
      const double* urg = s.ur.data() + static_cast<std::size_t>(gate) * hs;
      const double* b = b_all_.data() + static_cast<std::size_t>(gate) * hs;
      double* out = s.gates.data() + static_cast<std::size_t>(gate) * hs;
      if (gate == kCached) {
        for (int r = 0; r < h; ++r) {
          out[r] = std::tanh((wrow[r] + (ulg[r] + urg[r])) + b[r]);
        }
      } else {
        for (int r = 0; r < h; ++r) {
          out[r] = SigmoidScalar((wrow[r] + (ulg[r] + urg[r])) + b[r]);
        }
      }
    }

    // (6)(7) with the tape path's association: c = i.u + (c_l.f_l + c_r.f_r),
    // h = o . tanh(c).
    const double* fl = s.gates.data() + static_cast<std::size_t>(kForgetLeft) * hs;
    const double* fr = s.gates.data() + static_cast<std::size_t>(kForgetRight) * hs;
    const double* gi = s.gates.data() + static_cast<std::size_t>(kInput) * hs;
    const double* go = s.gates.data() + static_cast<std::size_t>(kOutput) * hs;
    const double* gu = s.gates.data() + static_cast<std::size_t>(kCached) * hs;
    double* hk = s.h.data() + static_cast<std::size_t>(id) * hs;
    double* ck = s.c.data() + static_cast<std::size_t>(id) * hs;
    for (int r = 0; r < h; ++r) {
      const double c = gi[r] * gu[r] + (cl[r] * fl[r] + cr[r] * fr[r]);
      ck[r] = c;
      hk[r] = go[r] * std::tanh(c);
    }
  }

  Matrix out(h, 1);
  const double* root = s.h.data() + static_cast<std::size_t>(tree.root()) * hs;
  for (int r = 0; r < h; ++r) out(r, 0) = root[r];
  return out;
}

}  // namespace asteria::core
