// Forward-only fused inference kernel for the Binary Tree-LSTM.
//
// TreeLstmEncoder::EncodeVector runs the forward pass through a full
// reverse-mode autograd Tape: per node it heap-allocates ~42 tape entries
// (value + gradient matrices + std::function backward closures) and issues
// ~14 small MatMuls, none of which inference needs. Every similarity query
// and every firmware index build pays that cost (§V-E, Fig. 10), so the
// online path gets a dedicated lean kernel, the same training/inference
// split Gemini uses for embedding-based search.
//
// What the fast encoder does differently:
//  * Tape-free: post-order evaluation into a reusable thread-local scratch
//    arena sized by the tree — zero per-node heap allocation.
//  * Fused weights: {Wf, Wi, Wo, Wu} are stacked into one (4h x e) matrix
//    and the ten U matrices into two (5h x h) matrices (gate row order
//    fl, fr, i, o, u), so a node costs at most three Matrix::Gemv calls
//    instead of ~14 small MatMuls.
//  * Precomputed input projections: W_all · embedding[label] for the whole
//    node-label vocabulary (a few KB), eliminating the W GEMV outright for
//    nodes without a payload bucket.
//
// Bitwise contract: the produced embeddings are bit-for-bit identical to
// EncodeVector. Every fused row accumulates in the same ascending-k order
// as the tape path's per-gate MatMul (Matrix::Gemv guarantees this), and
// the gate/cell/hidden arithmetic reuses the tape path's exact association
// order. This keeps the PR-1 determinism contract and PR-2 snapshot
// compatibility intact; tests/fast_encoder_test.cpp enforces it.
//
// The fused copies go stale when the parameters change (a training step or
// a checkpoint load): call RefreshFrom(store) again. SiameseModel automates
// this with a dirty flag set by TrainPair/Load (docs/PERFORMANCE.md).
#pragma once

#include <string>
#include <vector>

#include "ast/lcrs.h"
#include "core/tree_lstm.h"
#include "nn/matrix.h"
#include "nn/parameter.h"

namespace asteria::core {

class TreeLstmFastEncoder {
 public:
  // Builds the fused weight copies from the named parameters that a
  // TreeLstmEncoder with the same config/prefix created in `store`. Throws
  // std::runtime_error if a parameter is missing or has the wrong shape.
  explicit TreeLstmFastEncoder(const TreeLstmConfig& config,
                               const nn::ParameterStore& store,
                               const std::string& prefix = "treelstm");

  // Rebuilds the fused matrices and the per-label projection table from the
  // store's current parameter values. Must be called after every weight
  // update (training step, checkpoint load) before the next EncodeVector.
  void RefreshFrom(const nn::ParameterStore& store);

  // Encodes a binarized AST; returns the root hidden state (h x 1).
  // Bitwise identical to TreeLstmEncoder::EncodeVector. Thread-safe: safe
  // to call concurrently from many threads (per-thread scratch arenas).
  nn::Matrix EncodeVector(const ast::BinaryAst& tree) const;

  const TreeLstmConfig& config() const { return config_; }

 private:
  // Gate row order inside the fused 5h blocks.
  enum Gate { kForgetLeft = 0, kForgetRight, kInput, kOutput, kCached };

  TreeLstmConfig config_;
  std::string prefix_;

  nn::Matrix w_all_;   // 4h x e: [Wf; Wi; Wo; Wu]
  nn::Matrix ul_all_;  // 5h x h: [Ufll; Ufrl; Uil; Uol; Uul]
  nn::Matrix ur_all_;  // 5h x h: [Uflr; Ufrr; Uir; Uor; Uur]
  std::vector<double> b_all_;  // 5h: [bf; bf; bi; bo; bu]

  // wx_table_[label * 4h ..] = W_all · embedding[label], one entry per
  // vocabulary label; nodes without payload read it instead of a GEMV.
  std::vector<double> wx_table_;

  // Raw embedding copies for the payload path (e = emb[label] + pay[bucket]
  // cannot be split across two precomputed projections without changing the
  // tape path's summation order).
  nn::Matrix embedding_;          // vocab x e
  nn::Matrix payload_embedding_;  // kPayloadVocab x e (empty if payloads off)
};

}  // namespace asteria::core
