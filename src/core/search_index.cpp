#include "core/search_index.h"

#include <algorithm>

namespace asteria::core {

int SearchIndex::Add(const FunctionFeature& feature) {
  Entry entry;
  entry.name = feature.name;
  entry.encoding = model_.Encode(feature.tree);
  entry.callee_count = feature.callee_count;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void SearchIndex::AddAll(const std::vector<FunctionFeature>& features) {
  for (const FunctionFeature& feature : features) Add(feature);
}

std::vector<SearchHit> SearchIndex::Scored(
    const FunctionFeature& query) const {
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  std::vector<SearchHit> hits;
  hits.reserve(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    SearchHit hit;
    hit.index = static_cast<int>(i);
    hit.name = entry.name;
    hit.score = CalibratedSimilarity(
        model_.SimilarityFromEncodings(query_encoding, entry.encoding),
        query.callee_count, entry.callee_count);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<SearchHit> SearchIndex::TopK(const FunctionFeature& query,
                                         int k) const {
  std::vector<SearchHit> hits = Scored(query);
  const auto cut = hits.begin() +
                   std::min<std::ptrdiff_t>(k, static_cast<std::ptrdiff_t>(hits.size()));
  std::partial_sort(hits.begin(), cut, hits.end(),
                    [](const SearchHit& a, const SearchHit& b) {
                      return a.score > b.score;
                    });
  hits.erase(cut, hits.end());
  return hits;
}

std::vector<SearchHit> SearchIndex::AboveThreshold(
    const FunctionFeature& query, double threshold) const {
  std::vector<SearchHit> hits = Scored(query);
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const SearchHit& hit) {
                              return hit.score < threshold;
                            }),
             hits.end());
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              return a.score > b.score;
            });
  return hits;
}

}  // namespace asteria::core
