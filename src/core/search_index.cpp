#include "core/search_index.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <exception>
#include <limits>
#include <utility>

#include "store/container.h"
#include "store/manifest.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace asteria::core {

namespace {

// Injects a per-feature encoding failure into AddAll (isolation testing).
util::Failpoint fp_search_encode("search.encode");

// Latency histograms ("*_nanos"): deterministic counts, machine-dependent
// bucket placement. TopK result sizes are fully deterministic.
util::Histogram h_add_nanos("search.add_nanos");
util::Histogram h_topk_nanos("search.topk_nanos");
util::Histogram h_topk_size("search.topk_size");
// Batch-shaped metrics: observation counts depend on how requests coalesce
// (i.e. on timing), unlike the per-query histograms above, so determinism
// gates (scripts/check_serve.sh) filter "*batch*" histograms wholesale.
util::Histogram h_topk_batch_queries("search.topk_batch_queries");
util::Histogram h_topk_batch_nanos("search.topk_batch_nanos");
// Prune accounting, bumped once per sweep with shard-order totals (never in
// the scoring inner loop), so metrics cost does not scale with index size.
// Prune decisions depend only on callee counts and deterministic seed
// scores, so both totals are thread-count invariant.
util::Counter c_scored_pairs("search.scored_pairs");
util::Counter c_pruned_pairs("search.pruned_pairs");

bool AllFinite(const double* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) return false;
  }
  return true;
}

bool AllFinite(const nn::Matrix& m) { return AllFinite(m.data(), m.size()); }

// Index-snapshot chunk tags and schema version (see docs/FORMATS.md).
constexpr std::uint32_t kTagIndexMeta = store::FourCc('I', 'M', 'E', 'T');
constexpr std::uint32_t kTagIndexEntry = store::FourCc('E', 'N', 'T', 'R');
constexpr std::uint32_t kSnapshotVersion = 1;

// Strict total order on hits: score descending, insertion index ascending.
// The index tiebreak makes merge results independent of the shard count.
bool HitBefore(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

// -- Exact prefilter machinery ---------------------------------------------
//
// F = M * S with M <= 1 and S = e^{-|C1-C2|}, so S alone upper-bounds the
// calibrated score. The table below caches S for every integer distance the
// double format can distinguish (e^-746 already underflows to 0.0), holding
// the exact std::exp values CalleeSimilarity produces — scoring through the
// table is bitwise identical to calling std::exp per pair.

constexpr std::int64_t kExpTableSize = 768;

const std::array<double, kExpTableSize>& NegExpTable() {
  static const std::array<double, kExpTableSize> table = [] {
    std::array<double, kExpTableSize> t{};
    for (std::int64_t d = 0; d < kExpTableSize; ++d) {
      t[static_cast<std::size_t>(d)] = std::exp(-static_cast<double>(d));
    }
    return t;
  }();
  return table;
}

std::int64_t CalleeDistance(int a, int b) {
  return std::abs(static_cast<std::int64_t>(a) - static_cast<std::int64_t>(b));
}

// S(C1, C2) by table lookup — the same value CalleeSimilarity returns.
double CalleeSimFromDistance(std::int64_t d) {
  if (d < kExpTableSize) return NegExpTable()[static_cast<std::size_t>(d)];
  return std::exp(-static_cast<double>(d));
}

// The prune compares against S * kPruneSlack rather than S itself. For the
// classification head M <= 1 holds bitwise (a softmax output never rounds
// above 1), so F = fl(M*S) <= S exactly. The regression head's cosine can
// exceed 1 by a few ulps of accumulated rounding (~1e-14 relative), so a
// 1e-9 slack — five orders of magnitude of margin, far too small to weaken
// the prune in practice — keeps the skip provably safe for both heads.
// docs/PERFORMANCE.md has the full argument.
constexpr double kPruneSlack = 1.0 + 1e-9;

double PruneBound(std::int64_t d) {
  const std::int64_t clamped = d < kExpTableSize ? d : kExpTableSize - 1;
  return NegExpTable()[static_cast<std::size_t>(clamped)] * kPruneSlack;
}

// Sentinel: no distance can be excluded — score every entry.
constexpr std::int64_t kNoDistanceCut = std::numeric_limits<std::int64_t>::max();

// Largest |ΔC| whose calibration bound can still reach `floor`. Returns
// kNoDistanceCut when nothing is excludable (floor <= 0 or NaN, or even the
// underflowed tail of the table clears it) and -1 when even distance 0
// cannot reach the floor (every entry is excluded).
std::int64_t MaxAllowedDistance(double floor) {
  if (!(floor > 0.0)) return kNoDistanceCut;
  if (PruneBound(kExpTableSize - 1) >= floor) return kNoDistanceCut;
  if (PruneBound(0) < floor) return -1;
  // The bound is monotone non-increasing in d: binary search the last
  // allowed distance. Invariant: bound(lo) >= floor > bound(hi).
  std::int64_t lo = 0, hi = kExpTableSize - 1;
  while (hi - lo > 1) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (PruneBound(mid) >= floor) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Gathers (query, entry column) pairs and scores a full block with one
// SimilarityFromEncodingsBatch call (one feature matrix + one blocked GEMM
// per flush). One instance per worker; buffers are reused across flushes.
class BlockScorer {
 public:
  // How many pairs a flush scores at once: large enough that the GEMM and
  // the sigmoid/exp loops amortize call overhead, small enough that the
  // feature block (kPairsPerBlock x 2h doubles) stays cache-resident.
  static constexpr int kPairsPerBlock = 256;

  explicit BlockScorer(const AsteriaModel& model) : model_(model) {
    a_.reserve(kPairsPerBlock);
    b_.reserve(kPairsPerBlock);
    tags_.reserve(kPairsPerBlock);
    m_.resize(kPairsPerBlock);
  }

  bool Full() const { return static_cast<int>(a_.size()) >= kPairsPerBlock; }

  void Push(const double* query, const double* entry, int query_slot,
            int entry_index) {
    a_.push_back(query);
    b_.push_back(entry);
    tags_.push_back({query_slot, entry_index});
  }

  // Scores pending pairs and invokes sink(query_slot, entry_index, m) for
  // each, in push order.
  template <typename Sink>
  void Flush(Sink&& sink) {
    const int count = static_cast<int>(a_.size());
    if (count == 0) return;
    model_.SimilarityFromEncodingsBatch(a_.data(), b_.data(), count,
                                        m_.data(), &scratch_);
    for (int p = 0; p < count; ++p) {
      sink(tags_[static_cast<std::size_t>(p)].first,
           tags_[static_cast<std::size_t>(p)].second,
           m_[static_cast<std::size_t>(p)]);
    }
    a_.clear();
    b_.clear();
    tags_.clear();
  }

 private:
  const AsteriaModel& model_;
  std::vector<const double*> a_, b_;
  std::vector<std::pair<int, int>> tags_;
  std::vector<double> m_;
  EncodingScoreScratch scratch_;
};

// Prune activation cut-offs. Below kMinPruneIndex entries the brute sweep
// is already microseconds; above kMaxPruneK kept hits the serial seed pass
// would cost more than it saves. Both depend only on (N, k), never on the
// thread count, so the pruned set stays deterministic.
constexpr std::int64_t kMinPruneIndex = 2048;
constexpr std::size_t kMaxPruneK = 512;

// Stack capacity for the per-(shard,query) pair tallies (2 slots each).
// Covers e.g. 4 shards x 8 queries without touching the allocator; bigger
// sweeps fall back to one heap vector.
constexpr std::size_t kStackTallySlots = 64;

}  // namespace

// Strict total order on (score, insertion index) refs — HitBefore without
// the materialized name. Templated so the file-local helpers never have to
// name the private SearchIndex::ScoredRef type.
template <typename Ref>
static bool RefBefore(const Ref& a, const Ref& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

// Keeps at most `keep` best refs in a worst-on-top heap (the shard-local
// top-k scheme every sweep shares).
template <typename Ref>
static void PushHeapKeep(std::vector<Ref>* heap, std::size_t keep, Ref ref) {
  auto worse = [](const Ref& a, const Ref& b) {
    return RefBefore(a, b);  // heap top = worst kept ref
  };
  if (heap->size() < keep) {
    heap->push_back(ref);
    std::push_heap(heap->begin(), heap->end(), worse);
  } else if (RefBefore(ref, heap->front())) {
    std::pop_heap(heap->begin(), heap->end(), worse);
    heap->back() = ref;
    std::push_heap(heap->begin(), heap->end(), worse);
  }
}

// Per-query sweep state: the encoded query plus the exact-prune cut derived
// from its callee-nearest seed entries.
struct SearchIndex::QueryPlan {
  const double* encoding = nullptr;
  int callees = 0;
  std::size_t keep = 0;      // TopK: heap size; 0 disables scoring entirely
  std::int64_t max_dist = kNoDistanceCut;  // skip entries with |ΔC| beyond
  std::int64_t seed_lo = 0, seed_hi = 0;   // side positions already scored
  std::vector<ScoredRef> seed_heap;        // their top-keep refs
};

double* SearchIndex::PackedColumns::AppendColumn() {
  const std::int64_t block = count_ / kBlockCols;
  if (block == static_cast<std::int64_t>(blocks_.size())) {
    blocks_.push_back(std::make_unique<double[]>(
        static_cast<std::size_t>(kBlockCols) * static_cast<std::size_t>(dim_)));
  }
  double* column = blocks_[static_cast<std::size_t>(block)].get() +
                   (count_ % kBlockCols) * dim_;
  ++count_;
  return column;
}

SearchIndex::SearchIndex(const AsteriaModel& model, int threads)
    : model_(model),
      threads_(threads < 1 ? 1 : threads),
      hidden_dim_(model.config().siamese.encoder.hidden_dim) {
  packed_.Reset(hidden_dim_);
}

int SearchIndex::Add(const FunctionFeature& feature) {
  ASTERIA_SPAN("encode");
  util::Timer timer;
  const nn::Matrix encoding = model_.Encode(feature.tree);
  std::memcpy(packed_.AppendColumn(), encoding.data(),
              static_cast<std::size_t>(hidden_dim_) * sizeof(double));
  EntryMeta meta;
  meta.name = feature.name;
  meta.callee_count = feature.callee_count;
  entries_.push_back(std::move(meta));
  MarkSideIndexDirty();
  h_add_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  return static_cast<int>(entries_.size()) - 1;
}

int SearchIndex::AddEncoded(const std::string& name,
                            const nn::Matrix& encoding, int callee_count) {
  // Same shape/finiteness gate as Load: a foreign or corrupted encoding
  // must be rejected here, not discovered as garbage scores later.
  if (encoding.rows() != hidden_dim_ || encoding.cols() != 1 ||
      !AllFinite(encoding)) {
    return -1;
  }
  std::memcpy(packed_.AppendColumn(), encoding.data(),
              static_cast<std::size_t>(hidden_dim_) * sizeof(double));
  EntryMeta meta;
  meta.name = name;
  meta.callee_count = callee_count;
  entries_.push_back(std::move(meta));
  MarkSideIndexDirty();
  return static_cast<int>(entries_.size()) - 1;
}

util::PipelineReport SearchIndex::AddAll(
    const std::vector<FunctionFeature>& features) {
  util::PipelineReport report;
  report.stage = "index-encode";
  // Encode into staging slots so a failing feature never leaves a hole in
  // the packed matrix. Each worker writes only its own slot; the sequential
  // compact pass below makes the surviving order (and the report)
  // thread-count independent.
  std::vector<EntryMeta> staged_meta(features.size());
  std::vector<nn::Matrix> staged_encoding(features.size());
  enum : char { kFailed = 0, kOk = 1, kSkipped = 2 };
  std::vector<char> outcome(features.size(), kFailed);
  std::vector<std::string> failure(features.size());
  util::ParallelFor(
      static_cast<std::int64_t>(features.size()), threads_,
      [&](std::int64_t i) {
        ASTERIA_SPAN("encode");
        const std::size_t slot = static_cast<std::size_t>(i);
        const FunctionFeature& feature = features[slot];
        if (feature.tree.empty()) {
          outcome[slot] = kSkipped;
          failure[slot] = feature.name + ": empty AST";
          return;
        }
        if (fp_search_encode.ShouldFail()) {
          failure[slot] =
              feature.name + ": injected failure (failpoint search.encode)";
          return;
        }
        try {
          staged_meta[slot].name = feature.name;
          staged_meta[slot].callee_count = feature.callee_count;
          staged_encoding[slot] = model_.Encode(feature.tree);
          if (!AllFinite(staged_encoding[slot])) {
            failure[slot] = feature.name + ": encoding has non-finite values";
            return;
          }
          outcome[slot] = kOk;
        } catch (const std::exception& e) {
          failure[slot] = feature.name + ": " + e.what();
        }
      });
  entries_.reserve(entries_.size() + features.size());
  for (std::size_t i = 0; i < staged_meta.size(); ++i) {
    switch (outcome[i]) {
      case kOk:
        std::memcpy(packed_.AppendColumn(), staged_encoding[i].data(),
                    static_cast<std::size_t>(hidden_dim_) * sizeof(double));
        entries_.push_back(std::move(staged_meta[i]));
        report.AddOk();
        break;
      case kSkipped:
        report.AddSkipped(failure[i]);
        break;
      default:
        report.AddFailed(failure[i]);
        break;
    }
  }
  MarkSideIndexDirty();
  util::PublishPipelineReport(report);
  return report;
}

nn::Matrix SearchIndex::encoding(int index) const {
  nn::Matrix m(hidden_dim_, 1);
  std::memcpy(m.data(), packed_.Column(index),
              static_cast<std::size_t>(hidden_dim_) * sizeof(double));
  return m;
}

void SearchIndex::EnsureSideIndexFresh() const {
  if (!side_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(side_mutex_);
  if (!side_dirty_.load(std::memory_order_relaxed)) return;
  const int n = size();
  side_order_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) side_order_[static_cast<std::size_t>(i)] = i;
  std::sort(side_order_.begin(), side_order_.end(), [&](int a, int b) {
    const int ca = entries_[static_cast<std::size_t>(a)].callee_count;
    const int cb = entries_[static_cast<std::size_t>(b)].callee_count;
    if (ca != cb) return ca < cb;
    return a < b;
  });
  side_pos_.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    side_pos_[static_cast<std::size_t>(side_order_[static_cast<std::size_t>(p)])] = p;
  }
  side_dirty_.store(false, std::memory_order_release);
}

std::vector<std::vector<SearchHit>> SearchIndex::TopKOnEncodings(
    const std::vector<nn::Matrix>& encodings, const std::vector<int>& callees,
    const std::vector<std::size_t>& keeps,
    std::vector<QuerySearchStats>* stats) const {
  const std::size_t batch = encodings.size();
  const std::int64_t n = static_cast<std::int64_t>(entries_.size());
  std::vector<std::vector<SearchHit>> results(batch);
  if (batch == 0 || n == 0) return results;
  const std::int64_t sweep_start_nanos = util::TraceNowNanos();

  // Phase 1 — per-query plans. When the prune is worth arming (large index,
  // small k), pick the `keep` entries nearest the query's callee count in
  // the side order, score them serially into a full heap, and derive the
  // static distance cut from its worst score: any entry farther than
  // max_dist has bound < that score and provably cannot displace a kept
  // hit. Everything here is a pure function of (callee counts, k, scores),
  // so plans — and therefore the skipped set — are thread-count invariant.
  bool any_prune = false;
  for (std::size_t q = 0; q < batch; ++q) {
    if (keeps[q] > 0 && keeps[q] <= kMaxPruneK && n >= kMinPruneIndex) {
      any_prune = true;
      break;
    }
  }
  if (any_prune) EnsureSideIndexFresh();
  std::vector<QueryPlan> plans(batch);
  std::vector<std::uint64_t> seed_scored(batch, 0);
  util::ParallelFor(
      static_cast<std::int64_t>(batch), threads_, [&](std::int64_t qi) {
        const std::size_t q = static_cast<std::size_t>(qi);
        QueryPlan& plan = plans[q];
        plan.encoding = encodings[q].data();
        plan.callees = callees[q];
        plan.keep = keeps[q];
        if (plan.keep == 0 || plan.keep > kMaxPruneK || n < kMinPruneIndex) {
          return;  // no prune: the sweep scores every entry for this query
        }
        // Seed range: exactly `keep` side positions nearest the query's
        // callee count, expanded one position at a time toward whichever
        // neighbor is closer (ties toward larger counts — any fixed rule
        // works, it only has to be deterministic).
        std::int64_t lo =
            std::lower_bound(side_order_.begin(), side_order_.end(),
                             plan.callees,
                             [&](int idx, int c) {
                               return entries_[static_cast<std::size_t>(idx)]
                                          .callee_count < c;
                             }) -
            side_order_.begin();
        std::int64_t hi = lo;
        while (hi - lo < static_cast<std::int64_t>(plan.keep)) {
          bool take_right;
          if (lo == 0) {
            take_right = true;
          } else if (hi == n) {
            take_right = false;
          } else {
            const std::int64_t dr = CalleeDistance(
                entries_[static_cast<std::size_t>(
                             side_order_[static_cast<std::size_t>(hi)])]
                    .callee_count,
                plan.callees);
            const std::int64_t dl = CalleeDistance(
                entries_[static_cast<std::size_t>(
                             side_order_[static_cast<std::size_t>(lo - 1)])]
                    .callee_count,
                plan.callees);
            take_right = dr <= dl;
          }
          if (take_right) {
            ++hi;
          } else {
            --lo;
          }
        }
        plan.seed_lo = lo;
        plan.seed_hi = hi;
        plan.seed_heap.reserve(plan.keep + 1);
        BlockScorer scorer(model_);
        auto sink = [&](int, int entry, double m) {
          const std::int64_t d = CalleeDistance(
              entries_[static_cast<std::size_t>(entry)].callee_count,
              plan.callees);
          PushHeapKeep(&plan.seed_heap, plan.keep,
                       {m * CalleeSimFromDistance(d), entry});
        };
        for (std::int64_t pos = lo; pos < hi; ++pos) {
          const int entry = side_order_[static_cast<std::size_t>(pos)];
          scorer.Push(plan.encoding, packed_.Column(entry), 0, entry);
          if (scorer.Full()) scorer.Flush(sink);
        }
        scorer.Flush(sink);
        seed_scored[q] = static_cast<std::uint64_t>(hi - lo);
        // The heap is full (keep <= N seeds), so its worst score is a lower
        // bound on the final k-th score: only entries whose calibration
        // bound reaches it can still matter.
        plan.max_dist = MaxAllowedDistance(plan.seed_heap.front().score);
      });

  // Phase 2 — one blocked sweep over the packed matrix in insertion order.
  // Every (entry block x query batch) tile is gathered and scored through
  // one GEMM flush; seeds are skipped by side position, pruned pairs by the
  // distance cut.
  const int max_shards = threads_;
  const std::size_t shard_slots =
      static_cast<std::size_t>(std::max(1, max_shards));
  std::vector<std::vector<std::vector<ScoredRef>>> shard_top(
      shard_slots, std::vector<std::vector<ScoredRef>>(batch));
  // Pair tallies per (shard, query), flattened (rows of 2*batch per shard:
  // scored then pruned): summed across queries they reproduce the old
  // per-shard totals (same counter deltas); summed across shards they give
  // each query's exact scored/pruned counts for `stats`. Flat — and on the
  // stack for the common small case — because this runs per dispatch: a
  // nested vector-of-vectors costs 2*(shards+1) mallocs on the warm
  // singleton-query path.
  const std::size_t tally_count = shard_slots * batch * 2;
  std::uint64_t stack_tallies[kStackTallySlots] = {};
  std::vector<std::uint64_t> heap_tallies;
  std::uint64_t* shard_tallies = stack_tallies;
  if (tally_count > kStackTallySlots) {
    heap_tallies.assign(tally_count, 0);
    shard_tallies = heap_tallies.data();
  }
  util::ParallelForShards(
      n, max_shards, [&](std::int64_t begin, std::int64_t end, int shard) {
        std::vector<std::vector<ScoredRef>>& locals =
            shard_top[static_cast<std::size_t>(shard)];
        for (std::size_t q = 0; q < batch; ++q) {
          locals[q].reserve(plans[q].keep + 1);
        }
        std::uint64_t* const scored =
            shard_tallies + static_cast<std::size_t>(shard) * batch * 2;
        std::uint64_t* const pruned = scored + batch;
        BlockScorer scorer(model_);
        auto sink = [&](int q, int entry, double m) {
          const std::size_t slot = static_cast<std::size_t>(q);
          const std::int64_t d = CalleeDistance(
              entries_[static_cast<std::size_t>(entry)].callee_count,
              plans[slot].callees);
          PushHeapKeep(&locals[slot], plans[slot].keep,
                       {m * CalleeSimFromDistance(d), entry});
        };
        for (std::int64_t i = begin; i < end; ++i) {
          const int ce = entries_[static_cast<std::size_t>(i)].callee_count;
          const double* column = packed_.Column(i);
          for (std::size_t q = 0; q < batch; ++q) {
            const QueryPlan& plan = plans[q];
            if (plan.keep == 0) continue;
            if (plan.seed_hi > plan.seed_lo) {
              const int pos = side_pos_[static_cast<std::size_t>(i)];
              if (pos >= plan.seed_lo && pos < plan.seed_hi) {
                continue;  // already scored as a seed
              }
            }
            if (plan.max_dist != kNoDistanceCut &&
                CalleeDistance(ce, plan.callees) > plan.max_dist) {
              ++pruned[q];
              continue;
            }
            scorer.Push(plan.encoding, column, static_cast<int>(q),
                        static_cast<int>(i));
            ++scored[q];
            if (scorer.Full()) scorer.Flush(sink);
          }
        }
        scorer.Flush(sink);
      });

  // Merge: seeds plus every shard's heap, cut under the strict total order.
  // The ranking is a pure function of the scores, so the result is bitwise
  // identical to the brute-force sweep at any thread count.
  std::uint64_t total_scored = 0, total_pruned = 0;
  for (std::size_t q = 0; q < batch; ++q) {
    std::uint64_t q_scored = seed_scored[q], q_pruned = 0;
    for (std::size_t s = 0; s < shard_slots; ++s) {
      q_scored += shard_tallies[s * batch * 2 + q];
      q_pruned += shard_tallies[s * batch * 2 + batch + q];
    }
    total_scored += q_scored;
    total_pruned += q_pruned;
    if (stats != nullptr) {
      (*stats)[q].scored_pairs = q_scored;
      (*stats)[q].pruned_pairs = q_pruned;
    }
  }
  c_scored_pairs.Add(total_scored);
  c_pruned_pairs.Add(total_pruned);
  for (std::size_t q = 0; q < batch; ++q) {
    std::vector<ScoredRef> merged = std::move(plans[q].seed_heap);
    merged.reserve(merged.size() + keeps[q] * shard_slots);
    for (std::vector<std::vector<ScoredRef>>& locals : shard_top) {
      merged.insert(merged.end(), locals[q].begin(), locals[q].end());
    }
    const auto cut = merged.begin() + static_cast<std::ptrdiff_t>(std::min(
                                          keeps[q], merged.size()));
    std::partial_sort(merged.begin(), cut, merged.end(), RefBefore<ScoredRef>);
    merged.erase(cut, merged.end());
    std::vector<SearchHit>& hits = results[q];
    hits.resize(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      hits[i].index = merged[i].index;
      hits[i].name = entries_[static_cast<std::size_t>(merged[i].index)].name;
      hits[i].score = merged[i].score;
    }
  }
  if (stats != nullptr) {
    const std::uint64_t sweep_nanos = static_cast<std::uint64_t>(
        util::TraceNowNanos() - sweep_start_nanos);
    for (std::size_t q = 0; q < batch; ++q) {
      (*stats)[q].score_nanos = sweep_nanos;
    }
  }
  return results;
}

std::vector<std::vector<SearchHit>> SearchIndex::AboveThresholdOnEncodings(
    const std::vector<nn::Matrix>& encodings, const std::vector<int>& callees,
    const std::vector<double>& thresholds,
    std::vector<QuerySearchStats>* stats) const {
  const std::size_t batch = encodings.size();
  const std::int64_t n = static_cast<std::int64_t>(entries_.size());
  std::vector<std::vector<SearchHit>> results(batch);
  if (batch == 0 || n == 0) return results;
  const std::int64_t sweep_start_nanos = util::TraceNowNanos();
  // The threshold is a static floor, so no seed pass is needed: any entry
  // whose calibration bound falls below it cannot score above it.
  std::vector<QueryPlan> plans(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    plans[q].encoding = encodings[q].data();
    plans[q].callees = callees[q];
    plans[q].max_dist = MaxAllowedDistance(thresholds[q]);
  }
  const int max_shards = threads_;
  const std::size_t shard_slots =
      static_cast<std::size_t>(std::max(1, max_shards));
  std::vector<std::vector<std::vector<ScoredRef>>> shard_hits(
      shard_slots, std::vector<std::vector<ScoredRef>>(batch));
  // Same flat tally layout as TopKOnEncodings: scored row then pruned row,
  // 2*batch slots per shard, stack-backed for the common small case.
  const std::size_t tally_count = shard_slots * batch * 2;
  std::uint64_t stack_tallies[kStackTallySlots] = {};
  std::vector<std::uint64_t> heap_tallies;
  std::uint64_t* shard_tallies = stack_tallies;
  if (tally_count > kStackTallySlots) {
    heap_tallies.assign(tally_count, 0);
    shard_tallies = heap_tallies.data();
  }
  util::ParallelForShards(
      n, max_shards, [&](std::int64_t begin, std::int64_t end, int shard) {
        std::vector<std::vector<ScoredRef>>& locals =
            shard_hits[static_cast<std::size_t>(shard)];
        std::uint64_t* const scored =
            shard_tallies + static_cast<std::size_t>(shard) * batch * 2;
        std::uint64_t* const pruned = scored + batch;
        BlockScorer scorer(model_);
        auto sink = [&](int q, int entry, double m) {
          const std::size_t slot = static_cast<std::size_t>(q);
          const std::int64_t d = CalleeDistance(
              entries_[static_cast<std::size_t>(entry)].callee_count,
              plans[slot].callees);
          const double score = m * CalleeSimFromDistance(d);
          if (!(score < thresholds[slot])) {
            locals[slot].push_back({score, entry});
          }
        };
        for (std::int64_t i = begin; i < end; ++i) {
          const int ce = entries_[static_cast<std::size_t>(i)].callee_count;
          const double* column = packed_.Column(i);
          for (std::size_t q = 0; q < batch; ++q) {
            if (plans[q].max_dist != kNoDistanceCut &&
                CalleeDistance(ce, plans[q].callees) > plans[q].max_dist) {
              ++pruned[q];
              continue;
            }
            scorer.Push(plans[q].encoding, column, static_cast<int>(q),
                        static_cast<int>(i));
            ++scored[q];
            if (scorer.Full()) scorer.Flush(sink);
          }
        }
        scorer.Flush(sink);
      });
  std::uint64_t total_scored = 0, total_pruned = 0;
  for (std::size_t q = 0; q < batch; ++q) {
    std::uint64_t q_scored = 0, q_pruned = 0;
    for (std::size_t s = 0; s < shard_slots; ++s) {
      q_scored += shard_tallies[s * batch * 2 + q];
      q_pruned += shard_tallies[s * batch * 2 + batch + q];
    }
    total_scored += q_scored;
    total_pruned += q_pruned;
    if (stats != nullptr) {
      (*stats)[q].scored_pairs = q_scored;
      (*stats)[q].pruned_pairs = q_pruned;
    }
  }
  c_scored_pairs.Add(total_scored);
  c_pruned_pairs.Add(total_pruned);
  for (std::size_t q = 0; q < batch; ++q) {
    std::vector<ScoredRef> merged;
    for (std::vector<std::vector<ScoredRef>>& locals : shard_hits) {
      merged.insert(merged.end(), locals[q].begin(), locals[q].end());
    }
    std::sort(merged.begin(), merged.end(), RefBefore<ScoredRef>);
    std::vector<SearchHit>& hits = results[q];
    hits.resize(merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      hits[i].index = merged[i].index;
      hits[i].name = entries_[static_cast<std::size_t>(merged[i].index)].name;
      hits[i].score = merged[i].score;
    }
  }
  if (stats != nullptr) {
    const std::uint64_t sweep_nanos = static_cast<std::uint64_t>(
        util::TraceNowNanos() - sweep_start_nanos);
    for (std::size_t q = 0; q < batch; ++q) {
      (*stats)[q].score_nanos = sweep_nanos;
    }
  }
  return results;
}

std::vector<SearchHit> SearchIndex::TopK(const FunctionFeature& query,
                                         int k) const {
  if (k <= 0 || entries_.empty()) return {};
  ASTERIA_SPAN("search");
  util::Timer timer;
  std::vector<nn::Matrix> encodings(1);
  encodings[0] = model_.Encode(query.tree);
  const std::vector<int> callees{query.callee_count};
  const std::vector<std::size_t> keeps{
      std::min<std::size_t>(static_cast<std::size_t>(k), entries_.size())};
  std::vector<SearchHit> hits =
      std::move(TopKOnEncodings(encodings, callees, keeps)[0]);
  h_topk_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  h_topk_size.Observe(hits.size());
  return hits;
}

std::vector<std::vector<SearchHit>> SearchIndex::TopKBatch(
    const std::vector<const FunctionFeature*>& queries,
    const std::vector<int>& ks, std::vector<QuerySearchStats>* stats) const {
  const std::size_t batch = queries.size();
  std::vector<std::vector<SearchHit>> results(batch);
  if (stats != nullptr) {
    stats->clear();
    stats->resize(batch);
  }
  if (batch == 0) return results;
  ASTERIA_SPAN("search");
  util::Timer timer;
  h_topk_batch_queries.Observe(batch);
  // Encode the whole batch first (the expensive per-query step), in
  // parallel across queries. Each slot of `stats` is written by exactly one
  // ParallelFor iteration, so no synchronization is needed.
  std::vector<nn::Matrix> encodings(batch);
  util::ParallelFor(static_cast<std::int64_t>(batch), threads_,
                    [&](std::int64_t q) {
                      ASTERIA_SPAN("encode");
                      const std::int64_t encode_start =
                          util::TraceNowNanos();
                      const std::size_t slot = static_cast<std::size_t>(q);
                      encodings[slot] = model_.Encode(queries[slot]->tree);
                      if (stats != nullptr) {
                        (*stats)[slot].encode_nanos = static_cast<std::uint64_t>(
                            util::TraceNowNanos() - encode_start);
                      }
                    });
  std::vector<int> callees(batch);
  std::vector<std::size_t> keeps(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    callees[q] = queries[q]->callee_count;
    keeps[q] = ks[q] <= 0 ? 0
                          : std::min<std::size_t>(
                                static_cast<std::size_t>(ks[q]),
                                entries_.size());
  }
  results = TopKOnEncodings(encodings, callees, keeps, stats);
  for (std::size_t q = 0; q < batch; ++q) {
    h_topk_size.Observe(results[q].size());
  }
  h_topk_batch_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  return results;
}

std::vector<SearchHit> SearchIndex::AboveThreshold(
    const FunctionFeature& query, double threshold) const {
  ASTERIA_SPAN("search");
  if (entries_.empty()) return {};
  std::vector<nn::Matrix> encodings(1);
  encodings[0] = model_.Encode(query.tree);
  const std::vector<int> callees{query.callee_count};
  const std::vector<double> thresholds{threshold};
  return std::move(
      AboveThresholdOnEncodings(encodings, callees, thresholds)[0]);
}

std::vector<std::vector<SearchHit>> SearchIndex::AboveThresholdBatch(
    const std::vector<const FunctionFeature*>& queries,
    const std::vector<double>& thresholds,
    std::vector<QuerySearchStats>* stats) const {
  const std::size_t batch = queries.size();
  std::vector<std::vector<SearchHit>> results(batch);
  if (stats != nullptr) {
    stats->clear();
    stats->resize(batch);
  }
  if (batch == 0) return results;
  ASTERIA_SPAN("search");
  std::vector<nn::Matrix> encodings(batch);
  util::ParallelFor(static_cast<std::int64_t>(batch), threads_,
                    [&](std::int64_t q) {
                      ASTERIA_SPAN("encode");
                      const std::int64_t encode_start =
                          util::TraceNowNanos();
                      const std::size_t slot = static_cast<std::size_t>(q);
                      encodings[slot] = model_.Encode(queries[slot]->tree);
                      if (stats != nullptr) {
                        (*stats)[slot].encode_nanos = static_cast<std::uint64_t>(
                            util::TraceNowNanos() - encode_start);
                      }
                    });
  std::vector<int> callees(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    callees[q] = queries[q]->callee_count;
  }
  return AboveThresholdOnEncodings(encodings, callees, thresholds, stats);
}

// -- Brute-force reference paths (pre-packing implementation) --------------

std::vector<nn::Matrix> SearchIndex::MaterializeEncodings() const {
  std::vector<nn::Matrix> mats(entries_.size());
  util::ParallelFor(static_cast<std::int64_t>(entries_.size()), threads_,
                    [&](std::int64_t i) {
                      mats[static_cast<std::size_t>(i)] =
                          encoding(static_cast<int>(i));
                    });
  return mats;
}

SearchHit SearchIndex::ScoreEntryReference(const nn::Matrix& query_encoding,
                                           int query_callees,
                                           const nn::Matrix& entry_encoding,
                                           int index) const {
  const EntryMeta& entry = entries_[static_cast<std::size_t>(index)];
  SearchHit hit;
  hit.index = index;
  hit.name = entry.name;
  hit.score = CalibratedSimilarity(
      model_.SimilarityFromEncodings(query_encoding, entry_encoding),
      query_callees, entry.callee_count);
  return hit;
}

std::vector<SearchHit> SearchIndex::ScoredReference(
    const FunctionFeature& query,
    const std::vector<nn::Matrix>& entry_encodings) const {
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  std::vector<SearchHit> hits(entries_.size());
  util::ParallelFor(static_cast<std::int64_t>(entries_.size()), threads_,
                    [&](std::int64_t i) {
                      const std::size_t slot = static_cast<std::size_t>(i);
                      hits[slot] = ScoreEntryReference(
                          query_encoding, query.callee_count,
                          entry_encodings[slot], static_cast<int>(i));
                    });
  return hits;
}

std::vector<SearchHit> SearchIndex::TopKReference(const FunctionFeature& query,
                                                  int k) const {
  if (k <= 0 || entries_.empty()) return {};
  const std::vector<nn::Matrix> mats = MaterializeEncodings();
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), entries_.size());
  // Shard-local top-k exactly as the original brute force: every entry is
  // scored, one pair at a time.
  const int max_shards = threads_;
  std::vector<std::vector<SearchHit>> shard_top(
      static_cast<std::size_t>(std::max(1, max_shards)));
  util::ParallelForShards(
      static_cast<std::int64_t>(entries_.size()), max_shards,
      [&](std::int64_t begin, std::int64_t end, int shard) {
        auto worse = [](const SearchHit& a, const SearchHit& b) {
          return HitBefore(a, b);  // heap top = worst kept hit
        };
        std::vector<SearchHit>& local =
            shard_top[static_cast<std::size_t>(shard)];
        local.reserve(keep + 1);
        for (std::int64_t i = begin; i < end; ++i) {
          SearchHit hit = ScoreEntryReference(
              query_encoding, query.callee_count,
              mats[static_cast<std::size_t>(i)], static_cast<int>(i));
          if (local.size() < keep) {
            local.push_back(std::move(hit));
            std::push_heap(local.begin(), local.end(), worse);
          } else if (HitBefore(hit, local.front())) {
            std::pop_heap(local.begin(), local.end(), worse);
            local.back() = std::move(hit);
            std::push_heap(local.begin(), local.end(), worse);
          }
        }
      });
  std::vector<SearchHit> merged;
  merged.reserve(keep * shard_top.size());
  for (std::vector<SearchHit>& local : shard_top) {
    merged.insert(merged.end(), std::make_move_iterator(local.begin()),
                  std::make_move_iterator(local.end()));
  }
  const auto cut = merged.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(keep, merged.size()));
  std::partial_sort(merged.begin(), cut, merged.end(), HitBefore);
  merged.erase(cut, merged.end());
  return merged;
}

std::vector<SearchHit> SearchIndex::AboveThresholdReference(
    const FunctionFeature& query, double threshold) const {
  const std::vector<nn::Matrix> mats = MaterializeEncodings();
  std::vector<SearchHit> hits = ScoredReference(query, mats);
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const SearchHit& hit) {
                              return hit.score < threshold;
                            }),
             hits.end());
  std::sort(hits.begin(), hits.end(), HitBefore);
  return hits;
}

// -- Snapshots --------------------------------------------------------------

namespace {

void BuildEntryChunk(const std::string& name, int callee_count, int dim,
                     const double* column, store::ChunkBuilder* chunk) {
  chunk->PutString(name);
  chunk->PutI32(callee_count);
  chunk->PutU32(static_cast<std::uint32_t>(dim));
  chunk->PutU32(1);
  chunk->PutF64Array(column, static_cast<std::size_t>(dim));
}

}  // namespace

bool SearchIndex::Save(const std::string& path, std::string* error) const {
  store::Writer writer;
  if (!writer.Open(path, store::kKindIndex, error)) return false;
  store::ChunkBuilder meta;
  meta.PutU32(kSnapshotVersion);
  meta.PutU32(model_.WeightsFingerprint());
  if (!writer.WriteChunk(kTagIndexMeta, meta, error)) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const EntryMeta& entry = entries_[i];
    store::ChunkBuilder chunk;
    BuildEntryChunk(entry.name, entry.callee_count, hidden_dim_,
                    packed_.Column(static_cast<std::int64_t>(i)), &chunk);
    if (!writer.WriteChunk(kTagIndexEntry, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool SearchIndex::AppendTo(const std::string& path, int first_index,
                           std::string* error) const {
  if (first_index < 0 || first_index > size()) {
    *error = "AppendTo: first_index " + std::to_string(first_index) +
             " out of range [0, " + std::to_string(size()) + "]";
    return false;
  }
  // Validate the existing snapshot (structure + model fingerprint) before
  // extending it, so an append can never bury corruption or mix models.
  {
    store::Reader reader;
    if (!reader.Open(path, store::kKindIndex, error)) return false;
    if (reader.chunks().empty() ||
        reader.chunks().front().tag != kTagIndexMeta) {
      *error = path + ": snapshot is missing its leading IMET chunk";
      return false;
    }
    std::vector<std::uint8_t> payload;
    if (!reader.ReadChunk(0, &payload, error)) return false;
    store::ChunkParser parser(payload);
    std::uint32_t version = 0, fingerprint = 0;
    if (!parser.GetU32(&version, error) ||
        !parser.GetU32(&fingerprint, error)) {
      return false;
    }
    if (version != kSnapshotVersion) {
      *error = path + ": unsupported index snapshot version " +
               std::to_string(version);
      return false;
    }
    if (fingerprint != model_.WeightsFingerprint()) {
      *error = path + ": snapshot was encoded by different model weights "
                      "(fingerprint mismatch) — rebuild instead of appending";
      return false;
    }
  }
  store::Writer writer;
  if (!writer.OpenAppend(path, store::kKindIndex, error)) return false;
  for (std::size_t i = static_cast<std::size_t>(first_index);
       i < entries_.size(); ++i) {
    const EntryMeta& entry = entries_[i];
    store::ChunkBuilder chunk;
    BuildEntryChunk(entry.name, entry.callee_count, hidden_dim_,
                    packed_.Column(static_cast<std::int64_t>(i)), &chunk);
    if (!writer.WriteChunk(kTagIndexEntry, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool SearchIndex::LoadEntriesFrom(const std::string& path, StagedEntries* out,
                                  std::string* error) const {
  store::Reader reader;
  if (!reader.Open(path, store::kKindIndex, error)) return false;
  bool saw_meta = false;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const store::ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagIndexMeta && info.tag != kTagIndexEntry) {
      continue;  // unknown chunks are skippable (forward compat)
    }
    if (!reader.ReadChunk(i, &payload, error)) return false;
    store::ChunkParser parser(payload);
    if (info.tag == kTagIndexMeta) {
      std::uint32_t version = 0, fingerprint = 0;
      if (!parser.GetU32(&version, error) ||
          !parser.GetU32(&fingerprint, error)) {
        return false;
      }
      if (version != kSnapshotVersion) {
        *error = path + ": unsupported index snapshot version " +
                 std::to_string(version);
        return false;
      }
      if (fingerprint != model_.WeightsFingerprint()) {
        *error = path + ": snapshot was encoded by different model weights "
                        "(fingerprint mismatch) — scores would be garbage; "
                        "load the matching checkpoint first or rebuild";
        return false;
      }
      saw_meta = true;
      continue;
    }
    if (!saw_meta) {
      *error = path + ": ENTR chunk before IMET metadata";
      return false;
    }
    EntryMeta entry;
    std::uint32_t rows = 0, cols = 0;
    if (!parser.GetString(&entry.name, error) ||
        !parser.GetI32(&entry.callee_count, error) ||
        !parser.GetU32(&rows, error) || !parser.GetU32(&cols, error)) {
      return false;
    }
    // Guard the allocation: a corrupted size field must not turn into a
    // multi-gigabyte resize. The payload itself bounds the element count.
    const std::uint64_t elements =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    if (elements * sizeof(double) > parser.remaining()) {
      *error = path + ": entry '" + entry.name + "' declares " +
               std::to_string(rows) + "x" + std::to_string(cols) +
               " encoding but only " + std::to_string(parser.remaining()) +
               " payload bytes remain — corrupted entry";
      return false;
    }
    // The model only produces hidden_dim x 1 encodings; anything else is a
    // corrupted entry or a snapshot from an incompatible build, and scoring
    // against it would read out of bounds or produce garbage.
    if (static_cast<int>(rows) != hidden_dim_ || cols != 1) {
      *error = path + ": entry '" + entry.name + "' has encoding shape " +
               std::to_string(rows) + "x" + std::to_string(cols) +
               " but this model produces " + std::to_string(hidden_dim_) +
               "x1 encodings";
      return false;
    }
    // Stage the column straight into packed (column-contiguous) form.
    const std::size_t base = out->columns.size();
    out->columns.resize(base + static_cast<std::size_t>(hidden_dim_));
    if (!parser.GetF64Array(out->columns.data() + base,
                            static_cast<std::size_t>(hidden_dim_), error)) {
      return false;
    }
    if (!AllFinite(out->columns.data() + base,
                   static_cast<std::size_t>(hidden_dim_))) {
      *error = path + ": entry '" + entry.name +
               "' encoding contains non-finite values (NaN/Inf) — corrupted "
               "snapshot";
      return false;
    }
    out->meta.push_back(std::move(entry));
  }
  if (!saw_meta) {
    *error = path + ": missing IMET metadata chunk";
    return false;
  }
  return true;
}

void SearchIndex::CommitStaged(StagedEntries&& staged) {
  entries_.reserve(entries_.size() + staged.meta.size());
  for (std::size_t i = 0; i < staged.meta.size(); ++i) {
    std::memcpy(packed_.AppendColumn(),
                staged.columns.data() + i * static_cast<std::size_t>(hidden_dim_),
                static_cast<std::size_t>(hidden_dim_) * sizeof(double));
    entries_.push_back(std::move(staged.meta[i]));
  }
  MarkSideIndexDirty();
}

bool SearchIndex::Load(const std::string& path, std::string* error) {
  StagedEntries staged;
  if (!LoadEntriesFrom(path, &staged, error)) return false;
  entries_.clear();
  packed_.Reset(hidden_dim_);
  CommitStaged(std::move(staged));
  return true;
}

bool SearchIndex::LoadAppend(const std::string& path, std::string* error) {
  // Stage into scratch buffers so a mid-file failure never leaves the
  // index holding a partial shard.
  StagedEntries staged;
  if (!LoadEntriesFrom(path, &staged, error)) return false;
  CommitStaged(std::move(staged));
  return true;
}

bool SearchIndex::OpenSharded(const std::string& manifest_path,
                              std::string* error) {
  store::ShardManifest manifest;
  if (!LoadManifest(&manifest, manifest_path, error)) return false;
  if (manifest.model_fingerprint != model_.WeightsFingerprint()) {
    *error = manifest_path +
             ": manifest was published for different model weights "
             "(fingerprint mismatch) — load the matching checkpoint or "
             "re-ingest";
    return false;
  }
  const std::string dir = store::DirOf(manifest_path);
  StagedEntries staged;
  for (const store::ShardRecord& shard : manifest.shards) {
    const std::size_t before = staged.meta.size();
    if (!LoadEntriesFrom(dir + "/" + shard.file, &staged, error)) {
      return false;
    }
    if (staged.meta.size() - before != shard.entries) {
      *error = manifest_path + ": shard '" + shard.file + "' holds " +
               std::to_string(staged.meta.size() - before) +
               " entries but the manifest records " +
               std::to_string(shard.entries) +
               " — shard and manifest are out of sync";
      return false;
    }
  }
  entries_.clear();
  packed_.Reset(hidden_dim_);
  CommitStaged(std::move(staged));
  return true;
}

bool SearchIndex::Open(const std::string& path, std::string* error) {
  std::uint32_t kind = 0;
  {
    store::Reader reader;
    if (!reader.Open(path, 0, error)) return false;
    kind = reader.kind();
  }
  if (kind == store::kKindIndex) return Load(path, error);
  if (kind == store::kKindManifest) return OpenSharded(path, error);
  *error = path + ": " + store::FourCcName(kind) +
           " container is neither an INDX snapshot nor a MANI manifest";
  return false;
}

}  // namespace asteria::core
