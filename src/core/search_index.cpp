#include "core/search_index.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "store/container.h"
#include "store/manifest.h"
#include "util/failpoint.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace asteria::core {

namespace {

// Injects a per-feature encoding failure into AddAll (isolation testing).
util::Failpoint fp_search_encode("search.encode");

// Latency histograms ("*_nanos"): deterministic counts, machine-dependent
// bucket placement. TopK result sizes are fully deterministic.
util::Histogram h_add_nanos("search.add_nanos");
util::Histogram h_topk_nanos("search.topk_nanos");
util::Histogram h_topk_size("search.topk_size");
// Batch-shaped metrics: observation counts depend on how requests coalesce
// (i.e. on timing), unlike the per-query histograms above, so determinism
// gates (scripts/check_serve.sh) filter "*batch*" histograms wholesale.
util::Histogram h_topk_batch_queries("search.topk_batch_queries");
util::Histogram h_topk_batch_nanos("search.topk_batch_nanos");

bool AllFinite(const nn::Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

// Index-snapshot chunk tags and schema version (see docs/FORMATS.md).
constexpr std::uint32_t kTagIndexMeta = store::FourCc('I', 'M', 'E', 'T');
constexpr std::uint32_t kTagIndexEntry = store::FourCc('E', 'N', 'T', 'R');
constexpr std::uint32_t kSnapshotVersion = 1;

// Strict total order on hits: score descending, insertion index ascending.
// The index tiebreak makes merge results independent of the shard count.
bool HitBefore(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

int SearchIndex::Add(const FunctionFeature& feature) {
  ASTERIA_SPAN("encode");
  util::Timer timer;
  Entry entry;
  entry.name = feature.name;
  entry.encoding = model_.Encode(feature.tree);
  entry.callee_count = feature.callee_count;
  entries_.push_back(std::move(entry));
  h_add_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  return static_cast<int>(entries_.size()) - 1;
}

int SearchIndex::AddEncoded(const std::string& name,
                            const nn::Matrix& encoding, int callee_count) {
  // Same shape/finiteness gate as Load: a foreign or corrupted encoding
  // must be rejected here, not discovered as garbage scores later.
  const int hidden_dim = model_.config().siamese.encoder.hidden_dim;
  if (encoding.rows() != hidden_dim || encoding.cols() != 1 ||
      !AllFinite(encoding)) {
    return -1;
  }
  Entry entry;
  entry.name = name;
  entry.encoding = encoding;
  entry.callee_count = callee_count;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

util::PipelineReport SearchIndex::AddAll(
    const std::vector<FunctionFeature>& features) {
  util::PipelineReport report;
  report.stage = "index-encode";
  // Encode into staging slots so a failing feature never leaves a hole in
  // entries_. Each worker writes only its own slot; the sequential compact
  // pass below makes the surviving order (and the report) thread-count
  // independent.
  std::vector<Entry> staged(features.size());
  enum : char { kFailed = 0, kOk = 1, kSkipped = 2 };
  std::vector<char> outcome(features.size(), kFailed);
  std::vector<std::string> failure(features.size());
  util::ParallelFor(
      static_cast<std::int64_t>(features.size()), threads_,
      [&](std::int64_t i) {
        ASTERIA_SPAN("encode");
        const std::size_t slot = static_cast<std::size_t>(i);
        const FunctionFeature& feature = features[slot];
        if (feature.tree.empty()) {
          outcome[slot] = kSkipped;
          failure[slot] = feature.name + ": empty AST";
          return;
        }
        if (fp_search_encode.ShouldFail()) {
          failure[slot] =
              feature.name + ": injected failure (failpoint search.encode)";
          return;
        }
        try {
          Entry& entry = staged[slot];
          entry.name = feature.name;
          entry.encoding = model_.Encode(feature.tree);
          entry.callee_count = feature.callee_count;
          if (!AllFinite(entry.encoding)) {
            failure[slot] = feature.name + ": encoding has non-finite values";
            return;
          }
          outcome[slot] = kOk;
        } catch (const std::exception& e) {
          failure[slot] = feature.name + ": " + e.what();
        }
      });
  entries_.reserve(entries_.size() + features.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    switch (outcome[i]) {
      case kOk:
        entries_.push_back(std::move(staged[i]));
        report.AddOk();
        break;
      case kSkipped:
        report.AddSkipped(failure[i]);
        break;
      default:
        report.AddFailed(failure[i]);
        break;
    }
  }
  util::PublishPipelineReport(report);
  return report;
}

SearchHit SearchIndex::ScoreEntry(const nn::Matrix& query_encoding,
                                  int query_callees, int index) const {
  const Entry& entry = entries_[static_cast<std::size_t>(index)];
  SearchHit hit;
  hit.index = index;
  hit.name = entry.name;
  hit.score = CalibratedSimilarity(
      model_.SimilarityFromEncodings(query_encoding, entry.encoding),
      query_callees, entry.callee_count);
  return hit;
}

std::vector<SearchHit> SearchIndex::Scored(
    const FunctionFeature& query) const {
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  std::vector<SearchHit> hits(entries_.size());
  util::ParallelFor(static_cast<std::int64_t>(entries_.size()), threads_,
                    [&](std::int64_t i) {
                      hits[static_cast<std::size_t>(i)] = ScoreEntry(
                          query_encoding, query.callee_count,
                          static_cast<int>(i));
                    });
  return hits;
}

std::vector<SearchHit> SearchIndex::TopK(const FunctionFeature& query,
                                         int k) const {
  if (k <= 0 || entries_.empty()) return {};
  ASTERIA_SPAN("search");
  util::Timer timer;
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), entries_.size());
  // Shard-local top-k: each shard scores its contiguous entry range into a
  // max-`keep` heap ordered worst-hit-first, then the shard winners are
  // merged. Every comparison uses the strict HitBefore order, so the final
  // ranking is a pure function of the scores — not of the shard count.
  const int max_shards = threads_;
  std::vector<std::vector<SearchHit>> shard_top(
      static_cast<std::size_t>(std::max(1, max_shards)));
  util::ParallelForShards(
      static_cast<std::int64_t>(entries_.size()), max_shards,
      [&](std::int64_t begin, std::int64_t end, int shard) {
        auto worse = [](const SearchHit& a, const SearchHit& b) {
          return HitBefore(a, b);  // heap top = worst kept hit
        };
        std::vector<SearchHit>& local = shard_top[static_cast<std::size_t>(shard)];
        local.reserve(keep + 1);
        for (std::int64_t i = begin; i < end; ++i) {
          SearchHit hit = ScoreEntry(query_encoding, query.callee_count,
                                     static_cast<int>(i));
          if (local.size() < keep) {
            local.push_back(std::move(hit));
            std::push_heap(local.begin(), local.end(), worse);
          } else if (HitBefore(hit, local.front())) {
            std::pop_heap(local.begin(), local.end(), worse);
            local.back() = std::move(hit);
            std::push_heap(local.begin(), local.end(), worse);
          }
        }
      });
  std::vector<SearchHit> merged;
  merged.reserve(keep * shard_top.size());
  for (std::vector<SearchHit>& local : shard_top) {
    merged.insert(merged.end(), std::make_move_iterator(local.begin()),
                  std::make_move_iterator(local.end()));
  }
  const auto cut = merged.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(keep, merged.size()));
  std::partial_sort(merged.begin(), cut, merged.end(), HitBefore);
  merged.erase(cut, merged.end());
  h_topk_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  h_topk_size.Observe(merged.size());
  return merged;
}

std::vector<std::vector<SearchHit>> SearchIndex::TopKBatch(
    const std::vector<const FunctionFeature*>& queries,
    const std::vector<int>& ks) const {
  const std::size_t batch = queries.size();
  std::vector<std::vector<SearchHit>> results(batch);
  if (batch == 0) return results;
  ASTERIA_SPAN("search");
  util::Timer timer;
  h_topk_batch_queries.Observe(batch);
  // Encode the whole batch first (the expensive per-query step), in
  // parallel across queries.
  std::vector<nn::Matrix> encodings(batch);
  util::ParallelFor(static_cast<std::int64_t>(batch), threads_,
                    [&](std::int64_t q) {
                      ASTERIA_SPAN("encode");
                      const std::size_t slot = static_cast<std::size_t>(q);
                      encodings[slot] = model_.Encode(queries[slot]->tree);
                    });
  std::vector<std::size_t> keeps(batch);
  for (std::size_t q = 0; q < batch; ++q) {
    keeps[q] = ks[q] <= 0 ? 0
                          : std::min<std::size_t>(
                                static_cast<std::size_t>(ks[q]),
                                entries_.size());
  }
  // One sweep over the stored entries scores every query in the batch
  // against each entry while it is hot, maintaining a heap per (shard,
  // query) — the same shard-local top-k scheme as TopK, vectorized over
  // the batch dimension.
  const int max_shards = threads_;
  const std::size_t shard_slots =
      static_cast<std::size_t>(std::max(1, max_shards));
  std::vector<std::vector<std::vector<SearchHit>>> shard_top(
      shard_slots, std::vector<std::vector<SearchHit>>(batch));
  util::ParallelForShards(
      static_cast<std::int64_t>(entries_.size()), max_shards,
      [&](std::int64_t begin, std::int64_t end, int shard) {
        auto worse = [](const SearchHit& a, const SearchHit& b) {
          return HitBefore(a, b);  // heap top = worst kept hit
        };
        std::vector<std::vector<SearchHit>>& locals =
            shard_top[static_cast<std::size_t>(shard)];
        for (std::size_t q = 0; q < batch; ++q) {
          locals[q].reserve(keeps[q] + 1);
        }
        for (std::int64_t i = begin; i < end; ++i) {
          for (std::size_t q = 0; q < batch; ++q) {
            if (keeps[q] == 0) continue;
            SearchHit hit = ScoreEntry(encodings[q],
                                       queries[q]->callee_count,
                                       static_cast<int>(i));
            std::vector<SearchHit>& local = locals[q];
            if (local.size() < keeps[q]) {
              local.push_back(std::move(hit));
              std::push_heap(local.begin(), local.end(), worse);
            } else if (HitBefore(hit, local.front())) {
              std::pop_heap(local.begin(), local.end(), worse);
              local.back() = std::move(hit);
              std::push_heap(local.begin(), local.end(), worse);
            }
          }
        }
      });
  for (std::size_t q = 0; q < batch; ++q) {
    std::vector<SearchHit> merged;
    merged.reserve(keeps[q] * shard_slots);
    for (std::vector<std::vector<SearchHit>>& locals : shard_top) {
      merged.insert(merged.end(),
                    std::make_move_iterator(locals[q].begin()),
                    std::make_move_iterator(locals[q].end()));
    }
    const auto cut = merged.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(keeps[q], merged.size()));
    std::partial_sort(merged.begin(), cut, merged.end(), HitBefore);
    merged.erase(cut, merged.end());
    h_topk_size.Observe(merged.size());
    results[q] = std::move(merged);
  }
  h_topk_batch_nanos.Observe(static_cast<std::uint64_t>(timer.ElapsedNanos()));
  return results;
}

namespace {

void BuildEntryChunk(const std::string& name, int callee_count,
                     const nn::Matrix& encoding, store::ChunkBuilder* chunk) {
  chunk->PutString(name);
  chunk->PutI32(callee_count);
  chunk->PutU32(static_cast<std::uint32_t>(encoding.rows()));
  chunk->PutU32(static_cast<std::uint32_t>(encoding.cols()));
  chunk->PutF64Array(encoding.data(), encoding.size());
}

}  // namespace

bool SearchIndex::Save(const std::string& path, std::string* error) const {
  store::Writer writer;
  if (!writer.Open(path, store::kKindIndex, error)) return false;
  store::ChunkBuilder meta;
  meta.PutU32(kSnapshotVersion);
  meta.PutU32(model_.WeightsFingerprint());
  if (!writer.WriteChunk(kTagIndexMeta, meta, error)) return false;
  for (const Entry& entry : entries_) {
    store::ChunkBuilder chunk;
    BuildEntryChunk(entry.name, entry.callee_count, entry.encoding, &chunk);
    if (!writer.WriteChunk(kTagIndexEntry, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool SearchIndex::AppendTo(const std::string& path, int first_index,
                           std::string* error) const {
  if (first_index < 0 || first_index > size()) {
    *error = "AppendTo: first_index " + std::to_string(first_index) +
             " out of range [0, " + std::to_string(size()) + "]";
    return false;
  }
  // Validate the existing snapshot (structure + model fingerprint) before
  // extending it, so an append can never bury corruption or mix models.
  {
    store::Reader reader;
    if (!reader.Open(path, store::kKindIndex, error)) return false;
    if (reader.chunks().empty() ||
        reader.chunks().front().tag != kTagIndexMeta) {
      *error = path + ": snapshot is missing its leading IMET chunk";
      return false;
    }
    std::vector<std::uint8_t> payload;
    if (!reader.ReadChunk(0, &payload, error)) return false;
    store::ChunkParser parser(payload);
    std::uint32_t version = 0, fingerprint = 0;
    if (!parser.GetU32(&version, error) ||
        !parser.GetU32(&fingerprint, error)) {
      return false;
    }
    if (version != kSnapshotVersion) {
      *error = path + ": unsupported index snapshot version " +
               std::to_string(version);
      return false;
    }
    if (fingerprint != model_.WeightsFingerprint()) {
      *error = path + ": snapshot was encoded by different model weights "
                      "(fingerprint mismatch) — rebuild instead of appending";
      return false;
    }
  }
  store::Writer writer;
  if (!writer.OpenAppend(path, store::kKindIndex, error)) return false;
  for (std::size_t i = static_cast<std::size_t>(first_index);
       i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    store::ChunkBuilder chunk;
    BuildEntryChunk(entry.name, entry.callee_count, entry.encoding, &chunk);
    if (!writer.WriteChunk(kTagIndexEntry, chunk, error)) return false;
  }
  return writer.Finish(error);
}

bool SearchIndex::LoadEntriesFrom(const std::string& path,
                                  std::vector<Entry>* out,
                                  std::string* error) const {
  store::Reader reader;
  if (!reader.Open(path, store::kKindIndex, error)) return false;
  bool saw_meta = false;
  std::vector<Entry>& loaded = *out;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const store::ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagIndexMeta && info.tag != kTagIndexEntry) {
      continue;  // unknown chunks are skippable (forward compat)
    }
    if (!reader.ReadChunk(i, &payload, error)) return false;
    store::ChunkParser parser(payload);
    if (info.tag == kTagIndexMeta) {
      std::uint32_t version = 0, fingerprint = 0;
      if (!parser.GetU32(&version, error) ||
          !parser.GetU32(&fingerprint, error)) {
        return false;
      }
      if (version != kSnapshotVersion) {
        *error = path + ": unsupported index snapshot version " +
                 std::to_string(version);
        return false;
      }
      if (fingerprint != model_.WeightsFingerprint()) {
        *error = path + ": snapshot was encoded by different model weights "
                        "(fingerprint mismatch) — scores would be garbage; "
                        "load the matching checkpoint first or rebuild";
        return false;
      }
      saw_meta = true;
      continue;
    }
    if (!saw_meta) {
      *error = path + ": ENTR chunk before IMET metadata";
      return false;
    }
    Entry entry;
    std::uint32_t rows = 0, cols = 0;
    if (!parser.GetString(&entry.name, error) ||
        !parser.GetI32(&entry.callee_count, error) ||
        !parser.GetU32(&rows, error) || !parser.GetU32(&cols, error)) {
      return false;
    }
    // Guard the allocation: a corrupted size field must not turn into a
    // multi-gigabyte resize. The payload itself bounds the element count.
    const std::uint64_t elements =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    if (elements * sizeof(double) > parser.remaining()) {
      *error = path + ": entry '" + entry.name + "' declares " +
               std::to_string(rows) + "x" + std::to_string(cols) +
               " encoding but only " + std::to_string(parser.remaining()) +
               " payload bytes remain — corrupted entry";
      return false;
    }
    // The model only produces hidden_dim x 1 encodings; anything else is a
    // corrupted entry or a snapshot from an incompatible build, and scoring
    // against it would read out of bounds or produce garbage.
    const int hidden_dim = model_.config().siamese.encoder.hidden_dim;
    if (static_cast<int>(rows) != hidden_dim || cols != 1) {
      *error = path + ": entry '" + entry.name + "' has encoding shape " +
               std::to_string(rows) + "x" + std::to_string(cols) +
               " but this model produces " + std::to_string(hidden_dim) +
               "x1 encodings";
      return false;
    }
    entry.encoding = nn::Matrix(static_cast<int>(rows), static_cast<int>(cols));
    if (!parser.GetF64Array(entry.encoding.data(), entry.encoding.size(),
                            error)) {
      return false;
    }
    if (!AllFinite(entry.encoding)) {
      *error = path + ": entry '" + entry.name +
               "' encoding contains non-finite values (NaN/Inf) — corrupted "
               "snapshot";
      return false;
    }
    loaded.push_back(std::move(entry));
  }
  if (!saw_meta) {
    *error = path + ": missing IMET metadata chunk";
    return false;
  }
  return true;
}

bool SearchIndex::Load(const std::string& path, std::string* error) {
  std::vector<Entry> loaded;
  if (!LoadEntriesFrom(path, &loaded, error)) return false;
  entries_ = std::move(loaded);
  return true;
}

bool SearchIndex::LoadAppend(const std::string& path, std::string* error) {
  // Stage into a scratch vector so a mid-file failure never leaves the
  // index holding a partial shard.
  std::vector<Entry> loaded;
  if (!LoadEntriesFrom(path, &loaded, error)) return false;
  entries_.insert(entries_.end(), std::make_move_iterator(loaded.begin()),
                  std::make_move_iterator(loaded.end()));
  return true;
}

bool SearchIndex::OpenSharded(const std::string& manifest_path,
                              std::string* error) {
  store::ShardManifest manifest;
  if (!LoadManifest(&manifest, manifest_path, error)) return false;
  if (manifest.model_fingerprint != model_.WeightsFingerprint()) {
    *error = manifest_path +
             ": manifest was published for different model weights "
             "(fingerprint mismatch) — load the matching checkpoint or "
             "re-ingest";
    return false;
  }
  const std::string dir = store::DirOf(manifest_path);
  std::vector<Entry> loaded;
  for (const store::ShardRecord& shard : manifest.shards) {
    const std::size_t before = loaded.size();
    if (!LoadEntriesFrom(dir + "/" + shard.file, &loaded, error)) {
      return false;
    }
    if (loaded.size() - before != shard.entries) {
      *error = manifest_path + ": shard '" + shard.file + "' holds " +
               std::to_string(loaded.size() - before) +
               " entries but the manifest records " +
               std::to_string(shard.entries) +
               " — shard and manifest are out of sync";
      return false;
    }
  }
  entries_ = std::move(loaded);
  return true;
}

bool SearchIndex::Open(const std::string& path, std::string* error) {
  std::uint32_t kind = 0;
  {
    store::Reader reader;
    if (!reader.Open(path, 0, error)) return false;
    kind = reader.kind();
  }
  if (kind == store::kKindIndex) return Load(path, error);
  if (kind == store::kKindManifest) return OpenSharded(path, error);
  *error = path + ": " + store::FourCcName(kind) +
           " container is neither an INDX snapshot nor a MANI manifest";
  return false;
}

std::vector<SearchHit> SearchIndex::AboveThreshold(
    const FunctionFeature& query, double threshold) const {
  ASTERIA_SPAN("search");
  std::vector<SearchHit> hits = Scored(query);
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const SearchHit& hit) {
                              return hit.score < threshold;
                            }),
             hits.end());
  std::sort(hits.begin(), hits.end(), HitBefore);
  return hits;
}

}  // namespace asteria::core
