#include "core/search_index.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace asteria::core {

namespace {

// Strict total order on hits: score descending, insertion index ascending.
// The index tiebreak makes merge results independent of the shard count.
bool HitBefore(const SearchHit& a, const SearchHit& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

}  // namespace

int SearchIndex::Add(const FunctionFeature& feature) {
  Entry entry;
  entry.name = feature.name;
  entry.encoding = model_.Encode(feature.tree);
  entry.callee_count = feature.callee_count;
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

void SearchIndex::AddAll(const std::vector<FunctionFeature>& features) {
  const std::size_t base = entries_.size();
  entries_.resize(base + features.size());
  // Each worker writes only the entry slot of its own index, so the stored
  // order is the input order regardless of scheduling.
  util::ParallelFor(
      static_cast<std::int64_t>(features.size()), threads_,
      [&](std::int64_t i) {
        const FunctionFeature& feature = features[static_cast<std::size_t>(i)];
        Entry& entry = entries_[base + static_cast<std::size_t>(i)];
        entry.name = feature.name;
        entry.encoding = model_.Encode(feature.tree);
        entry.callee_count = feature.callee_count;
      });
}

SearchHit SearchIndex::ScoreEntry(const nn::Matrix& query_encoding,
                                  int query_callees, int index) const {
  const Entry& entry = entries_[static_cast<std::size_t>(index)];
  SearchHit hit;
  hit.index = index;
  hit.name = entry.name;
  hit.score = CalibratedSimilarity(
      model_.SimilarityFromEncodings(query_encoding, entry.encoding),
      query_callees, entry.callee_count);
  return hit;
}

std::vector<SearchHit> SearchIndex::Scored(
    const FunctionFeature& query) const {
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  std::vector<SearchHit> hits(entries_.size());
  util::ParallelFor(static_cast<std::int64_t>(entries_.size()), threads_,
                    [&](std::int64_t i) {
                      hits[static_cast<std::size_t>(i)] = ScoreEntry(
                          query_encoding, query.callee_count,
                          static_cast<int>(i));
                    });
  return hits;
}

std::vector<SearchHit> SearchIndex::TopK(const FunctionFeature& query,
                                         int k) const {
  if (k <= 0 || entries_.empty()) return {};
  const nn::Matrix query_encoding = model_.Encode(query.tree);
  const std::size_t keep =
      std::min<std::size_t>(static_cast<std::size_t>(k), entries_.size());
  // Shard-local top-k: each shard scores its contiguous entry range into a
  // max-`keep` heap ordered worst-hit-first, then the shard winners are
  // merged. Every comparison uses the strict HitBefore order, so the final
  // ranking is a pure function of the scores — not of the shard count.
  const int max_shards = threads_;
  std::vector<std::vector<SearchHit>> shard_top(
      static_cast<std::size_t>(std::max(1, max_shards)));
  util::ParallelForShards(
      static_cast<std::int64_t>(entries_.size()), max_shards,
      [&](std::int64_t begin, std::int64_t end, int shard) {
        auto worse = [](const SearchHit& a, const SearchHit& b) {
          return HitBefore(a, b);  // heap top = worst kept hit
        };
        std::vector<SearchHit>& local = shard_top[static_cast<std::size_t>(shard)];
        local.reserve(keep + 1);
        for (std::int64_t i = begin; i < end; ++i) {
          SearchHit hit = ScoreEntry(query_encoding, query.callee_count,
                                     static_cast<int>(i));
          if (local.size() < keep) {
            local.push_back(std::move(hit));
            std::push_heap(local.begin(), local.end(), worse);
          } else if (HitBefore(hit, local.front())) {
            std::pop_heap(local.begin(), local.end(), worse);
            local.back() = std::move(hit);
            std::push_heap(local.begin(), local.end(), worse);
          }
        }
      });
  std::vector<SearchHit> merged;
  merged.reserve(keep * shard_top.size());
  for (std::vector<SearchHit>& local : shard_top) {
    merged.insert(merged.end(), std::make_move_iterator(local.begin()),
                  std::make_move_iterator(local.end()));
  }
  const auto cut = merged.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(keep, merged.size()));
  std::partial_sort(merged.begin(), cut, merged.end(), HitBefore);
  merged.erase(cut, merged.end());
  return merged;
}

std::vector<SearchHit> SearchIndex::AboveThreshold(
    const FunctionFeature& query, double threshold) const {
  std::vector<SearchHit> hits = Scored(query);
  hits.erase(std::remove_if(hits.begin(), hits.end(),
                            [&](const SearchHit& hit) {
                              return hit.score < threshold;
                            }),
             hits.end());
  std::sort(hits.begin(), hits.end(), HitBefore);
  return hits;
}

}  // namespace asteria::core
