#include "core/siamese.h"

#include <cmath>
#include <limits>

#include "store/checkpoint.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"

namespace asteria::core {

using nn::Matrix;
using nn::Tape;
using nn::Var;

namespace {

// Forces a NaN loss on one pair, exercising the numerics guard (sample
// skipped, no weight update, training continues).
util::Failpoint fp_train_loss("train.loss");

// One striped relaxed increment per encode — cheap enough for the fused
// hot path (overhead measured in docs/OBSERVABILITY.md).
util::Counter c_encode_fast("encode.fast");
util::Counter c_encode_tape("encode.tape");
util::Counter c_weight_refresh("encode.weight_refresh");

}  // namespace

SiameseModel::SiameseModel(const SiameseConfig& config, util::Rng& rng)
    : config_(config),
      encoder_(config.encoder, &store_, rng),
      optimizer_(config.learning_rate) {
  if (config_.head == SiameseHead::kClassification) {
    w_out_ = store_.CreateXavier("siamese.W",
                                 2 * config_.encoder.hidden_dim, 2, rng);
  }
}

Var SiameseModel::Head(Tape* tape, Var e1, Var e2) const {
  if (config_.head == SiameseHead::kRegression) {
    return tape->Cosine(e1, e2);
  }
  // eq. (8): softmax(sigmoid(cat(|e1-e2|, e1.e2))^T W)
  const Var diff = tape->Abs(tape->Sub(e1, e2));
  const Var prod = tape->Hadamard(e1, e2);
  const Var features = tape->Sigmoid(tape->ConcatRows(diff, prod));
  const Var logits = tape->MatMulTransA(tape->Param(w_out_), features);
  return tape->Softmax(logits);  // [dissimilarity, similarity]
}

double SiameseModel::Similarity(const ast::BinaryAst& a,
                                const ast::BinaryAst& b) const {
  if (a.empty() || b.empty()) return 0.0;
  Tape tape;
  const Var e1 = encoder_.Encode(&tape, a);
  const Var e2 = encoder_.Encode(&tape, b);
  const Var out = Head(&tape, e1, e2);
  const Matrix& value = tape.value(out);
  if (config_.head == SiameseHead::kRegression) {
    return 0.5 * (value(0, 0) + 1.0);  // map cos [-1,1] -> [0,1]
  }
  return value(1, 0);
}

Matrix SiameseModel::Encode(const ast::BinaryAst& tree) const {
  if (!config_.use_fast_encoder) {
    c_encode_tape.Increment();
    return encoder_.EncodeVector(tree);
  }
  EnsureFastEncoderFresh();
  c_encode_fast.Increment();
  return fast_->EncodeVector(tree);
}

void SiameseModel::EnsureFastEncoderFresh() const {
  if (!fast_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(fast_mutex_);
  if (!fast_dirty_.load(std::memory_order_relaxed)) return;
  if (fast_ == nullptr) {
    fast_ = std::make_unique<TreeLstmFastEncoder>(config_.encoder, store_,
                                                  encoder_.prefix());
  } else {
    fast_->RefreshFrom(store_);
  }
  c_weight_refresh.Increment();
  fast_dirty_.store(false, std::memory_order_release);
}

double SiameseModel::SimilarityFromEncodings(const Matrix& a,
                                             const Matrix& b) const {
  if (config_.head == SiameseHead::kRegression) {
    const double denom = a.Norm() * b.Norm();
    if (denom < 1e-12) return 0.0;
    return 0.5 * (Dot(a, b) / denom + 1.0);
  }
  // Plain-matrix replay of eq. (8) — this is the 10^-9-second online path.
  const int h = a.rows();
  Matrix features(2 * h, 1);
  for (int r = 0; r < h; ++r) {
    features(r, 0) =
        1.0 / (1.0 + std::exp(-std::fabs(a(r, 0) - b(r, 0))));
    features(h + r, 0) =
        1.0 / (1.0 + std::exp(-(a(r, 0) * b(r, 0))));
  }
  double logit0 = 0.0, logit1 = 0.0;
  const Matrix& w = w_out_->value;
  for (int r = 0; r < 2 * h; ++r) {
    logit0 += w(r, 0) * features(r, 0);
    logit1 += w(r, 1) * features(r, 0);
  }
  const double max_logit = std::max(logit0, logit1);
  const double z0 = std::exp(logit0 - max_logit);
  const double z1 = std::exp(logit1 - max_logit);
  return z1 / (z0 + z1);
}

void SiameseModel::SimilarityFromEncodingsBatch(
    const double* const* a, const double* const* b, int count, double* out,
    EncodingScoreScratch* scratch) const {
  if (count <= 0) return;
  const int h = config_.encoder.hidden_dim;
  if (config_.head == SiameseHead::kRegression) {
    // No GEMM structure here (every pair has its own left operand); the
    // batch interface still amortizes call overhead. The per-pair ops are
    // exactly SimilarityFromEncodings': Norm (ascending sum of squares,
    // then sqrt), Dot (ascending), and the same affine map.
    for (int p = 0; p < count; ++p) {
      const double* x = a[p];
      const double* y = b[p];
      double nx = 0.0, ny = 0.0;
      for (int r = 0; r < h; ++r) nx += x[r] * x[r];
      for (int r = 0; r < h; ++r) ny += y[r] * y[r];
      const double denom = std::sqrt(nx) * std::sqrt(ny);
      if (denom < 1e-12) {
        out[p] = 0.0;
        continue;
      }
      double dot = 0.0;
      for (int r = 0; r < h; ++r) dot += x[r] * y[r];
      out[p] = 0.5 * (dot / denom + 1.0);
    }
    return;
  }
  // Classification head, eq. (8): build the (count x 2h) feature matrix for
  // the whole block — row p = sigmoid(cat(|a_p - b_p|, a_p . b_p)) — then
  // one blocked GemmRaw against W (2h x 2) yields every pair's logits. Each
  // logit accumulates over ascending feature rows from 0.0, the same
  // association as the scalar loop in SimilarityFromEncodings.
  const std::size_t stride = 2 * static_cast<std::size_t>(h);
  scratch->features.resize(static_cast<std::size_t>(count) * stride);
  scratch->logits.resize(static_cast<std::size_t>(count) * 2);
  for (int p = 0; p < count; ++p) {
    const double* x = a[p];
    const double* y = b[p];
    double* f = scratch->features.data() + static_cast<std::size_t>(p) * stride;
    for (int r = 0; r < h; ++r) {
      f[r] = 1.0 / (1.0 + std::exp(-std::fabs(x[r] - y[r])));
      f[h + r] = 1.0 / (1.0 + std::exp(-(x[r] * y[r])));
    }
  }
  const Matrix& w = w_out_->value;  // (2h x 2) row-major
  nn::Matrix::GemmRaw(scratch->features.data(), w.data(),
                      scratch->logits.data(), count, 2 * h, 2);
  for (int p = 0; p < count; ++p) {
    const double logit0 = scratch->logits[static_cast<std::size_t>(p) * 2];
    const double logit1 = scratch->logits[static_cast<std::size_t>(p) * 2 + 1];
    const double max_logit = std::max(logit0, logit1);
    const double z0 = std::exp(logit0 - max_logit);
    const double z1 = std::exp(logit1 - max_logit);
    out[p] = z1 / (z0 + z1);
  }
}

double SiameseModel::TrainPair(const ast::BinaryAst& a,
                               const ast::BinaryAst& b, bool homologous) {
  if (a.empty() || b.empty()) return 0.0;
  Tape& tape = train_tape_;
  tape.Clear();  // keeps capacity from previous examples
  const Var e1 = encoder_.Encode(&tape, a);
  const Var e2 = encoder_.Encode(&tape, b);
  const Var out = Head(&tape, e1, e2);
  Var loss;
  if (config_.head == SiameseHead::kRegression) {
    loss = tape.SquaredErrorToConst(out, homologous ? 1.0 : -1.0);
  } else {
    Matrix target(2, 1);
    target(0, 0) = homologous ? 0.0 : 1.0;
    target(1, 0) = homologous ? 1.0 : 0.0;
    loss = tape.BceLoss(out, target);
  }
  double loss_value = tape.value(loss)(0, 0);
  if (fp_train_loss.ShouldFail()) {
    loss_value = std::numeric_limits<double>::quiet_NaN();
  }
  // Numerics guard: a non-finite loss means the gradients are poisoned too.
  // Skip the update entirely — the caller counts the sample and moves on —
  // rather than writing NaN into every weight.
  if (!std::isfinite(loss_value)) return loss_value;
  tape.Backward(loss);
  optimizer_.Step(store_.parameters());
  // The fused inference copies are now stale; rebuild before the next
  // Encode rather than per step (an epoch of updates costs one refresh).
  MarkEncoderDirty();
  return loss_value;
}

bool SiameseModel::Save(const std::string& path) const {
  std::string error;
  if (!store::SaveModelCheckpoint(store_, path, &error)) {
    ASTERIA_LOG(Error) << "SiameseModel::Save: " << error;
    return false;
  }
  return true;
}

bool SiameseModel::Load(const std::string& path) {
  std::string error;
  if (!store::LoadModelCheckpoint(&store_, path, &error)) {
    ASTERIA_LOG(Error) << "SiameseModel::Load: " << error;
    return false;
  }
  MarkEncoderDirty();
  return true;
}

}  // namespace asteria::core
