// Binary Tree-LSTM AST encoder — equations (1)-(7) of the paper.
//
// Nodes are embedded via an nn.Embedding-equivalent lookup table (labels
// from Table I), then encoded bottom-up:
//   f_kl = sig(Wf e + Ufll h_l + Uflr h_r + bf)       (1)
//   f_kr = sig(Wf e + Ufrl h_l + Ufrr h_r + bf)       (2)
//   i_k  = sig(Wi e + Uil h_l + Uir h_r + bi)         (3)
//   o_k  = sig(Wo e + Uol h_l + Uor h_r + bo)         (4)
//   u_k  = tanh(Wu e + Uul h_l + Uur h_r + bu)        (5)
//   c_k  = i . u + c_l . f_kl + c_r . f_kr            (6)
//   h_k  = o . tanh(c_k)                              (7)
// The root's hidden state is the AST encoding. Missing children use the
// leaf initialization (zeros by default; ones for the Fig. 9 ablation).
//
// This tape-based encoder is the training/gradient-check reference path.
// Inference-heavy callers go through core::TreeLstmFastEncoder
// (tree_lstm_fast.h), a fused forward-only kernel whose output is required
// to stay bitwise identical to EncodeVector (docs/PERFORMANCE.md).
#pragma once

#include <string>

#include "ast/lcrs.h"
#include "nn/autograd.h"
#include "util/rng.h"

namespace asteria::core {

struct TreeLstmConfig {
  int embedding_dim = 16;  // paper default (Fig. 8 sweeps 8..128)
  int hidden_dim = 16;
  bool leaf_init_ones = false;  // Fig. 9 "Leaf-1" ablation
  // §VII future-work extension: add a second embedding for constant/string
  // payload buckets (ast::BinaryNode::payload_bucket) to the node embedding.
  bool embed_payloads = false;
};

class TreeLstmEncoder {
 public:
  // Creates parameters inside `store` with the given name prefix.
  TreeLstmEncoder(const TreeLstmConfig& config, nn::ParameterStore* store,
                  util::Rng& rng, const std::string& prefix = "treelstm");

  // Encodes a binarized AST; returns the root hidden state (h x 1).
  nn::Var Encode(nn::Tape* tape, const ast::BinaryAst& tree) const;

  // Inference-only encoding (no gradients kept).
  nn::Matrix EncodeVector(const ast::BinaryAst& tree) const;

  const TreeLstmConfig& config() const { return config_; }
  // Parameter-name prefix inside the store (TreeLstmFastEncoder looks the
  // same parameters up by name to build its fused copies).
  const std::string& prefix() const { return prefix_; }

 private:
  struct Gate {
    nn::Parameter* w;   // h x e
    nn::Parameter* ul;  // h x h
    nn::Parameter* ur;  // h x h
    nn::Parameter* b;   // h x 1
  };

  TreeLstmConfig config_;
  std::string prefix_;
  nn::Parameter* embedding_;          // vocab x e
  nn::Parameter* payload_embedding_ = nullptr;  // kPayloadVocab x e (optional)
  // Forget gate has four U matrices (ll, lr, rl, rr) and shared W/b.
  nn::Parameter* wf_;
  nn::Parameter* ufll_;
  nn::Parameter* uflr_;
  nn::Parameter* ufrl_;
  nn::Parameter* ufrr_;
  nn::Parameter* bf_;
  Gate input_;
  Gate output_;
  Gate cached_;  // u_k
};

}  // namespace asteria::core
