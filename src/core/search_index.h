// SearchIndex: encode-once, query-many function search.
//
// The workflow of §V and of any realistic clone/vulnerability search:
// offline, every corpus function is encoded once; online, a query is
// encoded and scored against all stored encodings with the fast eq. (8)
// replay plus callee calibration, returning the top-k matches.
//
// Storage is a packed encode matrix: entry encodings live column-major
// (hidden_dim x N) in fixed-size column blocks, so Add/AddEncoded/
// LoadAppend never copy existing columns and a scoring sweep walks
// contiguous memory instead of N scattered heap allocations. Scoring is
// blocked: a whole (query batch x entry block) tile becomes one feature
// matrix and a single nn::Matrix::GemmRaw against the head weights
// (SiameseModel::SimilarityFromEncodingsBatch), with SearchHit names
// materialized only for the hits that survive — never per scored pair.
//
// On top of the sweep sits an *exact* prefilter: M(T1,T2) <= 1, so the
// calibrated score F = M * S is bounded by S(C1,C2) = e^{-|C1-C2|}. A
// callee-count-sorted side index seeds each query's top-k heap with the
// nearest-callee entries, and every entry whose calibration bound falls
// strictly below that k-th seed score is skipped — a legal prune that only
// drops provably-losing entries (proof sketch in docs/PERFORMANCE.md).
// TopK/TopKBatch/AboveThreshold therefore return results bitwise identical
// to the brute-force sweep (TopKReference/AboveThresholdReference, kept
// in-tree as the differential oracle and bench baseline).
//
// Both phases parallelize over util::ThreadPool with its static-partition
// determinism contract: AddAll encodes shards of the input concurrently but
// stores entries in input order, and the query paths score shards with
// local top-k heaps merged shard-by-shard under a strict total order
// (score desc, insertion index asc), so encodings, scores, and result
// ordering are bitwise identical for every thread count. Prune decisions
// depend only on callee counts and the deterministic seed scores — never on
// sharding — so the skipped set is thread-count invariant too.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "util/pipeline_report.h"

namespace asteria::core {

struct SearchHit {
  int index = 0;        // position in insertion order
  std::string name;     // the stored FunctionFeature name
  double score = 0.0;   // calibrated similarity F
};

class SearchIndex {
 public:
  // The model must outlive the index; its weights should be trained before
  // Add() (encodings are computed with the weights current at call time).
  // `threads` bounds the worker count for AddAll and query scoring.
  explicit SearchIndex(const AsteriaModel& model, int threads = 1);

  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int threads() const { return threads_; }

  // Encodes and stores one function; returns its index.
  int Add(const FunctionFeature& feature);

  // Stores a precomputed encoding without re-running the model — the
  // streaming-ingest path, where FENC-cached encodings must never be
  // encoded twice. The encoding must be the model's hidden_dim x 1 shape
  // with finite values; returns the new entry index, or -1 when it is
  // rejected (the index is unchanged).
  int AddEncoded(const std::string& name, const nn::Matrix& encoding,
                 int callee_count);

  // Encodes all features in parallel; entries keep input order. A feature
  // that fails to encode (throws, yields non-finite values, or hits the
  // search.encode failpoint) is isolated — counted in the returned report
  // and dropped from the index — instead of aborting the batch. Empty ASTs
  // are skipped. The surviving entries and the report are identical for
  // every thread count.
  util::PipelineReport AddAll(const std::vector<FunctionFeature>& features);

  // Scores `query` against every stored function and returns the best `k`
  // hits in descending score order (ties broken by insertion index).
  std::vector<SearchHit> TopK(const FunctionFeature& query, int k) const;

  // Per-query accounting for one batched search, filled (when requested)
  // alongside the results so asteria-serve can cut one wide-event request
  // record per query (util/request_log.h). The pair counts are exact and
  // thread-count invariant — summed over the batch they equal the
  // search.scored_pairs / search.pruned_pairs counter deltas. The timings
  // are wall clock: encode_nanos is this query's own AST encode;
  // score_nanos is the batch's *shared* sweep (every query in a batch
  // reports the same value, because the blocked GEMM scores them together).
  struct QuerySearchStats {
    std::uint64_t encode_nanos = 0;
    std::uint64_t score_nanos = 0;
    std::uint64_t scored_pairs = 0;
    std::uint64_t pruned_pairs = 0;
  };

  // Batched TopK — the asteria-serve dispatch path: encodes every query,
  // then scores the whole batch in one blocked-GEMM sweep over the packed
  // entry matrix (each entry block is touched once per sweep instead of
  // once per query), keeping a per-query top-k heap. ks[i] is query i's k.
  // Results are bitwise identical to calling TopK(queries[i], ks[i]) one at
  // a time: the strict (score desc, index asc) total order makes the
  // ranking a pure function of the scores, independent of batching and
  // sharding. `stats`, when non-null, is resized to the batch and filled
  // with per-query accounting (never affects results or counters).
  std::vector<std::vector<SearchHit>> TopKBatch(
      const std::vector<const FunctionFeature*>& queries,
      const std::vector<int>& ks,
      std::vector<QuerySearchStats>* stats = nullptr) const;

  // All hits scoring at least `threshold`, descending. Routed through the
  // same pruned/blocked sweep as TopK — entries whose calibration bound
  // already falls below `threshold` are skipped, and only surviving hits
  // are ever materialized (no O(N) scored-vector allocation).
  std::vector<SearchHit> AboveThreshold(const FunctionFeature& query,
                                        double threshold) const;

  // Batched AboveThreshold — one sweep for a whole dispatch batch, same
  // contract as TopKBatch: results[i] is bitwise identical to
  // AboveThreshold(queries[i], thresholds[i]).
  std::vector<std::vector<SearchHit>> AboveThresholdBatch(
      const std::vector<const FunctionFeature*>& queries,
      const std::vector<double>& thresholds,
      std::vector<QuerySearchStats>* stats = nullptr) const;

  // -- Brute-force reference paths ----------------------------------------
  //
  // The pre-packing implementation, kept verbatim as (a) the differential
  // oracle for tests/search_index_test.cpp (pruned/blocked results must be
  // bitwise identical to these, at every thread count) and (b) the baseline
  // that scripts/bench_search.sh measures the blocked path against. They
  // score every entry, one pair at a time, with no pruning.
  std::vector<SearchHit> TopKReference(const FunctionFeature& query,
                                       int k) const;
  std::vector<SearchHit> AboveThresholdReference(const FunctionFeature& query,
                                                 double threshold) const;

  int size() const { return static_cast<int>(entries_.size()); }

  // Stored encoding of entry `index`, materialized from the packed column
  // (bitwise-reproducibility checks).
  nn::Matrix encoding(int index) const;
  const std::string& name(int index) const {
    return entries_[static_cast<std::size_t>(index)].name;
  }
  int callee_count(int index) const {
    return entries_[static_cast<std::size_t>(index)].callee_count;
  }

  // -- Snapshots (offline phase persisted; see docs/FORMATS.md) -----------
  //
  // A snapshot is a kKindIndex container holding the entry names, callee
  // counts, and raw encodings, fingerprinted against the model weights that
  // produced them. Saving then loading yields a bitwise-identical index:
  // the same TopK scores and ordering for any thread count, extending the
  // ParallelFor determinism contract across process boundaries. Corrupted
  // or truncated snapshots fail with a descriptive `error`, never load
  // partial state. Loads land directly in the packed encode matrix.

  // Writes all entries to `path`, replacing any existing file.
  bool Save(const std::string& path, std::string* error) const;

  // Appends entries [first_index, size()) to an existing snapshot written
  // by the same model (incremental corpus growth without re-encoding).
  bool AppendTo(const std::string& path, int first_index,
                std::string* error) const;

  // Replaces this index's entries with the snapshot's. Fails (leaving the
  // index untouched) on corruption, truncation, or a snapshot produced by
  // different model weights.
  bool Load(const std::string& path, std::string* error);

  // Appends a snapshot's entries after the current ones (shard loading and
  // compaction). The index is untouched on failure.
  bool LoadAppend(const std::string& path, std::string* error);

  // Loads a sharded index: reads the MANI manifest at `manifest_path` and
  // concatenates every named shard's entries in manifest order. Because
  // entry order — not shard boundaries — is what TopK/TopKBatch rank by,
  // the result is bitwise identical to a monolithic snapshot holding the
  // same entries, at any thread count. Fails (index untouched) on a
  // missing/corrupt manifest or shard, or a model fingerprint mismatch.
  bool OpenSharded(const std::string& manifest_path, std::string* error);

  // Kind-sniffing open: dispatches on the container kind at `path` — an
  // INDX snapshot goes through Load, a MANI manifest through OpenSharded.
  // This is what asteria-serve and index-query call, so both accept either
  // artifact transparently.
  bool Open(const std::string& path, std::string* error);

 private:
  // Per-entry metadata; the encoding itself lives in `packed_`.
  struct EntryMeta {
    std::string name;
    int callee_count = 0;
  };

  // The packed encode matrix: hidden_dim x N, column-major, grown in
  // fixed-size column blocks so appends never move existing columns (stable
  // pointers, no realloc copy) and LoadAppend stays O(new entries).
  class PackedColumns {
   public:
    void Reset(int dim) {
      dim_ = dim;
      count_ = 0;
      blocks_.clear();
    }
    int dim() const { return dim_; }
    std::int64_t count() const { return count_; }
    // Pointer to a fresh uninitialized column for the caller to fill.
    double* AppendColumn();
    const double* Column(std::int64_t i) const {
      return blocks_[static_cast<std::size_t>(i / kBlockCols)].get() +
             (i % kBlockCols) * dim_;
    }

   private:
    static constexpr std::int64_t kBlockCols = 4096;
    int dim_ = 0;
    std::int64_t count_ = 0;
    std::vector<std::unique_ptr<double[]>> blocks_;
  };

  // A (score, insertion index) pair — what the sweep heaps and merges.
  // Names are attached only to the hits that survive selection.
  struct ScoredRef {
    double score = 0.0;
    int index = 0;
  };

  // Per-query sweep state: the encoded query plus the exact-prune cut
  // derived from its callee-nearest seed entries.
  struct QueryPlan;

  // Entries staged by a snapshot load before committing to the index.
  struct StagedEntries {
    std::vector<EntryMeta> meta;
    std::vector<double> columns;  // meta.size() columns, dim doubles each
  };

  // Old-path scorer for the reference implementations. Entry encodings are
  // materialized from the packed columns once per sweep (same doubles, so
  // the scores carry the same bits as the row-per-entry original).
  std::vector<nn::Matrix> MaterializeEncodings() const;
  SearchHit ScoreEntryReference(const nn::Matrix& query_encoding,
                                int query_callees,
                                const nn::Matrix& entry_encoding,
                                int index) const;
  std::vector<SearchHit> ScoredReference(
      const FunctionFeature& query,
      const std::vector<nn::Matrix>& entry_encodings) const;

  // Shared pruned/blocked sweep cores (encodings already computed). `stats`
  // (nullable) receives per-query pair counts and the shared sweep time;
  // the caller must have sized it to the batch.
  std::vector<std::vector<SearchHit>> TopKOnEncodings(
      const std::vector<nn::Matrix>& encodings,
      const std::vector<int>& callees,
      const std::vector<std::size_t>& keeps,
      std::vector<QuerySearchStats>* stats = nullptr) const;
  std::vector<std::vector<SearchHit>> AboveThresholdOnEncodings(
      const std::vector<nn::Matrix>& encodings,
      const std::vector<int>& callees,
      const std::vector<double>& thresholds,
      std::vector<QuerySearchStats>* stats = nullptr) const;

  // Rebuilds the callee-count-sorted side index if entries changed since
  // the last query (double-checked under side_mutex_, so concurrent
  // queries rebuild exactly once).
  void EnsureSideIndexFresh() const;
  void MarkSideIndexDirty() {
    side_dirty_.store(true, std::memory_order_release);
  }

  void CommitStaged(StagedEntries&& staged);
  bool LoadEntriesFrom(const std::string& path, StagedEntries* out,
                       std::string* error) const;

  const AsteriaModel& model_;
  int threads_ = 1;
  int hidden_dim_ = 0;
  std::vector<EntryMeta> entries_;
  PackedColumns packed_;

  // Callee-count-sorted side index, rebuilt lazily on the first query after
  // a mutation: side_order_ holds entry indices sorted by (callee_count,
  // insertion index); side_pos_ is its inverse permutation.
  mutable std::mutex side_mutex_;
  mutable std::atomic<bool> side_dirty_{true};
  mutable std::vector<int> side_order_;
  mutable std::vector<int> side_pos_;
};

}  // namespace asteria::core
