// SearchIndex: encode-once, query-many function search.
//
// The workflow of §V and of any realistic clone/vulnerability search:
// offline, every corpus function is encoded once; online, a query is
// encoded and scored against all stored encodings with the fast eq. (8)
// replay plus callee calibration, returning the top-k matches.
//
// Both phases parallelize over util::ThreadPool with its static-partition
// determinism contract: AddAll encodes shards of the input concurrently but
// stores entries in input order, and TopK/AboveThreshold score shards with
// local top-k heaps merged shard-by-shard under a strict total order
// (score desc, insertion index asc), so encodings, scores, and result
// ordering are bitwise identical for every thread count.
#pragma once

#include <string>
#include <vector>

#include "core/asteria.h"
#include "util/pipeline_report.h"

namespace asteria::core {

struct SearchHit {
  int index = 0;        // position in insertion order
  std::string name;     // the stored FunctionFeature name
  double score = 0.0;   // calibrated similarity F
};

class SearchIndex {
 public:
  // The model must outlive the index; its weights should be trained before
  // Add() (encodings are computed with the weights current at call time).
  // `threads` bounds the worker count for AddAll and query scoring.
  explicit SearchIndex(const AsteriaModel& model, int threads = 1)
      : model_(model), threads_(threads < 1 ? 1 : threads) {}

  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int threads() const { return threads_; }

  // Encodes and stores one function; returns its index.
  int Add(const FunctionFeature& feature);

  // Stores a precomputed encoding without re-running the model — the
  // streaming-ingest path, where FENC-cached encodings must never be
  // encoded twice. The encoding must be the model's hidden_dim x 1 shape
  // with finite values; returns the new entry index, or -1 when it is
  // rejected (the index is unchanged).
  int AddEncoded(const std::string& name, const nn::Matrix& encoding,
                 int callee_count);

  // Encodes all features in parallel; entries keep input order. A feature
  // that fails to encode (throws, yields non-finite values, or hits the
  // search.encode failpoint) is isolated — counted in the returned report
  // and dropped from the index — instead of aborting the batch. Empty ASTs
  // are skipped. The surviving entries and the report are identical for
  // every thread count.
  util::PipelineReport AddAll(const std::vector<FunctionFeature>& features);

  // Scores `query` against every stored function and returns the best `k`
  // hits in descending score order (ties broken by insertion index).
  std::vector<SearchHit> TopK(const FunctionFeature& query, int k) const;

  // Batched TopK — the asteria-serve dispatch path: encodes every query,
  // then scores the whole batch in one pass over the stored entries (each
  // entry is touched once per sweep instead of once per query), keeping a
  // per-query top-k heap. ks[i] is query i's k. Results are bitwise
  // identical to calling TopK(queries[i], ks[i]) one at a time: the strict
  // (score desc, index asc) total order makes the ranking a pure function
  // of the scores, independent of batching and sharding.
  std::vector<std::vector<SearchHit>> TopKBatch(
      const std::vector<const FunctionFeature*>& queries,
      const std::vector<int>& ks) const;

  // All hits scoring at least `threshold`, descending.
  std::vector<SearchHit> AboveThreshold(const FunctionFeature& query,
                                        double threshold) const;

  int size() const { return static_cast<int>(entries_.size()); }

  // Stored encoding of entry `index` (bitwise-reproducibility checks).
  const nn::Matrix& encoding(int index) const {
    return entries_[static_cast<std::size_t>(index)].encoding;
  }
  const std::string& name(int index) const {
    return entries_[static_cast<std::size_t>(index)].name;
  }
  int callee_count(int index) const {
    return entries_[static_cast<std::size_t>(index)].callee_count;
  }

  // -- Snapshots (offline phase persisted; see docs/FORMATS.md) -----------
  //
  // A snapshot is a kKindIndex container holding the entry names, callee
  // counts, and raw encodings, fingerprinted against the model weights that
  // produced them. Saving then loading yields a bitwise-identical index:
  // the same TopK scores and ordering for any thread count, extending the
  // ParallelFor determinism contract across process boundaries. Corrupted
  // or truncated snapshots fail with a descriptive `error`, never load
  // partial state.

  // Writes all entries to `path`, replacing any existing file.
  bool Save(const std::string& path, std::string* error) const;

  // Appends entries [first_index, size()) to an existing snapshot written
  // by the same model (incremental corpus growth without re-encoding).
  bool AppendTo(const std::string& path, int first_index,
                std::string* error) const;

  // Replaces this index's entries with the snapshot's. Fails (leaving the
  // index untouched) on corruption, truncation, or a snapshot produced by
  // different model weights.
  bool Load(const std::string& path, std::string* error);

  // Appends a snapshot's entries after the current ones (shard loading and
  // compaction). The index is untouched on failure.
  bool LoadAppend(const std::string& path, std::string* error);

  // Loads a sharded index: reads the MANI manifest at `manifest_path` and
  // concatenates every named shard's entries in manifest order. Because
  // entry order — not shard boundaries — is what TopK/TopKBatch rank by,
  // the result is bitwise identical to a monolithic snapshot holding the
  // same entries, at any thread count. Fails (index untouched) on a
  // missing/corrupt manifest or shard, or a model fingerprint mismatch.
  bool OpenSharded(const std::string& manifest_path, std::string* error);

  // Kind-sniffing open: dispatches on the container kind at `path` — an
  // INDX snapshot goes through Load, a MANI manifest through OpenSharded.
  // This is what asteria-serve and index-query call, so both accept either
  // artifact transparently.
  bool Open(const std::string& path, std::string* error);

 private:
  struct Entry {
    std::string name;
    nn::Matrix encoding;
    int callee_count = 0;
  };

  SearchHit ScoreEntry(const nn::Matrix& query_encoding, int query_callees,
                       int index) const;
  std::vector<SearchHit> Scored(const FunctionFeature& query) const;
  // Appends one snapshot's validated entries to `*out` (shared by
  // Load/LoadAppend/OpenSharded).
  bool LoadEntriesFrom(const std::string& path, std::vector<Entry>* out,
                       std::string* error) const;

  const AsteriaModel& model_;
  int threads_ = 1;
  std::vector<Entry> entries_;
};

}  // namespace asteria::core
