// SearchIndex: encode-once, query-many function search.
//
// The workflow of §V and of any realistic clone/vulnerability search:
// offline, every corpus function is encoded once; online, a query is
// encoded and scored against all stored encodings with the fast eq. (8)
// replay plus callee calibration, returning the top-k matches.
#pragma once

#include <string>
#include <vector>

#include "core/asteria.h"

namespace asteria::core {

struct SearchHit {
  int index = 0;        // position in insertion order
  std::string name;     // the stored FunctionFeature name
  double score = 0.0;   // calibrated similarity F
};

class SearchIndex {
 public:
  // The model must outlive the index; its weights should be trained before
  // Add() (encodings are computed with the weights current at call time).
  explicit SearchIndex(const AsteriaModel& model) : model_(model) {}

  // Encodes and stores one function; returns its index.
  int Add(const FunctionFeature& feature);

  // Encodes all features (convenience).
  void AddAll(const std::vector<FunctionFeature>& features);

  // Scores `query` against every stored function and returns the best `k`
  // hits in descending score order.
  std::vector<SearchHit> TopK(const FunctionFeature& query, int k) const;

  // All hits scoring at least `threshold`, descending.
  std::vector<SearchHit> AboveThreshold(const FunctionFeature& query,
                                        double threshold) const;

  int size() const { return static_cast<int>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    nn::Matrix encoding;
    int callee_count = 0;
  };

  std::vector<SearchHit> Scored(const FunctionFeature& query) const;

  const AsteriaModel& model_;
  std::vector<Entry> entries_;
};

}  // namespace asteria::core
