#include "core/asteria.h"

#include <cmath>

#include "store/checkpoint.h"
#include "util/metrics.h"

namespace asteria::core {

namespace {

util::Counter c_train_pairs("train.pairs");
util::Counter c_train_skipped("train.skipped_samples");
util::Counter c_train_nonfinite("train.nonfinite_loss");
util::Gauge g_last_loss("train.last_loss");

}  // namespace

std::uint32_t AsteriaModel::WeightsFingerprint() const {
  return store::WeightsFingerprint(siamese_.parameters());
}

AsteriaModel::AsteriaModel(const AsteriaConfig& config)
    : config_(config), rng_(config.seed), siamese_(config.siamese, rng_) {}

ast::BinaryAst AsteriaModel::Preprocess(const ast::Ast& tree) {
  return ast::ToLeftChildRightSibling(tree);
}

double AsteriaModel::TrainEpoch(const std::vector<FunctionFeature>& features,
                                std::vector<LabeledPair> pairs,
                                util::Rng& rng,
                                util::PipelineReport* report) {
  ASTERIA_SPAN("train-epoch");
  rng.Shuffle(pairs);
  if (report != nullptr && report->stage.empty()) report->stage = "train-epoch";
  double total_loss = 0.0;
  std::size_t counted = 0;
  for (const LabeledPair& pair : pairs) {
    const auto& a = features[static_cast<std::size_t>(pair.a)].tree;
    const auto& b = features[static_cast<std::size_t>(pair.b)].tree;
    if (a.empty() || b.empty()) {
      c_train_skipped.Increment();
      if (report != nullptr) report->AddSkipped();
      continue;
    }
    const double loss = TrainPair(a, b, pair.homologous);
    if (!std::isfinite(loss)) {
      // TrainPair already declined the weight update; keep the mean clean
      // and record the isolated pair.
      c_train_nonfinite.Increment();
      if (report != nullptr) {
        report->AddFailed("non-finite loss for pair (" +
                          std::to_string(pair.a) + ", " +
                          std::to_string(pair.b) + ") — sample skipped");
      }
      continue;
    }
    total_loss += loss;
    ++counted;
    c_train_pairs.Increment();
    if (report != nullptr) report->AddOk();
  }
  const double mean_loss =
      counted == 0 ? 0.0 : total_loss / static_cast<double>(counted);
  g_last_loss.Set(mean_loss);
  if (report != nullptr) util::PublishPipelineReport(*report);
  return mean_loss;
}

}  // namespace asteria::core
