#include "core/asteria.h"

#include "store/checkpoint.h"

namespace asteria::core {

std::uint32_t AsteriaModel::WeightsFingerprint() const {
  return store::WeightsFingerprint(siamese_.parameters());
}

AsteriaModel::AsteriaModel(const AsteriaConfig& config)
    : config_(config), rng_(config.seed), siamese_(config.siamese, rng_) {}

ast::BinaryAst AsteriaModel::Preprocess(const ast::Ast& tree) {
  return ast::ToLeftChildRightSibling(tree);
}

double AsteriaModel::TrainEpoch(const std::vector<FunctionFeature>& features,
                                std::vector<LabeledPair> pairs,
                                util::Rng& rng) {
  rng.Shuffle(pairs);
  double total_loss = 0.0;
  std::size_t counted = 0;
  for (const LabeledPair& pair : pairs) {
    const auto& a = features[static_cast<std::size_t>(pair.a)].tree;
    const auto& b = features[static_cast<std::size_t>(pair.b)].tree;
    if (a.empty() || b.empty()) continue;
    total_loss += TrainPair(a, b, pair.homologous);
    ++counted;
  }
  return counted == 0 ? 0.0 : total_loss / static_cast<double>(counted);
}

}  // namespace asteria::core
