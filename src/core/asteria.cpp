#include "core/asteria.h"

#include <cmath>

#include "store/checkpoint.h"

namespace asteria::core {

std::uint32_t AsteriaModel::WeightsFingerprint() const {
  return store::WeightsFingerprint(siamese_.parameters());
}

AsteriaModel::AsteriaModel(const AsteriaConfig& config)
    : config_(config), rng_(config.seed), siamese_(config.siamese, rng_) {}

ast::BinaryAst AsteriaModel::Preprocess(const ast::Ast& tree) {
  return ast::ToLeftChildRightSibling(tree);
}

double AsteriaModel::TrainEpoch(const std::vector<FunctionFeature>& features,
                                std::vector<LabeledPair> pairs,
                                util::Rng& rng,
                                util::PipelineReport* report) {
  rng.Shuffle(pairs);
  if (report != nullptr && report->stage.empty()) report->stage = "train-epoch";
  double total_loss = 0.0;
  std::size_t counted = 0;
  for (const LabeledPair& pair : pairs) {
    const auto& a = features[static_cast<std::size_t>(pair.a)].tree;
    const auto& b = features[static_cast<std::size_t>(pair.b)].tree;
    if (a.empty() || b.empty()) {
      if (report != nullptr) report->AddSkipped();
      continue;
    }
    const double loss = TrainPair(a, b, pair.homologous);
    if (!std::isfinite(loss)) {
      // TrainPair already declined the weight update; keep the mean clean
      // and record the isolated pair.
      if (report != nullptr) {
        report->AddFailed("non-finite loss for pair (" +
                          std::to_string(pair.a) + ", " +
                          std::to_string(pair.b) + ") — sample skipped");
      }
      continue;
    }
    total_loss += loss;
    ++counted;
    if (report != nullptr) report->AddOk();
  }
  return counted == 0 ? 0.0 : total_loss / static_cast<double>(counted);
}

}  // namespace asteria::core
