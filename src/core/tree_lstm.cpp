#include "core/tree_lstm.h"

namespace asteria::core {

using ast::BinaryAst;
using ast::kInvalidNode;
using ast::NodeId;
using nn::Matrix;
using nn::Tape;
using nn::Var;

TreeLstmEncoder::TreeLstmEncoder(const TreeLstmConfig& config,
                                 nn::ParameterStore* store, util::Rng& rng,
                                 const std::string& prefix)
    : config_(config), prefix_(prefix) {
  const int e = config_.embedding_dim;
  const int h = config_.hidden_dim;
  const int vocab = ast::kMaxNodeLabel + 1;
  auto make = [&](const std::string& name, int rows, int cols) {
    return store->CreateXavier(prefix + "." + name, rows, cols, rng);
  };
  embedding_ = make("embedding", vocab, e);
  if (config_.embed_payloads) {
    payload_embedding_ = make("payload_embedding", ast::kPayloadVocab, e);
  }
  wf_ = make("Wf", h, e);
  ufll_ = make("Ufll", h, h);
  uflr_ = make("Uflr", h, h);
  ufrl_ = make("Ufrl", h, h);
  ufrr_ = make("Ufrr", h, h);
  bf_ = store->Create(prefix + ".bf", h, 1);
  auto make_gate = [&](const std::string& name) {
    Gate gate;
    gate.w = make("W" + name, h, e);
    gate.ul = make("U" + name + "l", h, h);
    gate.ur = make("U" + name + "r", h, h);
    gate.b = store->Create(prefix + ".b" + name, h, 1);
    return gate;
  };
  input_ = make_gate("i");
  output_ = make_gate("o");
  cached_ = make_gate("u");
}

Var TreeLstmEncoder::Encode(Tape* tape, const BinaryAst& tree) const {
  const int h = config_.hidden_dim;
  // Worst case ~44 tape nodes per AST node (payload add included) plus the
  // parameter binds below; reserving up front keeps Push from reallocating
  // the node vector mid-example.
  tape->Reserve(tape->size() + 20 +
                44 * static_cast<std::size_t>(tree.size()));
  // Leaf-state initialization (Fig. 9: zeros vs ones).
  const double init = config_.leaf_init_ones ? 1.0 : 0.0;
  const Var leaf_state = tape->Leaf(Matrix::Filled(h, 1, init));

  const Var wf = tape->Param(wf_);
  const Var ufll = tape->Param(ufll_);
  const Var uflr = tape->Param(uflr_);
  const Var ufrl = tape->Param(ufrl_);
  const Var ufrr = tape->Param(ufrr_);
  const Var bf = tape->Param(bf_);
  struct GateVars {
    Var w, ul, ur, b;
  };
  auto bind = [&](const Gate& gate) {
    return GateVars{tape->Param(gate.w), tape->Param(gate.ul),
                    tape->Param(gate.ur), tape->Param(gate.b)};
  };
  const GateVars gi = bind(input_);
  const GateVars go = bind(output_);
  const GateVars gu = bind(cached_);

  struct State {
    Var h, c;
  };
  std::vector<State> states(static_cast<std::size_t>(tree.size()),
                            State{leaf_state, leaf_state});

  for (NodeId id : tree.PostOrder()) {
    const ast::BinaryNode& node = tree.node(id);
    const State left = node.left != kInvalidNode
                           ? states[static_cast<std::size_t>(node.left)]
                           : State{leaf_state, leaf_state};
    const State right = node.right != kInvalidNode
                            ? states[static_cast<std::size_t>(node.right)]
                            : State{leaf_state, leaf_state};
    Var e = tape->EmbeddingRow(embedding_, node.label);
    if (payload_embedding_ != nullptr && node.payload_bucket != 0) {
      e = tape->Add(e, tape->EmbeddingRow(payload_embedding_,
                                          node.payload_bucket));
    }

    auto gate3 = [&](const GateVars& g) {
      return tape->Sigmoid(tape->Add(
          tape->Add(tape->MatMul(g.w, e),
                    tape->Add(tape->MatMul(g.ul, left.h),
                              tape->MatMul(g.ur, right.h))),
          g.b));
    };
    // (1)(2): two forget gates with shared W/b, distinct U pairs. Wf·e is
    // the same subexpression in both, so it is computed once and its tape
    // node shared (its gradient accumulates from both uses).
    const Var wf_e = tape->MatMul(wf, e);
    const Var fl = tape->Sigmoid(tape->Add(
        tape->Add(wf_e, tape->Add(tape->MatMul(ufll, left.h),
                                  tape->MatMul(uflr, right.h))),
        bf));
    const Var fr = tape->Sigmoid(tape->Add(
        tape->Add(wf_e, tape->Add(tape->MatMul(ufrl, left.h),
                                  tape->MatMul(ufrr, right.h))),
        bf));
    const Var i = gate3(gi);  // (3)
    const Var o = gate3(go);  // (4)
    const Var u = tape->Tanh(tape->Add(
        tape->Add(tape->MatMul(gu.w, e),
                  tape->Add(tape->MatMul(gu.ul, left.h),
                            tape->MatMul(gu.ur, right.h))),
        gu.b));  // (5)
    const Var c = tape->Add(tape->Hadamard(i, u),
                            tape->Add(tape->Hadamard(left.c, fl),
                                      tape->Hadamard(right.c, fr)));  // (6)
    const Var hidden = tape->Hadamard(o, tape->Tanh(c));  // (7)
    states[static_cast<std::size_t>(id)] = State{hidden, c};
  }
  return states[static_cast<std::size_t>(tree.root())].h;
}

Matrix TreeLstmEncoder::EncodeVector(const BinaryAst& tree) const {
  if (tree.empty()) return Matrix(config_.hidden_dim, 1);
  Tape tape;
  const Var encoding = Encode(&tape, tree);
  return tape.value(encoding);
}

}  // namespace asteria::core
