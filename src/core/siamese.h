// Siamese network over two shared-weight Tree-LSTM encoders (§III-B).
//
// Classification head — equation (8):
//   M(T1,T2) = softmax( sigmoid( cat(|e1-e2|, e1 . e2) )^T W )
// with W a (2h x 2) matrix; output [dissimilarity, similarity]. Training
// uses BCELoss against one-hot labels ([1,0] = non-homologous, [0,1] =
// homologous) and AdaGrad with batch size 1, as in §IV-A.
//
// Regression head (Fig. 9 "Regression" ablation): cos(e1, e2) trained with
// squared error against ±1.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tree_lstm.h"
#include "core/tree_lstm_fast.h"
#include "nn/optimizer.h"

namespace asteria::core {

enum class SiameseHead { kClassification, kRegression };

struct SiameseConfig {
  TreeLstmConfig encoder;
  SiameseHead head = SiameseHead::kClassification;
  double learning_rate = 0.05;
  // Encode() through the fused tape-free TreeLstmFastEncoder (bitwise
  // identical to the tape path, several times faster). Off = the autograd
  // reference path, kept for gradient checks and A/B benchmarking.
  bool use_fast_encoder = true;
};

// Reusable scratch for SimilarityFromEncodingsBatch: grow-only buffers so a
// steady-state scoring sweep performs no heap allocation. One instance per
// worker thread (it is not thread-safe).
struct EncodingScoreScratch {
  std::vector<double> features;  // pairs x 2h feature rows (classification)
  std::vector<double> logits;    // pairs x 2 head outputs (classification)
};

class SiameseModel {
 public:
  SiameseModel(const SiameseConfig& config, util::Rng& rng);

  // AST similarity in [0, 1] (full forward pass: encode + head).
  double Similarity(const ast::BinaryAst& a, const ast::BinaryAst& b) const;

  // Offline phase: encode once, compare many times (the "A-E" stage).
  // Runs the fused TreeLstmFastEncoder unless config disables it; the fused
  // weights are rebuilt lazily after any TrainPair/Load (see
  // docs/PERFORMANCE.md for the refresh rule). Thread-safe.
  nn::Matrix Encode(const ast::BinaryAst& tree) const;

  // Online phase (Fig. 10(c)): similarity from two precomputed encodings —
  // plain matrix math, no tape.
  double SimilarityFromEncodings(const nn::Matrix& a,
                                 const nn::Matrix& b) const;

  // Batched online scoring — the SearchIndex block-sweep path. Scores
  // `count` (a[i], b[i]) encoding pairs, each a hidden_dim-length column,
  // writing out[i]. For the classification head the whole block becomes one
  // feature matrix and a single blocked Gemm against the head weights
  // (nn::Matrix::GemmRaw), instead of `count` per-pair feature allocations.
  // out[i] is bitwise identical to SimilarityFromEncodings(a[i], b[i]):
  // the feature expressions, the ascending-row logit accumulation, and the
  // softmax are op-for-op the same. `scratch` is reused across calls.
  void SimilarityFromEncodingsBatch(const double* const* a,
                                    const double* const* b, int count,
                                    double* out,
                                    EncodingScoreScratch* scratch) const;

  // One training step on a labeled pair (homologous: true). Returns loss.
  double TrainPair(const ast::BinaryAst& a, const ast::BinaryAst& b,
                   bool homologous);

  // Checkpoints via store::{Save,Load}ModelCheckpoint: writes the versioned
  // CRC-checked container format, reads both it and legacy asteria-params v1
  // files (src/store/checkpoint.h).
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);

  const SiameseConfig& config() const { return config_; }
  std::size_t TotalWeights() const { return store_.TotalWeights(); }
  const nn::ParameterStore& parameters() const { return store_; }

 private:
  nn::Var Head(nn::Tape* tape, nn::Var e1, nn::Var e2) const;

  // Rebuilds the fast encoder's fused weights if a weight update happened
  // since the last Encode. Double-checked under fast_mutex_ so concurrent
  // encoders (SearchIndex::AddAll workers) refresh exactly once.
  void EnsureFastEncoderFresh() const;
  // Called after every weight mutation (optimizer step, checkpoint load).
  void MarkEncoderDirty() {
    fast_dirty_.store(true, std::memory_order_release);
  }

  SiameseConfig config_;
  nn::ParameterStore store_;
  TreeLstmEncoder encoder_;
  nn::Parameter* w_out_ = nullptr;  // (2h x 2), classification head only
  nn::AdaGrad optimizer_;
  // Reused across TrainPair calls (Tape::Clear keeps capacity, so steady
  // state training performs no tape-node reallocation).
  nn::Tape train_tape_;
  // Lazily built/refreshed fused inference kernel (guarded by fast_mutex_;
  // fast_dirty_ is the fast-path "is it current" check).
  mutable std::unique_ptr<TreeLstmFastEncoder> fast_;
  mutable std::mutex fast_mutex_;
  mutable std::atomic<bool> fast_dirty_{true};
};

}  // namespace asteria::core
