// Siamese network over two shared-weight Tree-LSTM encoders (§III-B).
//
// Classification head — equation (8):
//   M(T1,T2) = softmax( sigmoid( cat(|e1-e2|, e1 . e2) )^T W )
// with W a (2h x 2) matrix; output [dissimilarity, similarity]. Training
// uses BCELoss against one-hot labels ([1,0] = non-homologous, [0,1] =
// homologous) and AdaGrad with batch size 1, as in §IV-A.
//
// Regression head (Fig. 9 "Regression" ablation): cos(e1, e2) trained with
// squared error against ±1.
#pragma once

#include <string>

#include "core/tree_lstm.h"
#include "nn/optimizer.h"

namespace asteria::core {

enum class SiameseHead { kClassification, kRegression };

struct SiameseConfig {
  TreeLstmConfig encoder;
  SiameseHead head = SiameseHead::kClassification;
  double learning_rate = 0.05;
};

class SiameseModel {
 public:
  SiameseModel(const SiameseConfig& config, util::Rng& rng);

  // AST similarity in [0, 1] (full forward pass: encode + head).
  double Similarity(const ast::BinaryAst& a, const ast::BinaryAst& b) const;

  // Offline phase: encode once, compare many times (the "A-E" stage).
  nn::Matrix Encode(const ast::BinaryAst& tree) const {
    return encoder_.EncodeVector(tree);
  }

  // Online phase (Fig. 10(c)): similarity from two precomputed encodings —
  // plain matrix math, no tape.
  double SimilarityFromEncodings(const nn::Matrix& a,
                                 const nn::Matrix& b) const;

  // One training step on a labeled pair (homologous: true). Returns loss.
  double TrainPair(const ast::BinaryAst& a, const ast::BinaryAst& b,
                   bool homologous);

  // Checkpoints via store::{Save,Load}ModelCheckpoint: writes the versioned
  // CRC-checked container format, reads both it and legacy asteria-params v1
  // files (src/store/checkpoint.h).
  bool Save(const std::string& path) const;
  bool Load(const std::string& path);

  const SiameseConfig& config() const { return config_; }
  std::size_t TotalWeights() const { return store_.TotalWeights(); }
  const nn::ParameterStore& parameters() const { return store_; }

 private:
  nn::Var Head(nn::Tape* tape, nn::Var e1, nn::Var e2) const;

  SiameseConfig config_;
  nn::ParameterStore store_;
  TreeLstmEncoder encoder_;
  nn::Parameter* w_out_ = nullptr;  // (2h x 2), classification head only
  nn::AdaGrad optimizer_;
};

}  // namespace asteria::core
