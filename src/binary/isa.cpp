#include "binary/isa.h"

#include <array>

namespace asteria::binary {

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kX86: return "x86";
    case Isa::kX64: return "x64";
    case Isa::kArm: return "ARM";
    case Isa::kPpc: return "PPC";
    case Isa::kIsaCount: break;
  }
  return "?";
}

Isa IsaFromName(std::string_view name) {
  for (int i = 0; i < kNumIsas; ++i) {
    if (IsaName(static_cast<Isa>(i)) == name) return static_cast<Isa>(i);
  }
  return Isa::kIsaCount;
}

Cond NegateCond(Cond cond) {
  switch (cond) {
    case Cond::kEq: return Cond::kNe;
    case Cond::kNe: return Cond::kEq;
    case Cond::kLt: return Cond::kGe;
    case Cond::kLe: return Cond::kGt;
    case Cond::kGt: return Cond::kLe;
    case Cond::kGe: return Cond::kLt;
  }
  return Cond::kEq;
}

std::string_view CondName(Cond cond) {
  switch (cond) {
    case Cond::kEq: return "eq";
    case Cond::kNe: return "ne";
    case Cond::kLt: return "lt";
    case Cond::kLe: return "le";
    case Cond::kGt: return "gt";
    case Cond::kGe: return "ge";
  }
  return "?";
}

std::string_view OpcodeName(Opcode op) {
  static constexpr std::array<std::string_view,
                              static_cast<std::size_t>(Opcode::kOpcodeCount)>
      kNames = {
          "nop",  "movi", "movs", "mov",  "add",  "sub",  "mul",  "div",
          "mod",  "and",  "or",   "xor",  "shl",  "shr",  "addi", "subi",
          "muli", "divi", "modi", "andi", "ori",  "xori", "shli", "shri",
          "neg",  "not",  "lea",  "cmp",  "cmpi", "set",  "csel", "br",
          "brc",  "jtab", "fadr", "ld",   "ldi",  "st",   "sti",  "arg",
          "call", "ret",
      };
  const auto i = static_cast<std::size_t>(op);
  return i < kNames.size() ? kNames[i] : "?";
}

const IsaSpec& GetIsaSpec(Isa isa) {
  // The numbers mirror the flavour of the real targets: x86 is register
  // starved and CISC-ish, x64 the same with more registers, ARM is a
  // 3-operand RISC with conditional execution, PPC a 3-operand RISC with a
  // big register file and 16-bit immediates.
  static const std::array<IsaSpec, kNumIsas> kSpecs = {{
      {Isa::kX86, 6, true, true, false, false, (1LL << 31) - 1, 0, 12,
       4, false, false, false},
      {Isa::kX64, 14, true, true, false, false, (1LL << 31) - 1, 6, 22,
       4, false, false, true},
      {Isa::kArm, 12, false, false, true, false, (1LL << 12) - 1, 4, 18,
       6, true, false, true},
      {Isa::kPpc, 28, false, false, false, true, (1LL << 15) - 1, 8, 16,
       0, true, true, false},
  }};
  return kSpecs[static_cast<std::size_t>(isa)];
}

}  // namespace asteria::binary
