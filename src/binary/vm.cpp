#include "binary/vm.h"

#include <array>

namespace asteria::binary {

namespace sem = minic::semantics;

namespace {

struct Trap {
  std::string reason;
};

struct Frame {
  int fn_index = 0;
  int pc = 0;
  std::int64_t fp = 0;
  int flags = 0;  // sign of last comparison: -1 / 0 / +1
  std::array<std::int64_t, kNumRegs> regs{};
  std::vector<std::int64_t> staged_args;
};

bool CondHolds(Cond cond, int flags) {
  switch (cond) {
    case Cond::kEq: return flags == 0;
    case Cond::kNe: return flags != 0;
    case Cond::kLt: return flags < 0;
    case Cond::kLe: return flags <= 0;
    case Cond::kGt: return flags > 0;
    case Cond::kGe: return flags >= 0;
  }
  return false;
}

int Sign(std::int64_t a, std::int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }

class Machine {
 public:
  Machine(const BinModule& module, const Vm::Options& options)
      : module_(module), options_(options) {
    // rodata: each string as NUL-terminated words at the bottom of memory.
    for (const std::string& s : module_.strings) {
      string_addrs_.push_back(static_cast<std::int64_t>(memory_.size()));
      for (char ch : s) memory_.push_back(static_cast<unsigned char>(ch));
      memory_.push_back(0);
    }
    stack_base_ = static_cast<std::int64_t>(memory_.size());
    memory_.resize(memory_.size() + options_.stack_words, 0);
    sp_ = stack_base_;
  }

  minic::Interpreter::Result Run(int fn_index,
                                 std::vector<minic::ArgValue> args) {
    minic::Interpreter::Result result;
    if (fn_index < 0 ||
        fn_index >= static_cast<int>(module_.functions.size())) {
      result.trap = "unknown function index";
      return result;
    }
    const BinFunction& fn = module_.functions[static_cast<std::size_t>(fn_index)];
    if (static_cast<int>(args.size()) != fn.num_params) {
      result.trap = "arity mismatch";
      return result;
    }
    try {
      // Materialize array arguments as caller-owned buffers.
      std::vector<std::int64_t> arg_words;
      std::vector<std::pair<std::int64_t, std::size_t>> out_arrays;
      for (const minic::ArgValue& arg : args) {
        if (arg.is_array) {
          const std::int64_t addr = Alloc(arg.array.size());
          for (std::size_t i = 0; i < arg.array.size(); ++i) {
            memory_[static_cast<std::size_t>(addr) + i] = arg.array[i];
          }
          out_arrays.emplace_back(addr, arg.array.size());
          arg_words.push_back(addr);
        } else {
          arg_words.push_back(arg.scalar);
        }
      }
      result.value = Execute(fn_index, arg_words);
      result.ok = true;
      for (const auto& [addr, size] : out_arrays) {
        result.arrays.emplace_back(
            memory_.begin() + static_cast<std::ptrdiff_t>(addr),
            memory_.begin() + static_cast<std::ptrdiff_t>(addr + static_cast<std::int64_t>(size)));
      }
    } catch (const Trap& trap) {
      result.trap = trap.reason;
    }
    return result;
  }

 private:
  std::int64_t Alloc(std::size_t words) {
    if (static_cast<std::size_t>(sp_) + words + 4096 > memory_.size()) {
      throw Trap{"stack overflow"};
    }
    const std::int64_t addr = sp_;
    sp_ += static_cast<std::int64_t>(words);
    return addr;
  }

  std::int64_t Mem(std::int64_t addr) const {
    if (addr < 0 || addr >= static_cast<std::int64_t>(memory_.size())) {
      throw Trap{"memory read out of bounds"};
    }
    return memory_[static_cast<std::size_t>(addr)];
  }

  void SetMem(std::int64_t addr, std::int64_t value) {
    // rodata is writable in this machine (simplifies string buffers).
    if (addr < 0 || addr >= static_cast<std::int64_t>(memory_.size())) {
      throw Trap{"memory write out of bounds"};
    }
    memory_[static_cast<std::size_t>(addr)] = value;
  }

  void PushFrame(int fn_index, const std::vector<std::int64_t>& arg_words) {
    if (static_cast<int>(frames_.size()) >= options_.max_call_depth) {
      throw Trap{"call depth exceeded"};
    }
    const BinFunction& fn = module_.functions[static_cast<std::size_t>(fn_index)];
    if (static_cast<int>(arg_words.size()) != fn.num_params) {
      throw Trap{"arity mismatch in call"};
    }
    Frame frame;
    frame.fn_index = fn_index;
    frame.fp = Alloc(static_cast<std::size_t>(fn.frame_words));
    // Zero the frame: local arrays are zero-initialized in MiniC semantics
    // (the interpreter allocates fresh zeroed storage per declaration), so
    // stale data from previously popped frames must not leak in.
    for (int w = 0; w < fn.frame_words; ++w) {
      memory_[static_cast<std::size_t>(frame.fp + w)] = 0;
    }
    frame.regs[kFramePointerReg] = frame.fp;
    for (std::size_t i = 0; i < arg_words.size(); ++i) {
      SetMem(frame.fp + static_cast<std::int64_t>(i), arg_words[i]);
    }
    frames_.push_back(std::move(frame));
  }

  void PopFrame() {
    const BinFunction& fn =
        module_.functions[static_cast<std::size_t>(frames_.back().fn_index)];
    sp_ -= fn.frame_words;
    frames_.pop_back();
  }

  std::int64_t Execute(int entry_fn, const std::vector<std::int64_t>& args) {
    std::int64_t steps = options_.max_steps;
    PushFrame(entry_fn, args);
    std::int64_t return_value = 0;
    while (!frames_.empty()) {
      if (--steps <= 0) throw Trap{"step limit exceeded"};
      Frame& f = frames_.back();
      const BinFunction& fn =
          module_.functions[static_cast<std::size_t>(f.fn_index)];
      if (f.pc < 0 || f.pc >= fn.size()) throw Trap{"pc out of range"};
      const Instruction& insn = fn.code[static_cast<std::size_t>(f.pc)];
      auto& r = f.regs;
      int next_pc = f.pc + 1;
      switch (insn.op) {
        case Opcode::kNop: break;
        case Opcode::kMovImm: r[insn.a] = insn.imm; break;
        case Opcode::kMovStr: {
          const auto i = static_cast<std::size_t>(insn.imm);
          if (i >= string_addrs_.size()) throw Trap{"bad string index"};
          r[insn.a] = string_addrs_[i];
          break;
        }
        case Opcode::kMov: r[insn.a] = r[insn.b]; break;
        case Opcode::kAdd: r[insn.a] = sem::Add(r[insn.b], r[insn.c]); break;
        case Opcode::kSub: r[insn.a] = sem::Sub(r[insn.b], r[insn.c]); break;
        case Opcode::kMul: r[insn.a] = sem::Mul(r[insn.b], r[insn.c]); break;
        case Opcode::kDiv: r[insn.a] = sem::Div(r[insn.b], r[insn.c]); break;
        case Opcode::kMod: r[insn.a] = sem::Mod(r[insn.b], r[insn.c]); break;
        case Opcode::kAnd: r[insn.a] = r[insn.b] & r[insn.c]; break;
        case Opcode::kOr: r[insn.a] = r[insn.b] | r[insn.c]; break;
        case Opcode::kXor: r[insn.a] = r[insn.b] ^ r[insn.c]; break;
        case Opcode::kShl: r[insn.a] = sem::Shl(r[insn.b], r[insn.c]); break;
        case Opcode::kShr: r[insn.a] = sem::Shr(r[insn.b], r[insn.c]); break;
        case Opcode::kAddI: r[insn.a] = sem::Add(r[insn.b], insn.imm); break;
        case Opcode::kSubI: r[insn.a] = sem::Sub(r[insn.b], insn.imm); break;
        case Opcode::kMulI: r[insn.a] = sem::Mul(r[insn.b], insn.imm); break;
        case Opcode::kDivI: r[insn.a] = sem::Div(r[insn.b], insn.imm); break;
        case Opcode::kModI: r[insn.a] = sem::Mod(r[insn.b], insn.imm); break;
        case Opcode::kAndI: r[insn.a] = r[insn.b] & insn.imm; break;
        case Opcode::kOrI: r[insn.a] = r[insn.b] | insn.imm; break;
        case Opcode::kXorI: r[insn.a] = r[insn.b] ^ insn.imm; break;
        case Opcode::kShlI: r[insn.a] = sem::Shl(r[insn.b], insn.imm); break;
        case Opcode::kShrI: r[insn.a] = sem::Shr(r[insn.b], insn.imm); break;
        case Opcode::kNeg: r[insn.a] = sem::Neg(r[insn.b]); break;
        case Opcode::kNot: r[insn.a] = ~r[insn.b]; break;
        case Opcode::kLea:
          r[insn.a] = sem::Add(r[insn.b], sem::Mul(r[insn.c], insn.imm));
          break;
        case Opcode::kCmp: f.flags = Sign(r[insn.a], r[insn.b]); break;
        case Opcode::kCmpI: f.flags = Sign(r[insn.a], insn.imm); break;
        case Opcode::kSetCond:
          r[insn.a] = CondHolds(insn.cond, f.flags) ? 1 : 0;
          break;
        case Opcode::kCsel:
          r[insn.a] = CondHolds(insn.cond, f.flags) ? r[insn.b] : r[insn.c];
          break;
        case Opcode::kBr: next_pc = static_cast<int>(insn.imm); break;
        case Opcode::kBrCond:
          if (CondHolds(insn.cond, f.flags)) next_pc = static_cast<int>(insn.imm);
          break;
        case Opcode::kJmpTable: {
          const auto t = static_cast<std::size_t>(insn.imm);
          if (t >= fn.jump_tables.size()) throw Trap{"bad jump table"};
          const JumpTable& table = fn.jump_tables[t];
          const std::int64_t index = sem::Sub(r[insn.a], table.base);
          if (index >= 0 &&
              index < static_cast<std::int64_t>(table.targets.size())) {
            next_pc = table.targets[static_cast<std::size_t>(index)];
          } else {
            next_pc = table.default_target;
          }
          break;
        }
        case Opcode::kFrameAddr: r[insn.a] = sem::Add(f.fp, insn.imm); break;
        case Opcode::kLoad: r[insn.a] = Mem(sem::Add(r[insn.b], r[insn.c])); break;
        case Opcode::kLoadI: r[insn.a] = Mem(sem::Add(r[insn.b], insn.imm)); break;
        case Opcode::kStore: SetMem(sem::Add(r[insn.b], r[insn.c]), r[insn.a]); break;
        case Opcode::kStoreI: SetMem(sem::Add(r[insn.b], insn.imm), r[insn.a]); break;
        case Opcode::kArg: {
          const auto i = static_cast<std::size_t>(insn.imm);
          if (f.staged_args.size() <= i) f.staged_args.resize(i + 1, 0);
          f.staged_args[i] = r[insn.a];
          break;
        }
        case Opcode::kCall: {
          const int callee = static_cast<int>(insn.imm);
          if (callee < 0 ||
              callee >= static_cast<int>(module_.functions.size())) {
            throw Trap{"bad call target"};
          }
          f.pc = next_pc;  // return address
          pending_dst_stack_.push_back(insn.a);
          std::vector<std::int64_t> call_args = std::move(f.staged_args);
          f.staged_args.clear();
          PushFrame(callee, call_args);
          continue;  // do not advance the new frame's pc
        }
        case Opcode::kRet: {
          return_value = r[insn.a];
          PopFrame();
          if (!frames_.empty()) {
            // Deliver the return value into the caller's kCall destination.
            frames_.back().regs[pending_dst_stack_.back()] = return_value;
            pending_dst_stack_.pop_back();
          }
          continue;
        }
        case Opcode::kOpcodeCount:
          throw Trap{"bad opcode"};
      }
      f.pc = next_pc;
    }
    return return_value;
  }

  const BinModule& module_;
  const Vm::Options& options_;
  std::vector<std::int64_t> memory_;
  std::vector<std::int64_t> string_addrs_;
  std::int64_t stack_base_ = 0;
  std::int64_t sp_ = 0;
  std::vector<Frame> frames_;
  std::vector<Reg> pending_dst_stack_;
};

}  // namespace

minic::Interpreter::Result Vm::Call(const std::string& function_name,
                                    std::vector<minic::ArgValue> args) {
  return CallIndex(module_.FindFunction(function_name), std::move(args));
}

minic::Interpreter::Result Vm::CallIndex(int fn_index,
                                         std::vector<minic::ArgValue> args) {
  Machine machine(module_, options_);
  return machine.Run(fn_index, std::move(args));
}

}  // namespace asteria::binary
