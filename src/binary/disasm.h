// Textual disassembly of synthetic-ISA code (debugging aid and the basis of
// the instruction-count statistics used by the callee-inlining filter).
#pragma once

#include <string>

#include "binary/module.h"

namespace asteria::binary {

// Renders one instruction, ISA-flavoured register names (e.g. x86 "e0",
// ARM "r0", PPC "g0").
std::string DisasmInstruction(Isa isa, const Instruction& insn);

// Renders a whole function with instruction indices and jump tables.
std::string DisasmFunction(const BinModule& module, const BinFunction& fn);

// Renders a whole module.
std::string DisasmModule(const BinModule& module);

}  // namespace asteria::binary
