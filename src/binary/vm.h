// Virtual machine executing synthetic-ISA modules.
//
// The VM is the differential-testing oracle's second half: for every
// generated MiniC program, Interpreter (source semantics) and Vm (compiled
// semantics, any ISA) must produce identical results.
//
// Machine model: 64-bit word-addressed memory (rodata strings at the bottom,
// an upward-growing stack above them), per-frame
// register files of 32 registers (r31 is the frame pointer, set by the VM at
// entry; r0 carries return values), a signed compare flag, and an argument
// staging area per frame. Per-frame register files stand in for real
// callee-save conventions, which are invisible after decompilation anyway.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "binary/module.h"
#include "minic/interp.h"  // reuses ArgValue/Result & shared semantics

namespace asteria::binary {

class Vm {
 public:
  struct Options {
    std::int64_t max_steps = 4'000'000;
    int max_call_depth = 200;
    // Stack memory size in words.
    std::size_t stack_words = 1 << 20;
  };

  explicit Vm(const BinModule& module) : module_(module), options_(Options{}) {}
  Vm(const BinModule& module, Options options)
      : module_(module), options_(options) {}

  // Calls a function by name with interpreter-compatible arguments; array
  // arguments are materialized in memory and copied back into
  // Result::arrays after the call.
  minic::Interpreter::Result Call(const std::string& function_name,
                                  std::vector<minic::ArgValue> args);

  // Calls a function by index.
  minic::Interpreter::Result CallIndex(int fn_index,
                                       std::vector<minic::ArgValue> args);

 private:
  const BinModule& module_;
  Options options_;
};

}  // namespace asteria::binary
