#include "binary/disasm.h"

#include <sstream>

namespace asteria::binary {

namespace {

std::string RegName(Isa isa, Reg reg) {
  if (reg == kFramePointerReg) return "fp";
  const char* prefix = "r";
  switch (isa) {
    case Isa::kX86: prefix = "e"; break;
    case Isa::kX64: prefix = "q"; break;
    case Isa::kArm: prefix = "r"; break;
    case Isa::kPpc: prefix = "g"; break;
    default: break;
  }
  return prefix + std::to_string(static_cast<int>(reg));
}

}  // namespace

std::string DisasmInstruction(Isa isa, const Instruction& insn) {
  std::ostringstream out;
  auto a = [&] { return RegName(isa, insn.a); };
  auto b = [&] { return RegName(isa, insn.b); };
  auto c = [&] { return RegName(isa, insn.c); };
  out << OpcodeName(insn.op);
  switch (insn.op) {
    case Opcode::kNop: break;
    case Opcode::kMovImm:
    case Opcode::kMovStr:
      out << ' ' << a() << ", #" << insn.imm;
      break;
    case Opcode::kMov:
    case Opcode::kNeg:
    case Opcode::kNot:
      out << ' ' << a() << ", " << b();
      break;
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kMod: case Opcode::kAnd:
    case Opcode::kOr: case Opcode::kXor: case Opcode::kShl:
    case Opcode::kShr:
      out << ' ' << a() << ", " << b() << ", " << c();
      break;
    case Opcode::kAddI: case Opcode::kSubI: case Opcode::kMulI:
    case Opcode::kDivI: case Opcode::kModI: case Opcode::kAndI:
    case Opcode::kOrI: case Opcode::kXorI: case Opcode::kShlI:
    case Opcode::kShrI:
      out << ' ' << a() << ", " << b() << ", #" << insn.imm;
      break;
    case Opcode::kLea:
      out << ' ' << a() << ", [" << b() << " + " << c() << "*" << insn.imm << "]";
      break;
    case Opcode::kCmp:
      out << ' ' << a() << ", " << b();
      break;
    case Opcode::kCmpI:
      out << ' ' << a() << ", #" << insn.imm;
      break;
    case Opcode::kSetCond:
      out << '.' << CondName(insn.cond) << ' ' << a();
      break;
    case Opcode::kCsel:
      out << '.' << CondName(insn.cond) << ' ' << a() << ", " << b() << ", " << c();
      break;
    case Opcode::kBr:
      out << " @" << insn.imm;
      break;
    case Opcode::kBrCond:
      out << '.' << CondName(insn.cond) << " @" << insn.imm;
      break;
    case Opcode::kJmpTable:
      out << ' ' << a() << ", table#" << insn.imm;
      break;
    case Opcode::kFrameAddr:
      out << ' ' << a() << ", fp+" << insn.imm;
      break;
    case Opcode::kLoad:
      out << ' ' << a() << ", [" << b() << " + " << c() << "]";
      break;
    case Opcode::kLoadI:
      out << ' ' << a() << ", [" << b() << " + " << insn.imm << "]";
      break;
    case Opcode::kStore:
      out << ' ' << a() << ", [" << b() << " + " << c() << "]";
      break;
    case Opcode::kStoreI:
      out << ' ' << a() << ", [" << b() << " + " << insn.imm << "]";
      break;
    case Opcode::kArg:
      out << " #" << insn.imm << ", " << a();
      break;
    case Opcode::kCall:
      out << ' ' << a() << ", fn#" << insn.imm;
      break;
    case Opcode::kRet:
      out << ' ' << a();
      break;
    case Opcode::kOpcodeCount:
      out << "?";
      break;
  }
  return out.str();
}

std::string DisasmFunction(const BinModule& module, const BinFunction& fn) {
  std::ostringstream out;
  out << fn.name << ":  ; params=" << fn.num_params
      << " frame=" << fn.frame_words << " words\n";
  for (std::size_t i = 0; i < fn.code.size(); ++i) {
    out << "  " << i << ":\t" << DisasmInstruction(module.isa, fn.code[i])
        << "\n";
  }
  for (std::size_t t = 0; t < fn.jump_tables.size(); ++t) {
    const JumpTable& table = fn.jump_tables[t];
    out << "  table#" << t << ": base=" << table.base << " targets=[";
    for (std::size_t i = 0; i < table.targets.size(); ++i) {
      if (i) out << ", ";
      out << "@" << table.targets[i];
    }
    out << "] default=@" << table.default_target << "\n";
  }
  return out.str();
}

std::string DisasmModule(const BinModule& module) {
  std::ostringstream out;
  out << "; module " << module.name << " (" << IsaName(module.isa) << ")\n";
  for (const BinFunction& fn : module.functions) {
    out << DisasmFunction(module, fn) << "\n";
  }
  return out.str();
}

}  // namespace asteria::binary
