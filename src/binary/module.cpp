#include "binary/module.h"

#include <cstring>

namespace asteria::binary {

bool IsBranch(const Instruction& insn) {
  switch (insn.op) {
    case Opcode::kBr:
    case Opcode::kBrCond:
    case Opcode::kJmpTable:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

bool IsTerminator(const Instruction& insn) {
  switch (insn.op) {
    case Opcode::kBr:
    case Opcode::kJmpTable:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

int BinModule::FindFunction(const std::string& fn_name) const {
  for (std::size_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == fn_name) return static_cast<int>(i);
  }
  return -1;
}

std::size_t BinModule::TotalInstructions() const {
  std::size_t total = 0;
  for (const BinFunction& fn : functions) total += fn.code.size();
  return total;
}

void BinModule::StripSymbols() {
  std::size_t offset = 0x1000;
  for (BinFunction& fn : functions) {
    fn.name = "sub_" + std::to_string(offset);
    offset += fn.code.size() * 8 + 16;
  }
}

namespace {

// Little serialization cursor; all multi-byte values little-endian.
struct Writer {
  std::vector<std::uint8_t> out;

  void U8(std::uint8_t v) { out.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
};

struct Reader {
  const std::vector<std::uint8_t>& in;
  std::size_t pos = 0;
  bool ok = true;

  bool Has(std::size_t n) {
    if (pos + n > in.size()) ok = false;
    return ok;
  }
  std::uint8_t U8() {
    if (!Has(1)) return 0;
    return in[pos++];
  }
  std::uint32_t U32() {
    if (!Has(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[pos++]) << (8 * i);
    return v;
  }
  std::int64_t I64() {
    if (!Has(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[pos++]) << (8 * i);
    return static_cast<std::int64_t>(v);
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!Has(n)) return {};
    std::string s(in.begin() + static_cast<std::ptrdiff_t>(pos),
                  in.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return s;
  }
};

constexpr std::uint32_t kMagic = 0x41535442;  // "ASTB"

}  // namespace

std::vector<std::uint8_t> BinModule::Encode() const {
  Writer w;
  w.U32(kMagic);
  w.U8(static_cast<std::uint8_t>(isa));
  w.Str(name);
  w.U32(static_cast<std::uint32_t>(strings.size()));
  for (const std::string& s : strings) w.Str(s);
  w.U32(static_cast<std::uint32_t>(functions.size()));
  for (const BinFunction& fn : functions) {
    w.Str(fn.name);
    w.U32(static_cast<std::uint32_t>(fn.num_params));
    for (int i = 0; i < fn.num_params; ++i) {
      w.U8(i < static_cast<int>(fn.param_is_array.size()) ? fn.param_is_array[static_cast<std::size_t>(i)] : 0);
    }
    w.U32(static_cast<std::uint32_t>(fn.frame_words));
    w.U32(static_cast<std::uint32_t>(fn.code.size()));
    for (const Instruction& insn : fn.code) {
      w.U8(static_cast<std::uint8_t>(insn.op));
      w.U8(static_cast<std::uint8_t>(insn.cond));
      w.U8(insn.a);
      w.U8(insn.b);
      w.U8(insn.c);
      w.I64(insn.imm);
    }
    w.U32(static_cast<std::uint32_t>(fn.jump_tables.size()));
    for (const JumpTable& table : fn.jump_tables) {
      w.I64(table.base);
      w.U32(static_cast<std::uint32_t>(table.default_target));
      w.U32(static_cast<std::uint32_t>(table.targets.size()));
      for (std::int32_t target : table.targets) {
        w.U32(static_cast<std::uint32_t>(target));
      }
    }
  }
  return std::move(w.out);
}

std::optional<BinModule> BinModule::Decode(
    const std::vector<std::uint8_t>& blob) {
  Reader r{blob};
  if (r.U32() != kMagic) return std::nullopt;
  BinModule module;
  const std::uint8_t isa = r.U8();
  if (isa >= kNumIsas) return std::nullopt;
  module.isa = static_cast<Isa>(isa);
  module.name = r.Str();
  const std::uint32_t num_strings = r.U32();
  if (num_strings > 1'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < num_strings && r.ok; ++i) {
    module.strings.push_back(r.Str());
  }
  const std::uint32_t num_functions = r.U32();
  if (num_functions > 1'000'000) return std::nullopt;
  for (std::uint32_t i = 0; i < num_functions && r.ok; ++i) {
    BinFunction fn;
    fn.name = r.Str();
    fn.num_params = static_cast<int>(r.U32());
    if (fn.num_params > 255) return std::nullopt;
    for (int p = 0; p < fn.num_params; ++p) fn.param_is_array.push_back(r.U8());
    fn.frame_words = static_cast<int>(r.U32());
    const std::uint32_t num_insns = r.U32();
    if (num_insns > 10'000'000) return std::nullopt;
    fn.code.reserve(num_insns);
    for (std::uint32_t k = 0; k < num_insns && r.ok; ++k) {
      Instruction insn;
      const std::uint8_t op = r.U8();
      if (op >= static_cast<std::uint8_t>(Opcode::kOpcodeCount)) return std::nullopt;
      insn.op = static_cast<Opcode>(op);
      insn.cond = static_cast<Cond>(r.U8() % 6);
      insn.a = r.U8();
      insn.b = r.U8();
      insn.c = r.U8();
      insn.imm = r.I64();
      fn.code.push_back(insn);
    }
    const std::uint32_t num_tables = r.U32();
    if (num_tables > 100'000) return std::nullopt;
    for (std::uint32_t t = 0; t < num_tables && r.ok; ++t) {
      JumpTable table;
      table.base = r.I64();
      table.default_target = static_cast<std::int32_t>(r.U32());
      const std::uint32_t num_targets = r.U32();
      if (num_targets > 1'000'000) return std::nullopt;
      for (std::uint32_t k = 0; k < num_targets && r.ok; ++k) {
        table.targets.push_back(static_cast<std::int32_t>(r.U32()));
      }
      fn.jump_tables.push_back(std::move(table));
    }
    module.functions.push_back(std::move(fn));
  }
  if (!r.ok || r.pos != blob.size()) return std::nullopt;
  return module;
}

}  // namespace asteria::binary
