// The four synthetic ISAs of the reproduction (x86 / x64 / ARM / PPC).
//
// The paper's cross-architecture variation comes from real ISAs compiled by
// gcc and lifted by Hex-Rays. Here all four ISAs share one instruction
// *vocabulary* (the union below) but differ in everything a backend can
// exploit, which is what shapes the decompiled ASTs:
//   * register file size (x86: 6 allocatable, x64: 14, ARM: 12, PPC: 28)
//     -> spill-induced extra assignments on register-starved targets
//   * 2-operand destructive arithmetic on x86/x64 (dst must equal lhs)
//     -> extra moves
//   * kLea (base + index*scale) folding on x86/x64 only
//   * kCsel if-conversion on ARM only -> merged basic blocks (paper Fig. 2)
//   * multiply-by-constant strength reduction on PPC only
//   * immediate-operand width: RISC targets materialize wide constants
// The VM executes all four uniformly; per-ISA behaviour is a codegen
// property, exactly as in real toolchains.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace asteria::binary {

enum class Isa : std::uint8_t { kX86 = 0, kX64, kArm, kPpc, kIsaCount };

inline constexpr int kNumIsas = static_cast<int>(Isa::kIsaCount);

std::string_view IsaName(Isa isa);
// Inverse of IsaName; returns kIsaCount when unknown.
Isa IsaFromName(std::string_view name);

// Condition codes for kBrCond / kSetCond / kCsel, evaluated against the
// flags set by the latest kCmp/kCmpI (signed comparison).
enum class Cond : std::uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

Cond NegateCond(Cond cond);
std::string_view CondName(Cond cond);

// Union instruction vocabulary (see header comment; each backend emits a
// subset). Field usage is documented per opcode in instruction.h.
enum class Opcode : std::uint8_t {
  kNop = 0,
  kMovImm,    // ra <- imm
  kMovStr,    // ra <- address of module string #imm
  kMov,       // ra <- rb
  // 3-operand ALU: ra <- rb op rc
  kAdd, kSub, kMul, kDiv, kMod, kAnd, kOr, kXor, kShl, kShr,
  // immediate ALU: ra <- rb op imm
  kAddI, kSubI, kMulI, kDivI, kModI, kAndI, kOrI, kXorI, kShlI, kShrI,
  kNeg,       // ra <- -rb
  kNot,       // ra <- ~rb
  kLea,       // ra <- rb + rc * imm            (x86/x64 only)
  kCmp,       // flags <- sign(ra - rb)
  kCmpI,      // flags <- sign(ra - imm)
  kSetCond,   // ra <- flags satisfy cond ? 1 : 0
  kCsel,      // ra <- flags satisfy cond ? rb : rc   (ARM only)
  kBr,        // pc <- imm (instruction index)
  kBrCond,    // if flags satisfy cond: pc <- imm
  kJmpTable,  // pc <- jump table #imm indexed by ra (see JumpTable)
  kFrameAddr, // ra <- fp + imm (word offset)
  kLoad,      // ra <- mem[rb + rc]
  kLoadI,     // ra <- mem[rb + imm]
  kStore,     // mem[rb + rc] <- ra
  kStoreI,    // mem[rb + imm] <- ra
  kArg,       // stage call argument #imm <- ra
  kCall,      // call function #imm; ra <- return value
  kRet,       // return ra
  kOpcodeCount,
};

std::string_view OpcodeName(Opcode op);

// Per-ISA backend properties consumed by the compiler.
struct IsaSpec {
  Isa isa;
  // Number of general-purpose registers the allocator may use (r0 is also
  // the return-value register on every target).
  int allocatable_registers;
  // 2-operand destructive ALU (dst must alias lhs) -> fixup moves.
  bool two_operand_alu;
  // kLea available.
  bool has_lea;
  // kCsel available (enables if-conversion).
  bool has_csel;
  // Multiply-by-constant is strength-reduced to shifts/adds.
  bool strength_reduce_mul;
  // Largest |imm| representable in an immediate ALU operand; wider
  // constants are materialized with kMovImm first.
  std::int64_t max_alu_imm;
  // Maximum arguments passed in the register file (the rest conceptually go
  // through the stack; modeled uniformly by kArg but counted in stats).
  int reg_args;
  // Callee size (IR instructions) below which calls are inlined. Differs per
  // ISA, which makes callee counts diverge across architectures — the effect
  // the paper's β-filter calibration compensates for (§III-C).
  int inline_limit;
  // Switch lowering strategy: minimum dense-case count for a jump table
  // (<= 0 disables tables entirely, PPC-style compare chains only). Differs
  // per ISA, so the same switch decompiles to `switch` on one target and an
  // if-chain on another — a major cross-arch AST/CFG divergence source.
  int jump_table_min;
  // Rewrites the Euclidean index-wrap sequence (mod/shr/and/add) into a
  // single AND mask when the array size is a power of two (RISC targets).
  bool mask_wrap_idiom;
  // Rewrites division by a power-of-two constant into the sign-fix shift
  // sequence (PPC-style).
  bool shift_division;
  // Rotates loops into guarded do-while form (duplicated exit test at the
  // bottom), like gcc -O2; reshapes the decompiled control flow.
  bool rotate_loops;
};

const IsaSpec& GetIsaSpec(Isa isa);

// Register-file conventions shared by all four ISAs: 32 registers, r31 is
// the frame pointer (set by the VM at entry), r0 carries return values.
inline constexpr std::uint8_t kFramePointerReg = 31;
inline constexpr std::uint8_t kReturnReg = 0;
inline constexpr int kNumRegs = 32;

}  // namespace asteria::binary
