// Synthetic binary object format: instructions, functions, modules.
//
// A BinModule is the analog of one compiled ELF: a list of functions (with
// or without symbol names — firmware strips them), a string table, and jump
// tables. Modules serialize to a flat byte blob (Encode/Decode) which the
// firmware packer embeds into images.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "binary/isa.h"

namespace asteria::binary {

using Reg = std::uint8_t;

// One machine instruction. Field usage by opcode is documented in isa.h.
struct Instruction {
  Opcode op = Opcode::kNop;
  Cond cond = Cond::kEq;
  Reg a = 0;
  Reg b = 0;
  Reg c = 0;
  std::int64_t imm = 0;

  static Instruction Make(Opcode op, Reg a = 0, Reg b = 0, Reg c = 0,
                          std::int64_t imm = 0, Cond cond = Cond::kEq) {
    return Instruction{op, cond, a, b, c, imm};
  }
};

// True when the instruction can transfer control away from fallthrough.
bool IsBranch(const Instruction& insn);
// True when execution never falls through to the next instruction.
bool IsTerminator(const Instruction& insn);
// True for call instructions.
inline bool IsCall(const Instruction& insn) { return insn.op == Opcode::kCall; }

// Dense switch dispatch: pc <- targets[ra - base] if in range, else
// default_target.
struct JumpTable {
  std::int64_t base = 0;
  std::vector<std::int32_t> targets;
  std::int32_t default_target = 0;
};

// One compiled function.
struct BinFunction {
  std::string name;  // empty/"sub_<n>" once stripped
  int num_params = 0;
  // Bitmask-free per-param array flag (index i -> param i is an array ref).
  std::vector<std::uint8_t> param_is_array;
  // Frame size in 64-bit words (params live in slots [0, num_params)).
  int frame_words = 0;
  std::vector<Instruction> code;
  std::vector<JumpTable> jump_tables;

  int size() const { return static_cast<int>(code.size()); }
};

// One compiled translation unit ("binary file").
struct BinModule {
  Isa isa = Isa::kX86;
  std::string name;                 // e.g. "libfoo" — the paper keys ground
                                    // truth on (library, function) pairs
  std::vector<BinFunction> functions;
  std::vector<std::string> strings;

  int FindFunction(const std::string& fn_name) const;
  std::size_t TotalInstructions() const;

  // Replaces symbol names with IDA-style "sub_<offset>" (§IV-B: firmware
  // symbols are stripped).
  void StripSymbols();

  // Flat byte serialization.
  std::vector<std::uint8_t> Encode() const;
  static std::optional<BinModule> Decode(const std::vector<std::uint8_t>& blob);
};

}  // namespace asteria::binary
