// The vulnerability library of §V / Table IV: seven CVE-modeled vulnerable
// functions, written in MiniC (the paper's real CVE functions are listed in
// Table IV; these synthetic stand-ins preserve the experiment's shape —
// DESIGN.md §2).
//
// Each entry carries the vulnerable source and a patched variant (the patch
// adds/changes a bounds or overflow check, so the two ASTs are close but
// distinguishable), plus the version metadata used by criterion A of the
// confirmation protocol.
#pragma once

#include <string>
#include <vector>

namespace asteria::firmware {

struct VulnSpec {
  std::string cve;                // e.g. "CVE-2016-2105"
  std::string software;           // e.g. "openssl"
  std::string vulnerable_version; // version string shipped when vulnerable
  std::string patched_version;    // version string after the fix
  std::string function;           // vulnerable function name
  std::string vulnerable_source;  // full MiniC program
  std::string patched_source;     // same program with the fix applied
};

// The seven entries of Table IV.
const std::vector<VulnSpec>& VulnLibrary();

}  // namespace asteria::firmware
