#include "firmware/image.h"

namespace asteria::firmware {

namespace {

constexpr std::uint32_t kImageMagic = 0x46545341;  // "ASTF"

void PutU32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void PutStr(std::vector<std::uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

std::uint32_t Checksum(const std::vector<std::uint8_t>& data,
                       std::size_t begin, std::size_t end) {
  std::uint32_t sum = 2166136261u;
  for (std::size_t i = begin; i < end; ++i) {
    sum ^= data[i];
    sum *= 16777619u;
  }
  return sum;
}

struct Cursor {
  const std::vector<std::uint8_t>& data;
  std::size_t pos = 0;
  bool ok = true;

  bool Has(std::size_t n) {
    if (pos + n > data.size()) ok = false;
    return ok;
  }
  std::uint32_t U32() {
    if (!Has(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    if (!Has(n)) return {};
    std::string s(data.begin() + static_cast<std::ptrdiff_t>(pos),
                  data.begin() + static_cast<std::ptrdiff_t>(pos + n));
    pos += n;
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> Pack(const FirmwareImage& image) {
  std::vector<std::uint8_t> out;
  PutU32(&out, kImageMagic);
  PutStr(&out, image.vendor);
  PutStr(&out, image.model);
  PutStr(&out, image.version);
  PutU32(&out, static_cast<std::uint32_t>(image.modules.size()));
  for (const binary::BinModule& module : image.modules) {
    const std::vector<std::uint8_t> blob = module.Encode();
    PutU32(&out, static_cast<std::uint32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  PutU32(&out, Checksum(out, 0, out.size()));
  return out;
}

std::optional<FirmwareImage> Unpack(const std::vector<std::uint8_t>& blob) {
  if (blob.size() < 8) return std::nullopt;
  // Validate trailing checksum first.
  Cursor tail{blob, blob.size() - 4};
  const std::uint32_t stored = tail.U32();
  if (stored != Checksum(blob, 0, blob.size() - 4)) return std::nullopt;

  Cursor cursor{blob};
  if (cursor.U32() != kImageMagic) return std::nullopt;
  FirmwareImage image;
  image.vendor = cursor.Str();
  image.model = cursor.Str();
  image.version = cursor.Str();
  const std::uint32_t count = cursor.U32();
  if (!cursor.ok || count > 10'000) return std::nullopt;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t size = cursor.U32();
    if (!cursor.Has(size)) return std::nullopt;
    std::vector<std::uint8_t> module_blob(
        blob.begin() + static_cast<std::ptrdiff_t>(cursor.pos),
        blob.begin() + static_cast<std::ptrdiff_t>(cursor.pos + size));
    cursor.pos += size;
    auto module = binary::BinModule::Decode(module_blob);
    if (!module.has_value()) return std::nullopt;
    image.modules.push_back(std::move(*module));
  }
  if (cursor.pos != blob.size() - 4) return std::nullopt;
  return image;
}

}  // namespace asteria::firmware
