// End-to-end vulnerability search pipeline (§V).
//
// BuildFirmwareCorpus generates vendor firmware images (NetGear / Schneider /
// Dlink), plants vulnerable or patched CVE functions into a subset, packs
// and re-unpacks every image (exercising the binwalk-analog path), strips
// symbols, and decompiles everything. RunVulnSearch encodes all firmware
// functions and the CVE library with a trained Asteria model, scores every
// (function, CVE) pair with the fast online path, filters by threshold, and
// applies the paper's confirmation criteria:
//   A: the candidate comes from the same software and a vulnerable version
//   B: the similarity score is (numerically) 1
// Ground truth (which planted function is really the vulnerable one) is
// recorded at build time so confirmations can be validated automatically.
#pragma once

#include <string>
#include <vector>

#include "core/asteria.h"
#include "firmware/image.h"
#include "firmware/vulnlib.h"
#include "util/pipeline_report.h"

namespace asteria::firmware {

struct FirmwareCorpusConfig {
  int images = 30;
  std::uint64_t seed = 99;
  // Probability that an image ships a CVE-library software module at all;
  // when it does, this fraction is still on the vulnerable version.
  double software_probability = 0.8;
  double vulnerable_probability = 0.6;
  int filler_packages_per_image = 2;
  int beta = 4;
};

// One decompiled firmware function with build-time ground truth.
struct FirmwareFunction {
  int image = 0;                 // index into FirmwareCorpus::images
  std::string module;            // module (software) name
  std::string version;           // software version string
  std::string symbol;            // stripped name: sub_xxx
  core::FunctionFeature feature; // preprocessed AST + callee count
  // Ground truth: CVE id if this is the planted vulnerable function, empty
  // otherwise. `patched` marks the fixed variant of a CVE function.
  std::string truth_cve;
  bool patched = false;
};

struct FirmwareCorpus {
  std::vector<FirmwareImage> images;
  std::vector<FirmwareFunction> functions;
  int unpack_failures = 0;
  // Per-function/image outcome accounting (stage "firmware-corpus").
  util::PipelineReport report;
};

FirmwareCorpus BuildFirmwareCorpus(const FirmwareCorpusConfig& config);

// Per-CVE search outcome (one Table IV row).
struct CveSearchResult {
  std::string cve;
  std::string software;
  std::string function;
  int candidates = 0;       // scores above threshold
  int criteria_a = 0;       // same software + vulnerable version
  int criteria_b = 0;       // score == 1 (within 1e-9)
  int confirmed = 0;        // candidates that are truly the CVE function
  int false_positives = 0;  // candidates that are not
  std::vector<std::string> affected_models;
};

struct VulnSearchResult {
  std::vector<CveSearchResult> per_cve;
  int total_confirmed = 0;
  int total_candidates = 0;
  double threshold = 0.0;
  // Per-query/encoding outcome accounting (stage "vuln-search"): failed CVE
  // query compilations and corpus functions excluded from scoring are
  // counted here, never silently dropped.
  util::PipelineReport report;
};

// Reference ISA used to compile the CVE library for querying.
inline constexpr int kQueryIsa = 0;  // x86

// Offline phase: one encoding per corpus function, in corpus order. A
// function whose encoding fails (throws, non-finite values, or the
// firmware.encode failpoint) keeps its slot as an empty 0x0 placeholder so
// positional alignment with the corpus survives; the failure is counted in
// `report` (stage "firmware-encode") when non-null.
std::vector<nn::Matrix> EncodeFirmwareCorpus(
    const core::AsteriaModel& model, const FirmwareCorpus& corpus,
    util::PipelineReport* report = nullptr);

// Persist/reload the offline encodings (kKindEncodings container,
// docs/FORMATS.md). The snapshot is fingerprinted against the model
// weights; Load additionally requires the entry count to match the corpus
// so a cache from a different corpus build fails loudly.
bool SaveFirmwareEncodings(const std::vector<nn::Matrix>& encodings,
                           const core::AsteriaModel& model,
                           const std::string& path, std::string* error);
bool LoadFirmwareEncodings(std::vector<nn::Matrix>* encodings,
                           const core::AsteriaModel& model,
                           std::size_t expected_count, const std::string& path,
                           std::string* error);

// Runs the search with a trained model at the given score threshold.
VulnSearchResult RunVulnSearch(const core::AsteriaModel& model,
                               const FirmwareCorpus& corpus,
                               double threshold, int beta = 4);

// Same, but with precomputed offline encodings (corpus order).
VulnSearchResult RunVulnSearch(const core::AsteriaModel& model,
                               const FirmwareCorpus& corpus,
                               const std::vector<nn::Matrix>& encodings,
                               double threshold, int beta = 4);

// Warm-start variant: reuses `cache_path` when it holds valid encodings
// for this (model, corpus), otherwise encodes and refreshes the cache.
VulnSearchResult RunVulnSearchCached(const core::AsteriaModel& model,
                                     const FirmwareCorpus& corpus,
                                     double threshold, int beta,
                                     const std::string& cache_path);

}  // namespace asteria::firmware
