#include "firmware/search.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <set>

#include "compiler/compile.h"
#include "dataset/generator.h"
#include "decompiler/decompile.h"
#include "minic/parser.h"
#include "minic/sema.h"
#include "store/container.h"
#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"

namespace asteria::firmware {

namespace {

// Injects a per-function encoding failure into EncodeFirmwareCorpus
// (isolation testing: the slot degrades to a placeholder, search continues).
util::Failpoint fp_firmware_encode("firmware.encode");

util::Counter c_fw_cache_hit("firmware.cache_hit");
util::Counter c_fw_cache_miss("firmware.cache_miss");
util::Counter c_fw_quarantined("firmware.cache_quarantined");
util::Counter c_fw_confirmed("firmware.confirmed");
// Candidates above threshold per CVE query — deterministic per seed/model.
util::Histogram h_fw_candidates("firmware.candidates");

bool AllFinite(const nn::Matrix& m) {
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!std::isfinite(m.data()[i])) return false;
  }
  return true;
}

struct VendorSpec {
  const char* vendor;
  std::vector<const char*> models;
};

const std::vector<VendorSpec>& Vendors() {
  static const std::vector<VendorSpec> kVendors = {
      {"NetGear", {"R7000", "D7000", "R8000", "R7500", "D7800", "R7800",
                   "R6250", "R7900", "R6700", "FVS318Gv2"}},
      {"Schneider", {"BMX-NOE", "TM221", "PM5560"}},
      {"Dlink", {"DSN-6200", "DIR-865L", "DCS-930L"}},
  };
  return kVendors;
}

binary::BinModule CompileSource(const std::string& source,
                                const std::string& name, binary::Isa isa) {
  minic::Program program;
  std::string error;
  if (!minic::Parse(source, &program, &error) ||
      !minic::Check(program, &error)) {
    ASTERIA_LOG(Error) << "vuln-library source broken (" << name
                       << "): " << error;
    return binary::BinModule{};
  }
  auto compiled = compiler::CompileProgram(program, isa, name);
  if (!compiled.ok) {
    ASTERIA_LOG(Error) << "vuln-library compile failed (" << name
                       << "): " << compiled.error;
    return binary::BinModule{};
  }
  return std::move(compiled.module);
}

}  // namespace

FirmwareCorpus BuildFirmwareCorpus(const FirmwareCorpusConfig& config) {
  FirmwareCorpus corpus;
  corpus.report.stage = "firmware-corpus";
  util::Rng rng(config.seed);
  dataset::GeneratorConfig generator_config;
  generator_config.min_functions = 3;
  generator_config.max_functions = 6;

  for (int img = 0; img < config.images; ++img) {
    const VendorSpec& vendor = Vendors()[rng.NextWeighted({5.0, 1.5, 2.5})];
    FirmwareImage image;
    image.vendor = vendor.vendor;
    image.model = vendor.models[rng.NextBounded(vendor.models.size())];
    image.version = "v" + std::to_string(rng.NextInt(1, 3)) + "." +
                    std::to_string(rng.NextInt(0, 9));
    const binary::Isa isa =
        static_cast<binary::Isa>(rng.NextWeighted({1.0, 0.2, 5.0, 1.2}));

    // Filler packages (vendor-specific code).
    for (int p = 0; p < config.filler_packages_per_image; ++p) {
      minic::Program program = dataset::GenerateProgram(generator_config, rng);
      std::string error;
      if (!minic::Check(program, &error)) continue;
      auto compiled = compiler::CompileProgram(
          program, isa, "vendor_" + std::to_string(img) + "_" + std::to_string(p));
      if (compiled.ok) image.modules.push_back(std::move(compiled.module));
    }

    // Possibly ship CVE-library software.
    struct Plant {
      std::string cve;
      std::string function;
      bool patched;
    };
    std::vector<Plant> plants;
    if (rng.NextBool(config.software_probability)) {
      // Ship 1-3 distinct softwares.
      const int count = static_cast<int>(rng.NextInt(1, 3));
      std::set<std::size_t> chosen;
      for (int k = 0; k < count; ++k) {
        chosen.insert(rng.NextBounded(VulnLibrary().size()));
      }
      for (std::size_t v : chosen) {
        const VulnSpec& spec = VulnLibrary()[v];
        const bool vulnerable = rng.NextBool(config.vulnerable_probability);
        binary::BinModule module = CompileSource(
            vulnerable ? spec.vulnerable_source : spec.patched_source,
            spec.software + "-" +
                (vulnerable ? spec.vulnerable_version : spec.patched_version),
            isa);
        if (module.functions.empty()) continue;
        plants.push_back({spec.cve, spec.function, !vulnerable});
        image.modules.push_back(std::move(module));
      }
    }

    // Strip symbols but remember which stripped name held the CVE function.
    struct TruthEntry {
      std::size_t module;
      std::string stripped;
      std::string cve;
      bool patched;
    };
    std::vector<TruthEntry> truths;
    {
      std::size_t plant_index = 0;
      for (std::size_t m = 0; m < image.modules.size(); ++m) {
        binary::BinModule& module = image.modules[m];
        const bool is_software = module.name.find("vendor_") != 0;
        std::string target_fn;
        std::string cve;
        bool patched = false;
        if (is_software && plant_index < plants.size()) {
          target_fn = plants[plant_index].function;
          cve = plants[plant_index].cve;
          patched = plants[plant_index].patched;
          ++plant_index;
        }
        std::vector<std::string> old_names;
        for (const auto& fn : module.functions) old_names.push_back(fn.name);
        module.StripSymbols();
        for (std::size_t f = 0; f < module.functions.size(); ++f) {
          if (!target_fn.empty() && old_names[f] == target_fn) {
            truths.push_back({m, module.functions[f].name, cve, patched});
          }
        }
      }
    }

    // Pack + unpack round trip (the binwalk-analog path).
    const std::vector<std::uint8_t> blob = Pack(image);
    auto unpacked = Unpack(blob);
    if (!unpacked.has_value()) {
      ++corpus.unpack_failures;
      corpus.report.AddFailed("image " + std::to_string(img) +
                              ": unpack failed");
      continue;
    }
    const int image_index = static_cast<int>(corpus.images.size());
    corpus.images.push_back(std::move(*unpacked));
    const FirmwareImage& stored = corpus.images.back();

    for (std::size_t m = 0; m < stored.modules.size(); ++m) {
      const binary::BinModule& module = stored.modules[m];
      auto decompiled = decompiler::DecompileModule(module, config.beta);
      for (auto& df : decompiled) {
        if (!df.error.empty()) {
          corpus.report.AddFailed(module.name + "/" + df.name + ": " +
                                  df.error);
          continue;
        }
        if (df.tree.size() < 5) {
          corpus.report.AddSkipped();
          continue;
        }
        corpus.report.AddOk();
        FirmwareFunction entry;
        entry.image = image_index;
        entry.module = module.name;
        entry.version = stored.version;
        entry.symbol = df.name;
        entry.feature.name = module.name + "::" + df.name;
        entry.feature.tree = ast::ToLeftChildRightSibling(df.tree);
        entry.feature.callee_count = df.callee_count;
        for (const TruthEntry& truth : truths) {
          if (truth.module == m && truth.stripped == df.name) {
            entry.truth_cve = truth.cve;
            entry.patched = truth.patched;
          }
        }
        corpus.functions.push_back(std::move(entry));
      }
    }
  }
  return corpus;
}

std::vector<nn::Matrix> EncodeFirmwareCorpus(const core::AsteriaModel& model,
                                             const FirmwareCorpus& corpus,
                                             util::PipelineReport* report) {
  ASTERIA_SPAN("firmware-encode");
  util::PipelineReport local;
  local.stage = "firmware-encode";
  std::vector<nn::Matrix> encodings;
  encodings.reserve(corpus.functions.size());
  for (const FirmwareFunction& fn : corpus.functions) {
    // A failed function keeps its slot as an empty 0x0 placeholder so the
    // positional alignment with corpus.functions survives.
    if (fp_firmware_encode.ShouldFail()) {
      local.AddFailed(fn.feature.name +
                      ": injected failure (failpoint firmware.encode)");
      encodings.emplace_back();
      continue;
    }
    try {
      nn::Matrix encoding = model.Encode(fn.feature.tree);
      if (!AllFinite(encoding)) {
        local.AddFailed(fn.feature.name + ": encoding has non-finite values");
        encodings.emplace_back();
        continue;
      }
      encodings.push_back(std::move(encoding));
      local.AddOk();
    } catch (const std::exception& e) {
      local.AddFailed(fn.feature.name + ": " + e.what());
      encodings.emplace_back();
    }
  }
  util::PublishPipelineReport(local);
  if (report != nullptr) report->Merge(local);
  return encodings;
}

namespace {

constexpr std::uint32_t kTagEncodingsMeta = store::FourCc('E', 'M', 'E', 'T');
constexpr std::uint32_t kTagEncodingsData = store::FourCc('E', 'V', 'E', 'C');
constexpr std::uint32_t kEncodingsSchemaVersion = 1;

}  // namespace

bool SaveFirmwareEncodings(const std::vector<nn::Matrix>& encodings,
                           const core::AsteriaModel& model,
                           const std::string& path, std::string* error) {
  store::Writer writer;
  if (!writer.Open(path, store::kKindEncodings, error)) return false;
  store::ChunkBuilder meta;
  meta.PutU32(kEncodingsSchemaVersion);
  meta.PutU32(model.WeightsFingerprint());
  meta.PutU64(encodings.size());
  if (!writer.WriteChunk(kTagEncodingsMeta, meta, error)) return false;
  store::ChunkBuilder data;
  for (const nn::Matrix& encoding : encodings) {
    data.PutU32(static_cast<std::uint32_t>(encoding.rows()));
    data.PutU32(static_cast<std::uint32_t>(encoding.cols()));
    data.PutF64Array(encoding.data(), encoding.size());
  }
  if (!writer.WriteChunk(kTagEncodingsData, data, error)) return false;
  return writer.Finish(error);
}

bool LoadFirmwareEncodings(std::vector<nn::Matrix>* encodings,
                           const core::AsteriaModel& model,
                           std::size_t expected_count, const std::string& path,
                           std::string* error) {
  store::Reader reader;
  if (!reader.Open(path, store::kKindEncodings, error)) return false;
  std::uint64_t declared_count = 0;
  bool saw_meta = false;
  std::vector<nn::Matrix> loaded;
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < reader.chunks().size(); ++i) {
    const store::ChunkInfo& info = reader.chunks()[i];
    if (info.tag != kTagEncodingsMeta && info.tag != kTagEncodingsData) {
      continue;
    }
    if (!reader.ReadChunk(i, &payload, error)) return false;
    store::ChunkParser parser(payload);
    if (info.tag == kTagEncodingsMeta) {
      std::uint32_t schema = 0, fingerprint = 0;
      if (!parser.GetU32(&schema, error) ||
          !parser.GetU32(&fingerprint, error) ||
          !parser.GetU64(&declared_count, error)) {
        return false;
      }
      if (schema != kEncodingsSchemaVersion) {
        *error = path + ": unsupported encodings schema version " +
                 std::to_string(schema);
        return false;
      }
      if (fingerprint != model.WeightsFingerprint()) {
        *error = path + ": encodings were produced by different model "
                        "weights (fingerprint mismatch)";
        return false;
      }
      if (declared_count != expected_count) {
        *error = path + ": cache holds " + std::to_string(declared_count) +
                 " encodings but the corpus has " +
                 std::to_string(expected_count) + " functions — stale cache";
        return false;
      }
      saw_meta = true;
      continue;
    }
    if (!saw_meta) {
      *error = path + ": EVEC chunk before EMET metadata";
      return false;
    }
    while (!parser.AtEnd()) {
      std::uint32_t rows = 0, cols = 0;
      if (!parser.GetU32(&rows, error) || !parser.GetU32(&cols, error)) {
        return false;
      }
      const std::uint64_t elements =
          static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
      if (elements * sizeof(double) > parser.remaining()) {
        *error = path + ": encoding " + std::to_string(loaded.size()) +
                 " declares " + std::to_string(rows) + "x" +
                 std::to_string(cols) + " but the chunk is too small";
        return false;
      }
      // 0x0 entries are legitimate placeholders for functions whose
      // encoding failed; anything else must match what this model produces
      // and hold finite values.
      const int hidden_dim = model.config().siamese.encoder.hidden_dim;
      if (elements != 0 &&
          (static_cast<int>(rows) != hidden_dim || cols != 1)) {
        *error = path + ": encoding " + std::to_string(loaded.size()) +
                 " has shape " + std::to_string(rows) + "x" +
                 std::to_string(cols) + " but this model produces " +
                 std::to_string(hidden_dim) + "x1 encodings";
        return false;
      }
      nn::Matrix m(static_cast<int>(rows), static_cast<int>(cols));
      if (!parser.GetF64Array(m.data(), m.size(), error)) return false;
      if (!AllFinite(m)) {
        *error = path + ": encoding " + std::to_string(loaded.size()) +
                 " contains non-finite values (NaN/Inf) — corrupted cache";
        return false;
      }
      loaded.push_back(std::move(m));
    }
  }
  if (!saw_meta) {
    *error = path + ": missing EMET metadata chunk";
    return false;
  }
  if (loaded.size() != declared_count) {
    *error = path + ": EMET declares " + std::to_string(declared_count) +
             " encodings but " + std::to_string(loaded.size()) +
             " were stored";
    return false;
  }
  *encodings = std::move(loaded);
  return true;
}

VulnSearchResult RunVulnSearch(const core::AsteriaModel& model,
                               const FirmwareCorpus& corpus, double threshold,
                               int beta) {
  // Encode the whole firmware corpus once (offline phase).
  util::PipelineReport encode_report;
  const std::vector<nn::Matrix> encodings =
      EncodeFirmwareCorpus(model, corpus, &encode_report);
  VulnSearchResult result =
      RunVulnSearch(model, corpus, encodings, threshold, beta);
  result.report.Merge(encode_report);
  return result;
}

VulnSearchResult RunVulnSearchCached(const core::AsteriaModel& model,
                                     const FirmwareCorpus& corpus,
                                     double threshold, int beta,
                                     const std::string& cache_path) {
  if (cache_path.empty()) return RunVulnSearch(model, corpus, threshold, beta);
  std::string error;
  std::vector<nn::Matrix> encodings;
  if (LoadFirmwareEncodings(&encodings, model, corpus.functions.size(),
                            cache_path, &error)) {
    c_fw_cache_hit.Increment();
    ASTERIA_LOG(Info) << "firmware encodings cache hit: " << cache_path;
    return RunVulnSearch(model, corpus, encodings, threshold, beta);
  }
  c_fw_cache_miss.Increment();
  ASTERIA_LOG(Info) << "firmware encodings cache miss (" << error
                    << "); re-encoding";
  // Move a present-but-unloadable cache aside before writing a fresh one.
  if (std::FILE* f = std::fopen(cache_path.c_str(), "rb")) {
    std::fclose(f);
    std::string quarantined;
    if (store::QuarantineFile(cache_path, &quarantined)) {
      c_fw_quarantined.Increment();
      ASTERIA_LOG(Warn) << "quarantined corrupt encodings cache to "
                        << quarantined;
    }
  }
  util::PipelineReport encode_report;
  encodings = EncodeFirmwareCorpus(model, corpus, &encode_report);
  if (!SaveFirmwareEncodings(encodings, model, cache_path, &error)) {
    ASTERIA_LOG(Warn) << "firmware encodings cache write failed: " << error;
  }
  VulnSearchResult result =
      RunVulnSearch(model, corpus, encodings, threshold, beta);
  result.report.Merge(encode_report);
  return result;
}

VulnSearchResult RunVulnSearch(const core::AsteriaModel& model,
                               const FirmwareCorpus& corpus,
                               const std::vector<nn::Matrix>& encodings,
                               double threshold, int beta) {
  if (encodings.size() != corpus.functions.size()) {
    ASTERIA_LOG(Error) << "RunVulnSearch: " << encodings.size()
                       << " encodings for " << corpus.functions.size()
                       << " corpus functions; re-encoding";
    return RunVulnSearch(model, corpus, threshold, beta);
  }
  VulnSearchResult result;
  result.threshold = threshold;
  result.report.stage = "vuln-search";
  // Functions whose offline encoding failed sit in their slot as empty 0x0
  // placeholders; exclude them from scoring once (not once per CVE).
  bool first_missing = true;
  for (const nn::Matrix& encoding : encodings) {
    if (encoding.size() == 0) {
      result.report.AddSkipped(
          first_missing ? "function without encoding excluded from scoring"
                        : "");
      first_missing = false;
    }
  }

  for (const VulnSpec& spec : VulnLibrary()) {
    CveSearchResult row;
    row.cve = spec.cve;
    row.software = spec.software;
    row.function = spec.function;

    // Compile + decompile the query function on the reference ISA.
    binary::BinModule module = CompileSource(
        spec.vulnerable_source, spec.software, static_cast<binary::Isa>(kQueryIsa));
    const int fn_index = module.FindFunction(spec.function);
    if (fn_index < 0) {
      result.report.AddFailed(spec.cve + ": query function '" + spec.function +
                              "' failed to compile — CVE row is empty");
      result.per_cve.push_back(std::move(row));
      continue;
    }
    result.report.AddOk();
    auto query = decompiler::DecompileFunction(module, fn_index, beta);
    const ast::BinaryAst query_tree = ast::ToLeftChildRightSibling(query.tree);
    const nn::Matrix query_encoding = model.Encode(query_tree);

    std::set<std::string> models_hit;
    for (std::size_t i = 0; i < corpus.functions.size(); ++i) {
      if (encodings[i].size() == 0) continue;  // placeholder (already counted)
      const FirmwareFunction& fn = corpus.functions[i];
      const double ast_similarity =
          model.SimilarityFromEncodings(query_encoding, encodings[i]);
      const double score = core::CalibratedSimilarity(
          ast_similarity, query.callee_count, fn.feature.callee_count);
      if (score < threshold) continue;
      ++row.candidates;
      const bool is_vulnerable = fn.truth_cve == spec.cve && !fn.patched;
      // Criterion A: same software, vulnerable version. Module names encode
      // "software-version"; patched plants carry the fixed version string.
      const std::string prefix = spec.software + "-";
      const bool same_software = fn.module.rfind("sub_", 0) != 0 &&
                                 fn.module.rfind(prefix, 0) == 0;
      const bool version_vulnerable =
          fn.module == prefix + spec.vulnerable_version;
      if (same_software && version_vulnerable) ++row.criteria_a;
      if (score > 1.0 - 1e-9) ++row.criteria_b;
      if (is_vulnerable) {
        ++row.confirmed;
        models_hit.insert(corpus.images[static_cast<std::size_t>(fn.image)].model);
      } else {
        ++row.false_positives;
      }
    }
    row.affected_models.assign(models_hit.begin(), models_hit.end());
    c_fw_confirmed.Add(static_cast<std::uint64_t>(row.confirmed));
    h_fw_candidates.Observe(static_cast<std::uint64_t>(row.candidates));
    result.total_confirmed += row.confirmed;
    result.total_candidates += row.candidates;
    result.per_cve.push_back(std::move(row));
  }
  util::PublishPipelineReport(result.report);
  return result;
}

}  // namespace asteria::firmware
