// Synthetic firmware image format and packer/unpacker (binwalk analog).
//
// An image holds vendor/model/version metadata and a set of binary modules
// (symbol-stripped, as vendors ship them). The on-disk format has a magic,
// a section table and a trailing checksum; Unpack validates both — images
// that fail to parse are skipped, mirroring §IV-B's "not all firmware can
// be unpacked".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "binary/module.h"

namespace asteria::firmware {

struct FirmwareImage {
  std::string vendor;
  std::string model;
  std::string version;
  std::vector<binary::BinModule> modules;
};

// Serializes an image to a flat blob.
std::vector<std::uint8_t> Pack(const FirmwareImage& image);

// Parses a blob; returns nullopt on bad magic/section table/checksum.
std::optional<FirmwareImage> Unpack(const std::vector<std::uint8_t>& blob);

}  // namespace asteria::firmware
