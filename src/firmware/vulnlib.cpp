#include "firmware/vulnlib.h"

namespace asteria::firmware {

namespace {

// Shared helper bodies keep each program self-contained (MiniC has no
// external linkage); array parameters are accessed through & 7 masks by the
// project-wide convention (indices stay in bounds for any >= 8-word array).

const char* kOpensslEncodeVuln = R"(
int evp_encode_block(int out[], int in[], int n) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    acc = (acc << 6) | (in[i & 7] & 63);
    out[i & 7] = (acc >> 2) & 255;
  }
  return n + n / 3 + 4;
}
int EVP_EncodeUpdate(int out[], int in[], int inl) {
  int total = 0;
  int chunk = 48;
  while (inl > 0) {
    int take = inl;
    if (take > chunk) { take = chunk; }
    int produced = evp_encode_block(out, in, take);
    total = total + produced;
    inl = inl - take;
  }
  out[0] = total;
  return total;
}
)";

const char* kOpensslEncodePatched = R"(
int evp_encode_block(int out[], int in[], int n) {
  int i;
  int acc = 0;
  for (i = 0; i < n; i++) {
    acc = (acc << 6) | (in[i & 7] & 63);
    out[i & 7] = (acc >> 2) & 255;
  }
  return n + n / 3 + 4;
}
int EVP_EncodeUpdate(int out[], int in[], int inl) {
  int total = 0;
  int chunk = 48;
  while (inl > 0) {
    int take = inl;
    if (take > chunk) { take = chunk; }
    int produced = evp_encode_block(out, in, take);
    if (total + produced < total) { return 0; }
    if (total > 2147483647 - produced) { return 0; }
    total = total + produced;
    inl = inl - take;
  }
  out[0] = total;
  return total;
}
)";

const char* kWgetGlobVuln = R"(
int has_wildcard(int name[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (name[i & 7] == 42 || name[i & 7] == 63) { return 1; }
  }
  return 0;
}
int make_local_name(int dst[], int src[], int n) {
  int i;
  for (i = 0; i < n; i++) { dst[i & 7] = src[i & 7]; }
  return n;
}
int ftp_retrieve_glob(int list[], int count) {
  int handled = 0;
  int i;
  int name[8];
  for (i = 0; i < count; i++) {
    int kind = list[i & 7] & 3;
    if (kind == 2) {
      make_local_name(name, list, 8);
      handled++;
    } else {
      if (has_wildcard(list, 8)) { handled += 2; }
      else { make_local_name(name, list, 8); handled++; }
    }
  }
  return handled;
}
)";

const char* kWgetGlobPatched = R"(
int has_wildcard(int name[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (name[i & 7] == 42 || name[i & 7] == 63) { return 1; }
  }
  return 0;
}
int make_local_name(int dst[], int src[], int n) {
  int i;
  for (i = 0; i < n; i++) { dst[i & 7] = src[i & 7]; }
  return n;
}
int name_is_safe(int name[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (name[i & 7] == 47) { return 0; }
    if (name[i & 7] == 46 && name[(i + 1) & 7] == 46) { return 0; }
  }
  return 1;
}
int ftp_retrieve_glob(int list[], int count) {
  int handled = 0;
  int i;
  int name[8];
  for (i = 0; i < count; i++) {
    int kind = list[i & 7] & 3;
    if (kind == 2) {
      if (name_is_safe(list, 8)) { make_local_name(name, list, 8); handled++; }
    } else {
      if (has_wildcard(list, 8)) { handled += 2; }
      else {
        if (name_is_safe(list, 8)) { make_local_name(name, list, 8); handled++; }
      }
    }
  }
  return handled;
}
)";

const char* kOpensslDtlsVuln = R"(
int frag_copy(int dst[], int src[], int off, int len) {
  int i;
  for (i = 0; i < len; i++) { dst[(off + i) & 7] = src[i & 7]; }
  return len;
}
int dtls1_reassemble_fragment(int msg[], int frag[], int frag_off, int frag_len, int msg_len) {
  int buf[16];
  if (frag_len == 0) { return 0; }
  frag_copy(buf, frag, frag_off, frag_len);
  int i;
  int sum = 0;
  for (i = 0; i < frag_len; i++) { sum += buf[i & 15]; }
  msg[0] = sum;
  msg[1] = frag_off + frag_len;
  return frag_len;
}
)";

const char* kOpensslDtlsPatched = R"(
int frag_copy(int dst[], int src[], int off, int len) {
  int i;
  for (i = 0; i < len; i++) { dst[(off + i) & 7] = src[i & 7]; }
  return len;
}
int dtls1_reassemble_fragment(int msg[], int frag[], int frag_off, int frag_len, int msg_len) {
  int buf[16];
  if (frag_len == 0) { return 0; }
  if (frag_off + frag_len > msg_len) { return 0; }
  if (frag_len > msg_len) { return 0; }
  frag_copy(buf, frag, frag_off, frag_len);
  int i;
  int sum = 0;
  for (i = 0; i < frag_len; i++) { sum += buf[i & 15]; }
  msg[0] = sum;
  msg[1] = frag_off + frag_len;
  return frag_len;
}
)";

const char* kOpensslMdc2Vuln = R"(
int mdc2_block(int state[], int data[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    state[i & 7] = (state[i & 7] ^ data[i & 7]) * 31 + 7;
  }
  return 0;
}
int MDC2_Update(int state[], int data[], int len) {
  int pos = state[0];
  int block = 8;
  if (pos != 0) {
    int need = block - pos;
    if (len < need) {
      state[0] = pos + len;
      return 1;
    }
    mdc2_block(state, data, need);
    len = len - need;
    pos = 0;
  }
  while (len >= block) {
    mdc2_block(state, data, block);
    len -= block;
  }
  state[0] = pos + len;
  return 1;
}
)";

const char* kOpensslMdc2Patched = R"(
int mdc2_block(int state[], int data[], int n) {
  int i;
  for (i = 0; i < n; i++) {
    state[i & 7] = (state[i & 7] ^ data[i & 7]) * 31 + 7;
  }
  return 0;
}
int MDC2_Update(int state[], int data[], int len) {
  int pos = state[0];
  int block = 8;
  if (pos < 0 || pos >= block) { return 0; }
  if (len < 0) { return 0; }
  if (pos != 0) {
    int need = block - pos;
    if (len < need) {
      state[0] = pos + len;
      return 1;
    }
    mdc2_block(state, data, need);
    len = len - need;
    pos = 0;
  }
  while (len >= block) {
    mdc2_block(state, data, block);
    len -= block;
  }
  state[0] = pos + len;
  return 1;
}
)";

const char* kCurlMaprintfVuln = R"(
int emit_char(int out[], int pos, int ch) {
  out[pos & 7] = ch;
  return pos + 1;
}
int format_int(int out[], int pos, int value) {
  if (value < 0) { pos = emit_char(out, pos, 45); value = -value; }
  while (value > 9) { pos = emit_char(out, pos, 48 + value % 10); value /= 10; }
  return emit_char(out, pos, 48 + value);
}
int curl_maprintf(int out[], int fmt[], int arg0, int arg1) {
  int pos = 0;
  int i = 0;
  while (fmt[i & 7] != 0) {
    int ch = fmt[i & 7];
    if (ch == 37) {
      i++;
      int spec = fmt[i & 7];
      if (spec == 100) { pos = format_int(out, pos, arg0); }
      else { pos = format_int(out, pos, arg1); }
    } else {
      pos = emit_char(out, pos, ch);
    }
    i++;
  }
  return pos;
}
)";

const char* kCurlMaprintfPatched = R"(
int emit_char(int out[], int pos, int ch) {
  out[pos & 7] = ch;
  return pos + 1;
}
int format_int(int out[], int pos, int value) {
  if (value < 0) { pos = emit_char(out, pos, 45); value = -value; }
  while (value > 9) { pos = emit_char(out, pos, 48 + value % 10); value /= 10; }
  return emit_char(out, pos, 48 + value);
}
int curl_maprintf(int out[], int fmt[], int arg0, int arg1) {
  int pos = 0;
  int i = 0;
  int limit = 128;
  while (fmt[i & 7] != 0 && pos < limit) {
    int ch = fmt[i & 7];
    if (ch == 37) {
      i++;
      int spec = fmt[i & 7];
      if (spec == 100) { pos = format_int(out, pos, arg0); }
      else { pos = format_int(out, pos, arg1); }
    } else {
      pos = emit_char(out, pos, ch);
    }
    i++;
  }
  if (pos >= limit) { return -1; }
  return pos;
}
)";

const char* kCurlTailmatchVuln = R"(
int str_len(int s[]) {
  int n = 0;
  while (s[n & 7] != 0) { n++; if (n > 64) { break; } }
  return n;
}
int tailmatch(int cookie_domain[], int hostname[]) {
  int cookie_len = str_len(cookie_domain);
  int host_len = str_len(hostname);
  if (cookie_len > host_len) { return 0; }
  int i;
  int off = host_len - cookie_len;
  for (i = 0; i < cookie_len; i++) {
    if (cookie_domain[i & 7] != hostname[(off + i) & 7]) { return 0; }
  }
  return 1;
}
)";

const char* kCurlTailmatchPatched = R"(
int str_len(int s[]) {
  int n = 0;
  while (s[n & 7] != 0) { n++; if (n > 64) { break; } }
  return n;
}
int tailmatch(int cookie_domain[], int hostname[]) {
  int cookie_len = str_len(cookie_domain);
  int host_len = str_len(hostname);
  if (cookie_len > host_len) { return 0; }
  int off = host_len - cookie_len;
  if (off > 0 && hostname[(off - 1) & 7] != 46) { return 0; }
  int i;
  for (i = 0; i < cookie_len; i++) {
    if (cookie_domain[i & 7] != hostname[(off + i) & 7]) { return 0; }
  }
  return 1;
}
)";

const char* kVsftpdFilterVuln = R"(
int char_matches(int pattern_ch, int ch) {
  if (pattern_ch == 63) { return 1; }
  return pattern_ch == ch;
}
int vsf_filename_passes_filter(int filename[], int filter[]) {
  int fi = 0;
  int pi = 0;
  int matched = 1;
  while (filter[pi & 7] != 0) {
    int pc = filter[pi & 7];
    if (pc == 42) {
      pi++;
      while (filename[fi & 7] != 0 && filename[fi & 7] != filter[pi & 7]) { fi++; }
    } else {
      if (char_matches(pc, filename[fi & 7]) == 0) { matched = 0; break; }
      fi++;
      pi++;
    }
  }
  return matched;
}
)";

const char* kVsftpdFilterPatched = R"(
int char_matches(int pattern_ch, int ch) {
  if (pattern_ch == 63) { return 1; }
  return pattern_ch == ch;
}
int vsf_filename_passes_filter(int filename[], int filter[]) {
  int fi = 0;
  int pi = 0;
  int matched = 1;
  int iterations = 0;
  while (filter[pi & 7] != 0) {
    iterations++;
    if (iterations > 100) { return 0; }
    int pc = filter[pi & 7];
    if (pc == 42) {
      pi++;
      while (filename[fi & 7] != 0 && filename[fi & 7] != filter[pi & 7]) {
        fi++;
        iterations++;
        if (iterations > 100) { return 0; }
      }
    } else {
      if (char_matches(pc, filename[fi & 7]) == 0) { matched = 0; break; }
      fi++;
      pi++;
    }
  }
  return matched;
}
)";

}  // namespace

const std::vector<VulnSpec>& VulnLibrary() {
  static const std::vector<VulnSpec> kLibrary = {
      {"CVE-2016-2105", "openssl", "1.0.1s", "1.0.1t", "EVP_EncodeUpdate",
       kOpensslEncodeVuln, kOpensslEncodePatched},
      {"CVE-2014-4877", "wget", "1.15", "1.16", "ftp_retrieve_glob",
       kWgetGlobVuln, kWgetGlobPatched},
      {"CVE-2014-0195", "openssl", "1.0.1g", "1.0.1h",
       "dtls1_reassemble_fragment", kOpensslDtlsVuln, kOpensslDtlsPatched},
      {"CVE-2016-6303", "openssl", "1.0.2h", "1.1.0", "MDC2_Update",
       kOpensslMdc2Vuln, kOpensslMdc2Patched},
      {"CVE-2016-8618", "libcurl", "7.50.3", "7.51.0", "curl_maprintf",
       kCurlMaprintfVuln, kCurlMaprintfPatched},
      {"CVE-2013-1944", "libcurl", "7.29.0", "7.30.0", "tailmatch",
       kCurlTailmatchVuln, kCurlTailmatchPatched},
      {"CVE-2011-0762", "vsftpd", "2.3.2", "2.3.3",
       "vsf_filename_passes_filter", kVsftpdFilterVuln, kVsftpdFilterPatched},
  };
  return kLibrary;
}

}  // namespace asteria::firmware
