// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) — the
// one checksum the whole tree uses. Lives in util (the base layer) so both
// the store containers and the util request log can frame lines with it;
// store::Crc32 forwards here.
#pragma once

#include <cstddef>
#include <cstdint>

namespace asteria::util {

// Chain blocks by passing the previous return value as `seed`.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace asteria::util
