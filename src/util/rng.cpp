#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace asteria::util {

double Rng::NextGaussian() {
  // Box-Muller transform; u1 is kept away from zero for log().
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) throw std::invalid_argument("NextWeighted: zero total");
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace asteria::util
