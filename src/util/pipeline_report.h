// PipelineReport: per-item outcome accounting for fault-isolated batch
// stages (corpus generation, offline encoding, vuln search, training).
//
// The contract (docs/ROBUSTNESS.md): a failing or malformed item is
// skipped and counted, never allowed to abort the batch. The report makes
// that visible — callers and CLIs print Summary() so silent data loss is
// impossible, and tests assert exact ok/skipped/failed counts.
//
// Reports merge associatively in item order: parallel stages accumulate
// one report per shard (or per item) and fold them sequentially, so the
// counts and the retained reasons are identical for every thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace asteria::util {

struct PipelineReport {
  // Only the first kMaxReasons failure/skip reasons are retained; the
  // counters always cover everything.
  static constexpr std::size_t kMaxReasons = 5;

  std::string stage;         // e.g. "corpus-build", "index-encode"
  std::int64_t ok = 0;       // items processed successfully
  std::int64_t skipped = 0;  // items intentionally left out (too small, ...)
  std::int64_t failed = 0;   // items that errored and were isolated
  std::vector<std::string> reasons;

  void AddOk() { ++ok; }
  void AddSkipped(const std::string& reason = "");
  void AddFailed(const std::string& reason);
  // Folds `other` into this report (stage kept from *this when set).
  void Merge(const PipelineReport& other);

  bool Clean() const { return skipped == 0 && failed == 0; }
  std::int64_t total() const { return ok + skipped + failed; }

  // One line: "<stage>: N ok, N skipped, N failed [reasons: ...]".
  std::string Summary() const;

 private:
  void Remember(const std::string& reason);
};

}  // namespace asteria::util
