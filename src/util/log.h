// Minimal leveled logging to stderr.
//
// Experiments and long-running training loops report progress through this
// logger. Verbosity is a process-wide setting so bench binaries can expose a
// --quiet flag.
#pragma once

#include <sstream>
#include <string>

namespace asteria::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Sets/gets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug"|"info"|"warn"|"error" (case-sensitive, the spelling the
// --log_level flag documents). Returns false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

// Emits one formatted line "[LEVEL ts tNN] message" to stderr if enabled.
// tNN is a small process-local thread ordinal (main thread is t00), stable
// for the thread's lifetime, so interleaved ParallelFor logs are
// attributable.
void LogLine(LogLevel level, const std::string& message);

namespace internal {

// Stream-style builder: LOG(Info) << "x=" << x; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace asteria::util

#define ASTERIA_LOG(level)                  \
  ::asteria::util::internal::LogMessage(    \
      ::asteria::util::LogLevel::k##level)
