#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

namespace asteria::util {

namespace {

// Registry of every thread's profile. Profiles are heap-allocated and never
// freed (they stay reachable from here), so a snapshot taken after a worker
// thread exits — e.g. after a ThreadPool is destroyed — still sees the
// worker's samples.
struct SpanRegistry {
  std::mutex mutex;
  std::vector<internal::StageProfile*> profiles;

  static SpanRegistry& Instance() {
    static SpanRegistry* registry = new SpanRegistry;  // never destroyed
    return *registry;
  }
};

std::int64_t SteadyNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(__x86_64__)

// Fast trace timestamps via the invariant TSC. A traced request reads the
// clock ~10 times (admission, queue wait, per-stage splits, reply timing,
// record stamp); at steady_clock's ~29ns per vDSO call that is a visible
// slice of the tracing budget, while a calibrated rdtsc read costs ~10ns.
//
// Calibration is free: the first call only anchors (tsc, steady) and every
// call keeps answering from steady_clock until the process's own elapsed
// time spans kCalibrationWindowNanos, at which point the observed
// (Δsteady / Δtsc) ratio becomes the scale — no call ever spins or sleeps,
// so cold one-shot tools pay nothing. The affine map is re-anchored at the
// steady reading taken at publish time, so the switchover never steps
// backward. Hosts without an invariant TSC (cpuid 0x80000007 EDX bit 8)
// stay on steady_clock forever.
struct TscScale {
  double ns_per_cycle = 0.0;
  std::int64_t anchor_nanos = 0;
  std::uint64_t anchor_tsc = 0;
};

constexpr std::int64_t kCalibrationWindowNanos = 10'000'000;  // 10ms

std::atomic<const TscScale*> g_tsc_scale{nullptr};
std::atomic<bool> g_tsc_unusable{false};
std::mutex g_tsc_calibration_mu;

bool HasInvariantTsc() {
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) == 0 ||
      eax < 0x80000007u) {
    return false;
  }
  if (__get_cpuid(0x80000007u, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 8)) != 0;
}

std::int64_t TscTraceNanos() {
  const TscScale* scale = g_tsc_scale.load(std::memory_order_acquire);
  if (scale != nullptr) {
    return scale->anchor_nanos +
           static_cast<std::int64_t>(
               static_cast<double>(__rdtsc() - scale->anchor_tsc) *
               scale->ns_per_cycle);
  }
  const std::int64_t nanos = SteadyNanos();
  if (g_tsc_unusable.load(std::memory_order_relaxed)) return nanos;
  std::lock_guard<std::mutex> lock(g_tsc_calibration_mu);
  if (g_tsc_scale.load(std::memory_order_relaxed) != nullptr) return nanos;
  static std::uint64_t anchor_tsc = 0;
  static std::int64_t anchor_nanos = 0;
  const std::uint64_t tsc = __rdtsc();
  if (anchor_tsc == 0) {
    if (!HasInvariantTsc()) {
      g_tsc_unusable.store(true, std::memory_order_relaxed);
      return nanos;
    }
    anchor_tsc = tsc;
    anchor_nanos = nanos;
    return nanos;
  }
  if (nanos - anchor_nanos < kCalibrationWindowNanos) return nanos;
  const double cycles = static_cast<double>(tsc - anchor_tsc);
  const double elapsed = static_cast<double>(nanos - anchor_nanos);
  const double ns_per_cycle = cycles > 0.0 ? elapsed / cycles : 0.0;
  // Sanity: 10MHz..20GHz. Anything else means the TSC is not advancing the
  // way an invariant TSC must (e.g. a migrated VM) — stay on steady_clock.
  if (!(ns_per_cycle > 0.05 && ns_per_cycle < 100.0)) {
    g_tsc_unusable.store(true, std::memory_order_relaxed);
    return nanos;
  }
  static TscScale published;  // immutable once the pointer is released
  published.ns_per_cycle = ns_per_cycle;
  published.anchor_nanos = nanos;
  published.anchor_tsc = tsc;
  g_tsc_scale.store(&published, std::memory_order_release);
  return nanos;
}

#endif  // defined(__x86_64__)

}  // namespace

namespace internal {

void StageProfile::Record(const char* stage, std::uint64_t elapsed_nanos) {
  for (int i = 0; i < kMaxStages; ++i) {
    // Only this thread writes `name`, so a relaxed read is authoritative.
    const char* existing = slots[i].name.load(std::memory_order_relaxed);
    if (existing == nullptr) {
      // Publish the name before snapshots can see nonzero counts.
      slots[i].name.store(stage, std::memory_order_release);
      existing = stage;
    }
    if (existing == stage || std::strcmp(existing, stage) == 0) {
      slots[i].count.fetch_add(1, std::memory_order_relaxed);
      slots[i].nanos.fetch_add(elapsed_nanos, std::memory_order_relaxed);
      return;
    }
  }
  dropped.fetch_add(1, std::memory_order_relaxed);
}

StageProfile& ThreadStageProfile() {
  thread_local StageProfile* profile = [] {
    auto* p = new StageProfile;  // owned by the registry, never freed
    SpanRegistry& registry = SpanRegistry::Instance();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.profiles.push_back(p);
    return p;
  }();
  return *profile;
}

}  // namespace internal

std::int64_t TraceNowNanos() {
#if defined(__x86_64__)
  return TscTraceNanos();
#else
  return SteadyNanos();
#endif
}

std::vector<StageTiming> SnapshotSpans() {
  SpanRegistry& registry = SpanRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::map<std::string, StageTiming> merged;  // keyed by name => sorted
  std::uint64_t dropped = 0;
  for (const internal::StageProfile* profile : registry.profiles) {
    dropped += profile->dropped.load(std::memory_order_relaxed);
    for (const internal::StageSlot& slot : profile->slots) {
      const char* name = slot.name.load(std::memory_order_acquire);
      if (name == nullptr) continue;
      StageTiming& timing = merged[name];
      timing.stage = name;
      timing.count += slot.count.load(std::memory_order_relaxed);
      timing.total_nanos += slot.nanos.load(std::memory_order_relaxed);
    }
  }
  if (dropped > 0) {
    StageTiming& timing = merged["trace.dropped"];
    timing.stage = "trace.dropped";
    timing.count += dropped;
  }
  std::vector<StageTiming> result;
  result.reserve(merged.size());
  for (auto& [name, timing] : merged) result.push_back(std::move(timing));
  return result;
}

void ResetSpansForTest() {
  SpanRegistry& registry = SpanRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (internal::StageProfile* profile : registry.profiles) {
    profile->dropped.store(0, std::memory_order_relaxed);
    for (internal::StageSlot& slot : profile->slots) {
      // Keep the name (the slot stays claimed); zero the accumulators so
      // the next snapshot only sees post-reset samples.
      slot.count.store(0, std::memory_order_relaxed);
      slot.nanos.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace asteria::util
