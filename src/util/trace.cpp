#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>

namespace asteria::util {

namespace {

// Registry of every thread's profile. Profiles are heap-allocated and never
// freed (they stay reachable from here), so a snapshot taken after a worker
// thread exits — e.g. after a ThreadPool is destroyed — still sees the
// worker's samples.
struct SpanRegistry {
  std::mutex mutex;
  std::vector<internal::StageProfile*> profiles;

  static SpanRegistry& Instance() {
    static SpanRegistry* registry = new SpanRegistry;  // never destroyed
    return *registry;
  }
};

}  // namespace

namespace internal {

void StageProfile::Record(const char* stage, std::uint64_t elapsed_nanos) {
  for (int i = 0; i < kMaxStages; ++i) {
    // Only this thread writes `name`, so a relaxed read is authoritative.
    const char* existing = slots[i].name.load(std::memory_order_relaxed);
    if (existing == nullptr) {
      // Publish the name before snapshots can see nonzero counts.
      slots[i].name.store(stage, std::memory_order_release);
      existing = stage;
    }
    if (existing == stage || std::strcmp(existing, stage) == 0) {
      slots[i].count.fetch_add(1, std::memory_order_relaxed);
      slots[i].nanos.fetch_add(elapsed_nanos, std::memory_order_relaxed);
      return;
    }
  }
  dropped.fetch_add(1, std::memory_order_relaxed);
}

StageProfile& ThreadStageProfile() {
  thread_local StageProfile* profile = [] {
    auto* p = new StageProfile;  // owned by the registry, never freed
    SpanRegistry& registry = SpanRegistry::Instance();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.profiles.push_back(p);
    return p;
  }();
  return *profile;
}

}  // namespace internal

std::int64_t TraceNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<StageTiming> SnapshotSpans() {
  SpanRegistry& registry = SpanRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::map<std::string, StageTiming> merged;  // keyed by name => sorted
  std::uint64_t dropped = 0;
  for (const internal::StageProfile* profile : registry.profiles) {
    dropped += profile->dropped.load(std::memory_order_relaxed);
    for (const internal::StageSlot& slot : profile->slots) {
      const char* name = slot.name.load(std::memory_order_acquire);
      if (name == nullptr) continue;
      StageTiming& timing = merged[name];
      timing.stage = name;
      timing.count += slot.count.load(std::memory_order_relaxed);
      timing.total_nanos += slot.nanos.load(std::memory_order_relaxed);
    }
  }
  if (dropped > 0) {
    StageTiming& timing = merged["trace.dropped"];
    timing.stage = "trace.dropped";
    timing.count += dropped;
  }
  std::vector<StageTiming> result;
  result.reserve(merged.size());
  for (auto& [name, timing] : merged) result.push_back(std::move(timing));
  return result;
}

void ResetSpansForTest() {
  SpanRegistry& registry = SpanRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (internal::StageProfile* profile : registry.profiles) {
    profile->dropped.store(0, std::memory_order_relaxed);
    for (internal::StageSlot& slot : profile->slots) {
      // Keep the name (the slot stays claimed); zero the accumulators so
      // the next snapshot only sees post-reset samples.
      slot.count.store(0, std::memory_order_relaxed);
      slot.nanos.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace asteria::util
