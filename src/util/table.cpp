#include "util/table.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace asteria::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TextTable::WriteCsv(const std::string& path) const {
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream out(path);
  if (!out) return false;
  out << ToCsv();
  return static_cast<bool>(out);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

}  // namespace asteria::util
