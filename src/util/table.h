// Plain-text table and CSV emission for bench binaries.
//
// Every bench target prints a human-readable table (the paper's rows/series)
// to stdout and optionally writes the same data as CSV for plotting.
#pragma once

#include <string>
#include <vector>

namespace asteria::util {

// Column-aligned text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Appends one row; cells beyond the header width are dropped, missing
  // cells are rendered empty.
  void AddRow(std::vector<std::string> row);

  // Renders the table with aligned columns.
  std::string ToString() const;

  // Renders RFC-4180-ish CSV (quotes cells containing separators).
  std::string ToCsv() const;

  // Writes CSV to a file path, creating parent directories if needed.
  // Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision = 4);

// Formats seconds in an adaptive unit (ns / us / ms / s).
std::string FormatSeconds(double seconds);

}  // namespace asteria::util
