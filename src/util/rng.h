// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the reproduction (corpus generation, pair
// sampling, weight initialization) draw from Rng so that every experiment is
// reproducible from a single seed. The generator is xoshiro256**, seeded via
// splitmix64, which is fast, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace asteria::util {

// Random number generator with convenience distributions.
//
// Satisfies UniformRandomBitGenerator so it can also be used with <random>
// distributions and std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  // Re-initializes the state from a 64-bit seed via splitmix64.
  void Reseed(std::uint64_t seed) {
    for (auto& s : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // Standard normal via Box-Muller (non-cached variant; adequate here).
  double NextGaussian();

  // Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  // Picks an index according to non-negative weights (sum must be > 0).
  std::size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[NextBounded(i)]);
    }
  }

  // Picks a uniformly random element; v must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[NextBounded(v.size())];
  }

  // Derives an independent child generator (for parallel-safe substreams).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

  // Stateless substream derivation: the seed of stream `stream` under master
  // seed `seed`, mixed through splitmix64. Because it depends only on its
  // arguments, per-index generators derived this way are identical whether
  // the indices are processed sequentially or in parallel (the determinism
  // contract of util::ThreadPool — see thread_pool.h).
  static std::uint64_t DeriveSeed(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace asteria::util
