// Wide-event request log: one structured record per request, appended
// lock-free from any thread into a fixed-size process-global ring
// (docs/OBSERVABILITY.md, "Per-request tracing").
//
// Where the metrics registry (util/metrics.h) answers "how is the process
// doing in aggregate", a RequestRecord answers "what happened to THIS
// query": which trace id, which op, how long it waited in the queue, how
// long encode and score took, what batch it rode in, how many candidate
// pairs were scored vs pruned, and how much deadline budget was left. The
// serve daemon appends one record per request (answered, shed, cancelled,
// deadline-exceeded, or drained), serve::Client appends one per wire
// attempt, and ingest appends one per pipeline op — the two sides join on
// the trace id carried in the v3 ASRV frame (docs/SERVING.md).
//
// Hot-path contract: Append is wait-free — one relaxed fetch_add to claim a
// slot, then a seqlock-versioned field-by-field store (all fields atomic,
// so readers never race non-atomically; a slot overwritten mid-read is
// skipped, not torn). No mutex anywhere on the write path. Readers
// (Snapshot, the slow-query spill, --request_log_out dumps) are rare and
// may miss slots being concurrently rewritten — by design: this is a
// flight recorder, not a ledger. The determinism contract explicitly
// EXCLUDES request records: they are wall-clock shaped and never diffed by
// the check_*.sh gates.
//
// The CRC-line framing ("SLOW <crc32 hex> <json>\n") reuses the
// alerts.jsonl conventions (docs/FORMATS.md): append-only, one
// self-checking line per record, corrupt lines skipped and counted.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace asteria::util {

// How a traced request ended. Names (RequestOutcomeName) appear verbatim in
// slow.jsonl and request-log dumps, so scripts can grep them.
enum class RequestOutcome : std::uint8_t {
  kOk = 0,
  kError = 1,
  kShed = 2,
  kCancelled = 3,
  kDeadlineExceeded = 4,
  kShuttingDown = 5,
};

const char* RequestOutcomeName(RequestOutcome outcome);

// Bytes reserved per record for the request's name (query function name,
// ingest image basename); longer names are truncated, NUL-padded.
inline constexpr std::size_t kRequestNameBytes = 64;

// One wide event. `op` must be a string literal (like metric and failpoint
// names — the record keeps the pointer, never copies).
struct RequestRecord {
  std::uint64_t trace_id = 0;      // joins client and server records
  std::int64_t end_nanos = 0;      // TraceNowNanos() when the record was cut
  const char* op = "";             // "serve.topk", "client.topk", ...
  RequestOutcome outcome = RequestOutcome::kOk;
  std::uint32_t batch_size = 0;    // requests coalesced into the same batch
  std::uint64_t queue_wait_nanos = 0;  // enqueue -> dequeue
  std::uint64_t encode_nanos = 0;      // this query's AST encode
  std::uint64_t score_nanos = 0;       // the batch's shared scoring sweep
  std::uint64_t reply_nanos = 0;       // serialization + socket write
  std::uint64_t scored_pairs = 0;      // candidate pairs actually scored
  std::uint64_t pruned_pairs = 0;      // pairs skipped by the distance cut
  bool has_deadline = false;
  // Deadline budget remaining when the record was cut; negative = already
  // past the deadline. Zero (with has_deadline false) for undeadlined ops.
  std::int64_t deadline_slack_nanos = 0;
  char name[kRequestNameBytes] = {};

  // Total attributed latency (queue wait + encode + score + reply).
  std::uint64_t TotalNanos() const {
    return queue_wait_nanos + encode_nanos + score_nanos + reply_nanos;
  }
  void SetName(const std::string& value);
};

// Fixed-capacity global ring of the most recent records.
class RequestLog {
 public:
  static constexpr std::size_t kCapacity = 4096;

  RequestLog();
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  // Wait-free; overwrites the oldest slot once the ring is full.
  void Append(const RequestRecord& record);

  // Stable view of the current ring contents, oldest first. Slots being
  // concurrently rewritten are skipped (bounded retries), so under load the
  // result may hold slightly fewer than min(appended, kCapacity) records.
  std::vector<RequestRecord> Snapshot() const;

  // Total records ever appended (monotonic; not capped at kCapacity).
  std::uint64_t Appended() const {
    return next_.load(std::memory_order_relaxed);
  }

  void ResetForTest();

 private:
  // Every field atomic + seqlock version: writers flip version odd, store
  // fields relaxed, flip even; readers verify the version was stable and
  // even around their field loads. Plain (non-atomic) fields would be a
  // data race under TSan even though torn reads get discarded.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> version{0};  // odd while a writer is inside
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::int64_t> end_nanos{0};
    std::atomic<const char*> op{""};
    std::atomic<std::uint8_t> outcome{0};
    std::atomic<std::uint32_t> batch_size{0};
    std::atomic<std::uint64_t> queue_wait_nanos{0};
    std::atomic<std::uint64_t> encode_nanos{0};
    std::atomic<std::uint64_t> score_nanos{0};
    std::atomic<std::uint64_t> reply_nanos{0};
    std::atomic<std::uint64_t> scored_pairs{0};
    std::atomic<std::uint64_t> pruned_pairs{0};
    std::atomic<bool> has_deadline{false};
    std::atomic<std::int64_t> deadline_slack_nanos{0};
    std::atomic<std::uint64_t> name_words[kRequestNameBytes / 8];
  };

  std::atomic<std::uint64_t> next_{0};
  std::vector<Slot> slots_;
};

// The process-wide ring every producer appends to. Never destroyed (records
// may be cut during shutdown), same lifetime idiom as the metrics registry.
RequestLog& GlobalRequestLog();

// Process-unique nonzero trace id: a SplitMix64 stream seeded from the pid
// and the monotonic clock, stepped by an atomic counter. Uniqueness holds
// within a process run and collisions across processes are 2^-64-ish — good
// enough to join client and server records from one storm.
std::uint64_t MintTraceId();

// -- CRC-line framing (slow.jsonl, --request_log_out dumps) -----------------

// A record parsed back from a "SLOW" line. String fields replace the
// literal-pointer fields of RequestRecord; everything else matches.
struct ParsedRequestRecord {
  std::uint64_t trace_id = 0;
  std::string op;
  std::string outcome;
  std::string name;
  std::uint64_t batch_size = 0;
  std::uint64_t queue_wait_nanos = 0;
  std::uint64_t encode_nanos = 0;
  std::uint64_t score_nanos = 0;
  std::uint64_t reply_nanos = 0;
  std::uint64_t scored_pairs = 0;
  std::uint64_t pruned_pairs = 0;
  bool has_deadline = false;
  std::int64_t deadline_slack_nanos = 0;
};

// One self-checking line: "SLOW <8-hex lowercase crc32 of json> <json>\n".
std::string RequestRecordLine(const RequestRecord& record);

// Appends `records` to `path` as one O_APPEND write + fsync (at-least-once:
// a crash can duplicate a batch, never interleave or tear lines).
bool AppendRequestRecords(const std::string& path,
                          const std::vector<RequestRecord>& records,
                          std::string* error);

// Overwrites `path` with every record (the --request_log_out dump).
bool WriteRequestLogFile(const std::string& path,
                         const std::vector<RequestRecord>& records,
                         std::string* error);

// Reads a record log. Unterminated, CRC-mismatched, or unparseable lines
// are counted in `corrupt_lines` (may be null), never fatal; only a missing
// or unreadable file returns false.
bool ReadRequestLogFile(const std::string& path,
                        std::vector<ParsedRequestRecord>* records,
                        int* corrupt_lines, std::string* error);

}  // namespace asteria::util
