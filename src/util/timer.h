// Wall-clock timing helpers used by the overhead experiments (Fig. 10).
#pragma once

#include <chrono>
#include <cstdint>

#include "util/metrics.h"

namespace asteria::util {

// High-resolution stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed nanoseconds since construction or last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Incremental mean/min/max accumulator for repeated timings. Folded into
// util::ScalarStats (src/util/metrics.h), which seeds min/max from the
// first sample unconditionally — the old local implementation compared
// against stale zeros before checking count_ == 1.
using TimingStats = ScalarStats;

}  // namespace asteria::util
