// Wall-clock timing helpers used by the overhead experiments (Fig. 10).
#pragma once

#include <chrono>
#include <cstdint>

namespace asteria::util {

// High-resolution stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Elapsed nanoseconds since construction or last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Incremental mean/min/max accumulator for repeated timings.
class TimingStats {
 public:
  void Add(double seconds) {
    ++count_;
    sum_ += seconds;
    if (seconds < min_ || count_ == 1) min_ = seconds;
    if (seconds > max_ || count_ == 1) max_ = seconds;
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace asteria::util
