#include "util/thread_pool.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace asteria::util {

// Workers block on a condition variable between jobs. A job is published by
// bumping `job_id`; workers then claim shards from `next_shard` until the
// shard supply is exhausted. The claim order is nondeterministic but the
// shard bounds are not, which is all the determinism contract needs.
struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers: a new job is available
  std::condition_variable done_cv;   // caller: all shards finished
  std::uint64_t job_id = 0;
  bool shutdown = false;

  // Current job (valid while shards_done < shard_count).
  const std::function<void(std::int64_t, std::int64_t, int)>* fn = nullptr;
  std::int64_t n = 0;
  int shard_count = 0;
  int next_shard = 0;
  int shards_done = 0;
  std::exception_ptr first_error;

  std::vector<std::thread> workers;

  void RunShards() {
    std::unique_lock<std::mutex> lock(mutex);
    while (next_shard < shard_count) {
      const int shard = next_shard++;
      lock.unlock();
      try {
        const auto [begin, end] = ShardRange(n, shard_count, shard);
        (*fn)(begin, end, shard);
      } catch (...) {
        lock.lock();
        if (!first_error) first_error = std::current_exception();
        lock.unlock();
      }
      lock.lock();
      if (++shards_done == shard_count) done_cv.notify_all();
    }
  }

  void WorkerLoop() {
    std::uint64_t seen_job = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock,
                     [&] { return shutdown || job_id != seen_job; });
        if (shutdown) return;
        seen_job = job_id;
      }
      RunShards();
    }
  }
};

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  if (threads_ <= 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    impl_->workers.emplace_back([this] { impl_->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& worker : impl_->workers) worker.join();
  delete impl_;
}

int ThreadPool::ShardCount(std::int64_t n, int max_shards) {
  if (n <= 0) return 0;
  const std::int64_t count =
      std::min<std::int64_t>(n, std::max(1, max_shards));
  return static_cast<int>(count);
}

std::pair<std::int64_t, std::int64_t> ThreadPool::ShardRange(std::int64_t n,
                                                             int shards,
                                                             int shard) {
  const std::int64_t base = n / shards;
  const std::int64_t extra = n % shards;
  const std::int64_t begin =
      shard * base + std::min<std::int64_t>(shard, extra);
  return {begin, begin + base + (shard < extra ? 1 : 0)};
}

void ThreadPool::ParallelForShards(
    std::int64_t n, int max_shards,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  const int shard_count = ShardCount(n, std::min(max_shards, threads_));
  if (shard_count == 0) return;
  if (shard_count == 1 || !impl_) {
    // Serial path: no pool traffic, identical shard bounds.
    for (int shard = 0; shard < shard_count; ++shard) {
      const auto [begin, end] = ShardRange(n, shard_count, shard);
      fn(begin, end, shard);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->fn = &fn;
    impl_->n = n;
    impl_->shard_count = shard_count;
    impl_->next_shard = 0;
    impl_->shards_done = 0;
    impl_->first_error = nullptr;
    ++impl_->job_id;
  }
  impl_->work_cv.notify_all();
  impl_->RunShards();  // the caller works too
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->done_cv.wait(lock,
                      [&] { return impl_->shards_done == impl_->shard_count; });
  impl_->fn = nullptr;
  if (impl_->first_error) {
    std::exception_ptr error = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(std::int64_t n, int max_shards,
                             const std::function<void(std::int64_t)>& fn) {
  ParallelForShards(n, max_shards,
                    [&fn](std::int64_t begin, std::int64_t end, int) {
                      for (std::int64_t i = begin; i < end; ++i) fn(i);
                    });
}

ThreadPool& ThreadPool::Shared(int min_threads) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(mutex);
  if (!pool || pool->threads() < min_threads) {
    pool = std::make_unique<ThreadPool>(min_threads);
  }
  return *pool;
}

void ParallelFor(std::int64_t n, int threads,
                 const std::function<void(std::int64_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::Shared(threads).ParallelFor(n, threads, fn);
}

void ParallelForShards(
    std::int64_t n, int threads,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn) {
  if (threads <= 1 || n <= 0) {
    if (n > 0) fn(0, n, 0);
    return;
  }
  ThreadPool::Shared(threads).ParallelForShards(n, threads, fn);
}

}  // namespace asteria::util
