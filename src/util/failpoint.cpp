#include "util/failpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <mutex>

namespace asteria::util {

namespace {

struct Trigger {
  int mode = Failpoint::kOff;
  std::uint64_t param = 0;
};

// Strict positive-integer parse for hit:N / every:N parameters.
bool ParseCount(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || value == 0) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseTrigger(const std::string& text, Trigger* out, std::string* error) {
  if (text == "always") {
    out->mode = Failpoint::kAlways;
    return true;
  }
  if (text == "once") {
    out->mode = Failpoint::kOnce;
    return true;
  }
  if (text == "off") {
    out->mode = Failpoint::kOff;
    return true;
  }
  const auto colon = text.find(':');
  if (colon != std::string::npos) {
    const std::string verb = text.substr(0, colon);
    std::uint64_t count = 0;
    if ((verb == "hit" || verb == "every") &&
        ParseCount(text.substr(colon + 1), &count)) {
      out->mode = verb == "hit" ? Failpoint::kHit : Failpoint::kEvery;
      out->param = count;
      return true;
    }
  }
  if (error != nullptr) {
    *error = "bad failpoint trigger '" + text +
             "' (expected always|once|off|hit:N|every:N)";
  }
  return false;
}

}  // namespace

struct FailpointRegistry {
  std::mutex mutex;
  std::map<std::string, Failpoint*> points;
  // Specs for names that have not registered yet (env var and early
  // ConfigureFailpoints calls run before most static registrations).
  std::map<std::string, Trigger> pending;

  static FailpointRegistry& Instance() {
    static FailpointRegistry* registry = [] {
      auto* r = new FailpointRegistry;  // never destroyed: points outlive main
      if (const char* env = std::getenv(kFailpointsEnvVar)) {
        r->ParseInto(env, nullptr);
      }
      return r;
    }();
    return *registry;
  }

  void Register(Failpoint* point) {
    std::lock_guard<std::mutex> lock(mutex);
    points[point->name()] = point;
    const auto it = pending.find(point->name());
    if (it != pending.end()) {
      point->Arm(it->second.mode, it->second.param);
      pending.erase(it);
    }
  }

  void ClearAll() {
    std::lock_guard<std::mutex> lock(mutex);
    pending.clear();
    for (auto& [name, point] : points) {
      point->Arm(Failpoint::kOff, 0);
    }
  }

  // Parses and applies `spec` (caller does NOT hold the mutex).
  bool ParseInto(const std::string& spec, std::string* error) {
    std::lock_guard<std::mutex> lock(mutex);
    std::size_t begin = 0;
    while (begin <= spec.size()) {
      std::size_t end = spec.find(',', begin);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(begin, end - begin);
      begin = end + 1;
      if (item.empty()) continue;
      const auto eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        if (error != nullptr) {
          *error = "bad failpoint spec '" + item + "' (expected name=trigger)";
        }
        return false;
      }
      const std::string name = item.substr(0, eq);
      Trigger trigger;
      if (!ParseTrigger(item.substr(eq + 1), &trigger, error)) return false;
      const auto it = points.find(name);
      if (it != points.end()) {
        it->second->Arm(trigger.mode, trigger.param);
      } else {
        pending[name] = trigger;
      }
    }
    return true;
  }
};

Failpoint::Failpoint(const char* name) : name_(name) {
  FailpointRegistry::Instance().Register(this);
}

void Failpoint::Arm(int mode, std::uint64_t param) {
  param_.store(param, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  fires_.store(0, std::memory_order_relaxed);
  mode_.store(mode, std::memory_order_relaxed);
}

bool Failpoint::ShouldFail() {
  const int mode = mode_.load(std::memory_order_relaxed);
  if (mode == kOff) return false;
  const std::uint64_t hit = hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode) {
    case kAlways:
      fire = true;
      break;
    case kOnce:
      fire = hit == 1;
      break;
    case kHit:
      fire = hit == param_.load(std::memory_order_relaxed);
      break;
    case kEvery: {
      const std::uint64_t n = param_.load(std::memory_order_relaxed);
      fire = n != 0 && hit % n == 0;
      break;
    }
    default:
      break;
  }
  if (fire) fires_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

bool ConfigureFailpoints(const std::string& spec, std::string* error) {
  return FailpointRegistry::Instance().ParseInto(spec, error);
}

void ClearFailpoints() { FailpointRegistry::Instance().ClearAll(); }

std::vector<std::string> ListFailpoints() {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::pair<std::string, std::uint64_t>> FailpointFireCounts() {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  counts.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) {
    counts.emplace_back(name, point->fire_count());
  }
  return counts;  // std::map iteration is already sorted
}

std::uint64_t FailpointFireCount(const std::string& name) {
  FailpointRegistry& registry = FailpointRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second->fire_count();
}

}  // namespace asteria::util
