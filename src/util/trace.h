// RAII trace spans: per-stage wall-time accounting for the pipeline
// (decompile -> preprocess -> encode -> search), aggregated into a
// per-thread, mergeable stage profile (docs/OBSERVABILITY.md).
//
//   void SearchIndex::TopK(...) {
//     ASTERIA_SPAN("search");
//     ...
//   }
//
// Each span records one (count, elapsed-nanos) sample under its stage name
// when it goes out of scope. Samples land in a thread-local profile — no
// lock, no shared cache line on the hot path; profiles register themselves
// once per thread and are merged (summed per stage, in name order) by
// SnapshotSpans(), so the merged result is independent of which thread ran
// which shard. Span counts are deterministic for deterministic work; the
// nanosecond totals are machine- and run-dependent by nature.
//
// Spans nest freely: each span charges its full elapsed time to its own
// stage ("encode" inside "corpus-build" counts toward both). Stage names
// must be string literals — the profile stores the pointer.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace asteria::util {

namespace internal {

// One stage slot of a per-thread profile. Only the owning thread writes;
// snapshots read concurrently, hence the relaxed atomics (never a lock).
struct alignas(64) StageSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> nanos{0};
};

// Fixed-capacity per-thread stage profile. 64 distinct stage names per
// thread is far beyond what the pipeline defines; overflow samples are
// dropped and counted in SnapshotSpans()'s "trace.dropped" stage.
struct StageProfile {
  static constexpr int kMaxStages = 64;
  StageSlot slots[kMaxStages];
  std::atomic<std::uint64_t> dropped{0};

  void Record(const char* stage, std::uint64_t elapsed_nanos);
};

// The calling thread's profile, registered process-wide on first use.
StageProfile& ThreadStageProfile();

}  // namespace internal

// Monotonic clock reading in nanoseconds. On x86-64 with an invariant TSC
// this is a calibrated rdtsc read (~3x cheaper than a steady_clock call;
// the scale self-calibrates against steady_clock over the process's first
// ~10ms of trace activity, so no call ever blocks). Other hosts — and the
// pre-calibration window — read steady_clock. Differences of two readings
// are durations; don't mix with raw steady_clock arithmetic.
std::int64_t TraceNowNanos();

// Records elapsed wall time under `stage` (a string literal) on scope exit.
class TraceSpan {
 public:
  explicit TraceSpan(const char* stage)
      : stage_(stage), start_nanos_(TraceNowNanos()) {}
  ~TraceSpan() {
    internal::ThreadStageProfile().Record(
        stage_, static_cast<std::uint64_t>(TraceNowNanos() - start_nanos_));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* stage_;
  std::int64_t start_nanos_;
};

// Merged view of one stage across every thread that ever recorded it.
struct StageTiming {
  std::string stage;
  std::uint64_t count = 0;
  std::uint64_t total_nanos = 0;

  double total_seconds() const {
    return static_cast<double>(total_nanos) * 1e-9;
  }
  double mean_seconds() const {
    return count == 0 ? 0.0 : total_seconds() / static_cast<double>(count);
  }
};

// Sums every thread's profile per stage name, sorted by name. Thread-count
// independent for deterministic work (the merge is keyed by name, not by
// thread). Included in util::SnapshotMetrics() as the "spans" section.
std::vector<StageTiming> SnapshotSpans();

// Zeroes every thread's profile (the profiles stay registered).
void ResetSpansForTest();

}  // namespace asteria::util

// ASTERIA_SPAN("stage") — scoped span with a collision-free local name.
#define ASTERIA_SPAN_CONCAT2(a, b) a##b
#define ASTERIA_SPAN_CONCAT(a, b) ASTERIA_SPAN_CONCAT2(a, b)
#define ASTERIA_SPAN(stage) \
  ::asteria::util::TraceSpan ASTERIA_SPAN_CONCAT(asteria_span_, __LINE__)(stage)
