#include "util/request_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/crc32.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace asteria::util {

namespace {

util::Counter c_records("request_log.records");
util::Counter c_snapshot_skipped("request_log.snapshot_skipped");

}  // namespace

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kOk: return "ok";
    case RequestOutcome::kError: return "error";
    case RequestOutcome::kShed: return "shed";
    case RequestOutcome::kCancelled: return "cancelled";
    case RequestOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case RequestOutcome::kShuttingDown: return "shutting_down";
  }
  return "unknown";
}

void RequestRecord::SetName(const std::string& value) {
  const std::size_t n =
      value.size() < kRequestNameBytes - 1 ? value.size()
                                           : kRequestNameBytes - 1;
  std::memcpy(name, value.data(), n);
  std::memset(name + n, 0, kRequestNameBytes - n);
}

RequestLog::RequestLog() : slots_(kCapacity) {}

void RequestLog::Append(const RequestRecord& record) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % kCapacity];
  // Seqlock write: version goes odd (acquire the slot in readers' eyes),
  // fields land relaxed, version goes even. Two writers lapping each other
  // onto the same slot can interleave stores — readers detect that because
  // the version moved — but that needs kCapacity appends during one write,
  // which the ring size makes unreachable in practice.
  slot.version.fetch_add(1, std::memory_order_acq_rel);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.end_nanos.store(record.end_nanos, std::memory_order_relaxed);
  slot.op.store(record.op, std::memory_order_relaxed);
  slot.outcome.store(static_cast<std::uint8_t>(record.outcome),
                     std::memory_order_relaxed);
  slot.batch_size.store(record.batch_size, std::memory_order_relaxed);
  slot.queue_wait_nanos.store(record.queue_wait_nanos,
                              std::memory_order_relaxed);
  slot.encode_nanos.store(record.encode_nanos, std::memory_order_relaxed);
  slot.score_nanos.store(record.score_nanos, std::memory_order_relaxed);
  slot.reply_nanos.store(record.reply_nanos, std::memory_order_relaxed);
  slot.scored_pairs.store(record.scored_pairs, std::memory_order_relaxed);
  slot.pruned_pairs.store(record.pruned_pairs, std::memory_order_relaxed);
  slot.has_deadline.store(record.has_deadline, std::memory_order_relaxed);
  slot.deadline_slack_nanos.store(record.deadline_slack_nanos,
                                  std::memory_order_relaxed);
  std::uint64_t words[kRequestNameBytes / 8];
  std::memcpy(words, record.name, sizeof(words));
  for (std::size_t w = 0; w < kRequestNameBytes / 8; ++w) {
    slot.name_words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.version.fetch_add(1, std::memory_order_release);
  c_records.Increment();
}

std::vector<RequestRecord> RequestLog::Snapshot() const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t first = total > kCapacity ? total - kCapacity : 0;
  std::vector<RequestRecord> records;
  records.reserve(static_cast<std::size_t>(total - first));
  for (std::uint64_t seq = first; seq < total; ++seq) {
    const Slot& slot = slots_[seq % kCapacity];
    RequestRecord record;
    bool stable = false;
    for (int attempt = 0; attempt < 4 && !stable; ++attempt) {
      const std::uint64_t before = slot.version.load(std::memory_order_acquire);
      if (before & 1) continue;  // writer inside
      record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      record.end_nanos = slot.end_nanos.load(std::memory_order_relaxed);
      record.op = slot.op.load(std::memory_order_relaxed);
      record.outcome = static_cast<RequestOutcome>(
          slot.outcome.load(std::memory_order_relaxed));
      record.batch_size = slot.batch_size.load(std::memory_order_relaxed);
      record.queue_wait_nanos =
          slot.queue_wait_nanos.load(std::memory_order_relaxed);
      record.encode_nanos = slot.encode_nanos.load(std::memory_order_relaxed);
      record.score_nanos = slot.score_nanos.load(std::memory_order_relaxed);
      record.reply_nanos = slot.reply_nanos.load(std::memory_order_relaxed);
      record.scored_pairs = slot.scored_pairs.load(std::memory_order_relaxed);
      record.pruned_pairs = slot.pruned_pairs.load(std::memory_order_relaxed);
      record.has_deadline = slot.has_deadline.load(std::memory_order_relaxed);
      record.deadline_slack_nanos =
          slot.deadline_slack_nanos.load(std::memory_order_relaxed);
      std::uint64_t words[kRequestNameBytes / 8];
      for (std::size_t w = 0; w < kRequestNameBytes / 8; ++w) {
        words[w] = slot.name_words[w].load(std::memory_order_relaxed);
      }
      std::memcpy(record.name, words, sizeof(words));
      std::atomic_thread_fence(std::memory_order_acquire);
      stable = slot.version.load(std::memory_order_relaxed) == before &&
               before != 0;  // version 0 = never written
    }
    if (stable) {
      record.name[kRequestNameBytes - 1] = '\0';
      records.push_back(record);
    } else {
      c_snapshot_skipped.Increment();
    }
  }
  return records;
}

void RequestLog::ResetForTest() {
  next_.store(0, std::memory_order_relaxed);
  for (Slot& slot : slots_) {
    slot.version.store(0, std::memory_order_relaxed);
  }
}

RequestLog& GlobalRequestLog() {
  static RequestLog* log = new RequestLog;  // never destroyed
  return *log;
}

std::uint64_t MintTraceId() {
  static std::atomic<std::uint64_t> counter{0};
  static const std::uint64_t base =
      (static_cast<std::uint64_t>(::getpid()) << 32) ^
      static_cast<std::uint64_t>(TraceNowNanos());
  std::uint64_t x = base + counter.fetch_add(1, std::memory_order_relaxed);
  // SplitMix64 finalizer: a counter walk becomes a well-spread id stream.
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

// -- CRC-line framing -------------------------------------------------------

namespace {

// Same minimal JSON string codec as the alert log (src/ingest/ingest.cpp):
// the writer controls the schema, so only quote, backslash, and control
// bytes need escaping.
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string RecordJson(const RequestRecord& record) {
  char trace[24];
  std::snprintf(trace, sizeof(trace), "%016llx",
                static_cast<unsigned long long>(record.trace_id));
  std::string json = "{\"trace\":\"";
  json += trace;
  json += "\",\"op\":";
  AppendJsonString(record.op, &json);
  json += ",\"outcome\":";
  AppendJsonString(RequestOutcomeName(record.outcome), &json);
  json += ",\"name\":";
  AppendJsonString(record.name, &json);
  json += ",\"batch\":" + std::to_string(record.batch_size);
  json += ",\"queue_wait_nanos\":" + std::to_string(record.queue_wait_nanos);
  json += ",\"encode_nanos\":" + std::to_string(record.encode_nanos);
  json += ",\"score_nanos\":" + std::to_string(record.score_nanos);
  json += ",\"reply_nanos\":" + std::to_string(record.reply_nanos);
  json += ",\"scored_pairs\":" + std::to_string(record.scored_pairs);
  json += ",\"pruned_pairs\":" + std::to_string(record.pruned_pairs);
  json += ",\"deadline\":" + std::string(record.has_deadline ? "1" : "0");
  json +=
      ",\"slack_nanos\":" + std::to_string(record.deadline_slack_nanos) + "}";
  return json;
}

bool ParseJsonString(const std::string& text, std::size_t* pos,
                     std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= text.size()) return false;
      const char esc = text[*pos + 1];
      if (esc == '"' || esc == '\\') {
        out->push_back(esc);
        *pos += 2;
        continue;
      }
      if (esc == 'u') {
        if (*pos + 5 >= text.size()) return false;
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[*pos + 2 + static_cast<std::size_t>(i)];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (value > 0xff) return false;  // the writer only emits \u00XX
        out->push_back(static_cast<char>(value));
        *pos += 6;
        continue;
      }
      return false;
    }
    out->push_back(c);
    ++*pos;
  }
  return false;
}

bool ExpectToken(const std::string& text, std::size_t* pos,
                 const std::string& token) {
  if (text.compare(*pos, token.size(), token) != 0) return false;
  *pos += token.size();
  return true;
}

bool ParseU64(const std::string& text, std::size_t* pos, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(text.c_str() + *pos, &end, 10);
  if (errno != 0 || end == text.c_str() + *pos) return false;
  *pos = static_cast<std::size_t>(end - text.c_str());
  return true;
}

bool ParseI64(const std::string& text, std::size_t* pos, std::int64_t* out) {
  char* end = nullptr;
  errno = 0;
  *out = std::strtoll(text.c_str() + *pos, &end, 10);
  if (errno != 0 || end == text.c_str() + *pos) return false;
  *pos = static_cast<std::size_t>(end - text.c_str());
  return true;
}

bool ParseRecordJson(const std::string& json, ParsedRequestRecord* record) {
  std::size_t pos = 0;
  std::string trace;
  if (!ExpectToken(json, &pos, "{\"trace\":") ||
      !ParseJsonString(json, &pos, &trace) || trace.size() != 16) {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  record->trace_id = std::strtoull(trace.c_str(), &end, 16);
  if (errno != 0 || end != trace.c_str() + 16) return false;
  std::uint64_t deadline = 0;
  if (!ExpectToken(json, &pos, ",\"op\":") ||
      !ParseJsonString(json, &pos, &record->op) ||
      !ExpectToken(json, &pos, ",\"outcome\":") ||
      !ParseJsonString(json, &pos, &record->outcome) ||
      !ExpectToken(json, &pos, ",\"name\":") ||
      !ParseJsonString(json, &pos, &record->name) ||
      !ExpectToken(json, &pos, ",\"batch\":") ||
      !ParseU64(json, &pos, &record->batch_size) ||
      !ExpectToken(json, &pos, ",\"queue_wait_nanos\":") ||
      !ParseU64(json, &pos, &record->queue_wait_nanos) ||
      !ExpectToken(json, &pos, ",\"encode_nanos\":") ||
      !ParseU64(json, &pos, &record->encode_nanos) ||
      !ExpectToken(json, &pos, ",\"score_nanos\":") ||
      !ParseU64(json, &pos, &record->score_nanos) ||
      !ExpectToken(json, &pos, ",\"reply_nanos\":") ||
      !ParseU64(json, &pos, &record->reply_nanos) ||
      !ExpectToken(json, &pos, ",\"scored_pairs\":") ||
      !ParseU64(json, &pos, &record->scored_pairs) ||
      !ExpectToken(json, &pos, ",\"pruned_pairs\":") ||
      !ParseU64(json, &pos, &record->pruned_pairs) ||
      !ExpectToken(json, &pos, ",\"deadline\":") ||
      !ParseU64(json, &pos, &deadline) || deadline > 1 ||
      !ExpectToken(json, &pos, ",\"slack_nanos\":") ||
      !ParseI64(json, &pos, &record->deadline_slack_nanos)) {
    return false;
  }
  record->has_deadline = deadline == 1;
  return ExpectToken(json, &pos, "}") && pos == json.size();
}

bool WriteBuffer(const std::string& path, const std::string& buffer,
                 int open_flags, std::string* error) {
  const int fd = ::open(path.c_str(), open_flags | O_CLOEXEC, 0644);
  if (fd < 0) {
    *error = path + ": open failed: " + std::strerror(errno);
    return false;
  }
  std::size_t done = 0;
  while (done < buffer.size()) {
    const ssize_t n = ::write(fd, buffer.data() + done, buffer.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = path + ": write failed: " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    *error = path + ": fsync failed: " + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

}  // namespace

std::string RequestRecordLine(const RequestRecord& record) {
  const std::string json = RecordJson(record);
  const std::uint32_t crc = Crc32(json.data(), json.size());
  char head[16];
  std::snprintf(head, sizeof(head), "SLOW %08x ", crc);
  return head + json + "\n";
}

bool AppendRequestRecords(const std::string& path,
                          const std::vector<RequestRecord>& records,
                          std::string* error) {
  if (records.empty()) return true;
  std::string buffer;
  for (const RequestRecord& record : records) {
    buffer += RequestRecordLine(record);
  }
  // One O_APPEND write for the whole batch: concurrent appenders never
  // interleave bytes, and a crash tears at most the final line — which the
  // reader's per-line CRC catches.
  return WriteBuffer(path, buffer, O_WRONLY | O_APPEND | O_CREAT, error);
}

bool WriteRequestLogFile(const std::string& path,
                         const std::vector<RequestRecord>& records,
                         std::string* error) {
  std::string buffer;
  for (const RequestRecord& record : records) {
    buffer += RequestRecordLine(record);
  }
  return WriteBuffer(path, buffer, O_WRONLY | O_TRUNC | O_CREAT, error);
}

bool ReadRequestLogFile(const std::string& path,
                        std::vector<ParsedRequestRecord>* records,
                        int* corrupt_lines, std::string* error) {
  records->clear();
  if (corrupt_lines != nullptr) *corrupt_lines = 0;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = path + ": open failed: " + std::strerror(errno);
    return false;
  }
  std::string contents;
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) {
    *error = path + ": read failed";
    return false;
  }
  std::size_t start = 0;
  while (start < contents.size()) {
    std::size_t newline = contents.find('\n', start);
    // A final line with no terminating newline is a torn tail by definition
    // (the writer always ends lines), so it lands in the corrupt count.
    const bool terminated = newline != std::string::npos;
    if (!terminated) newline = contents.size();
    const std::string line = contents.substr(start, newline - start);
    start = newline + 1;
    if (line.empty()) continue;
    bool good = false;
    ParsedRequestRecord record;
    // "SLOW " + 8 hex + " " + json, CRC over the json bytes.
    if (terminated && line.size() > 14 && line.compare(0, 5, "SLOW ") == 0 &&
        line[13] == ' ') {
      char* end = nullptr;
      errno = 0;
      const std::string hex = line.substr(5, 8);
      const unsigned long declared = std::strtoul(hex.c_str(), &end, 16);
      if (errno == 0 && end == hex.c_str() + 8) {
        const std::string json = line.substr(14);
        const std::uint32_t actual = Crc32(json.data(), json.size());
        if (actual == static_cast<std::uint32_t>(declared) &&
            ParseRecordJson(json, &record)) {
          good = true;
        }
      }
    }
    if (good) {
      records->push_back(std::move(record));
    } else if (corrupt_lines != nullptr) {
      ++*corrupt_lines;
    }
  }
  return true;
}

}  // namespace asteria::util
