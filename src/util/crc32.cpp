#include "util/crc32.h"

#include <array>

namespace asteria::util {

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace asteria::util
