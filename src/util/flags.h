// Tiny command-line flag parser shared by bench and example binaries.
//
// Supports "--name=value", "--name value", and boolean "--name". Unknown
// flags are reported and cause Parse() to return false so binaries fail fast
// on typos in experiment scripts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asteria::util {

class Flags {
 public:
  // Registers a flag with a default value and help text.
  void DefineInt(const std::string& name, std::int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);

  // Parses argv; returns false (and prints usage) on unknown flag, bad value,
  // or --help.
  bool Parse(int argc, char** argv);

  // True if a flag with this name has been defined (any type). Lets shared
  // helpers (bench::ApplyCommonFlags) work across binaries that define
  // different flag subsets.
  bool Has(const std::string& name) const {
    return entries_.find(name) != entries_.end();
  }

  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Renders the usage/help text.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Entry {
    Type type;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
  };
  const Entry& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;
};

}  // namespace asteria::util
