#include "util/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>

#include "util/failpoint.h"
#include "util/pipeline_report.h"
#include "util/table.h"

namespace asteria::util {

namespace {

// JSON string escaping (quotes, backslashes, control characters).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatJsonDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  // %g can produce "inf"/"nan" which are not JSON; gauges of non-finite
  // values render as null rather than corrupting the document.
  if (std::strchr(buffer, 'i') != nullptr || std::strchr(buffer, 'n') != nullptr) {
    return "null";
  }
  // Ensure a decimal marker so the value parses as a double downstream.
  if (std::strpbrk(buffer, ".eE") == nullptr) {
    std::strcat(buffer, ".0");
  }
  return buffer;
}

std::string FormatU64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

struct PipelineStageStats {
  std::int64_t ok = 0;
  std::int64_t skipped = 0;
  std::int64_t failed = 0;
  std::string first_failure;
};

}  // namespace

// Registry of every metric object in the process. Like FailpointRegistry,
// it is created on first use and never destroyed: metrics are statics in
// arbitrary translation units and may be touched during shutdown.
struct MetricsRegistry {
  std::mutex mutex;
  std::vector<Counter*> counters;
  std::vector<Gauge*> gauges;
  std::vector<Histogram*> histograms;
  std::map<std::string, PipelineStageStats> pipeline;

  static MetricsRegistry& Instance() {
    static MetricsRegistry* registry = new MetricsRegistry;  // never destroyed
    return *registry;
  }

  void Register(Counter* counter) {
    std::lock_guard<std::mutex> lock(mutex);
    counters.push_back(counter);
  }
  void Register(Gauge* gauge) {
    std::lock_guard<std::mutex> lock(mutex);
    gauges.push_back(gauge);
  }
  void Register(Histogram* histogram) {
    std::lock_guard<std::mutex> lock(mutex);
    histograms.push_back(histogram);
  }
};

namespace internal {

unsigned ThreadStripe() {
  static std::atomic<unsigned> next_ordinal{0};
  thread_local const unsigned stripe =
      next_ordinal.fetch_add(1, std::memory_order_relaxed) %
      static_cast<unsigned>(kMetricStripes);
  return stripe;
}

}  // namespace internal

Counter::Counter(const char* name) : name_(name) {
  MetricsRegistry::Instance().Register(this);
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const internal::MetricStripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

Gauge::Gauge(const char* name) : name_(name) {
  MetricsRegistry::Instance().Register(this);
}

void Gauge::Set(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  bits_.store(bits, std::memory_order_relaxed);
  set_.store(true, std::memory_order_release);
}

double Gauge::Value() const {
  const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Histogram::Histogram(const char* name) : name_(name) {
  for (HistStripe& stripe : stripes_) {
    for (std::atomic<std::uint64_t>& bucket : stripe.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
  MetricsRegistry::Instance().Register(this);
}

int Histogram::BucketIndex(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t Histogram::BucketLowerBound(int bucket) {
  return bucket <= 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

void Histogram::Observe(std::uint64_t value) {
  HistStripe& stripe = stripes_[internal::ThreadStripe()];
  stripe.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  stripe.count.fetch_add(1, std::memory_order_relaxed);
  stripe.sum.fetch_add(value, std::memory_order_relaxed);
  // Relaxed CAS loops: min/max are monotone, so lost races simply retry.
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (const HistStripe& stripe : stripes_) {
    total += stripe.count.load(std::memory_order_relaxed);
  }
  return total;
}

double HistogramValue::Percentile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based: the smallest r with r >= q*n.
  const double exact = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (const auto& [lower, tally] : buckets) {
    if (seen + tally < rank) {
      seen += tally;
      continue;
    }
    if (lower == 0) return 0.0;  // bucket 0 holds the exact value 0
    // Bucket i covers [2^(i-1), 2^i); interpolate by the rank's position
    // inside the bucket. The last bucket's ceiling 2^64 exceeds uint64, so
    // width math is done in double.
    const double width = static_cast<double>(lower);  // upper - lower == lower
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(tally);
    return static_cast<double>(lower) + width * frac;
  }
  return static_cast<double>(max);  // unreachable when tallies sum to count
}

HistogramValue Histogram::SnapshotValue() const {
  HistogramValue value;
  value.name = name_;
  std::uint64_t buckets[kBuckets] = {};
  for (const HistStripe& stripe : stripes_) {
    value.count += stripe.count.load(std::memory_order_relaxed);
    value.sum += stripe.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kBuckets; ++b) {
      buckets[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (value.count > 0) {
    value.min = min_.load(std::memory_order_relaxed);
    value.max = max_.load(std::memory_order_relaxed);
  }
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] != 0) {
      value.buckets.emplace_back(BucketLowerBound(b), buckets[b]);
    }
  }
  value.p50 = value.Percentile(0.50);
  value.p95 = value.Percentile(0.95);
  value.p99 = value.Percentile(0.99);
  return value;
}

void PublishPipelineReport(const PipelineReport& report) {
  if (report.stage.empty() && report.total() == 0) return;
  MetricsRegistry& registry = MetricsRegistry::Instance();
  std::lock_guard<std::mutex> lock(registry.mutex);
  PipelineStageStats& stats =
      registry.pipeline[report.stage.empty() ? "(unnamed)" : report.stage];
  stats.ok = report.ok;
  stats.skipped = report.skipped;
  stats.failed = report.failed;
  stats.first_failure.clear();
  for (const std::string& reason : report.reasons) {
    if (!reason.empty()) {
      stats.first_failure = reason;
      break;
    }
  }
}

MetricsSnapshot SnapshotMetrics() {
  MetricsSnapshot snapshot;
  MetricsRegistry& registry = MetricsRegistry::Instance();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    // Counters merge by name (independent translation units may legally
    // register the same name) and sort for stable output.
    std::map<std::string, std::uint64_t> counters;
    for (const Counter* counter : registry.counters) {
      counters[counter->name()] += counter->Value();
    }
    for (const auto& [name, value] : counters) {
      snapshot.counters.push_back({name, value});
    }
    std::map<std::string, double> gauges;
    for (const Gauge* gauge : registry.gauges) {
      if (gauge->HasValue()) gauges[gauge->name()] = gauge->Value();
    }
    for (const auto& [name, value] : gauges) {
      snapshot.gauges.push_back({name, value});
    }
    std::map<std::string, const Histogram*> histograms;
    for (const Histogram* histogram : registry.histograms) {
      histograms[histogram->name()] = histogram;
    }
    for (const auto& [name, histogram] : histograms) {
      snapshot.histograms.push_back(histogram->SnapshotValue());
      snapshot.histograms.back().name = name;
    }
    for (const auto& [stage, stats] : registry.pipeline) {
      snapshot.pipeline.push_back(
          {stage, stats.ok, stats.skipped, stats.failed, stats.first_failure});
    }
  }
  // Failpoint trip counts surface as counters so robustness runs show which
  // points fired and how often (docs/ROBUSTNESS.md). Only fired points are
  // listed — an exhaustive zero table would drown the interesting rows.
  for (const auto& [name, fires] : FailpointFireCounts()) {
    if (fires > 0) snapshot.counters.push_back({"failpoint." + name, fires});
  }
  std::sort(snapshot.counters.begin(), snapshot.counters.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  snapshot.spans = SnapshotSpans();
  return snapshot;
}

void ResetMetricsForTest() {
  MetricsRegistry& registry = MetricsRegistry::Instance();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (Counter* counter : registry.counters) {
      for (internal::MetricStripe& stripe : counter->stripes_) {
        stripe.value.store(0, std::memory_order_relaxed);
      }
    }
    for (Gauge* gauge : registry.gauges) {
      gauge->bits_.store(0, std::memory_order_relaxed);
      gauge->set_.store(false, std::memory_order_relaxed);
    }
    for (Histogram* histogram : registry.histograms) {
      histogram->min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
      histogram->max_.store(0, std::memory_order_relaxed);
      for (Histogram::HistStripe& stripe : histogram->stripes_) {
        stripe.count.store(0, std::memory_order_relaxed);
        stripe.sum.store(0, std::memory_order_relaxed);
        for (std::atomic<std::uint64_t>& bucket : stripe.buckets) {
          bucket.store(0, std::memory_order_relaxed);
        }
      }
    }
    registry.pipeline.clear();
  }
  ResetSpansForTest();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"schema\": \"asteria.metrics.v1\",\n";

  out += "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counters[i].name) +
           "\": " + FormatU64(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(gauges[i].name) +
           "\": " + FormatJsonDouble(gauges[i].value);
  }
  out += gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": {\n";
    out += "      \"count\": " + FormatU64(h.count) + ",\n";
    out += "      \"sum\": " + FormatU64(h.sum) + ",\n";
    out += "      \"min\": " + FormatU64(h.count ? h.min : 0) + ",\n";
    out += "      \"max\": " + FormatU64(h.count ? h.max : 0) + ",\n";
    out += "      \"p50\": " + FormatJsonDouble(h.p50) + ",\n";
    out += "      \"p95\": " + FormatJsonDouble(h.p95) + ",\n";
    out += "      \"p99\": " + FormatJsonDouble(h.p99) + ",\n";
    out += "      \"buckets\": {";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += "\"" + FormatU64(h.buckets[b].first) +
             "\": " + FormatU64(h.buckets[b].second);
    }
    out += "}\n    }";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";

  out += "  \"spans\": {";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const StageTiming& span = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(span.stage) + "\": {\n";
    out += "      \"count\": " + FormatU64(span.count) + ",\n";
    out += "      \"total_seconds\": " + FormatJsonDouble(span.total_seconds()) +
           ",\n";
    out += "      \"mean_seconds\": " + FormatJsonDouble(span.mean_seconds()) +
           "\n    }";
  }
  out += spans.empty() ? "},\n" : "\n  },\n";

  out += "  \"pipeline\": {";
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    const PipelineStageValue& stage = pipeline[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(stage.stage) + "\": {\n";
    out += "      \"ok\": " + std::to_string(stage.ok) + ",\n";
    out += "      \"skipped\": " + std::to_string(stage.skipped) + ",\n";
    out += "      \"failed\": " + std::to_string(stage.failed) + ",\n";
    out += "      \"first_failure\": \"" + JsonEscape(stage.first_failure) +
           "\"\n    }";
  }
  out += pipeline.empty() ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  if (!counters.empty() || !gauges.empty()) {
    TextTable table({"metric", "type", "value"});
    for (const CounterValue& counter : counters) {
      table.AddRow({counter.name, "counter", FormatU64(counter.value)});
    }
    for (const GaugeValue& gauge : gauges) {
      table.AddRow({gauge.name, "gauge", FormatDouble(gauge.value, 6)});
    }
    out += table.ToString();
  }
  if (!histograms.empty()) {
    TextTable table({"histogram", "count", "min", "max", "mean", "p50", "p95",
                     "p99", "buckets"});
    for (const HistogramValue& h : histograms) {
      std::string buckets;
      for (const auto& [bound, tally] : h.buckets) {
        if (!buckets.empty()) buckets += " ";
        buckets += FormatU64(bound) + ":" + FormatU64(tally);
      }
      const double mean =
          h.count ? static_cast<double>(h.sum) / static_cast<double>(h.count)
                  : 0.0;
      table.AddRow({h.name, FormatU64(h.count), FormatU64(h.count ? h.min : 0),
                    FormatU64(h.count ? h.max : 0), FormatDouble(mean, 1),
                    FormatDouble(h.p50, 1), FormatDouble(h.p95, 1),
                    FormatDouble(h.p99, 1), buckets});
    }
    out += "\n" + table.ToString();
  }
  if (!spans.empty()) {
    TextTable table({"span", "count", "total", "mean"});
    for (const StageTiming& span : spans) {
      table.AddRow({span.stage, FormatU64(span.count),
                    FormatSeconds(span.total_seconds()),
                    FormatSeconds(span.mean_seconds())});
    }
    out += "\n" + table.ToString();
  }
  if (!pipeline.empty()) {
    TextTable table({"pipeline stage", "ok", "skipped", "failed",
                     "first failure"});
    for (const PipelineStageValue& stage : pipeline) {
      table.AddRow({stage.stage, std::to_string(stage.ok),
                    std::to_string(stage.skipped), std::to_string(stage.failed),
                    stage.first_failure});
    }
    out += "\n" + table.ToString();
  }
  return out.empty() ? "(no metrics recorded)\n" : out;
}

bool MetricsSnapshot::WriteJson(const std::string& path,
                                std::string* error) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) *error = path + ": cannot open for writing";
    return false;
  }
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  if (std::fclose(file) != 0 || !ok) {
    if (error != nullptr) *error = path + ": write failed";
    return false;
  }
  return true;
}

}  // namespace asteria::util
