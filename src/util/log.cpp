#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace asteria::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
// Small per-thread ordinal for log attribution (main thread gets 0).
unsigned ThreadOrdinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::fprintf(stderr, "[%s %8.3fs t%02u] %s\n", LevelName(level), secs,
               ThreadOrdinal(), message.c_str());
}

}  // namespace asteria::util
