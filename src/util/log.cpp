#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace asteria::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const double secs =
      std::chrono::duration<double>(Clock::now() - start).count();
  std::fprintf(stderr, "[%s %8.3fs] %s\n", LevelName(level), secs,
               message.c_str());
}

}  // namespace asteria::util
