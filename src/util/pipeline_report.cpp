#include "util/pipeline_report.h"

#include "util/metrics.h"

namespace asteria::util {

void PipelineReport::Remember(const std::string& reason) {
  if (!reason.empty() && reasons.size() < kMaxReasons) {
    reasons.push_back(reason);
  }
}

void PipelineReport::AddSkipped(const std::string& reason) {
  ++skipped;
  Remember(reason);
}

void PipelineReport::AddFailed(const std::string& reason) {
  ++failed;
  Remember(reason);
}

void PipelineReport::Merge(const PipelineReport& other) {
  if (stage.empty()) stage = other.stage;
  ok += other.ok;
  skipped += other.skipped;
  failed += other.failed;
  for (const std::string& reason : other.reasons) {
    if (reasons.size() >= kMaxReasons) break;
    reasons.push_back(reason);
  }
}

std::string PipelineReport::Summary() const {
  // Printing a run report also lands it in the metrics registry, so the
  // text summary and a later --metrics_out snapshot always agree.
  // Publishing replaces any earlier report for the same stage, so repeated
  // Summary() calls never double-count.
  PublishPipelineReport(*this);
  std::string out = stage.empty() ? std::string("pipeline") : stage;
  out += ": " + std::to_string(ok) + " ok, " + std::to_string(skipped) +
         " skipped, " + std::to_string(failed) + " failed";
  if (!reasons.empty()) {
    out += " (";
    for (std::size_t i = 0; i < reasons.size(); ++i) {
      if (i > 0) out += "; ";
      out += reasons[i];
    }
    out += ")";
  }
  return out;
}

}  // namespace asteria::util
