#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace asteria::util {

namespace {

// Strict numeric parsing: the whole token must convert, with no trailing
// garbage and no range overflow. std::stoll-style prefix parsing silently
// accepted "12abc" as 12, which turns a typo'd experiment flag into a
// wrong-but-plausible run.
bool ParseInt64(const std::string& value, std::int64_t* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') return false;
  *out = static_cast<std::int64_t>(parsed);
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0') return false;
  if (!std::isfinite(parsed)) return false;
  *out = parsed;
  return true;
}

bool ParseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void Flags::DefineInt(const std::string& name, std::int64_t default_value,
                      const std::string& help) {
  Entry e;
  e.type = Type::kInt;
  e.help = help;
  e.int_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  Entry e;
  e.type = Type::kDouble;
  e.help = help;
  e.double_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  Entry e;
  e.type = Type::kBool;
  e.help = help;
  e.bool_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  Entry e;
  e.type = Type::kString;
  e.help = help;
  e.string_value = default_value;
  if (entries_.emplace(name, std::move(e)).second) order_.push_back(name);
}

bool Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(Usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), Usage(argv[0]).c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag: --%s\n%s", name.c_str(),
                   Usage(argv[0]).c_str());
      return false;
    }
    Entry& entry = it->second;
    if (!has_value && entry.type != Type::kBool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
      has_value = true;
    }
    bool ok = true;
    switch (entry.type) {
      case Type::kInt:
        ok = ParseInt64(value, &entry.int_value);
        break;
      case Type::kDouble:
        ok = ParseDouble(value, &entry.double_value);
        break;
      case Type::kBool:
        if (!has_value) {
          entry.bool_value = true;  // bare "--flag" means true
        } else {
          ok = ParseBool(value, &entry.bool_value);
        }
        break;
      case Type::kString:
        entry.string_value = value;
        break;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for --%s: '%s'\n", name.c_str(),
                   value.c_str());
      return false;
    }
  }
  return true;
}

const Flags::Entry& Flags::Lookup(const std::string& name, Type type) const {
  auto it = entries_.find(name);
  if (it == entries_.end() || it->second.type != type) {
    throw std::logic_error("undefined flag: " + name);
  }
  return it->second;
}

std::int64_t Flags::GetInt(const std::string& name) const {
  return Lookup(name, Type::kInt).int_value;
}
double Flags::GetDouble(const std::string& name) const {
  return Lookup(name, Type::kDouble).double_value;
}
bool Flags::GetBool(const std::string& name) const {
  return Lookup(name, Type::kBool).bool_value;
}
const std::string& Flags::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).string_value;
}

std::string Flags::Usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    out << "  --" << name;
    switch (e.type) {
      case Type::kInt: out << "=<int> (default " << e.int_value << ")"; break;
      case Type::kDouble:
        out << "=<float> (default " << e.double_value << ")";
        break;
      case Type::kBool:
        out << " (default " << (e.bool_value ? "true" : "false") << ")";
        break;
      case Type::kString:
        out << "=<str> (default \"" << e.string_value << "\")";
        break;
    }
    out << "\n      " << e.help << "\n";
  }
  return out.str();
}

}  // namespace asteria::util
