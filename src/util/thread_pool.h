// Fixed-size worker pool with a deterministic ParallelFor primitive.
//
// Determinism contract: ParallelFor(n, threads, fn) partitions [0, n) into
// at most `threads` contiguous shards whose bounds depend only on n and the
// shard count (ShardRange) — never on scheduling. Each index runs exactly
// once, so as long as fn(i) writes only to state owned by index i, the
// results are bitwise identical for every thread count, including 1 (which
// runs inline on the calling thread with no synchronization at all). Which
// OS thread executes a shard is unspecified; only the shard→range mapping
// is static. Callers that keep per-shard accumulators (e.g. local top-k
// heaps) must merge them in shard order to stay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

namespace asteria::util {

class ThreadPool {
 public:
  // Spawns `threads - 1` workers; the calling thread participates in every
  // ParallelFor as an extra worker. threads <= 1 spawns nothing.
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(begin, end, shard) for every shard of the static partition of
  // [0, n) into min(max_shards, threads(), n) shards. Blocks until all
  // shards finish; rethrows the first exception thrown by any shard.
  void ParallelForShards(
      std::int64_t n, int max_shards,
      const std::function<void(std::int64_t, std::int64_t, int)>& fn);

  // Runs fn(i) for every i in [0, n) via ParallelForShards.
  void ParallelFor(std::int64_t n, int max_shards,
                   const std::function<void(std::int64_t)>& fn);

  // Number of shards ParallelForShards will use for n items.
  static int ShardCount(std::int64_t n, int max_shards);

  // [begin, end) of shard `shard` in the static partition of [0, n) into
  // `shards` near-equal contiguous ranges (the first n % shards ranges get
  // one extra item). Depends only on its arguments.
  static std::pair<std::int64_t, std::int64_t> ShardRange(std::int64_t n,
                                                          int shards,
                                                          int shard);

  // Process-wide pool used by the free ParallelFor helpers below. Grows
  // (never shrinks) to the largest thread count ever requested. Not safe to
  // call concurrently with an in-flight free ParallelFor.
  static ThreadPool& Shared(int min_threads);

 private:
  struct Impl;
  int threads_ = 1;
  Impl* impl_ = nullptr;  // null when threads_ <= 1
};

// Convenience wrappers over the shared pool. threads <= 1 (or n <= 1) runs
// inline on the calling thread without touching the pool.
void ParallelFor(std::int64_t n, int threads,
                 const std::function<void(std::int64_t)>& fn);
void ParallelForShards(
    std::int64_t n, int threads,
    const std::function<void(std::int64_t, std::int64_t, int)>& fn);

}  // namespace asteria::util
