// Bounded multi-producer/multi-consumer blocking queue — the dispatch
// spine of the asteria-serve daemon (docs/SERVING.md).
//
// Connection reader threads enqueue parsed requests and worker threads
// Pop() them. Two producer flavors: Push() blocks when the queue is full
// (backpressure for cooperating in-process producers), while TryPush()
// never blocks — it fails immediately when the queue is at capacity (or at
// an optional lower high-water mark), which is how the daemon sheds load
// instead of letting hostile floods pin reader threads
// (docs/ROBUSTNESS.md "Overload & request lifecycle"). TryPop() lets a
// worker drain up to batch_max-1 additional requests without blocking, so
// batching adapts to load: an idle daemon dispatches batches of one, a
// busy daemon coalesces whatever has queued since the last pass.
//
// Close() wakes every blocked producer and consumer: subsequent Push()
// calls fail, and Pop() keeps draining queued items until the queue is
// empty, then fails — so shutdown never drops an accepted request.
//
// Plain mutex + two condition variables. The daemon enqueues at most a few
// thousand requests per second of decode-heavy work, so a lock-free ring
// buys nothing here; correctness under TSan is the feature.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace asteria::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Blocks while the queue is full. Returns false (dropping `item`) once
  // the queue has been closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking Push: returns false (dropping `item`) when the queue is
  // closed or already holds `high_water` items (0 means the full
  // capacity; values above capacity are clamped to it). Admission control:
  // the caller sheds the item instead of waiting for a slot.
  bool TryPush(T item, std::size_t high_water = 0) {
    const std::size_t limit =
        high_water == 0 ? capacity_ : std::min(high_water, capacity_);
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= limit) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks while the queue is empty. Returns false only when the queue is
  // closed AND drained; queued items are always delivered.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Non-blocking Pop: false when the queue is momentarily empty (or
  // closed and drained).
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Idempotent. Wakes all waiters; see class comment for drain semantics.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace asteria::util
