// Process-wide metrics registry: counters, gauges, and histograms with
// fixed power-of-two bucket boundaries, plus the machine-readable snapshot
// that CLIs and benches emit via --metrics_out (docs/OBSERVABILITY.md).
//
// A metric is a namespace-scope static in the .cpp it instruments, exactly
// like util::Failpoint:
//
//   namespace { util::Counter c_cache_hit("corpus.cache_hit"); }
//   ...
//   c_cache_hit.Increment();
//
// Hot-path contract: no global lock. Counter::Add and Histogram::Observe
// touch one cache-line-padded per-thread stripe with a relaxed atomic —
// the same static-partition philosophy as util::ThreadPool, applied to
// accumulation. The registry mutex is taken only at registration (static
// init) and snapshot time, never per sample.
//
// Determinism contract (tested at 1/2/8 threads in tests/metrics_test.cpp):
// counter values, histogram observation counts, and span counts depend only
// on the work performed, never on the thread count or scheduling. Bucket
// tallies are additionally thread-count-invariant whenever the observed
// values themselves are deterministic (sizes, counts, bytes); histograms of
// wall time ("*_nanos" by convention) have deterministic counts but
// machine-dependent bucket placement. docs/OBSERVABILITY.md spells out the
// full contract and the naming convention.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/trace.h"

namespace asteria::util {

struct PipelineReport;
struct MetricsSnapshot;
struct HistogramValue;

MetricsSnapshot SnapshotMetrics();
void ResetMetricsForTest();

// Number of accumulation stripes per metric. Threads hash onto stripes by a
// process-unique thread ordinal, so concurrent writers rarely share a cache
// line; snapshots sum all stripes.
inline constexpr int kMetricStripes = 16;

namespace internal {
// Stripe index of the calling thread (ordinal % kMetricStripes).
unsigned ThreadStripe();

struct alignas(64) MetricStripe {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace internal

// Monotonically increasing event count.
class Counter {
 public:
  // `name` must be a string literal (the registry keeps the pointer).
  explicit Counter(const char* name);
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n) {
    stripes_[internal::ThreadStripe()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Sum over all stripes (snapshot path; racing writers may or may not be
  // included, which is fine — snapshots are taken at quiescent points).
  std::uint64_t Value() const;

  const char* name() const { return name_; }

 private:
  friend struct MetricsRegistry;
  friend MetricsSnapshot SnapshotMetrics();
  friend void ResetMetricsForTest();
  const char* name_;
  internal::MetricStripe stripes_[kMetricStripes];
};

// Last-write-wins scalar (e.g. the final epoch loss).
class Gauge {
 public:
  explicit Gauge(const char* name);
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  double Value() const;
  // True once Set() has been called (unset gauges stay out of snapshots).
  bool HasValue() const { return set_.load(std::memory_order_relaxed); }

  const char* name() const { return name_; }

 private:
  friend struct MetricsRegistry;
  friend MetricsSnapshot SnapshotMetrics();
  friend void ResetMetricsForTest();
  const char* name_;
  std::atomic<std::uint64_t> bits_{0};  // IEEE-754 pattern of the value
  std::atomic<bool> set_{false};
};

// Histogram over non-negative integer values (latencies in nanoseconds,
// sizes, byte counts) with fixed power-of-two bucket boundaries: bucket 0
// holds the value 0, bucket i >= 1 holds [2^(i-1), 2^i). Fixed boundaries
// make bucket tallies a pure function of the observed values — snapshots
// never depend on observation order or thread count.
class Histogram {
 public:
  // Bucket 0 = value 0; buckets 1..64 cover [2^0, 2^64).
  static constexpr int kBuckets = 65;

  explicit Histogram(const char* name);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::uint64_t value);

  // Bucket that `value` falls into: 0 for 0, else floor(log2(value)) + 1.
  static int BucketIndex(std::uint64_t value);
  // Smallest value of bucket `bucket` (0, 1, 2, 4, 8, ...).
  static std::uint64_t BucketLowerBound(int bucket);

  std::uint64_t Count() const;

  // Merged view across all stripes (count/sum/min/max/buckets plus the
  // p50/p95/p99 estimates) — the same value SnapshotMetrics() builds, but
  // available per-histogram so e.g. the serve daemon can answer a kStats
  // frame without snapshotting the whole registry.
  HistogramValue SnapshotValue() const;

  const char* name() const { return name_; }

 private:
  friend struct MetricsRegistry;
  friend MetricsSnapshot SnapshotMetrics();
  friend void ResetMetricsForTest();

  struct alignas(64) HistStripe {
    std::atomic<std::uint64_t> buckets[kBuckets];
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };

  const char* name_;
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  HistStripe stripes_[kMetricStripes];
};

// Incremental count/sum/min/max accumulator for plain (single-threaded)
// code — the scalar core the registry Histogram shares its summary stats
// with, and the type util::TimingStats is an alias of (src/util/timer.h).
// The first sample unconditionally seeds min and max.
class ScalarStats {
 public:
  void Add(double value) {
    ++count_;
    sum_ += value;
    if (count_ == 1) {
      min_ = max_ = value;
      return;
    }
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// -- Snapshots --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  double value = 0.0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  // (bucket lower bound, tally) for every non-empty bucket, ascending.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  // Quantile estimates by upper-bound-of-bucket linear interpolation (see
  // Percentile). Like bucket placement for "*_nanos" histograms, these are
  // machine-dependent — determinism diffs must filter them.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  // Estimate of the q-th quantile (q in [0, 1]): finds the bucket holding
  // the ceil(q * count)-th smallest observation and interpolates linearly
  // between the bucket's lower bound and its upper bound (bucket 0 is the
  // exact value 0; the quantile of an empty histogram is 0). An upper-bound
  // bias: the true quantile is never above the estimate's bucket ceiling.
  double Percentile(double q) const;
};

struct PipelineStageValue {
  std::string stage;
  std::int64_t ok = 0;
  std::int64_t skipped = 0;
  std::int64_t failed = 0;
  std::string first_failure;  // first retained failure/skip reason, if any
};

// One coherent view of every metric in the process. All sections are sorted
// by name so two snapshots of the same work diff cleanly.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;  // includes "failpoint.<name>" per
                                       // failpoint that fired (trip counts)
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<StageTiming> spans;  // merged trace-span profile (util/trace.h)
  std::vector<PipelineStageValue> pipeline;

  // Machine-readable report: {"schema": "asteria.metrics.v1", "counters":
  // {...}, "gauges": {...}, "histograms": {...}, "spans": {...},
  // "pipeline": {...}}. Layout is stable (sorted keys, fixed indentation)
  // so scripts/check_metrics.sh can diff deterministic sections textually.
  std::string ToJson() const;

  // Human-readable tables (util::TextTable), the `asteria-cli stats` view.
  std::string ToText() const;

  // Writes ToJson() to `path`. Returns false and fills `error` on I/O
  // failure.
  bool WriteJson(const std::string& path, std::string* error) const;
};

// Collects every registered counter/gauge/histogram, the merged span
// profile, failpoint trip counts, and published pipeline reports.
MetricsSnapshot SnapshotMetrics();

// Zeroes every metric, span profile, and published pipeline report (not
// failpoint state — use ClearFailpoints for that). Tests call this between
// cases; production code never resets.
void ResetMetricsForTest();

// Records `report`'s ok/skipped/failed counts and first retained reason
// under its stage name, replacing any previous report for the same stage.
// Pipeline producers (SearchIndex::AddAll, BuildCorpus, TrainEpoch, ...)
// publish automatically; PipelineReport::Summary() publishes too, so
// printed run reports and --metrics_out snapshots always agree.
void PublishPipelineReport(const PipelineReport& report);

}  // namespace asteria::util
