// Failpoint fault injection: named points in production code that tests
// (and operators chasing a bug) can arm to force a failure exactly where a
// real one would occur — a failing fopen, a short fwrite, a crash between
// "temp file written" and "renamed over the snapshot".
//
// A failpoint is a namespace-scope static in the .cpp it guards:
//
//   namespace { util::Failpoint fp_open("store.open"); }
//   ...
//   if (fp_open.ShouldFail()) { /* behave as if fopen returned nullptr */ }
//
// Points register themselves at static-init time, so ListFailpoints() can
// enumerate every point compiled into the binary. They are armed by spec
// strings from the ASTERIA_FAILPOINTS environment variable or a
// --failpoints flag:
//
//   name=always        fire on every hit
//   name=once          fire on the first hit only
//   name=hit:N         fire on the N-th hit only (1-based)
//   name=every:N       fire on every N-th hit
//   name=off           disarm
//
// Multiple entries are comma-separated ("store.write=once,store.read=every:3").
// Arming a name that has not registered yet is not an error: the spec is
// held pending and applied when (if) the point registers — necessary
// because the env var is parsed before most translation units register.
//
// ShouldFail() is safe to call from ParallelFor workers: the disarmed fast
// path is a single relaxed atomic load, and armed state is plain atomics.
// Fire order across threads is scheduling-dependent, so deterministic tests
// arm failpoints on single-threaded paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace asteria::util {

// Environment variable holding the initial failpoint spec.
inline constexpr char kFailpointsEnvVar[] = "ASTERIA_FAILPOINTS";

class Failpoint {
 public:
  // `name` must be a string literal (the registry keeps the pointer).
  explicit Failpoint(const char* name);

  // True when this hit should be turned into a failure. Every call counts
  // as one hit; disarmed points count nothing and cost one atomic load.
  bool ShouldFail();

  const char* name() const { return name_; }
  std::uint64_t fire_count() const {
    return fires_.load(std::memory_order_relaxed);
  }

  enum Mode : int { kOff = 0, kAlways, kOnce, kHit, kEvery };

 private:
  friend struct FailpointRegistry;

  void Arm(int mode, std::uint64_t param);

  const char* name_;
  std::atomic<int> mode_{kOff};
  std::atomic<std::uint64_t> param_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fires_{0};
};

// Applies a spec string ("name=trigger,name=trigger"). Returns false and
// fills `error` on malformed syntax; unknown names are held pending (see
// header comment), not rejected.
bool ConfigureFailpoints(const std::string& spec, std::string* error = nullptr);

// Disarms every failpoint, zeroes hit/fire counters, and drops pending
// specs. Tests call this between cases.
void ClearFailpoints();

// Names of all registered failpoints (sorted). Only points whose
// translation units are linked into this binary appear.
std::vector<std::string> ListFailpoints();

// Times `name` has fired since the last ClearFailpoints (0 if unknown).
std::uint64_t FailpointFireCount(const std::string& name);

// (name, fire count) for every registered failpoint, sorted by name.
// util::SnapshotMetrics() folds the nonzero entries into the counter
// section as "failpoint.<name>" so trip counts appear in run reports.
std::vector<std::pair<std::string, std::uint64_t>> FailpointFireCounts();

}  // namespace asteria::util
