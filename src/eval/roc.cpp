#include "eval/roc.h"

#include <algorithm>
#include <cmath>

namespace asteria::eval {

RocResult ComputeRoc(std::vector<Scored> scored) {
  RocResult result;
  for (const Scored& s : scored) {
    if (s.second) {
      ++result.positives;
    } else {
      ++result.negatives;
    }
  }
  if (result.positives == 0 || result.negatives == 0) return result;
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.first > b.first; });
  // Sweep thresholds from +inf down; each distinct score adds a point.
  int tp = 0, fp = 0;
  result.points.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  for (std::size_t i = 0; i < scored.size();) {
    const double score = scored[i].first;
    while (i < scored.size() && scored[i].first == score) {
      if (scored[i].second) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    result.points.push_back(
        {static_cast<double>(fp) / result.negatives,
         static_cast<double>(tp) / result.positives, score});
  }
  // Trapezoidal AUC.
  double auc = 0.0;
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    const RocPoint& prev = result.points[i - 1];
    const RocPoint& cur = result.points[i];
    auc += (cur.fpr - prev.fpr) * (cur.tpr + prev.tpr) * 0.5;
  }
  result.auc = auc;
  return result;
}

double Auc(const std::vector<Scored>& scored) {
  // Mann-Whitney with midranks for ties.
  std::vector<Scored> sorted = scored;
  std::sort(sorted.begin(), sorted.end(),
            [](const Scored& a, const Scored& b) { return a.first < b.first; });
  double rank_sum_positive = 0.0;
  std::size_t positives = 0, negatives = 0;
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].first == sorted[i].first) ++j;
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (sorted[k].second) rank_sum_positive += midrank;
    }
    i = j;
  }
  for (const Scored& s : sorted) {
    if (s.second) {
      ++positives;
    } else {
      ++negatives;
    }
  }
  if (positives == 0 || negatives == 0) return 0.0;
  const double p = static_cast<double>(positives);
  return (rank_sum_positive - p * (p + 1) / 2.0) /
         (p * static_cast<double>(negatives));
}

double TprAtFpr(const RocResult& roc, double fpr) {
  double best = 0.0;
  for (std::size_t i = 1; i < roc.points.size(); ++i) {
    const RocPoint& prev = roc.points[i - 1];
    const RocPoint& cur = roc.points[i];
    if (cur.fpr <= fpr) {
      best = std::max(best, cur.tpr);
      continue;
    }
    if (prev.fpr <= fpr && cur.fpr > prev.fpr) {
      const double t = (fpr - prev.fpr) / (cur.fpr - prev.fpr);
      best = std::max(best, prev.tpr + t * (cur.tpr - prev.tpr));
    }
    break;
  }
  return best;
}

double YoudenThreshold(const RocResult& roc) {
  double best_j = -1.0;
  double best_threshold = 0.5;
  for (const RocPoint& point : roc.points) {
    const double j = point.tpr - point.fpr;
    if (j > best_j && std::isfinite(point.threshold)) {
      best_j = j;
      best_threshold = point.threshold;
    }
  }
  return best_threshold;
}

Confusion ConfusionAt(const std::vector<Scored>& scored, double threshold) {
  Confusion confusion;
  for (const Scored& s : scored) {
    const bool predicted = s.first >= threshold;
    if (s.second && predicted) ++confusion.tp;
    if (s.second && !predicted) ++confusion.fn;
    if (!s.second && predicted) ++confusion.fp;
    if (!s.second && !predicted) ++confusion.tn;
  }
  return confusion;
}

}  // namespace asteria::eval
