// Evaluation metrics: ROC curves, AUC, TPR@FPR, Youden index (§IV-D, §V).
#pragma once

#include <utility>
#include <vector>

namespace asteria::eval {

// One (score, is_positive) observation.
using Scored = std::pair<double, bool>;

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

struct RocResult {
  std::vector<RocPoint> points;  // sorted by increasing FPR
  double auc = 0.0;
  int positives = 0;
  int negatives = 0;
};

// Builds the full ROC curve by sweeping the threshold over every distinct
// score; AUC via the trapezoidal rule (equals the rank statistic).
RocResult ComputeRoc(std::vector<Scored> scored);

// AUC only (Mann-Whitney rank formulation, handles ties).
double Auc(const std::vector<Scored>& scored);

// Interpolated TPR at the given FPR.
double TprAtFpr(const RocResult& roc, double fpr);

// Threshold maximizing Youden's J = TPR - FPR (§V uses this to pick 0.84).
double YoudenThreshold(const RocResult& roc);

// Confusion counts at a fixed threshold (score >= threshold -> positive).
struct Confusion {
  int tp = 0, fp = 0, tn = 0, fn = 0;
  double Tpr() const { return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0; }
  double Fpr() const { return fp + tn ? static_cast<double>(fp) / (fp + tn) : 0.0; }
  double Accuracy() const {
    const int total = tp + fp + tn + fn;
    return total ? static_cast<double>(tp + tn) / total : 0.0;
  }
};
Confusion ConfusionAt(const std::vector<Scored>& scored, double threshold);

}  // namespace asteria::eval
