// Left-child right-sibling binarization (§III-A).
//
// The Binary Tree-LSTM consumes binary trees, so after digitalization every
// n-ary AST is transformed: a node's first child becomes its left child and
// its next sibling becomes its right child. This preserves node count and
// child order (the property the paper relies on when preferring the Binary
// Tree-LSTM over Child-Sum).
#pragma once

#include <vector>

#include "ast/ast.h"

namespace asteria::ast {

// One node of a binarized AST. label is the Table-I integer fed to the
// embedding layer. payload_bucket optionally summarizes the constant/string
// payload the paper's digitalization drops (§VII suggests embedding them;
// core::TreeLstmConfig::embed_payloads uses this): 0 = no payload,
// 1..33 = signed log2 magnitude buckets for numbers, 34..63 = string-hash
// buckets. Buckets depend only on the payload, so they are identical for
// homologous constants across ISAs.
struct BinaryNode {
  int label = 0;
  int payload_bucket = 0;
  NodeId left = kInvalidNode;
  NodeId right = kInvalidNode;
};

// Payload-bucket vocabulary size (see BinaryNode).
inline constexpr int kPayloadVocab = 64;

// Bucket helpers (exposed for tests).
int NumberPayloadBucket(std::int64_t value);
int StringPayloadBucket(const std::string& text);

// A binary tree produced by the LCRS transform, stored as a flat arena.
class BinaryAst {
 public:
  BinaryAst() = default;
  BinaryAst(std::vector<BinaryNode> nodes, NodeId root)
      : nodes_(std::move(nodes)), root_(root) {}

  NodeId root() const { return root_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  const BinaryNode& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  // Post-order node ids: children strictly before parents. This is the
  // bottom-up evaluation order of the Tree-LSTM (§III-B), computed
  // iteratively so deep LCRS chains cannot overflow the stack.
  std::vector<NodeId> PostOrder() const;

  // Height of the binary tree (single node -> 1).
  int Depth() const;

  // Multiset of labels; the LCRS transform must preserve this.
  std::vector<int> LabelHistogram() const;

 private:
  std::vector<BinaryNode> nodes_;
  NodeId root_ = kInvalidNode;
};

// Transforms an n-ary AST into left-child right-sibling form.
BinaryAst ToLeftChildRightSibling(const Ast& tree);

}  // namespace asteria::ast
