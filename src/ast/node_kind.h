// Table I of the paper: the node vocabulary of decompiled ASTs.
//
// Every AST node carries a NodeKind; digitalization (§III-A) maps each kind
// to the integer label listed in Table I. Statement kinds control execution
// flow, expression kinds perform computation. The paper reserves labels
// 1..43; bitwise-and is not listed in the paper's "ariths" row, so it is
// mapped into the trailing "other" range (documented deviation, DESIGN.md §7).
#pragma once

#include <cstdint>
#include <string_view>

namespace asteria::ast {

enum class NodeKind : std::uint8_t {
  // --- statements -----------------------------------------------------
  kIf = 0,        // if statement (cond, then[, else])
  kBlock,         // instructions executed sequentially
  kFor,           // for loop (init, cond, step, body)
  kWhile,         // while loop (cond, body)
  kSwitch,        // switch statement (value, cases...)
  kReturn,        // return statement ([value])
  kGoto,          // unconditional jump
  kContinue,      // continue statement in a loop
  kBreak,         // break statement in a loop
  // --- expressions: assignments (labels 10..17) -------------------------
  kAsg,           // =
  kAsgOr,         // |=
  kAsgXor,        // ^=
  kAsgAnd,        // &=
  kAsgAdd,        // +=
  kAsgSub,        // -=
  kAsgMul,        // *=
  kAsgDiv,        // /=
  // --- expressions: comparisons (labels 18..23) -------------------------
  kEq,            // ==
  kNe,            // !=
  kGt,            // >
  kLt,            // <
  kGe,            // >=
  kLe,            // <=
  // --- expressions: arithmetic (labels 24..34) ---------------------------
  kOr,            // |
  kXor,           // ^
  kAdd,           // +
  kSub,           // -
  kMul,           // *
  kDiv,           // /
  kNot,           // ! / ~
  kPostInc,       // x++
  kPostDec,       // x--
  kPreInc,        // ++x
  kPreDec,        // --x
  // --- expressions: other (labels 35..43) --------------------------------
  kIndex,         // a[i]
  kVar,           // variable reference
  kNum,           // numeric constant
  kCall,          // function call
  kStr,           // string constant
  kAsm,           // inline assembly / unliftable region
  kBand,          // & (bitwise and; see header comment)
  kNeg,           // unary minus
  // Extensions beyond the paper's enumeration (Table I: "can be extended if
  // new statements or expressions are introduced"); these correspond to
  // Hex-Rays ctype items the paper's prototype would have met (cot_shl,
  // cot_sshr, cot_smod, cot_tern, cot_ptr).
  kShl,           // <<
  kShr,           // >>
  kMod,           // %
  kTernary,       // cond ? a : b (from if-converted csel)
  kDeref,         // *p (non-array memory access)
  kOther,         // anything else (casts, address-of, ...)
  kKindCount,
};

inline constexpr int kNumNodeKinds = static_cast<int>(NodeKind::kKindCount);

// Table I label (1..43) for a node kind. This is the integer fed to the
// embedding layer after digitalization.
constexpr int NodeLabel(NodeKind kind) {
  return static_cast<int>(kind) + 1;
}

// Largest label value; the embedding vocabulary is [0, kMaxNodeLabel].
inline constexpr int kMaxNodeLabel = kNumNodeKinds;

// True for the statement rows of Table I.
constexpr bool IsStatement(NodeKind kind) {
  return static_cast<int>(kind) <= static_cast<int>(NodeKind::kBreak);
}

// True for assignment kinds (labels 10..17).
constexpr bool IsAssignment(NodeKind kind) {
  return kind >= NodeKind::kAsg && kind <= NodeKind::kAsgDiv;
}

// True for comparison kinds (labels 18..23).
constexpr bool IsComparison(NodeKind kind) {
  return kind >= NodeKind::kEq && kind <= NodeKind::kLe;
}

// Human-readable name, e.g. "if", "asg-add", "var".
std::string_view NodeKindName(NodeKind kind);

// Inverse of NodeKindName; returns kKindCount when unknown.
NodeKind NodeKindFromName(std::string_view name);

}  // namespace asteria::ast
