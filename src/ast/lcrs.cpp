#include "ast/lcrs.h"

#include <algorithm>

namespace asteria::ast {

int NumberPayloadBucket(std::int64_t value) {
  // 1 = zero; then signed log2-magnitude buckets (1..16 positive,
  // 17..32 negative), capped.
  if (value == 0) return 1;
  const bool negative = value < 0;
  std::uint64_t magnitude =
      negative ? ~static_cast<std::uint64_t>(value) + 1
               : static_cast<std::uint64_t>(value);
  int log2 = 0;
  while (magnitude >>= 1) ++log2;
  const int bucket = std::min(log2, 15);
  return 2 + bucket + (negative ? 16 : 0);  // 2..33
}

int StringPayloadBucket(const std::string& text) {
  std::uint32_t hash = 2166136261u;
  for (char ch : text) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 16777619u;
  }
  return 34 + static_cast<int>(hash % 30u);  // 34..63
}

BinaryAst ToLeftChildRightSibling(const Ast& tree) {
  if (tree.root() == kInvalidNode) return BinaryAst();
  std::vector<BinaryNode> nodes(static_cast<std::size_t>(tree.size()));
  // The binarized tree reuses the source node ids: only the edge structure
  // changes, so we can fill left/right directly.
  for (NodeId id : tree.PreOrder()) {
    const AstNode& n = tree.node(id);
    nodes[static_cast<std::size_t>(id)].label = NodeLabel(n.kind);
    if (n.kind == NodeKind::kNum) {
      nodes[static_cast<std::size_t>(id)].payload_bucket =
          NumberPayloadBucket(n.value);
    } else if (n.kind == NodeKind::kStr) {
      nodes[static_cast<std::size_t>(id)].payload_bucket =
          StringPayloadBucket(n.text);
    }
    if (!n.children.empty()) {
      nodes[static_cast<std::size_t>(id)].left = n.children.front();
    }
    for (std::size_t i = 0; i + 1 < n.children.size(); ++i) {
      nodes[static_cast<std::size_t>(n.children[i])].right = n.children[i + 1];
    }
  }
  return BinaryAst(std::move(nodes), tree.root());
}

std::vector<NodeId> BinaryAst::PostOrder() const {
  std::vector<NodeId> order;
  if (root_ == kInvalidNode) return order;
  order.reserve(nodes_.size());
  // Two-stack post-order: push reversed pre-order (node, right, left),
  // then reverse.
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const BinaryNode& n = node(id);
    if (n.left != kInvalidNode) stack.push_back(n.left);
    if (n.right != kInvalidNode) stack.push_back(n.right);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

int BinaryAst::Depth() const {
  if (root_ == kInvalidNode) return 0;
  std::vector<int> depth(nodes_.size(), 1);
  int result = 1;
  for (NodeId id : PostOrder()) {
    const BinaryNode& n = node(id);
    int d = 1;
    if (n.left != kInvalidNode) {
      d = std::max(d, depth[static_cast<std::size_t>(n.left)] + 1);
    }
    if (n.right != kInvalidNode) {
      d = std::max(d, depth[static_cast<std::size_t>(n.right)] + 1);
    }
    depth[static_cast<std::size_t>(id)] = d;
    result = std::max(result, d);
  }
  return result;
}

std::vector<int> BinaryAst::LabelHistogram() const {
  std::vector<int> histogram(kMaxNodeLabel + 1, 0);
  for (NodeId id : PostOrder()) {
    ++histogram[static_cast<std::size_t>(node(id).label)];
  }
  return histogram;
}

}  // namespace asteria::ast
