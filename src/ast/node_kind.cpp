#include "ast/node_kind.h"

#include <array>

namespace asteria::ast {

namespace {
constexpr std::array<std::string_view, kNumNodeKinds> kNames = {
    "if",       "block",    "for",      "while",   "switch",  "return",
    "goto",     "continue", "break",    "asg",     "asg-or",  "asg-xor",
    "asg-and",  "asg-add",  "asg-sub",  "asg-mul", "asg-div", "eq",
    "ne",       "gt",       "lt",       "ge",      "le",      "or",
    "xor",      "add",      "sub",      "mul",     "div",     "not",
    "post-inc", "post-dec", "pre-inc",  "pre-dec", "index",   "var",
    "num",      "call",     "str",      "asm",     "band",    "neg",
    "shl",      "shr",      "mod",      "ternary", "deref",   "other",
};
}  // namespace

std::string_view NodeKindName(NodeKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  if (i >= kNames.size()) return "?";
  return kNames[i];
}

NodeKind NodeKindFromName(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<NodeKind>(i);
  }
  return NodeKind::kKindCount;
}

}  // namespace asteria::ast
