#include "ast/ast.h"

#include <algorithm>
#include <sstream>

namespace asteria::ast {

NodeId Ast::AddNode(NodeKind kind, std::vector<NodeId> children) {
  AstNode node;
  node.kind = kind;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Ast::AddNum(std::int64_t value) {
  const NodeId id = AddNode(NodeKind::kNum);
  nodes_.back().value = value;
  return id;
}

NodeId Ast::AddVar(std::string name) {
  const NodeId id = AddNode(NodeKind::kVar);
  nodes_.back().text = std::move(name);
  return id;
}

NodeId Ast::AddStr(std::string literal) {
  const NodeId id = AddNode(NodeKind::kStr);
  nodes_.back().text = std::move(literal);
  return id;
}

NodeId Ast::AddCall(std::string callee, std::vector<NodeId> args) {
  const NodeId id = AddNode(NodeKind::kCall, std::move(args));
  nodes_.back().text = std::move(callee);
  return id;
}

void Ast::AddChild(NodeId parent, NodeId child) {
  nodes_[static_cast<std::size_t>(parent)].children.push_back(child);
}

int Ast::Depth() const {
  if (root_ == kInvalidNode) return 0;
  // Iterative post-order depth computation (trees can be deep).
  std::vector<int> depth(nodes_.size(), 0);
  struct Frame {
    NodeId id;
    std::size_t next_child;
  };
  std::vector<Frame> stack{{root_, 0}};
  int result = 1;
  while (!stack.empty()) {
    Frame& top = stack.back();
    const AstNode& n = node(top.id);
    if (top.next_child < n.children.size()) {
      stack.push_back({n.children[top.next_child++], 0});
      continue;
    }
    int d = 1;
    for (NodeId c : n.children) d = std::max(d, depth[static_cast<std::size_t>(c)] + 1);
    depth[static_cast<std::size_t>(top.id)] = d;
    result = std::max(result, d);
    stack.pop_back();
  }
  return depth[static_cast<std::size_t>(root_)];
}

bool Ast::Validate(std::string* error) const {
  auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  if (nodes_.empty()) return root_ == kInvalidNode || fail("root set on empty tree");
  if (root_ < 0 || root_ >= size()) return fail("root out of range");
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> stack{root_};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(id)]) return fail("node visited twice (not a tree)");
    seen[static_cast<std::size_t>(id)] = 1;
    ++visited;
    for (NodeId c : node(id).children) {
      if (c < 0 || c >= size()) return fail("child id out of range");
      stack.push_back(c);
    }
  }
  if (visited != nodes_.size()) return fail("unreachable nodes in arena");
  return true;
}

std::vector<NodeId> Ast::PreOrder() const {
  std::vector<NodeId> order;
  if (root_ == kInvalidNode) return order;
  order.reserve(nodes_.size());
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    const auto& children = node(id).children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return order;
}

std::vector<int> Ast::Digitalize() const {
  std::vector<int> labels;
  labels.reserve(nodes_.size());
  for (NodeId id : PreOrder()) labels.push_back(NodeLabel(node(id).kind));
  return labels;
}

std::vector<int> Ast::KindHistogram() const {
  std::vector<int> histogram(kNumNodeKinds, 0);
  for (NodeId id : PreOrder()) {
    ++histogram[static_cast<std::size_t>(node(id).kind)];
  }
  return histogram;
}

namespace {

void EscapeInto(const std::string& text, std::string& out) {
  for (char ch : text) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
}

void SExprNode(const Ast& tree, NodeId id, std::string& out) {
  const AstNode& n = tree.node(id);
  out += '(';
  out += NodeKindName(n.kind);
  if (n.kind == NodeKind::kNum) {
    out += ' ';
    out += std::to_string(n.value);
  } else if (!n.text.empty()) {
    out += " \"";
    EscapeInto(n.text, out);
    out += '"';
  }
  for (NodeId c : n.children) {
    out += ' ';
    SExprNode(tree, c, out);
  }
  out += ')';
}

}  // namespace

std::string Ast::ToSExpr() const {
  if (root_ == kInvalidNode) return "()";
  std::string out;
  SExprNode(*this, root_, out);
  return out;
}

namespace {

struct SExprParser {
  const std::string& text;
  std::size_t pos = 0;
  Ast* out;

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool Expect(char ch) {
    SkipSpace();
    if (pos >= text.size() || text[pos] != ch) return false;
    ++pos;
    return true;
  }

  bool ParseNode(NodeId* id) {
    if (!Expect('(')) return false;
    SkipSpace();
    std::size_t start = pos;
    while (pos < text.size() && (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '-')) {
      ++pos;
    }
    const NodeKind kind = NodeKindFromName(text.substr(start, pos - start));
    if (kind == NodeKind::kKindCount) return false;
    *id = out->AddNode(kind);
    SkipSpace();
    if (pos < text.size() && (text[pos] == '-' || std::isdigit(static_cast<unsigned char>(text[pos])))) {
      std::size_t digits = pos;
      if (text[pos] == '-') ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
      out->node(*id).value = std::stoll(text.substr(digits, pos - digits));
    } else if (pos < text.size() && text[pos] == '"') {
      ++pos;
      std::string value;
      while (pos < text.size() && text[pos] != '"') {
        if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
        value += text[pos++];
      }
      if (pos >= text.size()) return false;
      ++pos;  // closing quote
      out->node(*id).text = std::move(value);
    }
    SkipSpace();
    while (pos < text.size() && text[pos] == '(') {
      NodeId child = kInvalidNode;
      if (!ParseNode(&child)) return false;
      out->AddChild(*id, child);
      SkipSpace();
    }
    return Expect(')');
  }
};

}  // namespace

bool Ast::FromSExpr(const std::string& text, Ast* out) {
  *out = Ast();
  SExprParser parser{text, 0, out};
  parser.SkipSpace();
  if (parser.pos < text.size() && text.compare(parser.pos, 2, "()") == 0) return true;
  NodeId root = kInvalidNode;
  if (!parser.ParseNode(&root)) return false;
  parser.SkipSpace();
  if (parser.pos != text.size()) return false;
  out->set_root(root);
  return true;
}

std::string Ast::ToDot(const std::string& title) const {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n  node [shape=box];\n";
  for (NodeId id = 0; id < size(); ++id) {
    const AstNode& n = node(id);
    out << "  n" << id << " [label=\"" << NodeKindName(n.kind);
    if (n.kind == NodeKind::kNum) out << "\\n" << n.value;
    if (!n.text.empty()) out << "\\n" << n.text;
    out << "\"];\n";
    for (NodeId c : n.children) out << "  n" << id << " -> n" << c << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace asteria::ast
