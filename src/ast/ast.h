// Decompiled-function AST: the feature the paper encodes (§II-A, §III-A).
//
// Nodes live in a flat arena (indices instead of pointers) so trees are cheap
// to copy, serialize, and traverse. Node payloads (constant values, names,
// strings) are retained for printing and debugging, but digitalization drops
// them, exactly as the paper does ("we remove the constant values and
// strings", §VII).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ast/node_kind.h"

namespace asteria::ast {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

// One node of an n-ary AST.
struct AstNode {
  NodeKind kind = NodeKind::kOther;
  std::vector<NodeId> children;
  // Optional payloads; meaning depends on kind (kNum: value; kVar/kCall:
  // name; kStr: literal). Dropped by digitalization.
  std::int64_t value = 0;
  std::string text;
};

// An abstract syntax tree of one decompiled function.
class Ast {
 public:
  // Creates a node and returns its id. Children may be added later via
  // AddChild or passed here.
  NodeId AddNode(NodeKind kind, std::vector<NodeId> children = {});

  // Convenience creators for leaf payload nodes.
  NodeId AddNum(std::int64_t value);
  NodeId AddVar(std::string name);
  NodeId AddStr(std::string literal);
  NodeId AddCall(std::string callee, std::vector<NodeId> args = {});

  void AddChild(NodeId parent, NodeId child);

  void set_root(NodeId root) { root_ = root; }
  NodeId root() const { return root_; }

  const AstNode& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  AstNode& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }

  // Number of nodes in the arena ("AST size" in Fig. 10(a)).
  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  // Height of the tree rooted at root() (single node -> 1; empty -> 0).
  int Depth() const;

  // Checks structural sanity: root set, child ids in range, every node
  // reachable from the root exactly once (i.e. a tree, not a DAG).
  bool Validate(std::string* error = nullptr) const;

  // Digitalization (§III-A): pre-order sequence of Table-I labels.
  std::vector<int> Digitalize() const;

  // Per-kind node histogram (used by Diaphora's prime product).
  std::vector<int> KindHistogram() const;

  // Pre-order node ids starting at the root.
  std::vector<NodeId> PreOrder() const;

  // Compact single-line text form, e.g. "(block (asg (var x) (num)))".
  // Stable across runs; used for serialization and golden tests.
  std::string ToSExpr() const;

  // Parses the ToSExpr() format. Returns false on malformed input.
  static bool FromSExpr(const std::string& text, Ast* out);

  // Graphviz dot rendering for debugging.
  std::string ToDot(const std::string& title = "ast") const;

 private:
  std::vector<AstNode> nodes_;
  NodeId root_ = kInvalidNode;
};

}  // namespace asteria::ast
