#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>

namespace asteria::serve {

namespace {

// Little-endian scalar codecs for the fixed header (payloads go through
// store::ChunkBuilder/ChunkParser, which already encode this way).
void PutLe32(std::uint32_t v, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutLe64(std::uint64_t v, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t GetLe32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetLe64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

using SteadyTime = std::chrono::steady_clock::time_point;

// Reads exactly `size` bytes. Returns size on success, 0 on clean EOF
// before the first byte, -1 on error or EOF mid-buffer, -2 when the
// frame-assembly deadline expires first.
//
// `deadline` (may be null) threads the assembly budget across the several
// reads that make up one frame. Unarmed (time_point{}) it means "no frame
// in flight yet": EAGAIN wakeups from the fd's SO_RCVTIMEO just retry, so
// an idle connection can sit forever. The first byte that lands arms it at
// now + io_timeout_ms, and from then on every EAGAIN wakeup — and every
// partial read, so a steady trickle cannot dodge the check — tests it.
// With a null deadline, EAGAIN is an ordinary error (-1), preserving the
// pre-v2 client behavior where SO_RCVTIMEO expiry fails the exchange.
ssize_t ReadFull(int fd, void* buffer, std::size_t size, int io_timeout_ms = 0,
                 SteadyTime* deadline = nullptr) {
  std::uint8_t* out = static_cast<std::uint8_t*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n == 0) return done == 0 ? 0 : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && deadline != nullptr) {
        if (*deadline == SteadyTime{}) continue;  // idle: no frame started
        if (std::chrono::steady_clock::now() < *deadline) continue;
        return -2;
      }
      return -1;
    }
    done += static_cast<std::size_t>(n);
    if (deadline != nullptr) {
      if (*deadline == SteadyTime{}) {
        *deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(io_timeout_ms);
      } else if (done < size &&
                 std::chrono::steady_clock::now() >= *deadline) {
        return -2;
      }
    }
  }
  return static_cast<ssize_t>(done);
}

// MSG_NOSIGNAL: a peer that hung up turns into an error return, not a
// process-killing SIGPIPE.
bool WriteFull(int fd, const void* buffer, std::size_t size) {
  const std::uint8_t* in = static_cast<const std::uint8_t*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ReadStatus ReadFrame(int fd, FrameType* type,
                     std::vector<std::uint8_t>* payload, std::string* error,
                     std::uint64_t* deadline_ms, int io_timeout_ms,
                     std::uint64_t* trace_id, std::uint32_t* frame_version) {
  if (deadline_ms != nullptr) *deadline_ms = 0;
  if (trace_id != nullptr) *trace_id = 0;
  if (frame_version != nullptr) *frame_version = kProtocolVersionV1;
  SteadyTime assembly_deadline{};
  SteadyTime* deadline = io_timeout_ms > 0 ? &assembly_deadline : nullptr;
  std::uint8_t header[kFrameHeaderSizeV3];
  const ssize_t got =
      ReadFull(fd, header, kFrameHeaderSize, io_timeout_ms, deadline);
  if (got == 0) return ReadStatus::kClosed;
  if (got == -2) {
    *error = "frame assembly timed out after " +
             std::to_string(io_timeout_ms) + " ms (slow or stalled peer)";
    return ReadStatus::kTimeout;
  }
  if (got < 0) {
    *error = "short read inside frame header (peer closed or I/O error)";
    return ReadStatus::kBad;
  }
  const std::uint32_t magic = GetLe32(header);
  if (magic != kServeMagic) {
    *error = "bad frame magic (expected ASRV)";
    return ReadStatus::kBad;
  }
  const std::uint32_t version = GetLe32(header + 4);
  if (version != kProtocolVersion && version != kProtocolVersionV2 &&
      version != kProtocolVersionV1) {
    *error = "unsupported protocol version " + std::to_string(version) +
             " (this daemon speaks v" + std::to_string(kProtocolVersion) + ")";
    return ReadStatus::kBad;
  }
  if (frame_version != nullptr) *frame_version = version;
  const std::uint32_t raw_type = GetLe32(header + 8);
  const std::uint32_t declared_crc = GetLe32(header + 12);
  const std::uint64_t size = GetLe64(header + 16);
  // v2 appends the deadline field, v3 the trace id too; a v1 header simply
  // has neither. Dispatch on the version before consuming trailing fields.
  const std::size_t extra =
      version == kProtocolVersion ? kFrameHeaderSizeV3 - kFrameHeaderSize
      : version == kProtocolVersionV2 ? kFrameHeaderSizeV2 - kFrameHeaderSize
                                      : 0;
  if (extra > 0) {
    const ssize_t more = ReadFull(fd, header + kFrameHeaderSize, extra,
                                  io_timeout_ms, deadline);
    if (more == -2) {
      *error = "frame assembly timed out after " +
               std::to_string(io_timeout_ms) + " ms (slow or stalled peer)";
      return ReadStatus::kTimeout;
    }
    if (more != static_cast<ssize_t>(extra)) {
      *error = "short read inside frame header (peer closed or I/O error)";
      return ReadStatus::kBad;
    }
    if (deadline_ms != nullptr) *deadline_ms = GetLe64(header + 24);
    if (trace_id != nullptr && version == kProtocolVersion) {
      *trace_id = GetLe64(header + 32);
    }
  }
  if (size > kMaxFramePayload) {
    *error = "declared payload of " + std::to_string(size) +
             " bytes exceeds the " + std::to_string(kMaxFramePayload) +
             "-byte frame cap";
    return ReadStatus::kBad;
  }
  payload->resize(static_cast<std::size_t>(size));
  if (size > 0) {
    const ssize_t body =
        ReadFull(fd, payload->data(), payload->size(), io_timeout_ms, deadline);
    if (body == -2) {
      *error = "frame assembly timed out after " +
               std::to_string(io_timeout_ms) + " ms (slow or stalled peer)";
      return ReadStatus::kTimeout;
    }
    if (body != static_cast<ssize_t>(size)) {
      *error = "frame truncated: declared " + std::to_string(size) +
               " payload bytes but the stream ended early";
      return ReadStatus::kBad;
    }
  }
  const std::uint32_t actual_crc =
      store::Crc32(payload->data(), payload->size());
  if (actual_crc != declared_crc) {
    *error = "payload CRC mismatch (corrupted frame)";
    return ReadStatus::kBad;
  }
  *type = static_cast<FrameType>(raw_type);
  return ReadStatus::kFrame;
}

bool WriteFrame(int fd, FrameType type, const store::ChunkBuilder& payload,
                std::string* error, std::uint64_t deadline_ms,
                std::uint64_t trace_id, std::uint32_t version) {
  // Emit the header of the requested version: a v1 peer gets a 24-byte
  // header (no deadline, no trace), a v2 peer 32 bytes. The daemon uses
  // this to echo each reply in the version of the request that caused it,
  // so pre-v3 clients keep parsing replies.
  if (version != kProtocolVersion && version != kProtocolVersionV2 &&
      version != kProtocolVersionV1) {
    version = kProtocolVersion;
  }
  const std::size_t header_size = version == kProtocolVersion
                                      ? kFrameHeaderSizeV3
                                  : version == kProtocolVersionV2
                                      ? kFrameHeaderSizeV2
                                      : kFrameHeaderSize;
  std::uint8_t header[kFrameHeaderSizeV3];
  PutLe32(kServeMagic, header);
  PutLe32(version, header + 4);
  PutLe32(static_cast<std::uint32_t>(type), header + 8);
  PutLe32(store::Crc32(payload.bytes().data(), payload.size()), header + 12);
  PutLe64(payload.size(), header + 16);
  if (version != kProtocolVersionV1) PutLe64(deadline_ms, header + 24);
  if (version == kProtocolVersion) PutLe64(trace_id, header + 32);
  if (!WriteFull(fd, header, header_size) ||
      !WriteFull(fd, payload.bytes().data(), payload.size())) {
    *error = "frame write failed (peer closed or I/O error)";
    return false;
  }
  return true;
}

namespace {

void PutTree(const ast::BinaryAst& tree, store::ChunkBuilder* out) {
  out->PutU32(static_cast<std::uint32_t>(tree.size()));
  out->PutI32(tree.root());
  for (ast::NodeId id = 0; id < tree.size(); ++id) {
    const ast::BinaryNode& node = tree.node(id);
    out->PutI32(node.label);
    out->PutI32(node.payload_bucket);
    out->PutI32(node.left);
    out->PutI32(node.right);
  }
}

// Unlike the trusted on-disk corpus cache, wire ASTs are adversarial: on
// top of the bounds checks this enforces tree shape — every child id in
// range, no node claimed by two parents, the root nobody's child — so the
// post-order walk the encoder runs is provably finite and in bounds.
bool GetTree(store::ChunkParser* parser, ast::BinaryAst* tree,
             std::string* error) {
  std::uint32_t count = 0;
  ast::NodeId root = ast::kInvalidNode;
  if (!parser->GetU32(&count, error) || !parser->GetI32(&root, error)) {
    return false;
  }
  // 16 payload bytes per node bounds the declared count before allocating.
  if (static_cast<std::uint64_t>(count) * 16 > parser->remaining()) {
    *error = "query AST declares " + std::to_string(count) +
             " nodes but only " + std::to_string(parser->remaining()) +
             " payload bytes remain";
    return false;
  }
  std::vector<ast::BinaryNode> nodes(count);
  for (ast::BinaryNode& node : nodes) {
    if (!parser->GetI32(&node.label, error) ||
        !parser->GetI32(&node.payload_bucket, error) ||
        !parser->GetI32(&node.left, error) ||
        !parser->GetI32(&node.right, error)) {
      return false;
    }
  }
  if (count == 0) {
    *tree = ast::BinaryAst();
    return true;
  }
  if (root < 0 || root >= static_cast<ast::NodeId>(count)) {
    *error = "query AST root " + std::to_string(root) + " out of range [0, " +
             std::to_string(count) + ")";
    return false;
  }
  std::vector<char> has_parent(count, 0);
  for (std::uint32_t id = 0; id < count; ++id) {
    for (const ast::NodeId child : {nodes[id].left, nodes[id].right}) {
      if (child == ast::kInvalidNode) continue;
      if (child < 0 || child >= static_cast<ast::NodeId>(count)) {
        *error = "query AST node " + std::to_string(id) + " references child " +
                 std::to_string(child) + " out of range";
        return false;
      }
      if (has_parent[static_cast<std::size_t>(child)]) {
        *error = "query AST node " + std::to_string(child) +
                 " has two parents — not a tree";
        return false;
      }
      has_parent[static_cast<std::size_t>(child)] = 1;
    }
  }
  if (has_parent[static_cast<std::size_t>(root)]) {
    *error = "query AST root " + std::to_string(root) +
             " is another node's child — not a tree";
    return false;
  }
  *tree = ast::BinaryAst(std::move(nodes), root);
  return true;
}

}  // namespace

void PutQuery(std::uint64_t id, const core::FunctionFeature& query, int k,
              double threshold, FrameType type, store::ChunkBuilder* out) {
  out->PutU64(id);
  out->PutString(query.name);
  out->PutI32(query.callee_count);
  if (type == FrameType::kTopK) {
    out->PutI32(k);
  } else {
    out->PutF64(threshold);
  }
  PutTree(query.tree, out);
}

bool GetQuery(const std::vector<std::uint8_t>& payload, FrameType type,
              std::uint64_t* id, core::FunctionFeature* query, int* k,
              double* threshold, std::string* error) {
  store::ChunkParser parser(payload);
  *id = 0;
  if (!parser.GetU64(id, error) || !parser.GetString(&query->name, error) ||
      !parser.GetI32(&query->callee_count, error)) {
    return false;
  }
  if (type == FrameType::kTopK) {
    std::int32_t k32 = 0;
    if (!parser.GetI32(&k32, error)) return false;
    *k = k32;
  } else {
    if (!parser.GetF64(threshold, error)) return false;
  }
  if (!GetTree(&parser, &query->tree, error)) return false;
  if (!parser.AtEnd()) {
    *error = std::to_string(parser.remaining()) +
             " trailing bytes after the query payload";
    return false;
  }
  return true;
}

void PutHits(std::uint64_t id, const std::vector<core::SearchHit>& hits,
             store::ChunkBuilder* out) {
  out->PutU64(id);
  out->PutU32(static_cast<std::uint32_t>(hits.size()));
  for (const core::SearchHit& hit : hits) {
    out->PutI32(hit.index);
    out->PutString(hit.name);
    out->PutF64(hit.score);
  }
}

bool GetHits(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
             std::vector<core::SearchHit>* hits, std::string* error) {
  store::ChunkParser parser(payload);
  std::uint32_t count = 0;
  if (!parser.GetU64(id, error) || !parser.GetU32(&count, error)) return false;
  // 16 bytes minimum per hit (index + empty-name length + score).
  if (static_cast<std::uint64_t>(count) * 16 > parser.remaining()) {
    *error = "hits reply declares " + std::to_string(count) +
             " hits but only " + std::to_string(parser.remaining()) +
             " payload bytes remain";
    return false;
  }
  hits->clear();
  hits->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    core::SearchHit hit;
    if (!parser.GetI32(&hit.index, error) ||
        !parser.GetString(&hit.name, error) ||
        !parser.GetF64(&hit.score, error)) {
      return false;
    }
    hits->push_back(std::move(hit));
  }
  return true;
}

void PutControl(std::uint64_t id, store::ChunkBuilder* out) { out->PutU64(id); }

bool GetControl(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                std::string* error) {
  store::ChunkParser parser(payload);
  return parser.GetU64(id, error);
}

void PutError(std::uint64_t id, const std::string& message,
              store::ChunkBuilder* out) {
  out->PutU64(id);
  out->PutString(message);
}

bool GetError(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
              std::string* message, std::string* error) {
  store::ChunkParser parser(payload);
  return parser.GetU64(id, error) && parser.GetString(message, error);
}

void PutHealthInfo(std::uint64_t id, const HealthInfo& info,
                   store::ChunkBuilder* out) {
  out->PutU64(id);
  out->PutU64(info.index_size);
  out->PutU64(info.queue_depth);
  out->PutU64(info.connections);
  out->PutU32(info.draining ? 1 : 0);
  out->PutU64(info.uptime_ms);
  out->PutU64(info.answered);
  out->PutU64(info.shed);
  out->PutU64(info.deadline_exceeded);
}

bool GetHealthInfo(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                   HealthInfo* info, std::string* error) {
  store::ChunkParser parser(payload);
  std::uint32_t draining = 0;
  if (!parser.GetU64(id, error) || !parser.GetU64(&info->index_size, error) ||
      !parser.GetU64(&info->queue_depth, error) ||
      !parser.GetU64(&info->connections, error) ||
      !parser.GetU32(&draining, error)) {
    return false;
  }
  info->draining = draining != 0;
  // The v3 totals. A reply from an older daemon ends here; the fields stay
  // zero rather than failing the parse, so `ctl health` keeps working
  // across a version skew.
  if (parser.AtEnd()) {
    info->uptime_ms = info->answered = info->shed = info->deadline_exceeded = 0;
    return true;
  }
  return parser.GetU64(&info->uptime_ms, error) &&
         parser.GetU64(&info->answered, error) &&
         parser.GetU64(&info->shed, error) &&
         parser.GetU64(&info->deadline_exceeded, error);
}

void PutStatsInfo(std::uint64_t id, const StatsInfo& info,
                  store::ChunkBuilder* out) {
  out->PutU64(id);
  out->PutU64(info.uptime_ms);
  out->PutU64(info.requests);
  out->PutU64(info.replies);
  out->PutU64(info.shed);
  out->PutU64(info.cancelled);
  out->PutU64(info.deadline_exceeded);
  out->PutU64(info.queue_depth);
  out->PutU64(info.connections);
  out->PutU64(info.index_size);
  out->PutU64(info.p50_nanos);
  out->PutU64(info.p95_nanos);
  out->PutU64(info.p99_nanos);
  out->PutU32(static_cast<std::uint32_t>(info.samples.size()));
  for (const StatsSample& sample : info.samples) {
    out->PutU64(sample.age_ms);
    out->PutU64(sample.requests);
    out->PutU64(sample.replies);
    out->PutU64(sample.shed);
    out->PutU64(sample.deadline_exceeded);
    out->PutU64(sample.queue_depth);
  }
}

bool GetStatsInfo(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                  StatsInfo* info, std::string* error) {
  store::ChunkParser parser(payload);
  std::uint32_t count = 0;
  if (!parser.GetU64(id, error) || !parser.GetU64(&info->uptime_ms, error) ||
      !parser.GetU64(&info->requests, error) ||
      !parser.GetU64(&info->replies, error) ||
      !parser.GetU64(&info->shed, error) ||
      !parser.GetU64(&info->cancelled, error) ||
      !parser.GetU64(&info->deadline_exceeded, error) ||
      !parser.GetU64(&info->queue_depth, error) ||
      !parser.GetU64(&info->connections, error) ||
      !parser.GetU64(&info->index_size, error) ||
      !parser.GetU64(&info->p50_nanos, error) ||
      !parser.GetU64(&info->p95_nanos, error) ||
      !parser.GetU64(&info->p99_nanos, error) ||
      !parser.GetU32(&count, error)) {
    return false;
  }
  // 48 bytes per sample; bound the declared count before allocating.
  if (count > kMaxStatsSamples ||
      static_cast<std::uint64_t>(count) * 48 > parser.remaining()) {
    *error = "stats reply declares " + std::to_string(count) +
             " samples but only " + std::to_string(parser.remaining()) +
             " payload bytes remain";
    return false;
  }
  info->samples.clear();
  info->samples.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StatsSample sample;
    if (!parser.GetU64(&sample.age_ms, error) ||
        !parser.GetU64(&sample.requests, error) ||
        !parser.GetU64(&sample.replies, error) ||
        !parser.GetU64(&sample.shed, error) ||
        !parser.GetU64(&sample.deadline_exceeded, error) ||
        !parser.GetU64(&sample.queue_depth, error)) {
      return false;
    }
    info->samples.push_back(sample);
  }
  if (!parser.AtEnd()) {
    *error = std::to_string(parser.remaining()) +
             " trailing bytes after the stats payload";
    return false;
  }
  return true;
}

}  // namespace asteria::serve
