#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace asteria::serve {

namespace {

// serve.accept: the accepted connection is dropped immediately (resource
// exhaustion at accept time). serve.read: the next frame read is treated as
// an I/O failure. serve.swap: injects a delay between loading the
// replacement index and publishing it — not a failure, a race-window
// widener for the swap-under-load tests (a stalled swap must never stall
// or tear in-flight queries).
util::Failpoint fp_accept("serve.accept");
util::Failpoint fp_read("serve.read");
util::Failpoint fp_swap("serve.swap");

// Deterministic slice (counts depend only on the session's requests, never
// on worker count or timing): accepted, requests, queries, replies, errors,
// reloads, index_size. Batch shapes and latencies are timing-dependent;
// scripts/check_serve.sh filters those.
util::Counter c_accepted("serve.accepted");
util::Counter c_accept_dropped("serve.accept_dropped");
util::Counter c_requests("serve.requests");
util::Counter c_control("serve.control");
util::Counter c_replies("serve.replies");
util::Counter c_errors("serve.errors");
util::Counter c_bad_frames("serve.bad_frames");
util::Counter c_read_failures("serve.read_failures");
util::Counter c_write_failures("serve.write_failures");
util::Counter c_reloads("serve.reloads");
util::Histogram h_request_nanos("serve.request_nanos");
util::Histogram h_batch_requests("serve.batch_requests");
util::Gauge g_index_size("serve.index_size");

}  // namespace

// One accepted client. The fd is owned here (closed by the destructor, so
// it stays valid for any queued request still holding the shared_ptr);
// writes from workers and the reader serialize on write_mu so reply frames
// never interleave bytes.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  // Wakes a blocked reader with a clean EOF while leaving the write side
  // open — queued requests can still be answered during shutdown.
  void AbortReads() { ::shutdown(fd, SHUT_RD); }

  // Protocol violation or write failure: no further traffic either way.
  void CloseHard() {
    closed.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
  }

  bool SendFrame(FrameType type, const store::ChunkBuilder& payload) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_acquire)) return false;
    std::string error;
    if (!WriteFrame(fd, type, payload, &error)) {
      c_write_failures.Increment();
      closed.store(true, std::memory_order_release);
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    return true;
  }

  bool SendError(std::uint64_t id, const std::string& message) {
    store::ChunkBuilder payload;
    PutError(id, message, &payload);
    c_errors.Increment();
    return SendFrame(FrameType::kError, payload);
  }

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
};

// One parsed, validated query waiting in the dispatch queue.
struct Server::Request {
  std::shared_ptr<Connection> conn;
  std::uint64_t id = 0;
  FrameType type = FrameType::kTopK;
  core::FunctionFeature query;
  int k = 0;
  double threshold = 0.0;
};

Server::Server(const core::AsteriaModel& model, const ServerConfig& config)
    : model_(model), config_(config) {}

Server::~Server() {
  // A started server must be Run() to completion (or never started); guard
  // against leaking the listen socket on a Start() that was never Run.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

std::shared_ptr<const core::SearchIndex> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool Server::Start(std::string* error) {
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path '" + config_.socket_path +
             "' is empty or longer than sun_path allows (" +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    return false;
  }
  auto index = std::make_shared<core::SearchIndex>(
      model_, config_.score_threads < 1 ? 1 : config_.score_threads);
  if (!index->Open(config_.index_path, error)) return false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(index);
  }
  g_index_size.Set(snapshot()->size());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  // A previous daemon that crashed leaves its socket file behind; binding
  // over it needs the unlink (a *live* daemon would still win the race to
  // accept, so this never hijacks one — the stale file is just an inode).
  ::unlink(config_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    *error = config_.socket_path + ": bind/listen failed: " +
             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  queue_ = std::make_unique<util::MpmcQueue<Request>>(
      static_cast<std::size_t>(
          config_.queue_capacity < 1 ? 1 : config_.queue_capacity));
  const int workers = config_.workers < 1 ? 1 : config_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  started_.store(true, std::memory_order_release);
  ASTERIA_LOG(Info) << "asteria-serve: " << snapshot()->size()
                    << " entries from " << config_.index_path << ", "
                    << workers << " workers, batch_max=" << config_.batch_max
                    << ", listening on " << config_.socket_path;
  return true;
}

bool Server::Reload(std::string* error) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  auto fresh = std::make_shared<core::SearchIndex>(
      model_, config_.score_threads < 1 ? 1 : config_.score_threads);
  if (!fresh->Open(config_.index_path, error)) return false;
  if (fp_swap.ShouldFail()) {
    // Delay, don't fail: hold the fully built replacement unpublished so
    // swap-under-load tests get a wide window where queries race the swap.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  g_index_size.Set(fresh->size());
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  c_reloads.Increment();
  ASTERIA_LOG(Info) << "asteria-serve: reloaded " << config_.index_path
                    << " (" << snapshot()->size() << " entries)";
  return true;
}

void Server::AcceptLoop() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_acquire)) {
    if (reload_.exchange(false, std::memory_order_acq_rel)) {
      std::string error;
      if (!Reload(&error)) {
        ASTERIA_LOG(Warn) << "asteria-serve: SIGHUP reload failed, keeping "
                             "current snapshot: " << error;
      }
    }
    // Reap finished reader threads so a long-lived daemon's thread vector
    // tracks live connections, not historical ones.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (std::size_t i = 0; i < readers_.size();) {
        if (conns_[i] == nullptr) {
          readers_[i].join();
          readers_.erase(readers_.begin() + static_cast<std::ptrdiff_t>(i));
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ASTERIA_LOG(Error) << "asteria-serve: poll failed: "
                         << std::strerror(errno);
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      ASTERIA_LOG(Error) << "asteria-serve: accept failed: "
                         << std::strerror(errno);
      break;
    }
    if (fp_accept.ShouldFail()) {
      c_accept_dropped.Increment();
      ::close(fd);
      continue;
    }
    c_accepted.Increment();
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back(&Server::ReaderLoop, this, std::move(conn));
  }
}

void Server::Run() {
  AcceptLoop();
  // Teardown, in dependency order: stop accepting (done), wake blocked
  // readers with EOF, fail further enqueues while letting workers drain
  // what was accepted, then join everything and remove the socket.
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    readers.swap(readers_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (conn != nullptr) conn->AbortReads();
  }
  queue_->Close();
  for (std::thread& reader : readers) {
    reader.join();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  ASTERIA_LOG(Info) << "asteria-serve: stopped";
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  for (;;) {
    if (fp_read.ShouldFail()) {
      c_read_failures.Increment();
      conn->SendError(0, "injected read failure (failpoint serve.read)");
      conn->CloseHard();
      break;
    }
    FrameType type = FrameType::kPing;
    std::vector<std::uint8_t> payload;
    std::string error;
    const ReadStatus status = ReadFrame(conn->fd, &type, &payload, &error);
    if (status == ReadStatus::kClosed) break;
    if (status == ReadStatus::kBad) {
      // The byte stream can't be re-framed after a violation: answer once
      // (best effort — the peer may already be gone) and hang up.
      c_bad_frames.Increment();
      conn->SendError(0, error);
      conn->CloseHard();
      break;
    }
    if (!HandleFrame(conn, type, payload)) break;
  }
  // Null the conns_ slot so the acceptor reaps this thread; the Connection
  // itself lives on in any queued Request until its reply is written.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == conn) {
      conns_[i] = nullptr;
      break;
    }
  }
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         FrameType type,
                         const std::vector<std::uint8_t>& payload) {
  std::string error;
  std::uint64_t id = 0;
  switch (type) {
    case FrameType::kTopK:
    case FrameType::kAboveThreshold: {
      Request request;
      request.conn = conn;
      request.type = type;
      if (!GetQuery(payload, type, &request.id, &request.query, &request.k,
                    &request.threshold, &error)) {
        // Framing and CRC were fine, so the stream is still aligned: report
        // the malformed payload and keep the connection.
        conn->SendError(request.id, error);
        return true;
      }
      if (request.query.tree.empty()) {
        conn->SendError(request.id, "query AST is empty");
        return true;
      }
      if (type == FrameType::kTopK && request.k < 1) {
        conn->SendError(request.id,
                        "k must be >= 1, got " + std::to_string(request.k));
        return true;
      }
      if (type == FrameType::kAboveThreshold &&
          !std::isfinite(request.threshold)) {
        conn->SendError(request.id, "threshold must be finite");
        return true;
      }
      c_requests.Increment();
      const std::uint64_t request_id = request.id;
      if (!queue_->Push(std::move(request))) {
        conn->SendError(request_id, "daemon is shutting down");
        return false;
      }
      return true;
    }
    case FrameType::kPing: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error);
        return true;
      }
      c_control.Increment();
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      conn->SendFrame(FrameType::kPong, reply);
      return true;
    }
    case FrameType::kReload: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error);
        return true;
      }
      c_control.Increment();
      // Reload on the reader thread: only this connection waits for the
      // load; workers keep answering against the pinned old snapshot.
      if (!Reload(&error)) {
        conn->SendError(id, error);
        return true;
      }
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      conn->SendFrame(FrameType::kOk, reply);
      return true;
    }
    case FrameType::kShutdown: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error);
        return true;
      }
      c_control.Increment();
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      conn->SendFrame(FrameType::kOk, reply);
      RequestStop();
      return false;
    }
    default:
      conn->SendError(0, "unexpected frame type " +
                             std::to_string(static_cast<std::uint32_t>(type)));
      return true;
  }
}

void Server::WorkerLoop() {
  Request request;
  while (queue_->Pop(&request)) {
    std::vector<Request> batch;
    batch.push_back(std::move(request));
    // Coalesce whatever queued since the last pass, up to batch_max; an
    // idle daemon dispatches singletons, a loaded one amortizes the index
    // sweep across the whole batch.
    const std::size_t batch_max = static_cast<std::size_t>(
        config_.batch_max < 1 ? 1 : config_.batch_max);
    while (batch.size() < batch_max && queue_->TryPop(&request)) {
      batch.push_back(std::move(request));
    }
    DispatchBatch(&batch);
  }
}

void Server::DispatchBatch(std::vector<Request>* batch) {
  util::Timer timer;
  h_batch_requests.Observe(batch->size());
  // Pin one snapshot for the whole batch: every query in it scores against
  // this index even if a reload publishes mid-flight.
  const std::shared_ptr<const core::SearchIndex> index = snapshot();
  std::vector<const core::FunctionFeature*> topk_queries;
  std::vector<int> topk_ks;
  std::vector<std::size_t> topk_slots;
  for (std::size_t i = 0; i < batch->size(); ++i) {
    const Request& req = (*batch)[i];
    if (req.type == FrameType::kTopK) {
      topk_queries.push_back(&req.query);
      topk_ks.push_back(req.k);
      topk_slots.push_back(i);
    }
  }
  const std::vector<std::vector<core::SearchHit>> topk_results =
      index->TopKBatch(topk_queries, topk_ks);
  for (std::size_t j = 0; j < topk_slots.size(); ++j) {
    const Request& req = (*batch)[topk_slots[j]];
    store::ChunkBuilder reply;
    PutHits(req.id, topk_results[j], &reply);
    if (req.conn->SendFrame(FrameType::kHits, reply)) c_replies.Increment();
  }
  for (const Request& req : *batch) {
    if (req.type != FrameType::kAboveThreshold) continue;
    const std::vector<core::SearchHit> hits =
        index->AboveThreshold(req.query, req.threshold);
    store::ChunkBuilder reply;
    PutHits(req.id, hits, &reply);
    if (req.conn->SendFrame(FrameType::kHits, reply)) c_replies.Increment();
  }
  const std::uint64_t elapsed =
      static_cast<std::uint64_t>(timer.ElapsedNanos());
  for (std::size_t i = 0; i < batch->size(); ++i) {
    h_request_nanos.Observe(elapsed);
  }
}

}  // namespace asteria::serve
