#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <utility>

#include "util/failpoint.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/request_log.h"
#include "util/timer.h"
#include "util/trace.h"

namespace asteria::serve {

namespace {

// serve.accept: the accepted connection is dropped immediately (resource
// exhaustion at accept time). serve.read: the next frame read is treated as
// an I/O failure. serve.swap: injects a delay between loading the
// replacement index and publishing it — not a failure, a race-window
// widener for the swap-under-load tests (a stalled swap must never stall
// or tear in-flight queries).
util::Failpoint fp_accept("serve.accept");
util::Failpoint fp_read("serve.read");
util::Failpoint fp_swap("serve.swap");
// serve.stall_worker: a worker sleeps ~250ms before examining its batch —
// lets tests fill the queue deterministically (shed/cancel/expire all need
// requests to still be queued when something happens to them).
// serve.slow_reply: ~50ms sleep before each kHits write, for slow-reply /
// drain-window races.
util::Failpoint fp_stall_worker("serve.stall_worker");
util::Failpoint fp_slow_reply("serve.slow_reply");

// Deterministic slice (counts depend only on the session's requests, never
// on worker count or timing): accepted, requests, queries, replies, errors,
// reloads, index_size. Batch shapes and latencies are timing-dependent;
// scripts/check_serve.sh filters those.
util::Counter c_accepted("serve.accepted");
util::Counter c_accept_dropped("serve.accept_dropped");
util::Counter c_requests("serve.requests");
util::Counter c_control("serve.control");
util::Counter c_replies("serve.replies");
util::Counter c_errors("serve.errors");
util::Counter c_bad_frames("serve.bad_frames");
util::Counter c_read_failures("serve.read_failures");
util::Counter c_write_failures("serve.write_failures");
util::Counter c_reloads("serve.reloads");
// Request-lifecycle counters (zero on a well-behaved session; the chaos
// gate drives each one deterministically — scripts/check_chaos.sh).
util::Counter c_shed("serve.shed");
util::Counter c_cancelled("serve.cancelled");
util::Counter c_deadline_exceeded("serve.deadline_exceeded");
util::Counter c_conn_rejected("serve.conn_rejected");
util::Counter c_io_timeouts("serve.io_timeouts");
util::Counter c_drain_dropped("serve.drain_dropped");
util::Histogram h_request_nanos("serve.request_nanos");
util::Histogram h_batch_requests("serve.batch_requests");
util::Histogram h_drain_nanos("serve.drain_nanos");
util::Gauge g_index_size("serve.index_size");

// Wide-event op name for a query frame (docs/OBSERVABILITY.md).
const char* QueryOpName(FrameType type) {
  return type == FrameType::kTopK ? "serve.topk" : "serve.above_threshold";
}

// Cuts a bare control/error record (no queue or scoring phases — those are
// filled by the query paths, which build their records by hand).
void CutControlRecord(std::uint64_t trace_id, const char* op,
                      util::RequestOutcome outcome,
                      std::uint64_t reply_nanos) {
  util::RequestRecord record;
  record.trace_id = trace_id;
  record.op = op;
  record.outcome = outcome;
  record.reply_nanos = reply_nanos;
  record.end_nanos = util::TraceNowNanos();
  util::GlobalRequestLog().Append(record);
}

}  // namespace

// One accepted client. The fd is owned here (closed by the destructor, so
// it stays valid for any queued request still holding the shared_ptr);
// writes from workers and the reader serialize on write_mu so reply frames
// never interleave bytes.
struct Server::Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  // Wakes a blocked reader with a clean EOF while leaving the write side
  // open — queued requests can still be answered during shutdown.
  void AbortReads() { ::shutdown(fd, SHUT_RD); }

  // Protocol violation or write failure: no further traffic either way.
  void CloseHard() {
    closed.store(true, std::memory_order_release);
    ::shutdown(fd, SHUT_RDWR);
  }

  // `trace_id` echoes the request's v3 trace field on the reply frame so
  // the client's record for this attempt joins the server's; `version` is
  // the version of the request being answered, so a v1/v2 peer receives a
  // header it can parse.
  bool SendFrame(FrameType type, const store::ChunkBuilder& payload,
                 std::uint64_t trace_id = 0,
                 std::uint32_t version = kProtocolVersion) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_acquire)) return false;
    std::string error;
    if (!WriteFrame(fd, type, payload, &error, /*deadline_ms=*/0, trace_id,
                    version)) {
      c_write_failures.Increment();
      closed.store(true, std::memory_order_release);
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    return true;
  }

  bool SendError(std::uint64_t id, const std::string& message,
                 std::uint64_t trace_id = 0,
                 std::uint32_t version = kProtocolVersion) {
    store::ChunkBuilder payload;
    PutError(id, message, &payload);
    c_errors.Increment();
    return SendFrame(FrameType::kError, payload, trace_id, version);
  }

  // Id-only reply (kOk / kOverloaded / kDeadlineExceeded / kShuttingDown).
  bool SendControl(FrameType type, std::uint64_t id,
                   std::uint64_t trace_id = 0,
                   std::uint32_t version = kProtocolVersion) {
    store::ChunkBuilder payload;
    PutControl(id, &payload);
    return SendFrame(type, payload, trace_id, version);
  }

  // Explicit kCancel bookkeeping. The list is bounded (oldest evicted):
  // a cancel only matters while its query is queued, which a few dozen
  // slots comfortably cover, and a hostile peer spraying cancels must not
  // grow server memory.
  void Cancel(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(cancel_mu);
    if (cancelled_ids.size() >= kMaxCancelledIds) cancelled_ids.pop_front();
    cancelled_ids.push_back(id);
  }

  bool IsCancelled(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(cancel_mu);
    return std::find(cancelled_ids.begin(), cancelled_ids.end(), id) !=
           cancelled_ids.end();
  }

  static constexpr std::size_t kMaxCancelledIds = 64;

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> closed{false};
  // Bumped when the reader observes a client disconnect (not a shutdown
  // drain). A queued Request carries the epoch at enqueue time; a mismatch
  // at dispatch means nobody is waiting for the answer.
  std::atomic<std::uint64_t> cancel_epoch{0};
  std::mutex cancel_mu;
  std::deque<std::uint64_t> cancelled_ids;
};

// One parsed, validated query waiting in the dispatch queue.
struct Server::Request {
  std::shared_ptr<Connection> conn;
  std::uint64_t id = 0;
  FrameType type = FrameType::kTopK;
  core::FunctionFeature query;
  int k = 0;
  double threshold = 0.0;
  std::uint64_t enqueue_epoch = 0;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  std::uint64_t trace_id = 0;      // from the v3 frame header (0 = untraced)
  std::uint32_t wire_version = kProtocolVersion;  // reply in this version
  std::int64_t enqueue_nanos = 0;  // TraceNowNanos() at admission
  // Reply-side observability, filled by DispatchBatch (in-struct rather
  // than in side arrays so the per-batch bookkeeping costs no allocations).
  std::uint64_t reply_nanos = 0;
  bool replied = false;
};

Server::Server(const core::AsteriaModel& model, const ServerConfig& config)
    : model_(model), config_(config) {}

Server::~Server() {
  // A started server must be Run() to completion (or never started); guard
  // against leaking the listen socket on a Start() that was never Run.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
}

std::shared_ptr<const core::SearchIndex> Server::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

bool Server::Start(std::string* error) {
  start_time_ = std::chrono::steady_clock::now();
  sockaddr_un addr{};
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path '" + config_.socket_path +
             "' is empty or longer than sun_path allows (" +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    return false;
  }
  auto index = std::make_shared<core::SearchIndex>(
      model_, config_.score_threads < 1 ? 1 : config_.score_threads);
  if (!index->Open(config_.index_path, error)) return false;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(index);
  }
  g_index_size.Set(snapshot()->size());

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  // A previous daemon that crashed leaves its socket file behind; binding
  // over it needs the unlink (a *live* daemon would still win the race to
  // accept, so this never hijacks one — the stale file is just an inode).
  ::unlink(config_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    *error = config_.socket_path + ": bind/listen failed: " +
             std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  queue_ = std::make_unique<util::MpmcQueue<Request>>(
      static_cast<std::size_t>(
          config_.queue_capacity < 1 ? 1 : config_.queue_capacity));
  const int workers = config_.workers < 1 ? 1 : config_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  // Telemetry sampler: seed the ring with a t=0 baseline so `ctl top` has a
  // reference sample immediately, then tick on the configured cadence.
  telemetry_ring_.reserve(kTelemetryRingSlots);
  TakeSample();
  if (config_.telemetry_interval_ms > 0) {
    telemetry_thread_ = std::thread(&Server::TelemetryLoop, this);
  }
  started_.store(true, std::memory_order_release);
  ASTERIA_LOG(Info) << "asteria-serve: " << snapshot()->size()
                    << " entries from " << config_.index_path << ", "
                    << workers << " workers, batch_max=" << config_.batch_max
                    << ", listening on " << config_.socket_path;
  return true;
}

bool Server::Reload(std::string* error) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  auto fresh = std::make_shared<core::SearchIndex>(
      model_, config_.score_threads < 1 ? 1 : config_.score_threads);
  if (!fresh->Open(config_.index_path, error)) return false;
  if (fp_swap.ShouldFail()) {
    // Delay, don't fail: hold the fully built replacement unpublished so
    // swap-under-load tests get a wide window where queries race the swap.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  g_index_size.Set(fresh->size());
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(fresh);
  }
  c_reloads.Increment();
  ASTERIA_LOG(Info) << "asteria-serve: reloaded " << config_.index_path
                    << " (" << snapshot()->size() << " entries)";
  return true;
}

void Server::AcceptLoop() {
  pollfd pfd{};
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_acquire)) {
    if (reload_.exchange(false, std::memory_order_acq_rel)) {
      std::string error;
      if (!Reload(&error)) {
        ASTERIA_LOG(Warn) << "asteria-serve: SIGHUP reload failed, keeping "
                             "current snapshot: " << error;
      }
    }
    // Reap finished reader threads so a long-lived daemon's thread vector
    // tracks live connections, not historical ones.
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (std::size_t i = 0; i < readers_.size();) {
        if (conns_[i] == nullptr) {
          readers_[i].join();
          readers_.erase(readers_.begin() + static_cast<std::ptrdiff_t>(i));
          conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    const int ready = ::poll(&pfd, 1, 100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ASTERIA_LOG(Error) << "asteria-serve: poll failed: "
                         << std::strerror(errno);
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      ASTERIA_LOG(Error) << "asteria-serve: accept failed: "
                         << std::strerror(errno);
      break;
    }
    if (fp_accept.ShouldFail()) {
      c_accept_dropped.Increment();
      ::close(fd);
      continue;
    }
    if (config_.max_conns > 0 &&
        LiveConnections() >= static_cast<std::size_t>(config_.max_conns)) {
      // Full house: say why before hanging up, so the client can back off
      // and retry instead of seeing a bare connection reset.
      c_conn_rejected.Increment();
      store::ChunkBuilder payload;
      PutControl(0, &payload);
      std::string werr;
      WriteFrame(fd, FrameType::kOverloaded, payload, &werr);
      ::close(fd);
      continue;
    }
    if (config_.io_timeout_ms > 0) {
      // SO_RCVTIMEO paces the reader's recv wakeups (capped at 100ms so the
      // frame-assembly deadline is enforced promptly even against a peer
      // that goes fully silent); SO_SNDTIMEO bounds how long a worker can
      // be wedged writing a reply to a client that stopped reading.
      const int recv_ms = std::min(config_.io_timeout_ms, 100);
      timeval recv_tv{};
      recv_tv.tv_sec = recv_ms / 1000;
      recv_tv.tv_usec = static_cast<suseconds_t>((recv_ms % 1000) * 1000);
      timeval send_tv{};
      send_tv.tv_sec = config_.io_timeout_ms / 1000;
      send_tv.tv_usec =
          static_cast<suseconds_t>((config_.io_timeout_ms % 1000) * 1000);
      if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &recv_tv,
                       sizeof(recv_tv)) != 0 ||
          ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_tv,
                       sizeof(send_tv)) != 0) {
        ASTERIA_LOG(Warn) << "asteria-serve: setsockopt timeouts failed: "
                          << std::strerror(errno);
      }
    }
    c_accepted.Increment();
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back(&Server::ReaderLoop, this, std::move(conn));
  }
}

std::size_t Server::LiveConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::size_t live = 0;
  for (const std::shared_ptr<Connection>& conn : conns_) {
    if (conn != nullptr) ++live;
  }
  return live;
}

std::uint64_t Server::UptimeMs() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_time_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
}

void Server::TakeSample() {
  RawSample sample;
  sample.at = std::chrono::steady_clock::now();
  sample.totals.requests = c_requests.Value();
  sample.totals.replies = c_replies.Value();
  sample.totals.shed = c_shed.Value();
  sample.totals.deadline_exceeded = c_deadline_exceeded.Value();
  sample.totals.queue_depth = queue_ ? queue_->size() : 0;
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  if (telemetry_ring_.size() < kTelemetryRingSlots) {
    telemetry_ring_.push_back(sample);
  } else {
    telemetry_ring_[telemetry_next_ % kTelemetryRingSlots] = sample;
  }
  ++telemetry_next_;
}

void Server::TelemetryLoop() {
  const auto interval = std::chrono::milliseconds(
      config_.telemetry_interval_ms < 1 ? 1 : config_.telemetry_interval_ms);
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  while (!telemetry_stop_) {
    if (telemetry_cv_.wait_for(lock, interval,
                               [this] { return telemetry_stop_; })) {
      break;
    }
    lock.unlock();
    TakeSample();
    lock.lock();
  }
}

std::vector<StatsSample> Server::SampleRing(
    std::chrono::steady_clock::time_point now) {
  std::vector<StatsSample> out;
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  const std::size_t size = telemetry_ring_.size();
  out.reserve(size);
  const std::size_t start =
      size < kTelemetryRingSlots ? 0 : telemetry_next_ % kTelemetryRingSlots;
  for (std::size_t i = 0; i < size; ++i) {
    const RawSample& raw = telemetry_ring_[(start + i) % size];
    StatsSample sample = raw.totals;
    sample.age_ms =
        raw.at <= now
            ? static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      now - raw.at)
                      .count())
            : 0;
    out.push_back(sample);
  }
  return out;
}

void Server::Run() {
  AcceptLoop();
  // Teardown, in dependency order: stop accepting (done), wake blocked
  // readers with EOF — flagging draining_ first so their exits read as
  // shutdown, not client disconnects — give queued work the drain window,
  // then join everything and remove the socket.
  util::Timer drain_timer;
  draining_.store(true, std::memory_order_release);
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    readers.swap(readers_);
  }
  for (const std::shared_ptr<Connection>& conn : conns) {
    if (conn != nullptr) conn->AbortReads();
  }
  for (std::thread& reader : readers) {
    reader.join();
  }
  // Drain window: wait up to drain_timeout_ms for workers to empty the
  // queue. Past the window, flip drain_expired_ so the remainder is
  // answered kShuttingDown — shutdown latency stays bounded no matter how
  // deep the backlog.
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          config_.drain_timeout_ms < 0 ? 0 : config_.drain_timeout_ms);
  while (queue_->size() > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (queue_->size() > 0) {
    drain_expired_.store(true, std::memory_order_release);
    ASTERIA_LOG(Warn) << "asteria-serve: drain window ("
                      << config_.drain_timeout_ms << " ms) closed with "
                      << queue_->size()
                      << " queued requests; answering kShuttingDown";
  }
  queue_->Close();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    telemetry_stop_ = true;
  }
  telemetry_cv_.notify_all();
  if (telemetry_thread_.joinable()) telemetry_thread_.join();
  h_drain_nanos.Observe(static_cast<std::uint64_t>(drain_timer.ElapsedNanos()));
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(config_.socket_path.c_str());
  ASTERIA_LOG(Info) << "asteria-serve: stopped";
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  // True when the loop ends because the peer went away (EOF, framing
  // violation, slow-loris timeout) rather than a kShutdown request.
  bool disconnected = false;
  for (;;) {
    if (fp_read.ShouldFail()) {
      c_read_failures.Increment();
      conn->SendError(0, "injected read failure (failpoint serve.read)");
      conn->CloseHard();
      CutControlRecord(0, "serve.read", util::RequestOutcome::kError, 0);
      disconnected = true;
      break;
    }
    FrameType type = FrameType::kPing;
    std::vector<std::uint8_t> payload;
    std::string error;
    std::uint64_t deadline_ms = 0;
    std::uint64_t trace_id = 0;
    std::uint32_t frame_version = kProtocolVersion;
    const ReadStatus status =
        ReadFrame(conn->fd, &type, &payload, &error, &deadline_ms,
                  config_.io_timeout_ms, &trace_id, &frame_version);
    if (status == ReadStatus::kClosed) {
      disconnected = true;
      break;
    }
    if (status == ReadStatus::kBad || status == ReadStatus::kTimeout) {
      // The byte stream can't be re-framed after a violation: answer once
      // (best effort — the peer may already be gone) and hang up.
      if (status == ReadStatus::kTimeout) c_io_timeouts.Increment();
      c_bad_frames.Increment();
      conn->SendError(0, error);
      conn->CloseHard();
      CutControlRecord(0, "serve.read", util::RequestOutcome::kError, 0);
      disconnected = true;
      break;
    }
    if (!HandleFrame(conn, type, payload, deadline_ms, trace_id,
                     frame_version)) {
      break;
    }
  }
  // A disconnected client is no longer waiting: bump the epoch so workers
  // skip its queued queries before encoding them. A reader woken by the
  // shutdown drain must NOT bump — those queries still get answered.
  if (disconnected && !draining_.load(std::memory_order_acquire)) {
    conn->cancel_epoch.fetch_add(1, std::memory_order_acq_rel);
  }
  // Null the conns_ slot so the acceptor reaps this thread; the Connection
  // itself lives on in any queued Request until its reply is written.
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i] == conn) {
      conns_[i] = nullptr;
      break;
    }
  }
}

bool Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         FrameType type,
                         const std::vector<std::uint8_t>& payload,
                         std::uint64_t deadline_ms, std::uint64_t trace_id,
                         std::uint32_t frame_version) {
  std::string error;
  std::uint64_t id = 0;
  switch (type) {
    case FrameType::kTopK:
    case FrameType::kAboveThreshold: {
      Request request;
      request.conn = conn;
      request.type = type;
      request.trace_id = trace_id;
      request.wire_version = frame_version;
      // A rejected query still cuts a wide-event record: shed and malformed
      // requests are exactly the ones a latency investigation needs to see.
      // The name lives outside `request` because a failed TryPush leaves
      // `request` moved-from — the shed record must still carry it.
      std::string record_name;
      const auto cut_admission_record = [&](util::RequestOutcome outcome,
                                            std::uint64_t reply_nanos) {
        util::RequestRecord record;
        record.trace_id = trace_id;
        record.op = QueryOpName(type);
        record.outcome = outcome;
        record.reply_nanos = reply_nanos;
        record.has_deadline = deadline_ms > 0;
        if (deadline_ms > 0) {
          record.deadline_slack_nanos =
              static_cast<std::int64_t>(deadline_ms) * 1000000;
        }
        record.SetName(record_name);
        record.end_nanos = util::TraceNowNanos();
        util::GlobalRequestLog().Append(record);
      };
      const bool query_parsed =
          GetQuery(payload, type, &request.id, &request.query, &request.k,
                   &request.threshold, &error);
      record_name = request.query.name;
      if (!query_parsed) {
        // Framing and CRC were fine, so the stream is still aligned: report
        // the malformed payload and keep the connection.
        conn->SendError(request.id, error, trace_id, frame_version);
        cut_admission_record(util::RequestOutcome::kError, 0);
        return true;
      }
      if (request.query.tree.empty()) {
        conn->SendError(request.id, "query AST is empty", trace_id,
                        frame_version);
        cut_admission_record(util::RequestOutcome::kError, 0);
        return true;
      }
      if (type == FrameType::kTopK && request.k < 1) {
        conn->SendError(request.id,
                        "k must be >= 1, got " + std::to_string(request.k),
                        trace_id, frame_version);
        cut_admission_record(util::RequestOutcome::kError, 0);
        return true;
      }
      if (type == FrameType::kAboveThreshold &&
          !std::isfinite(request.threshold)) {
        conn->SendError(request.id, "threshold must be finite", trace_id,
                        frame_version);
        cut_admission_record(util::RequestOutcome::kError, 0);
        return true;
      }
      request.enqueue_epoch =
          conn->cancel_epoch.load(std::memory_order_acquire);
      if (deadline_ms > 0) {
        request.has_deadline = true;
        request.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(deadline_ms);
      }
      request.enqueue_nanos = util::TraceNowNanos();
      c_requests.Increment();
      const std::uint64_t request_id = request.id;
      // Admission control: shed instead of block. A full queue means the
      // workers are already saturated — queueing deeper only grows latency
      // for everyone, so the honest answer is an immediate kOverloaded the
      // client can back off on.
      const std::size_t high_water =
          config_.queue_high_water < 1
              ? 0
              : static_cast<std::size_t>(config_.queue_high_water);
      if (!queue_->TryPush(std::move(request), high_water)) {
        if (queue_->closed()) {
          util::Timer reply_timer;
          conn->SendControl(FrameType::kShuttingDown, request_id, trace_id,
                            frame_version);
          cut_admission_record(
              util::RequestOutcome::kShuttingDown,
              static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
          return false;
        }
        c_shed.Increment();
        util::Timer reply_timer;
        conn->SendControl(FrameType::kOverloaded, request_id, trace_id,
                          frame_version);
        cut_admission_record(
            util::RequestOutcome::kShed,
            static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      }
      return true;
    }
    case FrameType::kPing: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.ping", util::RequestOutcome::kError,
                         0);
        return true;
      }
      c_control.Increment();
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      util::Timer reply_timer;
      conn->SendFrame(FrameType::kPong, reply, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.ping", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      return true;
    }
    case FrameType::kReload: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.reload",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      c_control.Increment();
      // Reload on the reader thread: only this connection waits for the
      // load; workers keep answering against the pinned old snapshot.
      if (!Reload(&error)) {
        conn->SendError(id, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.reload",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      util::Timer reply_timer;
      conn->SendFrame(FrameType::kOk, reply, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.reload", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      return true;
    }
    case FrameType::kShutdown: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.shutdown",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      c_control.Increment();
      store::ChunkBuilder reply;
      PutControl(id, &reply);
      util::Timer reply_timer;
      conn->SendFrame(FrameType::kOk, reply, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.shutdown", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      RequestStop();
      return false;
    }
    case FrameType::kCancel: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.cancel",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      c_control.Increment();
      // Best effort by design: the query may already be scoring or
      // answered. The kOk acknowledges the *cancel request*, not that the
      // query was caught in time.
      conn->Cancel(id);
      util::Timer reply_timer;
      conn->SendControl(FrameType::kOk, id, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.cancel", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      return true;
    }
    case FrameType::kHealth: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.health",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      c_control.Increment();
      HealthInfo info;
      info.index_size = snapshot()->size();
      info.queue_depth = queue_->size();
      info.connections = LiveConnections();
      info.draining = draining_.load(std::memory_order_acquire);
      info.uptime_ms = UptimeMs();
      info.answered = c_replies.Value();
      info.shed = c_shed.Value();
      info.deadline_exceeded = c_deadline_exceeded.Value();
      store::ChunkBuilder reply;
      PutHealthInfo(id, info, &reply);
      util::Timer reply_timer;
      conn->SendFrame(FrameType::kHealthInfo, reply, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.health", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      return true;
    }
    case FrameType::kStats: {
      if (!GetControl(payload, &id, &error)) {
        conn->SendError(0, error, trace_id, frame_version);
        CutControlRecord(trace_id, "serve.stats",
                         util::RequestOutcome::kError, 0);
        return true;
      }
      c_control.Increment();
      StatsInfo info;
      info.uptime_ms = UptimeMs();
      info.requests = c_requests.Value();
      info.replies = c_replies.Value();
      info.shed = c_shed.Value();
      info.cancelled = c_cancelled.Value();
      info.deadline_exceeded = c_deadline_exceeded.Value();
      info.queue_depth = queue_->size();
      info.connections = LiveConnections();
      info.index_size = snapshot()->size();
      const util::HistogramValue latency = h_request_nanos.SnapshotValue();
      info.p50_nanos = static_cast<std::uint64_t>(latency.p50 + 0.5);
      info.p95_nanos = static_cast<std::uint64_t>(latency.p95 + 0.5);
      info.p99_nanos = static_cast<std::uint64_t>(latency.p99 + 0.5);
      info.samples = SampleRing(std::chrono::steady_clock::now());
      store::ChunkBuilder reply;
      PutStatsInfo(id, info, &reply);
      util::Timer reply_timer;
      conn->SendFrame(FrameType::kStatsInfo, reply, trace_id, frame_version);
      CutControlRecord(trace_id, "serve.stats", util::RequestOutcome::kOk,
                       static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      return true;
    }
    default:
      conn->SendError(0, "unexpected frame type " +
                             std::to_string(static_cast<std::uint32_t>(type)),
                      trace_id, frame_version);
      return true;
  }
}

void Server::WorkerLoop() {
  Request request;
  while (queue_->Pop(&request)) {
    std::vector<Request> batch;
    batch.push_back(std::move(request));
    // Coalesce whatever queued since the last pass, up to batch_max; an
    // idle daemon dispatches singletons, a loaded one amortizes the index
    // sweep across the whole batch.
    const std::size_t batch_max = static_cast<std::size_t>(
        config_.batch_max < 1 ? 1 : config_.batch_max);
    while (batch.size() < batch_max && queue_->TryPop(&request)) {
      batch.push_back(std::move(request));
    }
    DispatchBatch(&batch);
  }
}

void Server::DispatchBatch(std::vector<Request>* batch) {
  util::Timer timer;
  h_batch_requests.Observe(batch->size());
  if (fp_stall_worker.ShouldFail()) {
    // Chaos hook: hold the batch so tests can deterministically disconnect,
    // cancel, or expire requests while they sit here.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  }
  // Request-lifecycle triage, strictly before the expensive encode: a
  // request whose client is gone (disconnect epoch bumped, or the id
  // explicitly cancelled) is dropped silently; an expired deadline is
  // answered kDeadlineExceeded; past the drain window the remainder gets
  // kShuttingDown. Only survivors are scored. Every branch — including the
  // silent cancellation — cuts a wide-event record, so the request log is
  // complete even where the wire is quiet.
  const auto now = std::chrono::steady_clock::now();
  const std::int64_t now_nanos = util::TraceNowNanos();
  const auto cut_triage_record = [&](const Request& req,
                                     util::RequestOutcome outcome,
                                     std::uint64_t reply_nanos) {
    util::RequestRecord record;
    record.trace_id = req.trace_id;
    record.op = QueryOpName(req.type);
    record.outcome = outcome;
    record.batch_size = static_cast<std::uint32_t>(batch->size());
    record.queue_wait_nanos =
        now_nanos > req.enqueue_nanos
            ? static_cast<std::uint64_t>(now_nanos - req.enqueue_nanos)
            : 0;
    record.reply_nanos = reply_nanos;
    record.has_deadline = req.has_deadline;
    if (req.has_deadline) {
      record.deadline_slack_nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(req.deadline -
                                                               now)
              .count();
    }
    record.SetName(req.query.name);
    record.end_nanos = util::TraceNowNanos();
    util::GlobalRequestLog().Append(record);
  };
  const bool drain_expired = drain_expired_.load(std::memory_order_acquire);
  std::vector<Request> live;
  live.reserve(batch->size());
  for (Request& req : *batch) {
    if (req.conn->closed.load(std::memory_order_acquire) ||
        req.conn->cancel_epoch.load(std::memory_order_acquire) !=
            req.enqueue_epoch ||
        req.conn->IsCancelled(req.id)) {
      c_cancelled.Increment();
      cut_triage_record(req, util::RequestOutcome::kCancelled, 0);
      continue;
    }
    if (req.has_deadline && now >= req.deadline) {
      c_deadline_exceeded.Increment();
      util::Timer reply_timer;
      req.conn->SendControl(FrameType::kDeadlineExceeded, req.id, req.trace_id,
                            req.wire_version);
      cut_triage_record(req, util::RequestOutcome::kDeadlineExceeded,
                        static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      continue;
    }
    if (drain_expired) {
      c_drain_dropped.Increment();
      util::Timer reply_timer;
      req.conn->SendControl(FrameType::kShuttingDown, req.id, req.trace_id,
                            req.wire_version);
      cut_triage_record(req, util::RequestOutcome::kShuttingDown,
                        static_cast<std::uint64_t>(reply_timer.ElapsedNanos()));
      continue;
    }
    live.push_back(std::move(req));
  }
  if (live.empty()) return;
  // Pin one snapshot for the whole batch: every query in it scores against
  // this index even if a reload publishes mid-flight.
  const std::shared_ptr<const core::SearchIndex> index = snapshot();
  // Per-live-slot observability: stage timings and pair tallies from the
  // scoring pass (reply write time and whether the reply reached the wire
  // live in the Request itself). The stats scratch is thread_local — one
  // instance per worker, reused across batches — so steady-state tracing
  // adds no allocations to the dispatch path.
  static thread_local std::vector<core::SearchIndex::QuerySearchStats>
      live_stats;
  live_stats.assign(live.size(), core::SearchIndex::QuerySearchStats{});
  std::vector<const core::FunctionFeature*> topk_queries;
  std::vector<int> topk_ks;
  std::vector<std::size_t> topk_slots;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Request& req = live[i];
    if (req.type == FrameType::kTopK) {
      topk_queries.push_back(&req.query);
      topk_ks.push_back(req.k);
      topk_slots.push_back(i);
    }
  }
  static thread_local std::vector<core::SearchIndex::QuerySearchStats>
      topk_stats;
  const std::vector<std::vector<core::SearchHit>> topk_results =
      index->TopKBatch(topk_queries, topk_ks, &topk_stats);
  for (std::size_t j = 0; j < topk_slots.size(); ++j) {
    const std::size_t slot = topk_slots[j];
    Request& req = live[slot];
    live_stats[slot] = topk_stats[j];
    store::ChunkBuilder reply;
    PutHits(req.id, topk_results[j], &reply);
    if (fp_slow_reply.ShouldFail()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const std::int64_t reply_start = util::TraceNowNanos();
    req.replied = req.conn->SendFrame(FrameType::kHits, reply, req.trace_id,
                                      req.wire_version);
    req.reply_nanos =
        static_cast<std::uint64_t>(util::TraceNowNanos() - reply_start);
    if (req.replied) c_replies.Increment();
  }
  std::vector<const core::FunctionFeature*> at_queries;
  std::vector<double> at_thresholds;
  std::vector<std::size_t> at_slots;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Request& req = live[i];
    if (req.type == FrameType::kAboveThreshold) {
      at_queries.push_back(&req.query);
      at_thresholds.push_back(req.threshold);
      at_slots.push_back(i);
    }
  }
  static thread_local std::vector<core::SearchIndex::QuerySearchStats>
      at_stats;
  const std::vector<std::vector<core::SearchHit>> at_results =
      index->AboveThresholdBatch(at_queries, at_thresholds, &at_stats);
  for (std::size_t j = 0; j < at_slots.size(); ++j) {
    const std::size_t slot = at_slots[j];
    Request& req = live[slot];
    live_stats[slot] = at_stats[j];
    store::ChunkBuilder reply;
    PutHits(req.id, at_results[j], &reply);
    if (fp_slow_reply.ShouldFail()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const std::int64_t reply_start = util::TraceNowNanos();
    req.replied = req.conn->SendFrame(FrameType::kHits, reply, req.trace_id,
                                      req.wire_version);
    req.reply_nanos =
        static_cast<std::uint64_t>(util::TraceNowNanos() - reply_start);
    if (req.replied) c_replies.Increment();
  }
  const std::uint64_t elapsed =
      static_cast<std::uint64_t>(timer.ElapsedNanos());
  // One wide event per answered query, and the slow-query spill: answered
  // records whose attributed latency crosses --slow_query_ms go to
  // slow_log_path in one O_APPEND write for the whole batch.
  std::vector<util::RequestRecord> slow;
  const auto record_now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Request& req = live[i];
    util::RequestRecord record;
    record.trace_id = req.trace_id;
    record.op = QueryOpName(req.type);
    // A send that failed means the client vanished mid-reply; the record
    // says so instead of claiming a clean answer.
    record.outcome = req.replied ? util::RequestOutcome::kOk
                                 : util::RequestOutcome::kError;
    record.batch_size = static_cast<std::uint32_t>(live.size());
    record.queue_wait_nanos =
        now_nanos > req.enqueue_nanos
            ? static_cast<std::uint64_t>(now_nanos - req.enqueue_nanos)
            : 0;
    record.encode_nanos = live_stats[i].encode_nanos;
    record.score_nanos = live_stats[i].score_nanos;
    record.reply_nanos = req.reply_nanos;
    record.scored_pairs = live_stats[i].scored_pairs;
    record.pruned_pairs = live_stats[i].pruned_pairs;
    record.has_deadline = req.has_deadline;
    if (req.has_deadline) {
      record.deadline_slack_nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(req.deadline -
                                                               record_now)
              .count();
    }
    record.SetName(req.query.name);
    record.end_nanos = util::TraceNowNanos();
    util::GlobalRequestLog().Append(record);
    h_request_nanos.Observe(elapsed);
    if (config_.slow_query_ms >= 0 && !config_.slow_log_path.empty() &&
        record.TotalNanos() >=
            static_cast<std::uint64_t>(config_.slow_query_ms) * 1000000) {
      slow.push_back(record);
    }
  }
  if (!slow.empty()) {
    std::string spill_error;
    if (!util::AppendRequestRecords(config_.slow_log_path, slow,
                                    &spill_error)) {
      ASTERIA_LOG(Warn) << "asteria-serve: slow-query spill to "
                        << config_.slow_log_path << " failed: " << spill_error;
    }
  }
}

}  // namespace asteria::serve
