// Blocking client for the asteria-serve daemon (docs/SERVING.md).
//
// One connection, synchronous request/reply: every call writes one frame
// and reads frames until the reply echoing its correlation id arrives. A
// kError reply (or any transport/protocol fault) surfaces as false + a
// descriptive `error`; receive/send timeouts guard every read and write so
// a wedged or killed daemon can never hang the caller.
//
// Request lifecycle (docs/ROBUSTNESS.md "Overload & request lifecycle"):
// ClientOptions::deadline_ms stamps each request's v2 frame header with the
// remaining budget and bounds the whole retry loop. With max_retries > 0,
// *idempotent* operations (TopK, AboveThreshold, Ping, Health) survive a
// daemon restart or a transient kOverloaded/kShuttingDown transparently:
// the client reconnects if the transport died, sleeps a jittered
// exponential backoff (seeded via util::Rng — deterministic in tests), and
// resends. Reload and Shutdown are mutations and are NEVER retried — a
// retry could apply them twice. kDeadlineExceeded and semantic kError
// replies are final, never retried.
//
// Used by `asteria-cli query --socket` / `asteria-cli ctl`, the serve test
// net, and scripts/bench_serve.sh's warm-latency loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace asteria::serve {

struct ClientOptions {
  int recv_timeout_ms = 60000;  // SO_RCVTIMEO per read (0 = unbounded)
  int send_timeout_ms = 60000;  // SO_SNDTIMEO per write (0 = unbounded)
  // Per-request budget in ms: stamped into the v2 frame header (the daemon
  // drops the query if it expires before scoring) and enforced across the
  // whole retry loop (each attempt sends only the remaining budget).
  // 0 = no deadline.
  std::uint64_t deadline_ms = 0;
  // Extra attempts for idempotent operations after the first (0 = single
  // attempt, the pre-retry behavior).
  int max_retries = 0;
  int backoff_base_ms = 10;   // attempt n sleeps ~ base << n, jittered
  int backoff_cap_ms = 1000;  // ceiling on any single backoff sleep
  std::uint64_t retry_seed = 0;  // jitter rng seed (any fixed value is
                                 // deterministic; tests pin it)
};

// Backoff before retry `attempt` (0-based): min(cap, base << attempt),
// jittered to [half, full] by `rng`. Exposed for deterministic unit tests.
std::uint64_t RetryBackoffMs(int backoff_base_ms, int backoff_cap_ms,
                             int attempt, util::Rng* rng);

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to the daemon's Unix-domain socket with full options.
  bool Connect(const std::string& socket_path, const ClientOptions& options,
               std::string* error);

  // Back-compat shorthand: default options with both timeouts set to
  // `recv_timeout_seconds` (0 disables them).
  bool Connect(const std::string& socket_path, std::string* error,
               int recv_timeout_seconds = 60);

  void Close();
  bool connected() const { return fd_ >= 0; }

  // Retries performed since Connect (transport reconnects + backoff
  // resends), for tests and callers that report flakiness.
  std::uint64_t retries() const { return retries_; }

  bool TopK(const core::FunctionFeature& query, int k,
            std::vector<core::SearchHit>* hits, std::string* error);
  bool AboveThreshold(const core::FunctionFeature& query, double threshold,
                      std::vector<core::SearchHit>* hits, std::string* error);
  bool Ping(std::string* error);
  bool Health(HealthInfo* info, std::string* error);
  // kStats probe: counters, latency percentiles, and the telemetry sampler's
  // recent time series (`asteria-cli ctl top`).
  bool Stats(StatsInfo* info, std::string* error);
  bool Reload(std::string* error);
  bool Shutdown(std::string* error);

 private:
  // One attempt's outcome, driving the retry decision.
  enum class ExchangeResult {
    kOk,         // expected reply received
    kTransport,  // connection unusable (write/read failed, daemon gone):
                 // retryable after reconnect
    kRejected,   // daemon said kOverloaded/kShuttingDown: retryable after
                 // backoff, connection still good
    kFailed,     // final answer (kError, kDeadlineExceeded, protocol
                 // violation): never retried
  };

  bool ConnectFd(std::string* error);
  // One wire attempt. Mints nothing itself: `trace_id` is this attempt's
  // already-minted trace (stamped into the v3 header; the reply must echo
  // it or the attempt fails). `op`/`name` label the wide-event record the
  // attempt cuts into util::GlobalRequestLog() — one record per attempt,
  // whatever the outcome, so the client-side request log mirrors the
  // daemon's (docs/OBSERVABILITY.md).
  ExchangeResult ExchangeOnce(FrameType request_type,
                              const store::ChunkBuilder& payload,
                              std::uint64_t id, FrameType expected_reply,
                              std::uint64_t frame_deadline_ms,
                              std::uint64_t trace_id, const char* op,
                              const std::string& name,
                              std::vector<std::uint8_t>* reply_payload,
                              std::string* error);
  // Full retry loop around ExchangeOnce; a fresh trace id is minted per
  // attempt (a retry is a new wire event — the correlation id, not the
  // trace id, ties the attempts together). `idempotent` gates every retry:
  // false means exactly one attempt, whatever happens.
  bool Exchange(FrameType request_type, const store::ChunkBuilder& payload,
                std::uint64_t id, FrameType expected_reply, bool idempotent,
                const char* op, const std::string& name,
                std::vector<std::uint8_t>* reply_payload, std::string* error);
  bool Query(FrameType type, const core::FunctionFeature& query, int k,
             double threshold, std::vector<core::SearchHit>* hits,
             std::string* error);
  bool Control(FrameType request_type, FrameType expected_reply,
               bool idempotent, const char* op,
               std::vector<std::uint8_t>* reply, std::string* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string socket_path_;
  ClientOptions options_;
  util::Rng rng_{0};
  std::uint64_t retries_ = 0;
};

}  // namespace asteria::serve
