// Blocking client for the asteria-serve daemon (docs/SERVING.md).
//
// One connection, synchronous request/reply: every call writes one frame
// and reads frames until the reply echoing its correlation id arrives. A
// kError reply (or any transport/protocol fault) surfaces as false + a
// descriptive `error`; a receive timeout guards every read so a wedged or
// killed daemon can never hang the caller.
//
// Used by `asteria-cli query --socket` / `asteria-cli ctl`, the serve test
// net, and scripts/bench_serve.sh's warm-latency loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "serve/protocol.h"

namespace asteria::serve {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to the daemon's Unix-domain socket. `recv_timeout_seconds`
  // bounds every subsequent reply wait (0 disables the timeout).
  bool Connect(const std::string& socket_path, std::string* error,
               int recv_timeout_seconds = 60);
  void Close();
  bool connected() const { return fd_ >= 0; }

  bool TopK(const core::FunctionFeature& query, int k,
            std::vector<core::SearchHit>* hits, std::string* error);
  bool AboveThreshold(const core::FunctionFeature& query, double threshold,
                      std::vector<core::SearchHit>* hits, std::string* error);
  bool Ping(std::string* error);
  bool Reload(std::string* error);
  bool Shutdown(std::string* error);

 private:
  // Writes one request frame and reads until the reply whose payload leads
  // with `id` arrives. A kError reply or a reply of the wrong type fails.
  bool Exchange(FrameType request_type, const store::ChunkBuilder& payload,
                std::uint64_t id, FrameType expected_reply,
                std::vector<std::uint8_t>* reply_payload, std::string* error);
  bool Query(FrameType type, const core::FunctionFeature& query, int k,
             double threshold, std::vector<core::SearchHit>* hits,
             std::string* error);
  bool Control(FrameType request_type, FrameType expected_reply,
               std::string* error);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace asteria::serve
