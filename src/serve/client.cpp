#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace asteria::serve {

bool Client::Connect(const std::string& socket_path, std::string* error,
                     int recv_timeout_seconds) {
  Close();
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path '" + socket_path + "' is empty or too long";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  if (recv_timeout_seconds > 0) {
    timeval timeout{};
    timeout.tv_sec = recv_timeout_seconds;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = socket_path + ": connect failed: " + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::Exchange(FrameType request_type,
                      const store::ChunkBuilder& payload, std::uint64_t id,
                      FrameType expected_reply,
                      std::vector<std::uint8_t>* reply_payload,
                      std::string* error) {
  if (fd_ < 0) {
    *error = "not connected";
    return false;
  }
  if (!WriteFrame(fd_, request_type, payload, error)) return false;
  // Replies to pipelined requests may arrive in any order; skip frames for
  // other ids (none today — this client is synchronous — but the protocol
  // allows it).
  for (;;) {
    FrameType reply_type = FrameType::kError;
    const ReadStatus status = ReadFrame(fd_, &reply_type, reply_payload, error);
    if (status == ReadStatus::kClosed) {
      *error = "daemon closed the connection before replying";
      return false;
    }
    if (status == ReadStatus::kBad) return false;
    std::uint64_t reply_id = 0;
    std::string parse_error;
    if (!GetControl(*reply_payload, &reply_id, &parse_error)) {
      *error = "unparseable reply: " + parse_error;
      return false;
    }
    if (reply_type == FrameType::kError) {
      std::string message;
      if (!GetError(*reply_payload, &reply_id, &message, &parse_error)) {
        *error = "unparseable error reply: " + parse_error;
        return false;
      }
      *error = "daemon error: " + message;
      return false;
    }
    if (reply_id != id) continue;
    if (reply_type != expected_reply) {
      *error = "unexpected reply frame type " +
               std::to_string(static_cast<std::uint32_t>(reply_type));
      return false;
    }
    return true;
  }
}

bool Client::Query(FrameType type, const core::FunctionFeature& query, int k,
                   double threshold, std::vector<core::SearchHit>* hits,
                   std::string* error) {
  const std::uint64_t id = next_id_++;
  store::ChunkBuilder payload;
  PutQuery(id, query, k, threshold, type, &payload);
  std::vector<std::uint8_t> reply;
  if (!Exchange(type, payload, id, FrameType::kHits, &reply, error)) {
    return false;
  }
  std::uint64_t reply_id = 0;
  return GetHits(reply, &reply_id, hits, error);
}

bool Client::TopK(const core::FunctionFeature& query, int k,
                  std::vector<core::SearchHit>* hits, std::string* error) {
  return Query(FrameType::kTopK, query, k, 0.0, hits, error);
}

bool Client::AboveThreshold(const core::FunctionFeature& query,
                            double threshold,
                            std::vector<core::SearchHit>* hits,
                            std::string* error) {
  return Query(FrameType::kAboveThreshold, query, 0, threshold, hits, error);
}

bool Client::Control(FrameType request_type, FrameType expected_reply,
                     std::string* error) {
  const std::uint64_t id = next_id_++;
  store::ChunkBuilder payload;
  PutControl(id, &payload);
  std::vector<std::uint8_t> reply;
  return Exchange(request_type, payload, id, expected_reply, &reply, error);
}

bool Client::Ping(std::string* error) {
  return Control(FrameType::kPing, FrameType::kPong, error);
}

bool Client::Reload(std::string* error) {
  return Control(FrameType::kReload, FrameType::kOk, error);
}

bool Client::Shutdown(std::string* error) {
  return Control(FrameType::kShutdown, FrameType::kOk, error);
}

}  // namespace asteria::serve
