#include "serve/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/metrics.h"
#include "util/request_log.h"
#include "util/timer.h"
#include "util/trace.h"

namespace asteria::serve {

namespace {

util::Counter c_retries("serve.retries");

bool SetSocketTimeout(int fd, int option, int timeout_ms, std::string* error) {
  if (timeout_ms <= 0) return true;
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, option, &timeout, sizeof(timeout)) != 0) {
    *error = std::string("setsockopt(") +
             (option == SO_RCVTIMEO ? "SO_RCVTIMEO" : "SO_SNDTIMEO") +
             "): " + std::strerror(errno);
    return false;
  }
  return true;
}

std::uint64_t ElapsedMs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

std::uint64_t RetryBackoffMs(int backoff_base_ms, int backoff_cap_ms,
                             int attempt, util::Rng* rng) {
  const std::uint64_t base =
      backoff_base_ms < 1 ? 1 : static_cast<std::uint64_t>(backoff_base_ms);
  const std::uint64_t cap =
      backoff_cap_ms < 1 ? 1 : static_cast<std::uint64_t>(backoff_cap_ms);
  // base << attempt, saturating well before 64 shifts so huge attempt
  // counts can't wrap.
  std::uint64_t full = attempt >= 32 ? cap : base << attempt;
  if (full > cap) full = cap;
  // Jitter into [full/2, full]: enough spread to de-synchronize a thundering
  // herd, while keeping the floor high enough that backoff still backs off.
  const std::uint64_t half = full / 2;
  return half + static_cast<std::uint64_t>(
                    rng->NextDouble() * static_cast<double>(full - half));
}

bool Client::Connect(const std::string& socket_path,
                     const ClientOptions& options, std::string* error) {
  Close();
  socket_path_ = socket_path;
  options_ = options;
  rng_.Reseed(options.retry_seed);
  retries_ = 0;
  return ConnectFd(error);
}

bool Client::Connect(const std::string& socket_path, std::string* error,
                     int recv_timeout_seconds) {
  ClientOptions options;
  options.recv_timeout_ms = recv_timeout_seconds * 1000;
  options.send_timeout_ms = recv_timeout_seconds * 1000;
  return Connect(socket_path, options, error);
}

bool Client::ConnectFd(std::string* error) {
  sockaddr_un addr{};
  if (socket_path_.empty() || socket_path_.size() >= sizeof(addr.sun_path)) {
    *error = "socket path '" + socket_path_ + "' is empty or too long";
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    *error = std::string("socket(): ") + std::strerror(errno);
    return false;
  }
  // Both timeouts are load-bearing: without SO_RCVTIMEO a wedged daemon
  // hangs our reads, without SO_SNDTIMEO a daemon that stopped reading
  // (full socket buffer) hangs our writes. A failed setsockopt is a failed
  // connect — silently proceeding would mean silently unbounded blocking.
  if (!SetSocketTimeout(fd_, SO_RCVTIMEO, options_.recv_timeout_ms, error) ||
      !SetSocketTimeout(fd_, SO_SNDTIMEO, options_.send_timeout_ms, error)) {
    Close();
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = socket_path_ + ": connect failed: " + std::strerror(errno);
    Close();
    return false;
  }
  return true;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Client::ExchangeResult Client::ExchangeOnce(
    FrameType request_type, const store::ChunkBuilder& payload,
    std::uint64_t id, FrameType expected_reply,
    std::uint64_t frame_deadline_ms, std::uint64_t trace_id, const char* op,
    const std::string& name, std::vector<std::uint8_t>* reply_payload,
    std::string* error) {
  // Every exit path below cuts exactly one wide-event record for this
  // attempt: the round trip lands in reply_nanos, the remaining deadline
  // budget (if any) in deadline_slack_nanos. One clock read per record —
  // the end stamp doubles as the round-trip endpoint.
  const std::int64_t attempt_start_nanos = util::TraceNowNanos();
  const auto cut_record = [&](util::RequestOutcome outcome) {
    util::RequestRecord record;
    record.trace_id = trace_id;
    record.op = op;
    record.outcome = outcome;
    record.end_nanos = util::TraceNowNanos();
    const std::int64_t attempt_nanos =
        record.end_nanos - attempt_start_nanos;
    record.reply_nanos = static_cast<std::uint64_t>(attempt_nanos);
    record.has_deadline = frame_deadline_ms > 0;
    if (frame_deadline_ms > 0) {
      record.deadline_slack_nanos =
          static_cast<std::int64_t>(frame_deadline_ms) * 1000000 -
          attempt_nanos;
    }
    record.SetName(name);
    util::GlobalRequestLog().Append(record);
  };
  if (fd_ < 0) {
    *error = "not connected";
    cut_record(util::RequestOutcome::kError);
    return ExchangeResult::kTransport;
  }
  if (!WriteFrame(fd_, request_type, payload, error, frame_deadline_ms,
                  trace_id)) {
    cut_record(util::RequestOutcome::kError);
    return ExchangeResult::kTransport;
  }
  // Replies to pipelined requests may arrive in any order; skip frames for
  // other ids (none today — this client is synchronous — but the protocol
  // allows it).
  for (;;) {
    FrameType reply_type = FrameType::kError;
    std::uint64_t reply_deadline_ms = 0;
    std::uint64_t reply_trace_id = 0;
    const ReadStatus status =
        ReadFrame(fd_, &reply_type, reply_payload, error, &reply_deadline_ms,
                  /*io_timeout_ms=*/0, &reply_trace_id);
    if (status == ReadStatus::kClosed) {
      *error = "daemon closed the connection before replying";
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kTransport;
    }
    if (status != ReadStatus::kFrame) {
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kTransport;
    }
    std::uint64_t reply_id = 0;
    std::string parse_error;
    if (!GetControl(*reply_payload, &reply_id, &parse_error)) {
      *error = "unparseable reply: " + parse_error;
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kFailed;
    }
    if (reply_type == FrameType::kError) {
      std::string message;
      if (!GetError(*reply_payload, &reply_id, &message, &parse_error)) {
        *error = "unparseable error reply: " + parse_error;
        cut_record(util::RequestOutcome::kError);
        return ExchangeResult::kFailed;
      }
      *error = "daemon error: " + message;
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kFailed;
    }
    if (reply_id != id) continue;
    // A v3 daemon echoes the request's trace id on the reply; an echo that
    // disagrees means the frames are crossed — fail loudly rather than
    // trust the payload. A zero echo is a pre-v3 daemon, which is fine.
    if (reply_trace_id != 0 && trace_id != 0 && reply_trace_id != trace_id) {
      *error = "reply trace id mismatch (frames crossed on the connection)";
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kFailed;
    }
    if (reply_type == FrameType::kOverloaded) {
      *error = "daemon overloaded (query shed)";
      cut_record(util::RequestOutcome::kShed);
      return ExchangeResult::kRejected;
    }
    if (reply_type == FrameType::kShuttingDown) {
      *error = "daemon shutting down";
      cut_record(util::RequestOutcome::kShuttingDown);
      return ExchangeResult::kRejected;
    }
    if (reply_type == FrameType::kDeadlineExceeded) {
      // The budget is gone; a retry would only be answered the same way.
      *error = "deadline exceeded before the daemon scored the query";
      cut_record(util::RequestOutcome::kDeadlineExceeded);
      return ExchangeResult::kFailed;
    }
    if (reply_type != expected_reply) {
      *error = "unexpected reply frame type " +
               std::to_string(static_cast<std::uint32_t>(reply_type));
      cut_record(util::RequestOutcome::kError);
      return ExchangeResult::kFailed;
    }
    cut_record(util::RequestOutcome::kOk);
    return ExchangeResult::kOk;
  }
}

bool Client::Exchange(FrameType request_type,
                      const store::ChunkBuilder& payload, std::uint64_t id,
                      FrameType expected_reply, bool idempotent,
                      const char* op, const std::string& name,
                      std::vector<std::uint8_t>* reply_payload,
                      std::string* error) {
  const auto start = std::chrono::steady_clock::now();
  const int max_attempts = idempotent && options_.max_retries > 0
                               ? options_.max_retries + 1
                               : 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Each attempt gets only what's left of the overall budget; the daemon
    // sees the shrinking deadline in the frame header.
    std::uint64_t frame_deadline_ms = 0;
    if (options_.deadline_ms > 0) {
      const std::uint64_t elapsed = ElapsedMs(start);
      if (elapsed >= options_.deadline_ms) {
        *error = "deadline of " + std::to_string(options_.deadline_ms) +
                 " ms exhausted after " + std::to_string(attempt) +
                 " attempt(s): " + *error;
        return false;
      }
      frame_deadline_ms = options_.deadline_ms - elapsed;
    }
    if (fd_ < 0 && !ConnectFd(error)) {
      // Daemon not back yet; fall through to the backoff and try again.
    } else {
      // A fresh trace per attempt: each wire exchange is its own event on
      // both sides' request logs; the correlation id links the retries.
      const std::uint64_t trace_id = util::MintTraceId();
      const ExchangeResult result =
          ExchangeOnce(request_type, payload, id, expected_reply,
                       frame_deadline_ms, trace_id, op, name, reply_payload,
                       error);
      if (result == ExchangeResult::kOk) return true;
      if (result == ExchangeResult::kFailed) return false;
      // kTransport: this connection is done; reconnect on the next attempt.
      // kRejected: the daemon answered, the connection is still framed.
      if (result == ExchangeResult::kTransport) Close();
    }
    if (attempt + 1 >= max_attempts) return false;
    ++retries_;
    c_retries.Increment();
    const std::uint64_t backoff_ms = RetryBackoffMs(
        options_.backoff_base_ms, options_.backoff_cap_ms, attempt, &rng_);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
  return false;
}

bool Client::Query(FrameType type, const core::FunctionFeature& query, int k,
                   double threshold, std::vector<core::SearchHit>* hits,
                   std::string* error) {
  const std::uint64_t id = next_id_++;
  store::ChunkBuilder payload;
  PutQuery(id, query, k, threshold, type, &payload);
  const char* op = type == FrameType::kTopK ? "client.topk"
                                            : "client.above_threshold";
  std::vector<std::uint8_t> reply;
  if (!Exchange(type, payload, id, FrameType::kHits, /*idempotent=*/true, op,
                query.name, &reply, error)) {
    return false;
  }
  std::uint64_t reply_id = 0;
  return GetHits(reply, &reply_id, hits, error);
}

bool Client::TopK(const core::FunctionFeature& query, int k,
                  std::vector<core::SearchHit>* hits, std::string* error) {
  return Query(FrameType::kTopK, query, k, 0.0, hits, error);
}

bool Client::AboveThreshold(const core::FunctionFeature& query,
                            double threshold,
                            std::vector<core::SearchHit>* hits,
                            std::string* error) {
  return Query(FrameType::kAboveThreshold, query, 0, threshold, hits, error);
}

bool Client::Control(FrameType request_type, FrameType expected_reply,
                     bool idempotent, const char* op,
                     std::vector<std::uint8_t>* reply, std::string* error) {
  const std::uint64_t id = next_id_++;
  store::ChunkBuilder payload;
  PutControl(id, &payload);
  return Exchange(request_type, payload, id, expected_reply, idempotent, op,
                  /*name=*/std::string(), reply, error);
}

bool Client::Ping(std::string* error) {
  std::vector<std::uint8_t> reply;
  return Control(FrameType::kPing, FrameType::kPong, /*idempotent=*/true,
                 "client.ping", &reply, error);
}

bool Client::Health(HealthInfo* info, std::string* error) {
  std::vector<std::uint8_t> reply;
  if (!Control(FrameType::kHealth, FrameType::kHealthInfo,
               /*idempotent=*/true, "client.health", &reply, error)) {
    return false;
  }
  std::uint64_t reply_id = 0;
  return GetHealthInfo(reply, &reply_id, info, error);
}

bool Client::Stats(StatsInfo* info, std::string* error) {
  std::vector<std::uint8_t> reply;
  if (!Control(FrameType::kStats, FrameType::kStatsInfo,
               /*idempotent=*/true, "client.stats", &reply, error)) {
    return false;
  }
  std::uint64_t reply_id = 0;
  return GetStatsInfo(reply, &reply_id, info, error);
}

bool Client::Reload(std::string* error) {
  // A reload observed-failed might still have applied (e.g. the kOk was
  // lost in a transport fault) — retrying could swap the snapshot twice
  // around a concurrent publish. Mutations get exactly one attempt.
  std::vector<std::uint8_t> reply;
  return Control(FrameType::kReload, FrameType::kOk, /*idempotent=*/false,
                 "client.reload", &reply, error);
}

bool Client::Shutdown(std::string* error) {
  std::vector<std::uint8_t> reply;
  return Control(FrameType::kShutdown, FrameType::kOk, /*idempotent=*/false,
                 "client.shutdown", &reply, error);
}

}  // namespace asteria::serve
