// asteria-serve: long-lived similarity query daemon (docs/SERVING.md).
//
// Loads an INDX snapshot once, then answers TopK / AboveThreshold queries
// over a Unix-domain stream socket speaking the serve::protocol framing.
// Internals:
//
//   acceptor ──> one reader thread per connection ──> bounded MpmcQueue
//                                                        │
//                              worker pool (N threads) <─┘
//
// Readers parse and validate frames (hostile input dies here, with a
// descriptive kError reply) and admit well-formed query requests into the
// bounded queue via TryPush — past --queue_high_water the query is shed
// immediately with a kOverloaded reply, so a flood degrades into fast
// rejections instead of unbounded queueing (docs/ROBUSTNESS.md "Overload
// & request lifecycle"). Workers pop one request, drain up to batch_max-1
// more without blocking, and dispatch the whole batch through
// SearchIndex::TopKBatch: one sweep over the index scores every coalesced
// query.
//
// Request lifecycle (v2): each query may carry a deadline budget in its
// frame header; a worker that dequeues an already-expired query replies
// kDeadlineExceeded without encoding it. A reader that sees its client
// disconnect bumps the connection's cancellation epoch so the client's
// queued queries are skipped before the expensive encode; an explicit
// kCancel frame does the same for a single correlation id. Slow peers are
// bounded by --io_timeout_ms (SO_RCVTIMEO/SO_SNDTIMEO plus a
// frame-assembly deadline: a frame's first byte starts a clock its last
// byte must beat) and --max_conns (over-limit connects get kOverloaded,
// then close). SIGTERM drains: accepting stops, queued work gets
// --drain_timeout_ms to finish, and whatever remains is answered
// kShuttingDown rather than silently dropped.
//
// Snapshot swap: the index lives in a mutex-guarded shared_ptr (the lock
// covers only the pointer copy — see the snapshot_ comment below).
// Reload() builds the replacement off to the side and publishes it with a
// single pointer swap; workers pin the current snapshot once per batch, so
// in-flight queries finish against the index they started with — readers
// see the old index or the new one, never a torn mix — and the old
// snapshot frees itself when its last batch completes. Reload is triggered
// by a kReload control frame or by SIGHUP (RequestReload from the signal
// handler; the acceptor loop performs the swap on its next tick).
//
// Every stage is metered (serve.* counters/histograms, docs/SERVING.md
// lists the deterministic slice) and fault-injectable (serve.accept,
// serve.read, serve.swap failpoints).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "serve/protocol.h"
#include "util/mpmc_queue.h"

namespace asteria::serve {

struct ServerConfig {
  std::string socket_path;  // Unix-domain socket to bind (must fit sun_path)
  // INDX snapshot or MANI shard manifest (SearchIndex::Open dispatches on
  // the container kind); Start() loads it, Reload() re-loads — which is how
  // the streaming ingester makes freshly published shards queryable.
  std::string index_path;
  int workers = 1;          // dispatch worker threads
  int batch_max = 16;       // max queries coalesced into one scoring pass
  int queue_capacity = 256; // bounded request queue (backpressure)
  int score_threads = 1;    // ParallelFor width inside TopKBatch
  // Admission control: queries are shed (kOverloaded) once the queue holds
  // this many requests. 0 means shed only at queue_capacity.
  int queue_high_water = 0;
  // Slow-client bound: max milliseconds between a frame's first and last
  // byte, and the socket send timeout. 0 disables both (reads block
  // forever — test/debug only).
  int io_timeout_ms = 5000;
  // Connection cap: over-limit connects are greeted with kOverloaded and
  // closed. 0 means unlimited.
  int max_conns = 64;
  // Graceful drain: after stop, queued queries get this long to finish
  // before the remainder is answered kShuttingDown.
  int drain_timeout_ms = 2000;
  // Slow-query capture: an answered query whose attributed latency
  // (queue wait + encode + score + reply) reaches this many milliseconds
  // is spilled to slow_log_path as a CRC-framed "SLOW" line
  // (docs/FORMATS.md). 0 spills every answered query (test/debug);
  // negative disables the capture entirely.
  int slow_query_ms = -1;
  std::string slow_log_path;  // where slow queries spill (required if armed)
  // Telemetry sampler cadence: every interval the sampler thread snapshots
  // the cumulative serve counters + queue depth into a fixed ring that a
  // kStats probe returns (`asteria-cli ctl top`). 0 disables the thread
  // (kStats still answers, with an empty time series).
  int telemetry_interval_ms = 500;
};

class Server {
 public:
  // The model must outlive the server (snapshots hold encodings produced by
  // its weights; the fingerprint check on load enforces the match).
  Server(const core::AsteriaModel& model, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads the initial snapshot, binds + listens on the socket, and spawns
  // the worker pool. Returns false (with `error`) without leaving any
  // thread running on failure.
  bool Start(std::string* error);

  // Accept loop; blocks until RequestStop() (or a kShutdown frame), then
  // tears everything down: joins readers and workers, closes the socket,
  // unlinks the socket path. Safe to call exactly once after Start().
  void Run();

  // Async-signal-safe stop/reload triggers (atomic stores only). The
  // acceptor loop notices within one poll tick (~100ms).
  void RequestStop() { stop_.store(true, std::memory_order_release); }
  void RequestReload() { reload_.store(true, std::memory_order_release); }

  // Loads config.index_path into a fresh SearchIndex and atomically swaps
  // it in. In-flight batches keep the snapshot they pinned. Serialized
  // against concurrent Reload calls; the live index is untouched on error.
  bool Reload(std::string* error);

  // The currently published snapshot (what the next batch will score
  // against).
  std::shared_ptr<const core::SearchIndex> snapshot() const;

 private:
  struct Connection;
  struct Request;

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void DispatchBatch(std::vector<Request>* batch);
  bool HandleFrame(const std::shared_ptr<Connection>& conn, FrameType type,
                   const std::vector<std::uint8_t>& payload,
                   std::uint64_t deadline_ms, std::uint64_t trace_id,
                   std::uint32_t frame_version);
  std::size_t LiveConnections();
  // Telemetry sampler (kStats / `ctl top`). TakeSample appends one tick to
  // the ring; TelemetryLoop runs it every telemetry_interval_ms until
  // shutdown. SampleRing copies the ring oldest-first, stamping each
  // sample's age relative to `now`.
  void TakeSample();
  void TelemetryLoop();
  std::vector<StatsSample> SampleRing(std::chrono::steady_clock::time_point now);
  std::uint64_t UptimeMs() const;

  const core::AsteriaModel& model_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_{false};
  std::atomic<bool> started_{false};
  // Set at the start of teardown, before readers are woken with EOF: a
  // reader exiting while draining is shutdown, not a client disconnect, so
  // it must NOT cancel that client's queued work (shutdown drains it).
  std::atomic<bool> draining_{false};
  // Set when the drain window closes with work still queued: workers answer
  // the remainder kShuttingDown instead of scoring it.
  std::atomic<bool> drain_expired_{false};

  // The published snapshot. Guarded by snapshot_mu_, which is held only
  // for the pointer copy/assignment: workers pin once per batch and
  // reloads publish once, so the lock is off the per-query path. (Not
  // std::atomic<shared_ptr>: libstdc++ 12's _Sp_atomic::load releases its
  // internal lock bit with relaxed ordering, which leaves the pointer
  // read/write pair without a happens-before edge — TSan rightly flags
  // the publish racing a pin.)
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const core::SearchIndex> snapshot_;
  std::mutex reload_mu_;

  std::unique_ptr<util::MpmcQueue<Request>> queue_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;

  // Telemetry sampler state. One raw tick: the wall position (steady clock)
  // plus the cumulative totals at that instant; kStatsInfo converts the
  // position into age_ms at reply time so the wire carries no absolute
  // clocks.
  struct RawSample {
    std::chrono::steady_clock::time_point at{};
    StatsSample totals;  // age_ms unused here (stamped on copy-out)
  };
  static constexpr std::size_t kTelemetryRingSlots = 64;
  std::chrono::steady_clock::time_point start_time_{};
  std::mutex telemetry_mu_;
  std::condition_variable telemetry_cv_;
  bool telemetry_stop_ = false;           // guarded by telemetry_mu_
  std::vector<RawSample> telemetry_ring_; // guarded by telemetry_mu_
  std::size_t telemetry_next_ = 0;        // ring write cursor (monotonic)
  std::thread telemetry_thread_;
};

}  // namespace asteria::serve
