// asteria-serve: long-lived similarity query daemon (docs/SERVING.md).
//
// Loads an INDX snapshot once, then answers TopK / AboveThreshold queries
// over a Unix-domain stream socket speaking the serve::protocol framing.
// Internals:
//
//   acceptor ──> one reader thread per connection ──> bounded MpmcQueue
//                                                        │
//                              worker pool (N threads) <─┘
//
// Readers parse and validate frames (hostile input dies here, with a
// descriptive kError reply) and push well-formed query requests into the
// bounded queue — the queue's capacity is the daemon's backpressure.
// Workers pop one request, drain up to batch_max-1 more without blocking,
// and dispatch the whole batch through SearchIndex::TopKBatch: one sweep
// over the index scores every coalesced query.
//
// Snapshot swap: the index lives in a mutex-guarded shared_ptr (the lock
// covers only the pointer copy — see the snapshot_ comment below).
// Reload() builds the replacement off to the side and publishes it with a
// single pointer swap; workers pin the current snapshot once per batch, so
// in-flight queries finish against the index they started with — readers
// see the old index or the new one, never a torn mix — and the old
// snapshot frees itself when its last batch completes. Reload is triggered
// by a kReload control frame or by SIGHUP (RequestReload from the signal
// handler; the acceptor loop performs the swap on its next tick).
//
// Every stage is metered (serve.* counters/histograms, docs/SERVING.md
// lists the deterministic slice) and fault-injectable (serve.accept,
// serve.read, serve.swap failpoints).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "serve/protocol.h"
#include "util/mpmc_queue.h"

namespace asteria::serve {

struct ServerConfig {
  std::string socket_path;  // Unix-domain socket to bind (must fit sun_path)
  // INDX snapshot or MANI shard manifest (SearchIndex::Open dispatches on
  // the container kind); Start() loads it, Reload() re-loads — which is how
  // the streaming ingester makes freshly published shards queryable.
  std::string index_path;
  int workers = 1;          // dispatch worker threads
  int batch_max = 16;       // max queries coalesced into one scoring pass
  int queue_capacity = 256; // bounded request queue (backpressure)
  int score_threads = 1;    // ParallelFor width inside TopKBatch
};

class Server {
 public:
  // The model must outlive the server (snapshots hold encodings produced by
  // its weights; the fingerprint check on load enforces the match).
  Server(const core::AsteriaModel& model, const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Loads the initial snapshot, binds + listens on the socket, and spawns
  // the worker pool. Returns false (with `error`) without leaving any
  // thread running on failure.
  bool Start(std::string* error);

  // Accept loop; blocks until RequestStop() (or a kShutdown frame), then
  // tears everything down: joins readers and workers, closes the socket,
  // unlinks the socket path. Safe to call exactly once after Start().
  void Run();

  // Async-signal-safe stop/reload triggers (atomic stores only). The
  // acceptor loop notices within one poll tick (~100ms).
  void RequestStop() { stop_.store(true, std::memory_order_release); }
  void RequestReload() { reload_.store(true, std::memory_order_release); }

  // Loads config.index_path into a fresh SearchIndex and atomically swaps
  // it in. In-flight batches keep the snapshot they pinned. Serialized
  // against concurrent Reload calls; the live index is untouched on error.
  bool Reload(std::string* error);

  // The currently published snapshot (what the next batch will score
  // against).
  std::shared_ptr<const core::SearchIndex> snapshot() const;

 private:
  struct Connection;
  struct Request;

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  void DispatchBatch(std::vector<Request>* batch);
  bool HandleFrame(const std::shared_ptr<Connection>& conn, FrameType type,
                   const std::vector<std::uint8_t>& payload);

  const core::AsteriaModel& model_;
  const ServerConfig config_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> reload_{false};
  std::atomic<bool> started_{false};

  // The published snapshot. Guarded by snapshot_mu_, which is held only
  // for the pointer copy/assignment: workers pin once per batch and
  // reloads publish once, so the lock is off the per-query path. (Not
  // std::atomic<shared_ptr>: libstdc++ 12's _Sp_atomic::load releases its
  // internal lock bit with relaxed ordering, which leaves the pointer
  // read/write pair without a happens-before edge — TSan rightly flags
  // the publish racing a pin.)
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const core::SearchIndex> snapshot_;
  std::mutex reload_mu_;

  std::unique_ptr<util::MpmcQueue<Request>> queue_;
  std::vector<std::thread> workers_;

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> readers_;
};

}  // namespace asteria::serve
