// asteria-serve wire protocol: length-prefixed binary frames over a
// Unix-domain stream socket (docs/SERVING.md for the full spec).
//
// The framing deliberately reuses the store::Container conventions —
// leading magic, explicit protocol version, per-frame CRC32 over the
// payload, and every scalar encoded little-endian byte by byte — so the
// same hostile-input posture applies on the wire as on disk: a frame is
// either validated end to end or rejected with a descriptive error, never
// partially trusted.
//
// Frame layout, protocol v2 (32-byte header + payload):
//
//   offset  size  field
//   0       4     magic "ASRV" (FourCc, little-endian)
//   4       4     protocol version (kProtocolVersion)
//   8       4     frame type (FrameType)
//   12      4     CRC32 of the payload bytes
//   16      8     payload byte count (<= kMaxFramePayload)
//   24      8     deadline_ms — request-lifetime budget in milliseconds,
//                 relative to frame receipt (0 = no deadline). v2's one new
//                 field: a server drops a query whose budget has expired by
//                 dequeue time instead of scoring it (kDeadlineExceeded).
//   32      n     payload (store::ChunkBuilder / ChunkParser encoding)
//
// v1 frames (24-byte header, no deadline field) are still accepted — the
// reader dispatches on the version field before consuming the deadline
// bytes — so a pre-deadline client keeps working against a v2 daemon; a v1
// frame simply has no deadline.
//
// Request payloads carry a client-chosen u64 correlation id that the
// matching reply echoes, so a client may pipeline requests and a batched
// server may answer them in any order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "store/container.h"

namespace asteria::serve {

inline constexpr std::uint32_t kServeMagic = store::FourCc('A', 'S', 'R', 'V');
inline constexpr std::uint32_t kProtocolVersion = 2;
inline constexpr std::uint32_t kProtocolVersionV1 = 1;
// v1 header (also the common prefix of a v2 header) and the extra deadline
// field a v2 header appends.
inline constexpr std::uint32_t kFrameHeaderSize = 24;
inline constexpr std::uint32_t kFrameHeaderSizeV2 = 32;

// A declared payload larger than this is rejected before any allocation —
// the cap bounds what one hostile frame can make the daemon buffer.
inline constexpr std::uint64_t kMaxFramePayload = 16ull * 1024 * 1024;

enum class FrameType : std::uint32_t {
  // Requests.
  kTopK = 1,            // id, name, callee_count, k, tree
  kAboveThreshold = 2,  // id, name, callee_count, threshold (f64), tree
  kPing = 3,            // id
  kReload = 4,          // id — re-load the index snapshot and swap it in
  kShutdown = 5,        // id — stop the daemon after replying
  kCancel = 6,          // id of the pending query to cancel (best effort)
  kHealth = 7,          // id — liveness + load probe
  // Replies.
  kHits = 16,   // id, hit count, (index, name, score) per hit
  kPong = 17,   // id
  kOk = 18,     // id
  kError = 19,  // id (0 when the request id was unparseable), message
  // Request-lifecycle replies (v2). All carry just the id; each tells the
  // client *why* no kHits is coming, and whether a retry can help.
  kOverloaded = 20,        // shed at admission (queue past high water) or
                           // connection refused at --max_conns; retryable
  kDeadlineExceeded = 21,  // budget expired before scoring; not retryable
  kShuttingDown = 22,      // daemon draining past --drain_timeout_ms;
                           // retryable against a replacement daemon
  kHealthInfo = 23,  // id, index_size, queue_depth, connections, draining
};

// Payload of a kHealthInfo reply: a daemon's load at a glance.
struct HealthInfo {
  std::uint64_t index_size = 0;   // entries in the served snapshot
  std::uint64_t queue_depth = 0;  // requests waiting for a worker
  std::uint64_t connections = 0;  // live client connections
  bool draining = false;          // true once shutdown has begun
};

// Outcome of reading one frame from a file descriptor.
enum class ReadStatus {
  kFrame,    // a complete, CRC-verified frame was read
  kClosed,   // clean end of stream before any header byte
  kBad,      // malformed input (bad magic/version/oversize/CRC/short read);
             // `error` describes it. The stream is unframed past this point.
  kTimeout,  // io_timeout_ms elapsed between a frame's first byte and its
             // last — a slow-loris peer. Same disposition as kBad, but
             // distinguishable so the server can count it separately.
};

// Reads exactly one frame. On kBad/kTimeout the connection should be
// answered with one best-effort kError frame and closed — after a framing
// violation the byte stream cannot be trusted to realign.
//
// `deadline_ms`, when non-null, receives the v2 deadline field (0 for a v1
// frame or an absent deadline). `io_timeout_ms > 0` arms the frame-assembly
// deadline: waiting for a frame to *start* is unbounded (idle connections
// are fine; the fd's SO_RCVTIMEO only paces the wait), but once the first
// byte arrives the whole frame must complete within io_timeout_ms or the
// read fails with kTimeout. With io_timeout_ms == 0 an EAGAIN from a
// socket-level timeout is an ordinary kBad (the client's posture).
ReadStatus ReadFrame(int fd, FrameType* type,
                     std::vector<std::uint8_t>* payload, std::string* error,
                     std::uint64_t* deadline_ms = nullptr,
                     int io_timeout_ms = 0);

// Writes a v2 header + payload, stamping `deadline_ms` into the header
// (0 = no deadline; only meaningful on request frames). Returns false on
// any short or failed write (e.g. the peer vanished); writing never raises
// SIGPIPE.
bool WriteFrame(int fd, FrameType type, const store::ChunkBuilder& payload,
                std::string* error, std::uint64_t deadline_ms = 0);

// -- Payload builders / parsers ---------------------------------------------
//
// Parsers validate everything against the payload bounds before allocating
// (declared node/hit counts vs. remaining bytes) and reject structurally
// invalid ASTs — out-of-range child ids, a node with two parents, a root
// that is someone's child — so a crafted query can never make the encoder
// walk garbage. GetX functions return false and fill `error`.

void PutQuery(std::uint64_t id, const core::FunctionFeature& query, int k,
              double threshold, FrameType type, store::ChunkBuilder* out);
bool GetQuery(const std::vector<std::uint8_t>& payload, FrameType type,
              std::uint64_t* id, core::FunctionFeature* query, int* k,
              double* threshold, std::string* error);

void PutHits(std::uint64_t id, const std::vector<core::SearchHit>& hits,
             store::ChunkBuilder* out);
bool GetHits(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
             std::vector<core::SearchHit>* hits, std::string* error);

// kPing/kReload/kShutdown/kPong/kOk payload: just the id.
void PutControl(std::uint64_t id, store::ChunkBuilder* out);
bool GetControl(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                std::string* error);

void PutError(std::uint64_t id, const std::string& message,
              store::ChunkBuilder* out);
bool GetError(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
              std::string* message, std::string* error);

// kHealthInfo payload: id + the HealthInfo fields.
void PutHealthInfo(std::uint64_t id, const HealthInfo& info,
                   store::ChunkBuilder* out);
bool GetHealthInfo(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                   HealthInfo* info, std::string* error);

}  // namespace asteria::serve
