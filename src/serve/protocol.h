// asteria-serve wire protocol: length-prefixed binary frames over a
// Unix-domain stream socket (docs/SERVING.md for the full spec).
//
// The framing deliberately reuses the store::Container conventions —
// leading magic, explicit protocol version, per-frame CRC32 over the
// payload, and every scalar encoded little-endian byte by byte — so the
// same hostile-input posture applies on the wire as on disk: a frame is
// either validated end to end or rejected with a descriptive error, never
// partially trusted.
//
// Frame layout (24-byte header + payload):
//
//   offset  size  field
//   0       4     magic "ASRV" (FourCc, little-endian)
//   4       4     protocol version (kProtocolVersion)
//   8       4     frame type (FrameType)
//   12      4     CRC32 of the payload bytes
//   16      8     payload byte count (<= kMaxFramePayload)
//   24      n     payload (store::ChunkBuilder / ChunkParser encoding)
//
// Request payloads carry a client-chosen u64 correlation id that the
// matching reply echoes, so a client may pipeline requests and a batched
// server may answer them in any order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "store/container.h"

namespace asteria::serve {

inline constexpr std::uint32_t kServeMagic = store::FourCc('A', 'S', 'R', 'V');
inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::uint32_t kFrameHeaderSize = 24;

// A declared payload larger than this is rejected before any allocation —
// the cap bounds what one hostile frame can make the daemon buffer.
inline constexpr std::uint64_t kMaxFramePayload = 16ull * 1024 * 1024;

enum class FrameType : std::uint32_t {
  // Requests.
  kTopK = 1,            // id, name, callee_count, k, tree
  kAboveThreshold = 2,  // id, name, callee_count, threshold (f64), tree
  kPing = 3,            // id
  kReload = 4,          // id — re-load the index snapshot and swap it in
  kShutdown = 5,        // id — stop the daemon after replying
  // Replies.
  kHits = 16,   // id, hit count, (index, name, score) per hit
  kPong = 17,   // id
  kOk = 18,     // id
  kError = 19,  // id (0 when the request id was unparseable), message
};

// Outcome of reading one frame from a file descriptor.
enum class ReadStatus {
  kFrame,   // a complete, CRC-verified frame was read
  kClosed,  // clean end of stream before any header byte
  kBad,     // malformed input (bad magic/version/oversize/CRC/short read);
            // `error` describes it. The stream is unframed past this point.
};

// Reads exactly one frame. On kBad the connection should be answered with
// one best-effort kError frame and closed — after a framing violation the
// byte stream cannot be trusted to realign.
ReadStatus ReadFrame(int fd, FrameType* type,
                     std::vector<std::uint8_t>* payload, std::string* error);

// Writes header + payload. Returns false on any short or failed write
// (e.g. the peer vanished); writing never raises SIGPIPE.
bool WriteFrame(int fd, FrameType type, const store::ChunkBuilder& payload,
                std::string* error);

// -- Payload builders / parsers ---------------------------------------------
//
// Parsers validate everything against the payload bounds before allocating
// (declared node/hit counts vs. remaining bytes) and reject structurally
// invalid ASTs — out-of-range child ids, a node with two parents, a root
// that is someone's child — so a crafted query can never make the encoder
// walk garbage. GetX functions return false and fill `error`.

void PutQuery(std::uint64_t id, const core::FunctionFeature& query, int k,
              double threshold, FrameType type, store::ChunkBuilder* out);
bool GetQuery(const std::vector<std::uint8_t>& payload, FrameType type,
              std::uint64_t* id, core::FunctionFeature* query, int* k,
              double* threshold, std::string* error);

void PutHits(std::uint64_t id, const std::vector<core::SearchHit>& hits,
             store::ChunkBuilder* out);
bool GetHits(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
             std::vector<core::SearchHit>* hits, std::string* error);

// kPing/kReload/kShutdown/kPong/kOk payload: just the id.
void PutControl(std::uint64_t id, store::ChunkBuilder* out);
bool GetControl(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                std::string* error);

void PutError(std::uint64_t id, const std::string& message,
              store::ChunkBuilder* out);
bool GetError(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
              std::string* message, std::string* error);

}  // namespace asteria::serve
