// asteria-serve wire protocol: length-prefixed binary frames over a
// Unix-domain stream socket (docs/SERVING.md for the full spec).
//
// The framing deliberately reuses the store::Container conventions —
// leading magic, explicit protocol version, per-frame CRC32 over the
// payload, and every scalar encoded little-endian byte by byte — so the
// same hostile-input posture applies on the wire as on disk: a frame is
// either validated end to end or rejected with a descriptive error, never
// partially trusted.
//
// Frame layout, protocol v3 (40-byte header + payload):
//
//   offset  size  field
//   0       4     magic "ASRV" (FourCc, little-endian)
//   4       4     protocol version (kProtocolVersion)
//   8       4     frame type (FrameType)
//   12      4     CRC32 of the payload bytes
//   16      8     payload byte count (<= kMaxFramePayload)
//   24      8     deadline_ms — request-lifetime budget in milliseconds,
//                 relative to frame receipt (0 = no deadline). v2's new
//                 field: a server drops a query whose budget has expired by
//                 dequeue time instead of scoring it (kDeadlineExceeded).
//   32      8     trace_id — v3's new field. Minted per wire attempt by
//                 serve::Client (util::MintTraceId), echoed verbatim on the
//                 reply, and stamped into both sides' wide-event request
//                 records (util/request_log.h) so a client-observed reply
//                 joins exactly one server record. 0 = untraced.
//   40      n     payload (store::ChunkBuilder / ChunkParser encoding)
//
// v1 frames (24-byte header, no deadline or trace field) and v2 frames
// (32-byte header, deadline but no trace) are still accepted — the reader
// dispatches on the version field before consuming the trailing fields —
// so older clients keep working against a v3 daemon; their frames simply
// have no deadline and/or no trace id.
//
// Request payloads carry a client-chosen u64 correlation id that the
// matching reply echoes, so a client may pipeline requests and a batched
// server may answer them in any order. The trace id is per *attempt* (a
// retry re-mints), the correlation id per logical request.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/asteria.h"
#include "core/search_index.h"
#include "store/container.h"

namespace asteria::serve {

inline constexpr std::uint32_t kServeMagic = store::FourCc('A', 'S', 'R', 'V');
inline constexpr std::uint32_t kProtocolVersion = 3;
inline constexpr std::uint32_t kProtocolVersionV2 = 2;
inline constexpr std::uint32_t kProtocolVersionV1 = 1;
// v1 header (also the common prefix of every later header), plus the
// deadline field a v2 header appends and the trace-id field v3 appends.
inline constexpr std::uint32_t kFrameHeaderSize = 24;
inline constexpr std::uint32_t kFrameHeaderSizeV2 = 32;
inline constexpr std::uint32_t kFrameHeaderSizeV3 = 40;

// A declared payload larger than this is rejected before any allocation —
// the cap bounds what one hostile frame can make the daemon buffer.
inline constexpr std::uint64_t kMaxFramePayload = 16ull * 1024 * 1024;

enum class FrameType : std::uint32_t {
  // Requests.
  kTopK = 1,            // id, name, callee_count, k, tree
  kAboveThreshold = 2,  // id, name, callee_count, threshold (f64), tree
  kPing = 3,            // id
  kReload = 4,          // id — re-load the index snapshot and swap it in
  kShutdown = 5,        // id — stop the daemon after replying
  kCancel = 6,          // id of the pending query to cancel (best effort)
  kHealth = 7,          // id — liveness + load probe
  kStats = 8,           // id — telemetry probe (v3): counters, percentiles,
                        // and the sampler's recent time series
  // Replies.
  kHits = 16,   // id, hit count, (index, name, score) per hit
  kPong = 17,   // id
  kOk = 18,     // id
  kError = 19,  // id (0 when the request id was unparseable), message
  // Request-lifecycle replies (v2). All carry just the id; each tells the
  // client *why* no kHits is coming, and whether a retry can help.
  kOverloaded = 20,        // shed at admission (queue past high water) or
                           // connection refused at --max_conns; retryable
  kDeadlineExceeded = 21,  // budget expired before scoring; not retryable
  kShuttingDown = 22,      // daemon draining past --drain_timeout_ms;
                           // retryable against a replacement daemon
  kHealthInfo = 23,  // id, index_size, queue_depth, connections, draining,
                     // uptime_ms, answered/shed/deadline-exceeded totals
  kStatsInfo = 24,   // id + StatsInfo (the `ctl top` payload)
};

// Payload of a kHealthInfo reply: a daemon's load at a glance. The
// cumulative totals (v3 additions) let `ctl health` probes compute rates
// from two probes without a full kStats round trip.
struct HealthInfo {
  std::uint64_t index_size = 0;   // entries in the served snapshot
  std::uint64_t queue_depth = 0;  // requests waiting for a worker
  std::uint64_t connections = 0;  // live client connections
  bool draining = false;          // true once shutdown has begun
  std::uint64_t uptime_ms = 0;    // since Server::Start()
  std::uint64_t answered = 0;     // replies sent (any frame type)
  std::uint64_t shed = 0;         // admission-control rejections
  std::uint64_t deadline_exceeded = 0;  // dropped-at-dequeue queries
};

// One telemetry sampler tick: cumulative totals as of `age_ms` before the
// reply was built. `ctl top` differences adjacent samples into rates.
struct StatsSample {
  std::uint64_t age_ms = 0;
  std::uint64_t requests = 0;
  std::uint64_t replies = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t queue_depth = 0;
};

// Upper bound on samples in one kStatsInfo reply (the server's ring is
// smaller; the cap bounds a hostile reply's allocation).
inline constexpr std::uint32_t kMaxStatsSamples = 1024;

// Payload of a kStatsInfo reply: the live-telemetry view behind
// `asteria-cli ctl top`.
struct StatsInfo {
  std::uint64_t uptime_ms = 0;
  std::uint64_t requests = 0;   // queries admitted (kTopK/kAboveThreshold)
  std::uint64_t replies = 0;    // reply frames written
  std::uint64_t shed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t connections = 0;
  std::uint64_t index_size = 0;
  // serve.request_nanos percentile estimates (util::HistogramValue), in
  // nanoseconds, rounded.
  std::uint64_t p50_nanos = 0;
  std::uint64_t p95_nanos = 0;
  std::uint64_t p99_nanos = 0;
  std::vector<StatsSample> samples;  // oldest first
};

// Outcome of reading one frame from a file descriptor.
enum class ReadStatus {
  kFrame,    // a complete, CRC-verified frame was read
  kClosed,   // clean end of stream before any header byte
  kBad,      // malformed input (bad magic/version/oversize/CRC/short read);
             // `error` describes it. The stream is unframed past this point.
  kTimeout,  // io_timeout_ms elapsed between a frame's first byte and its
             // last — a slow-loris peer. Same disposition as kBad, but
             // distinguishable so the server can count it separately.
};

// Reads exactly one frame. On kBad/kTimeout the connection should be
// answered with one best-effort kError frame and closed — after a framing
// violation the byte stream cannot be trusted to realign.
//
// `deadline_ms`, when non-null, receives the v2+ deadline field and
// `trace_id` the v3 trace field (each 0 for an older frame or an absent
// value). `io_timeout_ms > 0` arms the frame-assembly
// deadline: waiting for a frame to *start* is unbounded (idle connections
// are fine; the fd's SO_RCVTIMEO only paces the wait), but once the first
// byte arrives the whole frame must complete within io_timeout_ms or the
// read fails with kTimeout. With io_timeout_ms == 0 an EAGAIN from a
// socket-level timeout is an ordinary kBad (the client's posture).
ReadStatus ReadFrame(int fd, FrameType* type,
                     std::vector<std::uint8_t>* payload, std::string* error,
                     std::uint64_t* deadline_ms = nullptr,
                     int io_timeout_ms = 0,
                     std::uint64_t* trace_id = nullptr,
                     std::uint32_t* frame_version = nullptr);

// Writes a `version` header + payload, stamping `deadline_ms` (v2+) and
// `trace_id` (v3) into the header (0 = no deadline / untraced; the
// deadline is only meaningful on request frames, the trace id on both —
// replies echo it). The daemon passes the version of the request being
// answered so a v1/v2 peer receives replies it can parse; an unknown
// version falls back to v3. Returns false on any short or failed write
// (e.g. the peer vanished); writing never raises SIGPIPE.
bool WriteFrame(int fd, FrameType type, const store::ChunkBuilder& payload,
                std::string* error, std::uint64_t deadline_ms = 0,
                std::uint64_t trace_id = 0,
                std::uint32_t version = kProtocolVersion);

// -- Payload builders / parsers ---------------------------------------------
//
// Parsers validate everything against the payload bounds before allocating
// (declared node/hit counts vs. remaining bytes) and reject structurally
// invalid ASTs — out-of-range child ids, a node with two parents, a root
// that is someone's child — so a crafted query can never make the encoder
// walk garbage. GetX functions return false and fill `error`.

void PutQuery(std::uint64_t id, const core::FunctionFeature& query, int k,
              double threshold, FrameType type, store::ChunkBuilder* out);
bool GetQuery(const std::vector<std::uint8_t>& payload, FrameType type,
              std::uint64_t* id, core::FunctionFeature* query, int* k,
              double* threshold, std::string* error);

void PutHits(std::uint64_t id, const std::vector<core::SearchHit>& hits,
             store::ChunkBuilder* out);
bool GetHits(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
             std::vector<core::SearchHit>* hits, std::string* error);

// kPing/kReload/kShutdown/kPong/kOk payload: just the id.
void PutControl(std::uint64_t id, store::ChunkBuilder* out);
bool GetControl(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                std::string* error);

void PutError(std::uint64_t id, const std::string& message,
              store::ChunkBuilder* out);
bool GetError(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
              std::string* message, std::string* error);

// kHealthInfo payload: id + the HealthInfo fields.
void PutHealthInfo(std::uint64_t id, const HealthInfo& info,
                   store::ChunkBuilder* out);
bool GetHealthInfo(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                   HealthInfo* info, std::string* error);

// kStatsInfo payload: id + the StatsInfo fields + the sample series. The
// parser bounds the declared sample count against the remaining payload
// bytes (and kMaxStatsSamples) before allocating.
void PutStatsInfo(std::uint64_t id, const StatsInfo& info,
                  store::ChunkBuilder* out);
bool GetStatsInfo(const std::vector<std::uint8_t>& payload, std::uint64_t* id,
                  StatsInfo* info, std::string* error);

}  // namespace asteria::serve
