#!/usr/bin/env bash
# Serving-path smoke benchmark (docs/SERVING.md): measures what the daemon
# exists to eliminate — per-query startup cost. The cold path runs
# `asteria-cli index-query` from scratch N times (each run re-loads the
# model and the INDX snapshot before scoring one query); the warm path
# starts one asteria-serve daemon over the same snapshot and sends the same
# query N times over the socket (`asteria-cli query --repeat=N`), so the
# load happens once and each query pays only framing + batch scoring.
# Writes the machine-readable result to BENCH_serve.json at the repo root
# and fails unless warm mean latency beats cold mean latency by at least
# MIN_SERVE_SPEEDUP x.
#
# Usage: scripts/bench_serve.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
MIN_SERVE_SPEEDUP="${MIN_SERVE_SPEEDUP:-50}"
COLD_RUNS="${COLD_RUNS:-5}"
WARM_RUNS="${WARM_RUNS:-50}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli asteria-serve

CLI="$BUILD/tools/asteria-cli"
SERVE="$BUILD/tools/asteria-serve"
SOCK="$WORK/serve.sock"

"$CLI" gen 42 > "$WORK/prog.mc"
FN="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
      | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN" ] || { echo "FAIL: no function found in generated program" >&2; exit 1; }
"$CLI" index-build "$WORK/prog.mc" "$WORK/prog.idx" >/dev/null 2>&1

# Cold path: every run pays model + snapshot load before the one query.
COLD_TOTAL_NANOS=0
for _ in $(seq "$COLD_RUNS"); do
  START="$(date +%s%N)"
  "$CLI" index-query "$WORK/prog.idx" "$WORK/prog.mc" "$FN" x86 5 \
      >/dev/null 2>&1
  END="$(date +%s%N)"
  COLD_TOTAL_NANOS=$((COLD_TOTAL_NANOS + END - START))
done
COLD_MEAN_NANOS=$((COLD_TOTAL_NANOS / COLD_RUNS))

# Warm path: one daemon, N queries over the socket.
"$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=2 \
    >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
  if "$CLI" ctl ping --socket="$SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CLI" ctl ping --socket="$SOCK" >/dev/null \
  || { echo "FAIL: daemon did not come up"; cat "$WORK/serve.log" >&2; exit 1; }

"$CLI" query "$WORK/prog.mc" "$FN" x86 5 --socket="$SOCK" \
    --repeat="$WARM_RUNS" > "$WORK/warm.txt" 2>/dev/null
WARM_MEAN_NANOS="$(grep -oE 'mean_nanos=[0-9.]+' "$WORK/warm.txt" \
                   | cut -d= -f2 | cut -d. -f1)"
[ -n "$WARM_MEAN_NANOS" ] \
  || { echo "FAIL: no mean_nanos line from --repeat run" >&2; exit 1; }

"$CLI" ctl shutdown --socket="$SOCK" >/dev/null
wait "$SERVE_PID"
SERVE_PID=""

SPEEDUP="$(awk -v c="$COLD_MEAN_NANOS" -v w="$WARM_MEAN_NANOS" \
           'BEGIN { printf "%.1f", c / w }')"
cat > "$ROOT/BENCH_serve.json" <<EOF
{
  "workload": "top-5 clone query, cold index-query vs warm asteria-serve",
  "cold_runs": $COLD_RUNS,
  "warm_runs": $WARM_RUNS,
  "cold_mean_nanos": $COLD_MEAN_NANOS,
  "warm_mean_nanos": $WARM_MEAN_NANOS,
  "speedup": $SPEEDUP
}
EOF
echo
cat "$ROOT/BENCH_serve.json"

awk -v s="$SPEEDUP" -v min="$MIN_SERVE_SPEEDUP" \
    'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }' \
  || { echo "FAIL: warm daemon only ${SPEEDUP}x faster than cold" \
            "index-query (need >= ${MIN_SERVE_SPEEDUP}x)" >&2; exit 1; }
echo "OK: warm daemon query >= ${MIN_SERVE_SPEEDUP}x faster than cold index-query"
