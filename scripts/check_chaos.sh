#!/usr/bin/env bash
# Chaos gate for the overload / request-lifecycle layer (docs/ROBUSTNESS.md
# "Overload & request lifecycle"). Two halves:
#
#   1. The failpoint-driven chaos matrix in serve_test — admission-control
#      shed, deadline expiry at dequeue, disconnect-epoch and explicit
#      cancellation, slow-writer io timeout, drain-window expiry, and the
#      retrying client — under BOTH TSan and ASan. The overload test
#      internally sweeps --workers at 1/2/8 and asserts every answered
#      query is bitwise-identical to direct SearchIndex::TopK while every
#      shed query gets kOverloaded.
#
#   2. An end-to-end daemon session over the new flags:
#      a. a well-behaved session (deadline'd, retrying client) against
#         --queue_high_water/--io_timeout_ms/--max_conns/--drain_timeout_ms
#         answers bitwise-identically to the direct index query, keeps every
#         chaos counter (serve.shed/cancelled/deadline_exceeded/io_timeouts/
#         conn_rejected/drain_dropped) at zero, and its deterministic
#         metrics slice is identical at --workers=1 and --workers=8;
#      b. SIGTERM drains and exits 0, and a restarted daemon on the same
#         socket serves again;
#      c. with serve.stall_worker armed and --queue_high_water=1, a burst of
#         concurrent no-retry clients splits into bounded-time kOverloaded
#         rejections plus correct answers — never hangs, never drops
#         silently — and a --deadline_ms=1 query is refused as
#         deadline-exceeded without being scored; serve.shed and
#         serve.deadline_exceeded account for exactly what the clients saw.
#
# Usage: scripts/check_chaos.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

CHAOS_FILTER='ServeTest.OverloadSheds*:ServeTest.ExpiredAtDequeue*'
CHAOS_FILTER+=':ServeTest.DisconnectCancels*:ServeTest.ExplicitCancel*'
CHAOS_FILTER+=':ServeTest.SlowWriter*:ServeTest.DrainWindow*'
CHAOS_FILTER+=':ServeTest.RetryBackoff*:ServeTest.ClientReconnects*'
CHAOS_FILTER+=':ServeTest.Mutations*:ServeTest.HealthProbe*'
CHAOS_FILTER+=':ServeTest.MaxConns*:MpmcQueueTest.TryPush*'

# -- 1. Sanitized chaos matrix ----------------------------------------------

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0"
for sanitizer in thread address; do
  SAN_BUILD="$ROOT/build-${sanitizer/thread/tsan}"
  SAN_BUILD="${SAN_BUILD/address/asan}"
  echo "== check_chaos: $sanitizer chaos matrix =="
  cmake -S "$ROOT" -B "$SAN_BUILD" -DASTERIA_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$SAN_BUILD" -j "$(nproc)" --target serve_test util_test \
        >/dev/null
  "$SAN_BUILD/tests/serve_test" --gtest_brief=1 \
      --gtest_filter="$CHAOS_FILTER"
  "$SAN_BUILD/tests/util_test" --gtest_brief=1 \
      --gtest_filter="$CHAOS_FILTER"
done

# -- 2. End-to-end daemon session -------------------------------------------

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli asteria-serve \
      >/dev/null
CLI="$BUILD/tools/asteria-cli"
SERVE="$BUILD/tools/asteria-serve"

"$CLI" gen 42 > "$WORK/prog.mc"
FN1="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
       | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN1" ] \
  || { echo "FAIL: no function in the generated program" >&2; exit 1; }
"$CLI" index-build "$WORK/prog.mc" "$WORK/prog.idx" >/dev/null 2>&1
"$CLI" index-query "$WORK/prog.idx" "$WORK/prog.mc" "$FN1" x86 5 \
    > "$WORK/direct.txt" 2>/dev/null

await_ping() {
  for _ in $(seq 50); do
    if "$CLI" ctl ping --socket="$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

counter() {
  grep -oE "\"$2\": [0-9]+" "$1" | grep -oE '[0-9]+$' || echo 0
}

# The deterministic slice, as in check_serve.sh: drop the span profile and
# every batch-shaped histogram, plus latency-valued fields.
filter() {
  awk '
    /^  "spans": \{$/            { in_spans = 1 }
    in_spans && /^  \},?$/       { in_spans = 0; next }
    in_spans                     { next }
    /^    "[^"]*batch[^"]*": \{$/ { in_batch = 1 }
    in_batch && /^    \},?$/     { in_batch = 0; next }
    in_batch                     { next }
    /^    "[a-z_.]*_nanos": \{$/ { in_nanos = 1 }
    in_nanos && /^    \}/        { in_nanos = 0 }
    /"(sum|min|max|p50|p95|p99)":/           { next }
    in_nanos && /"buckets":/     { next }
    { print }
  ' "$1"
}

# -- 2a. Well-behaved session: parity, zero chaos counters, determinism.
for workers in 1 8; do
  SOCK="$WORK/clean$workers.sock"
  "$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=$workers \
      --batch_max=4 --queue_high_water=8 --io_timeout_ms=2000 \
      --max_conns=8 --drain_timeout_ms=500 \
      --metrics_out="$WORK/clean$workers.json" \
      >"$WORK/clean$workers.log" 2>&1 &
  SERVE_PID=$!
  await_ping "$SOCK" \
    || { echo "FAIL: daemon (workers=$workers) never answered ping" >&2
         cat "$WORK/clean$workers.log" >&2; exit 1; }
  "$CLI" ctl health --socket="$SOCK" > "$WORK/health$workers.txt" \
    || { echo "FAIL: ctl health failed" >&2; exit 1; }
  grep -q 'draining=0' "$WORK/health$workers.txt" \
    || { echo "FAIL: health says draining on a live daemon" >&2; exit 1; }
  "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" \
      --deadline_ms=30000 --retries=3 --retry_seed=1 \
      > "$WORK/daemon$workers.txt" \
    || { echo "FAIL: deadline'd retrying query failed" >&2
         cat "$WORK/clean$workers.log" >&2; exit 1; }
  # SIGTERM must drain and exit 0 — the graceful path, not a crash.
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" \
    || { echo "FAIL: SIGTERM exit was non-zero at workers=$workers" >&2
         cat "$WORK/clean$workers.log" >&2; exit 1; }
  SERVE_PID=""
  if ! diff -u "$WORK/direct.txt" "$WORK/daemon$workers.txt"; then
    echo "FAIL: daemon (workers=$workers) differs from direct TopK" >&2
    exit 1
  fi
  for name in 'serve\.shed' 'serve\.cancelled' 'serve\.deadline_exceeded' \
              'serve\.io_timeouts' 'serve\.conn_rejected' \
              'serve\.drain_dropped'; do
    VALUE="$(counter "$WORK/clean$workers.json" "$name")"
    [ "$VALUE" -eq 0 ] \
      || { echo "FAIL: $name is $VALUE on a well-behaved session" >&2
           exit 1; }
  done
done
filter "$WORK/clean1.json" > "$WORK/clean1.det"
filter "$WORK/clean8.json" > "$WORK/clean8.det"
if ! diff -u "$WORK/clean1.det" "$WORK/clean8.det"; then
  echo "FAIL: deterministic metrics slice differs across worker counts" >&2
  exit 1
fi

# -- 2b. Restart on the same socket serves again.
SOCK="$WORK/restart.sock"
"$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=1 \
    >"$WORK/restart.log" 2>&1 &
SERVE_PID=$!
await_ping "$SOCK" || { echo "FAIL: restarted daemon is deaf" >&2; exit 1; }
"$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" --retries=2 \
    > "$WORK/restart.txt"
diff -u "$WORK/direct.txt" "$WORK/restart.txt" >/dev/null \
  || { echo "FAIL: post-restart results differ from direct TopK" >&2
       exit 1; }
kill -TERM "$SERVE_PID"; wait "$SERVE_PID"; SERVE_PID=""

# -- 2c. Forced overload: shed is explicit, bounded, and accounted for.
SOCK="$WORK/storm.sock"
"$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=1 \
    --batch_max=1 --queue_high_water=1 --drain_timeout_ms=2000 \
    --failpoints=serve.stall_worker=always \
    --metrics_out="$WORK/storm.json" >"$WORK/storm.log" 2>&1 &
SERVE_PID=$!
await_ping "$SOCK" || { echo "FAIL: stalled daemon is deaf" >&2; exit 1; }

declare -a STORM_PIDS=()
for i in $(seq 6); do
  "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" --retries=0 \
      > "$WORK/storm$i.out" 2> "$WORK/storm$i.err" &
  STORM_PIDS+=($!)
done
ANSWERED=0
SHED=0
for i in $(seq 6); do
  if wait "${STORM_PIDS[$((i - 1))]}"; then
    diff -u "$WORK/direct.txt" "$WORK/storm$i.out" >/dev/null \
      || { echo "FAIL: an answered query under overload was wrong" >&2
           exit 1; }
    ANSWERED=$((ANSWERED + 1))
  else
    grep -q 'overloaded' "$WORK/storm$i.err" \
      || { echo "FAIL: a failed query did not report overload:" >&2
           cat "$WORK/storm$i.err" >&2; exit 1; }
    SHED=$((SHED + 1))
  fi
done
[ "$ANSWERED" -ge 1 ] && [ "$SHED" -ge 1 ] \
  || { echo "FAIL: storm split answered=$ANSWERED shed=$SHED (want both)" >&2
       exit 1; }

# An already-exhausted deadline is refused at dequeue, never scored.
if "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" \
    --deadline_ms=1 --retries=0 > /dev/null 2> "$WORK/deadline.err"; then
  echo "FAIL: a 1 ms deadline against a stalled daemon succeeded" >&2
  exit 1
fi
grep -qi 'deadline' "$WORK/deadline.err" \
  || { echo "FAIL: deadline failure not reported as such:" >&2
       cat "$WORK/deadline.err" >&2; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: stalled daemon died dirty" >&2; exit 1; }
SERVE_PID=""
STORM_SHED="$(counter "$WORK/storm.json" 'serve\.shed')"
[ "$STORM_SHED" -eq "$SHED" ] \
  || { echo "FAIL: serve.shed=$STORM_SHED but clients saw $SHED" >&2
       exit 1; }
DDL="$(counter "$WORK/storm.json" 'serve\.deadline_exceeded')"
[ "$DDL" -ge 1 ] \
  || { echo "FAIL: serve.deadline_exceeded is zero after an expiry" >&2
       exit 1; }

echo "OK: chaos matrix clean under both sanitizers; shed/deadline/drain" \
     "behavior verified end to end"
