#!/usr/bin/env bash
# Serving smoke gate (docs/SERVING.md): runs the same scripted client
# session — ping, top-k and reload control frames, more queries, shutdown —
# against an asteria-serve daemon at --workers=1 and --workers=8, then
#   1. asserts the query output (the ranked hit tables, scores included) is
#      byte-identical across worker counts — batching and dispatch order
#      must never leak into results (same contract check_metrics.sh makes
#      for --threads);
#   2. asserts the deterministic slice of the two --metrics_out snapshots is
#      identical: serve.* counters, per-request histogram observation
#      counts, and the serve.index_size gauge. Batch-shaped histograms
#      (*batch*: how requests coalesced) and the span profile are dropped
#      wholesale — their counts depend on arrival timing by design;
#   3. asserts the snapshot observed the session: nonzero serve.accepted,
#      serve.requests, serve.replies, serve.reloads, and zero serve.errors /
#      serve.bad_frames on this well-formed session.
#
# Usage: scripts/check_serve.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli asteria-serve

CLI="$BUILD/tools/asteria-cli"
SERVE="$BUILD/tools/asteria-serve"

"$CLI" gen 42 > "$WORK/prog.mc"
FN1="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
       | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
FN2="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
       | head -2 | tail -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN1" ] && [ -n "$FN2" ] \
  || { echo "FAIL: need two functions in the generated program" >&2; exit 1; }
"$CLI" index-build "$WORK/prog.mc" "$WORK/prog.idx" >/dev/null 2>&1

# One scripted session: queries across ISAs, a reload mid-stream, queries
# after it, clean shutdown. Output goes to $1 for the cross-worker diff.
session() {
  local out="$1" sock="$2"
  {
    "$CLI" ctl ping --socket="$sock"
    "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$sock"
    "$CLI" query "$WORK/prog.mc" "$FN2" ARM 3 --socket="$sock"
    "$CLI" query "$WORK/prog.mc" "$FN1" PPC 7 --socket="$sock"
    "$CLI" ctl reload --socket="$sock"
    "$CLI" query "$WORK/prog.mc" "$FN1" x64 5 --socket="$sock"
    "$CLI" query "$WORK/prog.mc" "$FN2" x86 4 --socket="$sock"
    "$CLI" ctl shutdown --socket="$sock"
  } > "$out"
}

for workers in 1 8; do
  SOCK="$WORK/serve$workers.sock"
  "$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=$workers \
      --batch_max=4 --metrics_out="$WORK/m$workers.json" \
      >"$WORK/serve$workers.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 50); do
    if "$CLI" ctl ping --socket="$SOCK" >/dev/null 2>&1; then break; fi
    sleep 0.1
  done
  session "$WORK/out$workers.txt" "$SOCK" \
    || { echo "FAIL: session failed at workers=$workers" >&2
         cat "$WORK/serve$workers.log" >&2; exit 1; }
  wait "$SERVE_PID"
  SERVE_PID=""
done

if ! diff -u "$WORK/out1.txt" "$WORK/out8.txt"; then
  echo "FAIL: query results differ between --workers=1 and --workers=8" >&2
  exit 1
fi

# Deterministic metrics slice: drop the spans section and every *batch*
# histogram wholesale (their counts encode arrival timing), then the usual
# latency-valued fields (sum/min/max and the p50/p95/p99 estimates
# everywhere, nanos bucket tallies). Everything that survives must be
# identical across worker counts.
filter() {
  awk '
    /^  "spans": \{$/            { in_spans = 1 }
    in_spans && /^  \},?$/       { in_spans = 0; next }
    in_spans                     { next }
    /^    "[^"]*batch[^"]*": \{$/ { in_batch = 1 }
    in_batch && /^    \},?$/     { in_batch = 0; next }
    in_batch                     { next }
    /^    "[a-z_.]*_nanos": \{$/ { in_nanos = 1 }
    in_nanos && /^    \}/        { in_nanos = 0 }
    /"(sum|min|max|p50|p95|p99)":/           { next }
    in_nanos && /"buckets":/     { next }
    { print }
  ' "$1"
}

filter "$WORK/m1.json" > "$WORK/m1.det"
filter "$WORK/m8.json" > "$WORK/m8.det"
if ! diff -u "$WORK/m1.det" "$WORK/m8.det"; then
  echo "FAIL: deterministic metrics slice differs between --workers=1 and --workers=8" >&2
  exit 1
fi

counter() {
  grep -oE "\"$2\": [0-9]+" "$1" | grep -oE '[0-9]+$' || echo 0
}
for name in 'serve\.accepted' 'serve\.requests' 'serve\.replies' \
            'serve\.reloads'; do
  VALUE="$(counter "$WORK/m1.json" "$name")"
  [ "$VALUE" -gt 0 ] \
    || { echo "FAIL: counter $name is zero or missing" >&2; exit 1; }
done
for name in 'serve\.errors' 'serve\.bad_frames'; do
  VALUE="$(counter "$WORK/m1.json" "$name")"
  [ "$VALUE" -eq 0 ] \
    || { echo "FAIL: counter $name is $VALUE on a well-formed session" >&2
         exit 1; }
done

echo "OK: daemon results and metrics deterministic across worker counts"
