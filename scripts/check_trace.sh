#!/usr/bin/env bash
# Per-request tracing gate (docs/OBSERVABILITY.md "Per-request tracing").
# Three halves:
#
#   1. The tracing test matrix — request-log ring (seqlock, wrap, concurrent
#      appenders), v1/v2 frame compat, trace-id echo, record completeness
#      under shed/deadline/cancel at workers 1/2/8, kStats, and the
#      slow-query capture — under BOTH TSan and ASan: the wait-free Append
#      path and the telemetry sampler thread must be provably race-free.
#
#   2. An end-to-end chaos storm: a stalled, admission-limited daemon takes
#      concurrent no-retry clients plus a doomed --deadline_ms=1 query, every
#      client dumps its per-attempt records (--trace_out), the daemon dumps
#      its ring on SIGTERM (--request_log_out). Every client record whose
#      outcome implies a daemon reply (ok / shed / deadline_exceeded /
#      shutting_down) must join EXACTLY ONE server record by its 16-hex
#      trace id — no orphans, no duplicates — and the storm must exercise
#      ok, shed, and deadline joins at least once each.
#
#   3. Tracing must not perturb determinism: the same scripted session with
#      the full tracing stack armed (--slow_query_ms=0, slow log, request
#      ring, telemetry sampler) yields an identical deterministic metrics
#      slice at --workers=1 and --workers=2, the slow log parses cleanly,
#      and `ctl top` answers.
#
# Usage: scripts/check_trace.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

TRACE_FILTER='RequestLogTest.*:ServeTest.OlderFrameVersions*'
TRACE_FILTER+=':ServeTest.TraceIdIsEchoed*:ServeTest.ClientAndServerRecords*'
TRACE_FILTER+=':ServeTest.RequestLogComplete*:ServeTest.StatsProbe*'
TRACE_FILTER+=':ServeTest.HealthProbeReportsCumulative*'
TRACE_FILTER+=':ServeTest.SlowQueryCapture*'

# -- 1. Sanitized tracing matrix --------------------------------------------

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0"
for sanitizer in thread address; do
  SAN_BUILD="$ROOT/build-${sanitizer/thread/tsan}"
  SAN_BUILD="${SAN_BUILD/address/asan}"
  echo "== check_trace: $sanitizer tracing matrix =="
  cmake -S "$ROOT" -B "$SAN_BUILD" -DASTERIA_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$SAN_BUILD" -j "$(nproc)" \
        --target serve_test request_log_test >/dev/null
  "$SAN_BUILD/tests/request_log_test" --gtest_brief=1
  "$SAN_BUILD/tests/serve_test" --gtest_brief=1 \
      --gtest_filter="$TRACE_FILTER"
done

# -- Shared fixtures ---------------------------------------------------------

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli asteria-serve \
      >/dev/null
CLI="$BUILD/tools/asteria-cli"
SERVE="$BUILD/tools/asteria-serve"

"$CLI" gen 42 > "$WORK/prog.mc"
FN1="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
       | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN1" ] \
  || { echo "FAIL: no function in the generated program" >&2; exit 1; }
"$CLI" index-build "$WORK/prog.mc" "$WORK/prog.idx" >/dev/null 2>&1
"$CLI" index-query "$WORK/prog.idx" "$WORK/prog.mc" "$FN1" x86 5 \
    > "$WORK/direct.txt" 2>/dev/null

await_ping() {
  for _ in $(seq 50); do
    if "$CLI" ctl ping --socket="$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# Record dumps are CRC-framed "SLOW <crc> <json>" lines with a fixed key
# order; flatten each to "trace op outcome" for the joins.
records() {
  grep -hoE '"trace":"[0-9a-f]{16}","op":"[^"]*","outcome":"[^"]*"' "$@" \
    | sed -E 's/"trace":"([0-9a-f]+)","op":"([^"]*)","outcome":"([^"]*)"/\1 \2 \3/'
}

# -- 2. Chaos storm: 1:1 client<->server join by trace id --------------------

echo "== check_trace: chaos storm join =="
SOCK="$WORK/storm.sock"
"$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=1 \
    --batch_max=1 --queue_high_water=1 --drain_timeout_ms=2000 \
    --failpoints=serve.stall_worker=always \
    --request_log_out="$WORK/server.jsonl" >"$WORK/storm.log" 2>&1 &
SERVE_PID=$!
await_ping "$SOCK" || { echo "FAIL: stalled daemon is deaf" >&2; exit 1; }

declare -a STORM_PIDS=()
for i in $(seq 6); do
  "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" --retries=0 \
      --trace_out="$WORK/client$i.jsonl" \
      > "$WORK/storm$i.out" 2> "$WORK/storm$i.err" &
  STORM_PIDS+=($!)
done
ANSWERED=0
SHED=0
for i in $(seq 6); do
  if wait "${STORM_PIDS[$((i - 1))]}"; then
    diff -u "$WORK/direct.txt" "$WORK/storm$i.out" >/dev/null \
      || { echo "FAIL: an answered query under overload was wrong" >&2
           exit 1; }
    ANSWERED=$((ANSWERED + 1))
  else
    SHED=$((SHED + 1))
  fi
done
[ "$ANSWERED" -ge 1 ] && [ "$SHED" -ge 1 ] \
  || { echo "FAIL: storm split answered=$ANSWERED shed=$SHED (want both)" >&2
       exit 1; }
# A 1 ms deadline against a 250 ms stall must come back deadline-exceeded —
# and that refusal must be traced on both sides too.
if "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK" \
    --deadline_ms=1 --retries=0 --trace_out="$WORK/client_ddl.jsonl" \
    > /dev/null 2> "$WORK/ddl.err"; then
  echo "FAIL: a 1 ms deadline against a stalled daemon succeeded" >&2
  exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: storm daemon died dirty" >&2; exit 1; }
SERVE_PID=""

records "$WORK"/client*.jsonl > "$WORK/client.rec"
records "$WORK/server.jsonl" > "$WORK/server.rec"
[ -s "$WORK/server.rec" ] \
  || { echo "FAIL: --request_log_out dump is empty or unparseable" >&2
       exit 1; }
# The join: every client record whose outcome implies the daemon answered
# must match exactly one server record on its nonzero trace id.
awk '
  NR == FNR { server[$1]++; next }
  $2 !~ /^client\./ { next }
  $3 != "ok" && $3 != "shed" && $3 != "deadline_exceeded" \
      && $3 != "shutting_down" { next }
  {
    joinable++
    seen[$3]++
    if ($1 == "0000000000000000") {
      print "FAIL: client record with a zero trace id (" $2 " " $3 ")"
      bad = 1
    } else if (server[$1] != 1) {
      print "FAIL: trace " $1 " (" $2 " " $3 ") joins " server[$1] + 0 \
            " server records, want exactly 1"
      bad = 1
    }
  }
  END {
    if (joinable == 0) { print "FAIL: no joinable client records"; bad = 1 }
    if (seen["ok"] < 1)   { print "FAIL: no ok join exercised"; bad = 1 }
    if (seen["shed"] < 1) { print "FAIL: no shed join exercised"; bad = 1 }
    if (seen["deadline_exceeded"] < 1) {
      print "FAIL: no deadline join exercised"; bad = 1
    }
    exit bad
  }
' "$WORK/server.rec" "$WORK/client.rec" \
  || { echo "FAIL: client<->server trace join broken" >&2; exit 1; }

# -- 3. Determinism with the tracing stack armed -----------------------------

echo "== check_trace: determinism with tracing armed =="
filter() {
  awk '
    /^  "spans": \{$/            { in_spans = 1 }
    in_spans && /^  \},?$/       { in_spans = 0; next }
    in_spans                     { next }
    /^    "[^"]*batch[^"]*": \{$/ { in_batch = 1 }
    in_batch && /^    \},?$/     { in_batch = 0; next }
    in_batch                     { next }
    /^    "[a-z_.]*_nanos": \{$/ { in_nanos = 1 }
    in_nanos && /^    \}/        { in_nanos = 0 }
    /"(sum|min|max|p50|p95|p99)":/ { next }
    in_nanos && /"buckets":/     { next }
    { print }
  ' "$1"
}

for workers in 1 2; do
  SOCK="$WORK/det$workers.sock"
  "$SERVE" --socket="$SOCK" --index="$WORK/prog.idx" --workers=$workers \
      --batch_max=4 --telemetry_interval_ms=50 \
      --slow_query_ms=0 --slow_log="$WORK/slow$workers.jsonl" \
      --metrics_out="$WORK/m$workers.json" \
      --request_log_out="$WORK/ring$workers.jsonl" \
      >"$WORK/det$workers.log" 2>&1 &
  SERVE_PID=$!
  await_ping "$SOCK" \
    || { echo "FAIL: traced daemon (workers=$workers) never answered" >&2
         cat "$WORK/det$workers.log" >&2; exit 1; }
  {
    "$CLI" query "$WORK/prog.mc" "$FN1" x86 5 --socket="$SOCK"
    "$CLI" query "$WORK/prog.mc" "$FN1" ARM 3 --socket="$SOCK"
    "$CLI" query "$WORK/prog.mc" "$FN1" PPC 7 --socket="$SOCK"
  } > "$WORK/out$workers.txt" \
    || { echo "FAIL: traced session failed at workers=$workers" >&2
         cat "$WORK/det$workers.log" >&2; exit 1; }
  sleep 0.3  # let the 50 ms sampler bank a few samples for ctl top
  "$CLI" ctl top --socket="$SOCK" > "$WORK/top$workers.txt" \
    || { echo "FAIL: ctl top failed at workers=$workers" >&2; exit 1; }
  grep -q 'p50_ms=' "$WORK/top$workers.txt" \
    && grep -q 'qps=' "$WORK/top$workers.txt" \
    || { echo "FAIL: ctl top output incomplete:" >&2
         cat "$WORK/top$workers.txt" >&2; exit 1; }
  "$CLI" ctl shutdown --socket="$SOCK" >/dev/null \
    || { echo "FAIL: ctl shutdown failed" >&2; exit 1; }
  wait "$SERVE_PID"
  SERVE_PID=""
  # Every answered query spilled to the slow log (threshold 0), parseably.
  SLOW_OK="$(records "$WORK/slow$workers.jsonl" \
             | awk '$2 == "serve.topk" && $3 == "ok"' | wc -l)"
  [ "$SLOW_OK" -ge 3 ] \
    || { echo "FAIL: slow log holds $SLOW_OK ok records, want >= 3" >&2
         exit 1; }
done

if ! diff -u "$WORK/out1.txt" "$WORK/out2.txt"; then
  echo "FAIL: query results differ between --workers=1 and --workers=2" >&2
  exit 1
fi
filter "$WORK/m1.json" > "$WORK/m1.det"
filter "$WORK/m2.json" > "$WORK/m2.det"
if ! diff -u "$WORK/m1.det" "$WORK/m2.det"; then
  echo "FAIL: deterministic metrics slice differs with tracing armed" >&2
  exit 1
fi

echo "OK: tracing matrix sanitizer-clean; client<->server records join 1:1" \
     "by trace id; determinism slice unchanged with tracing armed"
