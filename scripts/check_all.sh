#!/usr/bin/env bash
# The pre-PR gate: one command that runs everything CI runs. In order:
#   1. the tier-1 build + ctest suite (the floor no change may lower),
#   2. the concurrency suites under TSan and ASan (check_sanitize.sh),
#   3. the metrics determinism gate (check_metrics.sh),
#   4. the serving determinism gate (check_serve.sh),
#   5. the streaming-ingest determinism gate (check_ingest.sh),
#   6. the overload/request-lifecycle chaos gate (check_chaos.sh),
#   7. the per-request tracing gate (check_trace.sh),
#   8. the batched-search throughput + exactness gate (bench_search.sh).
# Each stage reuses its own build directory, so a warm tree pays mostly
# test time. Fail-fast: the first failing gate stops the run; either way a
# per-gate PASS/FAIL/skipped summary table prints at the end, so a red run
# still says exactly where it died.
#
# Usage: scripts/check_all.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
BUILD="$ROOT/$BUILD_DIR"

GATE_NAMES=()
GATE_RESULTS=()

summary() {
  echo
  echo "== check_all summary =="
  printf '%-22s %s\n' "gate" "result"
  printf '%-22s %s\n' "----" "------"
  for i in "${!GATE_NAMES[@]}"; do
    printf '%-22s %s\n' "${GATE_NAMES[$i]}" "${GATE_RESULTS[$i]}"
  done
}
trap summary EXIT

# Runs one gate and records PASS/FAIL. Fail-fast: a failing gate stops the
# run; the EXIT trap still prints the table, with every unreached gate
# marked skipped.
REMAINING_GATES=("build+ctest" "sanitize(thread)" "sanitize(address)"
                 "metrics" "serve" "ingest" "chaos" "trace" "search-bench")
gate() {
  local name="$1"
  shift
  echo "== check_all: $name =="
  GATE_NAMES+=("$name")
  REMAINING_GATES=("${REMAINING_GATES[@]:1}")
  if "$@"; then
    GATE_RESULTS+=("PASS")
  else
    GATE_RESULTS+=("FAIL")
    for remaining in "${REMAINING_GATES[@]+"${REMAINING_GATES[@]}"}"; do
      GATE_NAMES+=("$remaining")
      GATE_RESULTS+=("skipped")
    done
    exit 1
  fi
}

tier1() {
  cmake -S "$ROOT" -B "$BUILD" >/dev/null \
    && cmake --build "$BUILD" -j "$(nproc)" \
    && ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"
}

gate "build+ctest" tier1
gate "sanitize(thread)" "$ROOT/scripts/check_sanitize.sh" thread
gate "sanitize(address)" "$ROOT/scripts/check_sanitize.sh" address
gate "metrics" "$ROOT/scripts/check_metrics.sh" "$BUILD_DIR"
gate "serve" "$ROOT/scripts/check_serve.sh" "$BUILD_DIR"
gate "ingest" "$ROOT/scripts/check_ingest.sh" "$BUILD_DIR"
gate "chaos" "$ROOT/scripts/check_chaos.sh" "$BUILD_DIR"
gate "trace" "$ROOT/scripts/check_trace.sh" "$BUILD_DIR"
gate "search-bench" "$ROOT/scripts/bench_search.sh" "$BUILD_DIR"

echo
echo "OK: all gates green"
