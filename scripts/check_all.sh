#!/usr/bin/env bash
# The pre-PR gate: one command that runs everything CI runs. In order:
#   1. the tier-1 build + ctest suite (the floor no change may lower),
#   2. the concurrency suites under TSan and ASan (check_sanitize.sh),
#   3. the metrics determinism gate (check_metrics.sh),
#   4. the serving determinism gate (check_serve.sh),
#   5. the streaming-ingest determinism gate (check_ingest.sh).
# Each stage reuses its own build directory, so a warm tree pays mostly
# test time. Exits non-zero on the first failing stage.
#
# Usage: scripts/check_all.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
BUILD="$ROOT/$BUILD_DIR"

echo "== check_all: build + ctest =="
cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

for sanitizer in thread address; do
  echo "== check_all: check_sanitize.sh $sanitizer =="
  "$ROOT/scripts/check_sanitize.sh" "$sanitizer"
done

echo "== check_all: check_metrics.sh =="
"$ROOT/scripts/check_metrics.sh" "$BUILD_DIR"

echo "== check_all: check_serve.sh =="
"$ROOT/scripts/check_serve.sh" "$BUILD_DIR"

echo "== check_all: check_ingest.sh =="
"$ROOT/scripts/check_ingest.sh" "$BUILD_DIR"

echo
echo "OK: all gates green"
