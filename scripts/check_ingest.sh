#!/usr/bin/env bash
# Streaming-ingest determinism gate (docs/ARCHITECTURE.md "Incremental
# ingest"): ingests the same firmware drop directory at --threads=1 and
# --threads=8 into two sharded index directories, then
#   1. asserts the published artifacts are byte-identical — the MANI
#      manifest and every shard snapshot must not depend on the encode
#      thread count (the ParallelFor static-partition contract extended to
#      the ingest write path);
#   2. asserts `index-info` and a sharded `index-query` read back
#      identically from both directories, and that delta vuln search over
#      the two produces byte-identical reports and advances both manifests
#      to byte-identical states;
#   3. asserts the deterministic slice of the two --metrics_out snapshots
#      matches (same filter as check_metrics.sh: latency-valued fields
#      stripped, counts kept) and that the ingest.* counters actually
#      observed the run.
#
# Usage: scripts/check_ingest.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli

CLI="$BUILD/tools/asteria-cli"

"$CLI" fw-gen "$WORK/drop" 4 21 >/dev/null
"$CLI" gen 3 > "$WORK/query.mc"
# First function of the generated package is the query.
FN="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/query.mc" \
      | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN" ] || { echo "FAIL: no function in generated query program" >&2; exit 1; }

for threads in 1 8; do
  "$CLI" ingest "$WORK/idx$threads" --drop_dir="$WORK/drop" \
         --threads=$threads --metrics_out="$WORK/m$threads.json" \
         > "$WORK/ingest$threads.out"
done

# 1. Published artifacts are byte-identical across thread counts.
cmp "$WORK/idx1/manifest.mani" "$WORK/idx8/manifest.mani" \
  || { echo "FAIL: manifest differs between --threads=1 and --threads=8" >&2
       exit 1; }
for shard in "$WORK"/idx1/shard-*.idx; do
  cmp "$shard" "$WORK/idx8/$(basename "$shard")" \
    || { echo "FAIL: $(basename "$shard") differs between thread counts" >&2
         exit 1; }
done
diff "$WORK/ingest1.out" "$WORK/ingest8.out" \
  || { echo "FAIL: ingest summary differs between thread counts" >&2; exit 1; }

# 2. Reads and the delta vuln sweep are identical too.
# The outputs quote the directory they read from; rewrite both to a common
# placeholder so the diff compares content, not paths.
for threads in 1 8; do
  "$CLI" index-info "$WORK/idx$threads/manifest.mani" \
    | sed "s|$WORK/idx$threads|IDX|g" > "$WORK/info$threads.out"
  "$CLI" index-query "$WORK/idx$threads/manifest.mani" "$WORK/query.mc" \
         "$FN" x86 5 --threads=$threads \
    | sed "s|$WORK/idx$threads|IDX|g" > "$WORK/query$threads.out"
  "$CLI" delta-search "$WORK/idx$threads" 0.7 --threads=$threads \
    | sed "s|$WORK/idx$threads|IDX|g" > "$WORK/delta$threads.out"
done
diff "$WORK/info1.out" "$WORK/info8.out" \
  || { echo "FAIL: index-info differs between thread counts" >&2; exit 1; }
diff "$WORK/query1.out" "$WORK/query8.out" \
  || { echo "FAIL: sharded index-query differs between thread counts" >&2
       exit 1; }
diff "$WORK/delta1.out" "$WORK/delta8.out" \
  || { echo "FAIL: delta-search differs between thread counts" >&2; exit 1; }
cmp "$WORK/idx1/manifest.mani" "$WORK/idx8/manifest.mani" \
  || { echo "FAIL: manifests diverged after delta-search" >&2; exit 1; }

# 3. Metrics: strip the latency-valued fields (same filter as
# check_metrics.sh) and require the remaining deterministic slice to be
# identical across thread counts.
filter() {
  awk '
    /^    "[a-z_.]*_nanos": \{$/ { in_nanos = 1 }
    in_nanos && /^    \}/        { in_nanos = 0 }
    /"(sum|min|max|p50|p95|p99|total_seconds|mean_seconds)":/ { next }
    in_nanos && /"buckets":/     { next }
    { print }
  ' "$1"
}
filter "$WORK/m1.json" > "$WORK/m1.det"
filter "$WORK/m8.json" > "$WORK/m8.det"
if ! diff -u "$WORK/m1.det" "$WORK/m8.det"; then
  echo "FAIL: deterministic metrics slice differs between thread counts" >&2
  exit 1
fi

grep -qE '"ingest\.images": 4' "$WORK/m1.json" \
  || { echo "FAIL: ingest.images counter did not observe the 4 images" >&2
       exit 1; }
grep -qE '"ingest\.functions_encoded": [1-9]' "$WORK/m1.json" \
  || { echo "FAIL: ingest.functions_encoded counter is zero or missing" >&2
       exit 1; }
grep -qE '"ingest\.shards": 4' "$WORK/m1.json" \
  || { echo "FAIL: ingest.shards gauge is not 4" >&2; exit 1; }

echo "OK: ingest artifacts, queries, and metrics deterministic across thread counts"
