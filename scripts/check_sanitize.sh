#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under a sanitizer and runs the
# tests that exercise util::ThreadPool and the parallel SearchIndex/corpus
# paths. The determinism tests assert parallel == serial bitwise; running
# them under TSan additionally proves the parallel sections are data-race
# free. robustness_test's corruption sweep (byte flips and truncations of
# every container kind) runs here under ASan/UBSan so "fails cleanly" also
# means no out-of-bounds read on adversarial inputs (docs/ROBUSTNESS.md).
# metrics_test hammers the striped counters/histograms and trace spans from
# ParallelFor workers while snapshots race the writers (docs/OBSERVABILITY.md).
# serve_test runs the asteria-serve daemon in-process — hostile-frame sweep,
# concurrent clients against worker pools, and snapshot swap under load — so
# ASan covers the wire parsers on adversarial bytes and TSan covers the
# reader/queue/worker handoff and the atomic snapshot publish
# (docs/SERVING.md). ingest_test runs the streaming-ingest pipeline —
# sharded loads at several thread counts, AppendTo compaction, the
# crash-publish failpoint matrix, and an in-process daemon reload poke —
# under both sanitizers (docs/ARCHITECTURE.md "Incremental ingest").
# search_index_test runs the packed/pruned TopK differential battery —
# blocked-GEMM sweep vs brute-force reference at threads 1/2/8 on monolithic
# and sharded indexes — so TSan covers the lazy side-index rebuild and the
# shard-local heap merge (docs/PERFORMANCE.md "Sub-linear TopK").
# CI-friendly: exits non-zero on build failure, test failure, or any
# sanitizer report.
#
# Usage: scripts/check_sanitize.sh [thread|address]   (default: thread)
set -euo pipefail

SANITIZER="${1:-thread}"
case "$SANITIZER" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-${SANITIZER/thread/tsan}"
BUILD="${BUILD/address/asan}"

cmake -S "$ROOT" -B "$BUILD" -DASTERIA_SANITIZE="$SANITIZER" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target \
      util_test determinism_test core_test dataset_test store_test \
      search_index_test robustness_test fast_encoder_test metrics_test \
      serve_test ingest_test

# halt_on_error turns any sanitizer report into a non-zero exit so CI fails
# even if the race would not otherwise crash the test.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=0"

for test in util_test determinism_test core_test dataset_test store_test \
            search_index_test robustness_test fast_encoder_test metrics_test \
            serve_test ingest_test; do
  echo "== $SANITIZER: $test =="
  "$BUILD/tests/$test" --gtest_brief=1
done

echo "OK: all concurrency tests clean under ${SANITIZER} sanitizer"
