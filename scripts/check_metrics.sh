#!/usr/bin/env bash
# Observability smoke gate (docs/OBSERVABILITY.md): runs the same end-to-end
# clone search through asteria-cli at --threads=1 and --threads=8 with
# --metrics_out, then
#   1. asserts the deterministic slice of the two snapshots is identical —
#      counter values, histogram observation counts, value-deterministic
#      bucket tallies, span counts, and pipeline rows must not depend on the
#      thread count (only latency-valued fields may differ);
#   2. asserts the snapshot actually observed the run: nonzero encode.fast
#      counter and decompile/encode/search span entries.
#
# Usage: scripts/check_metrics.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli

CLI="$BUILD/tools/asteria-cli"

"$CLI" gen 42 > "$WORK/prog.mc"
# First function of the generated package is the query.
FN="$(grep -oE '^int [A-Za-z_][A-Za-z0-9_]*\(' "$WORK/prog.mc" \
      | head -1 | sed -E 's/^int ([A-Za-z0-9_]+)\(/\1/')"
[ -n "$FN" ] || { echo "FAIL: no function found in generated program" >&2; exit 1; }

for threads in 1 8; do
  "$CLI" search "$WORK/prog.mc" "$FN" x86 \
         --threads=$threads --metrics_out="$WORK/m$threads.json" >/dev/null
done

# Strip the latency-valued (machine- and schedule-dependent) fields:
#   - sum/min/max of every histogram (nanos histograms time real work),
#   - total_seconds/mean_seconds of every span,
#   - per-bucket tallies of *_nanos histograms (observation values are
#     timings, so bucket placement is nondeterministic; counts are not).
# Everything that survives is the deterministic slice and must be identical
# across thread counts.
filter() {
  awk '
    /^    "[a-z_.]*_nanos": \{$/ { in_nanos = 1 }
    in_nanos && /^    \}/        { in_nanos = 0 }
    /"(sum|min|max|p50|p95|p99|total_seconds|mean_seconds)":/ { next }
    in_nanos && /"buckets":/     { next }
    { print }
  ' "$1"
}

filter "$WORK/m1.json" > "$WORK/m1.det"
filter "$WORK/m8.json" > "$WORK/m8.det"
if ! diff -u "$WORK/m1.det" "$WORK/m8.det"; then
  echo "FAIL: deterministic metrics slice differs between --threads=1 and --threads=8" >&2
  exit 1
fi

# The snapshot must have actually observed the run.
grep -qE '"encode\.fast": [1-9]' "$WORK/m1.json" \
  || { echo "FAIL: encode.fast counter is zero or missing" >&2; exit 1; }
for span in decompile encode search; do
  grep -q "\"$span\": {" "$WORK/m1.json" \
    || { echo "FAIL: span '$span' missing from snapshot" >&2; exit 1; }
done

echo "OK: metrics snapshot deterministic across thread counts and complete"
