#!/usr/bin/env bash
# Batched-search throughput gate (docs/PERFORMANCE.md): runs bench_search —
# a >= 50k-entry synthetic index queried with a >= 16-query batch — and
# compares the packed/pruned TopKBatch sweep against the per-query
# brute-force reference. The bench itself verifies the two paths return
# bitwise-identical hits before timing anything, so this gate enforces both
# the exactness contract and the speedup floor. Writes the machine-readable
# result to BENCH_search.json at the repo root and fails unless the batched
# path is at least MIN_SEARCH_SPEEDUP x faster per query.
#
# Usage: scripts/bench_search.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
MIN_SEARCH_SPEEDUP="${MIN_SEARCH_SPEEDUP:-4}"
ENTRIES="${ENTRIES:-50000}"
BATCH="${BATCH:-32}"
TOPK="${TOPK:-10}"
THREADS="${THREADS:-$(nproc)}"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_search

OUT="$("$BUILD/bench/bench_search" --entries="$ENTRIES" --batch="$BATCH" \
       --topk="$TOPK" --threads="$THREADS" --log_level=warn | tail -1)"
echo "$OUT"

get() { echo "$OUT" | grep -oE "$1=[0-9.]+" | cut -d= -f2; }
BRUTE="$(get brute_nanos_per_query)"
BATCHED="$(get batch_nanos_per_query)"
SPEEDUP="$(get speedup)"
SCORED="$(get scored_fraction)"
IDENTICAL="$(get bitwise_identical)"
[ -n "$SPEEDUP" ] && [ -n "$IDENTICAL" ] \
  || { echo "FAIL: no machine-readable line from bench_search" >&2; exit 1; }

[ "$IDENTICAL" = "1" ] \
  || { echo "FAIL: batched sweep is not bitwise identical to brute force" >&2
       exit 1; }

cat > "$ROOT/BENCH_search.json" <<EOF
{
  "workload": "top-$TOPK batch of $BATCH queries over $ENTRIES synthetic entries, packed/pruned TopKBatch vs per-query brute force",
  "entries": $ENTRIES,
  "batch": $BATCH,
  "topk": $TOPK,
  "threads": $THREADS,
  "brute_nanos_per_query": $BRUTE,
  "batch_nanos_per_query": $BATCHED,
  "scored_fraction": $SCORED,
  "bitwise_identical": true,
  "speedup": $SPEEDUP
}
EOF
echo
cat "$ROOT/BENCH_search.json"

awk -v s="$SPEEDUP" -v min="$MIN_SEARCH_SPEEDUP" \
    'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }' \
  || { echo "FAIL: batched search only ${SPEEDUP}x faster than per-query" \
            "brute force (need >= ${MIN_SEARCH_SPEEDUP}x)" >&2; exit 1; }
echo "OK: batched search >= ${MIN_SEARCH_SPEEDUP}x faster than brute force (bitwise identical)"
