#!/usr/bin/env bash
# Streaming-ingest smoke benchmark (docs/ARCHITECTURE.md "Incremental
# ingest"): measures what the ingest subsystem exists to eliminate — paying
# for the whole fleet every time one image arrives. The full path rebuilds
# a fresh sharded index over all FLEET+1 images from scratch (every
# function re-encoded, the §V batch workflow). The incremental path starts
# from an index that already holds the FLEET images and ingests only the
# new arrival into it, with a live asteria-serve daemon attached so the
# measured interval is arrival -> queryable: the command returns only after
# the new shard is published AND the daemon has swapped it in (the reload
# poke is synchronous).
# Writes the machine-readable result to BENCH_ingest.json at the repo root
# and fails unless the incremental path beats the full rebuild by at least
# MIN_INGEST_SPEEDUP x.
#
# Usage: scripts/bench_ingest.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
MIN_INGEST_SPEEDUP="${MIN_INGEST_SPEEDUP:-10}"
FLEET="${FLEET:-32}"
RUNS="${RUNS:-3}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target asteria-cli asteria-serve

CLI="$BUILD/tools/asteria-cli"
SERVE="$BUILD/tools/asteria-serve"
SOCK="$WORK/ingest.sock"

"$CLI" fw-gen "$WORK/fleet" "$FLEET" 31 >/dev/null
"$CLI" fw-gen "$WORK/arrivals" "$RUNS" 77 >/dev/null

# Full path: every arrival triggers a from-scratch rebuild over the fleet
# plus the new image (fresh directory, nothing cached).
FULL_TOTAL_NANOS=0
for run in $(seq 0 $((RUNS - 1))); do
  rm -rf "$WORK/full_idx"
  START=$(date +%s%N)
  "$CLI" ingest "$WORK/full_idx" --drop_dir="$WORK/fleet" \
         "$WORK/arrivals/img-77-$run.fw" >/dev/null 2>&1
  END=$(date +%s%N)
  FULL_TOTAL_NANOS=$((FULL_TOTAL_NANOS + END - START))
done
FULL_MEAN_NANOS=$((FULL_TOTAL_NANOS / RUNS))

# Incremental path: the fleet is already indexed and served; each arrival
# pays for itself only. The poke is synchronous, so command exit ==
# queryable.
"$CLI" ingest "$WORK/inc_idx" --drop_dir="$WORK/fleet" >/dev/null 2>&1
"$SERVE" --socket="$SOCK" --index="$WORK/inc_idx/manifest.mani" \
    >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
  if "$CLI" ctl ping --socket="$SOCK" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CLI" ctl ping --socket="$SOCK" >/dev/null \
  || { echo "FAIL: daemon did not come up"; cat "$WORK/serve.log" >&2; exit 1; }

INC_TOTAL_NANOS=0
for run in $(seq 0 $((RUNS - 1))); do
  START=$(date +%s%N)
  "$CLI" ingest "$WORK/inc_idx" "$WORK/arrivals/img-77-$run.fw" \
         --socket="$SOCK" >/dev/null 2>&1
  END=$(date +%s%N)
  INC_TOTAL_NANOS=$((INC_TOTAL_NANOS + END - START))
done
INC_MEAN_NANOS=$((INC_TOTAL_NANOS / RUNS))

# The daemon must actually have swapped the arrivals in.
grep -c "reloaded" "$WORK/serve.log" | grep -q "^$RUNS$" \
  || { echo "FAIL: expected $RUNS daemon reloads" >&2
       cat "$WORK/serve.log" >&2; exit 1; }

"$CLI" ctl shutdown --socket="$SOCK" >/dev/null
wait "$SERVE_PID"
SERVE_PID=""

SPEEDUP="$(awk -v f="$FULL_MEAN_NANOS" -v i="$INC_MEAN_NANOS" \
           'BEGIN { printf "%.1f", f / i }')"
cat > "$ROOT/BENCH_ingest.json" <<EOF
{
  "workload": "one firmware arrival over a $FLEET-image fleet, full rebuild vs incremental ingest (arrival -> queryable, live daemon poke)",
  "fleet_images": $FLEET,
  "arrivals": $RUNS,
  "full_rebuild_mean_nanos": $FULL_MEAN_NANOS,
  "incremental_mean_nanos": $INC_MEAN_NANOS,
  "speedup": $SPEEDUP
}
EOF
echo
cat "$ROOT/BENCH_ingest.json"

awk -v s="$SPEEDUP" -v min="$MIN_INGEST_SPEEDUP" \
    'BEGIN { exit (s + 0 >= min + 0) ? 0 : 1 }' \
  || { echo "FAIL: incremental ingest only ${SPEEDUP}x faster than full" \
            "rebuild (need >= ${MIN_INGEST_SPEEDUP}x)" >&2; exit 1; }
echo "OK: incremental ingest >= ${MIN_INGEST_SPEEDUP}x faster than full rebuild"
