#!/usr/bin/env bash
# Encode-kernel smoke benchmark: A/B-times the autograd-tape path against
# the fused TreeLstmFastEncoder (docs/PERFORMANCE.md) on a small generated
# corpus at the paper's embedding size with a widened hidden state, asserts
# the two produce bitwise-identical embeddings, and fails unless the fused
# kernel is at least MIN_SPEEDUP x faster single-threaded. Writes the
# machine-readable result to BENCH_encode.json at the repo root and the
# run's metrics snapshot (docs/OBSERVABILITY.md) to
# <build>/bench_out/metrics_encode.json, then sanity-checks the snapshot:
# the bench must have actually driven the fused kernel (nonzero encode.fast,
# and more fused encodes than tape encodes — the tape path runs only as the
# A/B reference).
#
# Usage: scripts/bench_encode.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
MIN_SPEEDUP="${MIN_SPEEDUP:-3}"
METRICS="$BUILD/bench_out/metrics_encode.json"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_fig10b_offline_time

"$BUILD/bench/bench_fig10b_offline_time" \
    --packages=4 --hidden=64 --quiet=1 \
    --out="$BUILD/bench_out" \
    --encode_json="$ROOT/BENCH_encode.json" \
    --min_encode_speedup="$MIN_SPEEDUP" \
    --metrics_out="$METRICS"

counter() {
  grep -oE "\"$1\": [0-9]+" "$METRICS" | grep -oE '[0-9]+$' || echo 0
}
FAST="$(counter 'encode\.fast')"
TAPE="$(counter 'encode\.tape')"
if [ "$FAST" -eq 0 ]; then
  echo "FAIL: metrics snapshot shows zero fused encodes (encode.fast)" >&2
  exit 1
fi
if [ "$FAST" -le "$TAPE" ]; then
  echo "FAIL: expected more fused encodes than tape encodes, got fast=$FAST tape=$TAPE" >&2
  exit 1
fi

echo
cat "$ROOT/BENCH_encode.json"
echo "metrics snapshot: $METRICS (encode.fast=$FAST, encode.tape=$TAPE)"
echo "OK: fused encode kernel >= ${MIN_SPEEDUP}x vs tape, bitwise identical"
