#!/usr/bin/env bash
# Encode-kernel smoke benchmark: A/B-times the autograd-tape path against
# the fused TreeLstmFastEncoder (docs/PERFORMANCE.md) on a small generated
# corpus at the paper's embedding size with a widened hidden state, asserts
# the two produce bitwise-identical embeddings, and fails unless the fused
# kernel is at least MIN_SPEEDUP x faster single-threaded. Writes the
# machine-readable result to BENCH_encode.json at the repo root.
#
# Usage: scripts/bench_encode.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/${1:-build}"
MIN_SPEEDUP="${MIN_SPEEDUP:-3}"

cmake -S "$ROOT" -B "$BUILD" >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target bench_fig10b_offline_time

"$BUILD/bench/bench_fig10b_offline_time" \
    --packages=4 --hidden=64 --quiet=1 \
    --out="$BUILD/bench_out" \
    --encode_json="$ROOT/BENCH_encode.json" \
    --min_encode_speedup="$MIN_SPEEDUP"

echo
cat "$ROOT/BENCH_encode.json"
echo "OK: fused encode kernel >= ${MIN_SPEEDUP}x vs tape, bitwise identical"
