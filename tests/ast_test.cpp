// AST arena, Table-I digitalization, LCRS binarization, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "ast/ast.h"
#include "ast/lcrs.h"
#include "util/rng.h"

namespace asteria::ast {
namespace {

// (block (asg (var) (num)) (if (lt (var) (num)) (return (var))))
Ast SampleTree() {
  Ast tree;
  const NodeId var_x = tree.AddVar("x");
  const NodeId num5 = tree.AddNum(5);
  const NodeId asg = tree.AddNode(NodeKind::kAsg, {var_x, num5});
  const NodeId var_x2 = tree.AddVar("x");
  const NodeId num9 = tree.AddNum(9);
  const NodeId lt = tree.AddNode(NodeKind::kLt, {var_x2, num9});
  const NodeId var_x3 = tree.AddVar("x");
  const NodeId ret = tree.AddNode(NodeKind::kReturn, {var_x3});
  const NodeId iff = tree.AddNode(NodeKind::kIf, {lt, ret});
  const NodeId block = tree.AddNode(NodeKind::kBlock, {asg, iff});
  tree.set_root(block);
  return tree;
}

TEST(NodeKind, LabelsMatchTableOne) {
  EXPECT_EQ(NodeLabel(NodeKind::kIf), 1);
  EXPECT_EQ(NodeLabel(NodeKind::kBreak), 9);
  EXPECT_EQ(NodeLabel(NodeKind::kAsg), 10);
  EXPECT_EQ(NodeLabel(NodeKind::kAsgDiv), 17);
  EXPECT_EQ(NodeLabel(NodeKind::kEq), 18);
  EXPECT_EQ(NodeLabel(NodeKind::kLe), 23);
  EXPECT_EQ(NodeLabel(NodeKind::kOr), 24);
  EXPECT_EQ(NodeLabel(NodeKind::kPreDec), 34);
  EXPECT_EQ(NodeLabel(NodeKind::kIndex), 35);
  EXPECT_EQ(NodeLabel(NodeKind::kOther), kMaxNodeLabel);
}

TEST(NodeKind, NamesRoundTrip) {
  for (int i = 0; i < kNumNodeKinds; ++i) {
    const NodeKind kind = static_cast<NodeKind>(i);
    EXPECT_EQ(NodeKindFromName(NodeKindName(kind)), kind);
  }
  EXPECT_EQ(NodeKindFromName("definitely-not-a-node"), NodeKind::kKindCount);
}

TEST(NodeKind, Predicates) {
  EXPECT_TRUE(IsStatement(NodeKind::kIf));
  EXPECT_TRUE(IsStatement(NodeKind::kBreak));
  EXPECT_FALSE(IsStatement(NodeKind::kAsg));
  EXPECT_TRUE(IsAssignment(NodeKind::kAsgXor));
  EXPECT_FALSE(IsAssignment(NodeKind::kEq));
  EXPECT_TRUE(IsComparison(NodeKind::kGe));
}

TEST(Ast, SizeDepthAndValidate) {
  Ast tree = SampleTree();
  EXPECT_EQ(tree.size(), 10);
  EXPECT_EQ(tree.Depth(), 4);
  std::string error;
  EXPECT_TRUE(tree.Validate(&error)) << error;
}

TEST(Ast, ValidateCatchesCycles) {
  Ast tree;
  const NodeId a = tree.AddNode(NodeKind::kBlock);
  const NodeId b = tree.AddNode(NodeKind::kReturn);
  tree.AddChild(a, b);
  tree.AddChild(b, a);  // cycle
  tree.set_root(a);
  EXPECT_FALSE(tree.Validate());
}

TEST(Ast, ValidateCatchesUnreachable) {
  Ast tree;
  const NodeId a = tree.AddNode(NodeKind::kBlock);
  tree.AddNode(NodeKind::kReturn);  // orphan
  tree.set_root(a);
  EXPECT_FALSE(tree.Validate());
}

TEST(Ast, DigitalizeIsPreOrderLabels) {
  Ast tree = SampleTree();
  const std::vector<int> labels = tree.Digitalize();
  ASSERT_EQ(labels.size(), 10u);
  EXPECT_EQ(labels[0], NodeLabel(NodeKind::kBlock));
  EXPECT_EQ(labels[1], NodeLabel(NodeKind::kAsg));
  EXPECT_EQ(labels[2], NodeLabel(NodeKind::kVar));
}

TEST(Ast, SExprRoundTrip) {
  Ast tree = SampleTree();
  const std::string text = tree.ToSExpr();
  Ast parsed;
  ASSERT_TRUE(Ast::FromSExpr(text, &parsed));
  EXPECT_EQ(parsed.ToSExpr(), text);
  EXPECT_EQ(parsed.size(), tree.size());
  EXPECT_EQ(parsed.Digitalize(), tree.Digitalize());
}

TEST(Ast, SExprRejectsGarbage) {
  Ast parsed;
  EXPECT_FALSE(Ast::FromSExpr("(nonsense)", &parsed));
  EXPECT_FALSE(Ast::FromSExpr("(if", &parsed));
  EXPECT_FALSE(Ast::FromSExpr("(if) trailing", &parsed));
}

TEST(Lcrs, PreservesNodeCountAndLabels) {
  Ast tree = SampleTree();
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  EXPECT_EQ(binary.size(), tree.size());
  std::vector<int> source_labels = tree.Digitalize();
  std::sort(source_labels.begin(), source_labels.end());
  std::vector<int> binary_labels;
  for (NodeId id : binary.PostOrder()) {
    binary_labels.push_back(binary.node(id).label);
  }
  std::sort(binary_labels.begin(), binary_labels.end());
  EXPECT_EQ(binary_labels, source_labels);
}

TEST(Lcrs, FirstChildBecomesLeftSiblingBecomesRight) {
  // root with three children a, b, c.
  Ast tree;
  const NodeId a = tree.AddNum(1);
  const NodeId b = tree.AddNum(2);
  const NodeId c = tree.AddNum(3);
  const NodeId root = tree.AddNode(NodeKind::kBlock, {a, b, c});
  tree.set_root(root);
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  const BinaryNode& r = binary.node(binary.root());
  EXPECT_EQ(r.left, a);
  EXPECT_EQ(r.right, kInvalidNode);
  EXPECT_EQ(binary.node(a).right, b);
  EXPECT_EQ(binary.node(b).right, c);
  EXPECT_EQ(binary.node(c).right, kInvalidNode);
}

TEST(Lcrs, PostOrderChildrenBeforeParents) {
  Ast tree = SampleTree();
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  const std::vector<NodeId> order = binary.PostOrder();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(binary.size()));
  std::vector<int> position(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  for (NodeId id = 0; id < binary.size(); ++id) {
    const BinaryNode& node = binary.node(id);
    if (node.left != kInvalidNode) {
      EXPECT_LT(position[static_cast<std::size_t>(node.left)],
                position[static_cast<std::size_t>(id)]);
    }
    if (node.right != kInvalidNode) {
      EXPECT_LT(position[static_cast<std::size_t>(node.right)],
                position[static_cast<std::size_t>(id)]);
    }
  }
}

TEST(Lcrs, DeepChainDoesNotOverflow) {
  // 50k-node degenerate chain exercises the iterative traversals.
  Ast tree;
  NodeId prev = tree.AddNum(0);
  for (int i = 0; i < 50'000; ++i) {
    prev = tree.AddNode(NodeKind::kBlock, {prev});
  }
  tree.set_root(prev);
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  EXPECT_EQ(binary.size(), tree.size());
  EXPECT_EQ(binary.PostOrder().size(), static_cast<std::size_t>(tree.size()));
  EXPECT_EQ(binary.Depth(), 50'001);
}

TEST(Lcrs, PayloadBucketsForNumbersAndStrings) {
  Ast tree;
  const NodeId small = tree.AddNum(3);
  const NodeId big = tree.AddNum(1'000'000);
  const NodeId negative = tree.AddNum(-3);
  const NodeId zero = tree.AddNum(0);
  const NodeId text = tree.AddStr("GET /index.html");
  const NodeId var = tree.AddVar("x");
  const NodeId root =
      tree.AddNode(NodeKind::kBlock, {small, big, negative, zero, text, var});
  tree.set_root(root);
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  // Numbers land in 1..33, strings in 34..63, variables have no payload.
  EXPECT_EQ(binary.node(zero).payload_bucket, 1);
  EXPECT_GT(binary.node(small).payload_bucket, 1);
  EXPECT_LT(binary.node(small).payload_bucket, 18);
  EXPECT_NE(binary.node(small).payload_bucket, binary.node(big).payload_bucket);
  EXPECT_GT(binary.node(negative).payload_bucket, 17);
  EXPECT_LE(binary.node(negative).payload_bucket, 33);
  EXPECT_GE(binary.node(text).payload_bucket, 34);
  EXPECT_LT(binary.node(text).payload_bucket, kPayloadVocab);
  EXPECT_EQ(binary.node(var).payload_bucket, 0);
  // Buckets are deterministic.
  EXPECT_EQ(StringPayloadBucket("abc"), StringPayloadBucket("abc"));
  EXPECT_EQ(NumberPayloadBucket(7), NumberPayloadBucket(7));
  // Extremes stay in range.
  EXPECT_LE(NumberPayloadBucket(std::numeric_limits<std::int64_t>::max()), 17);
  EXPECT_LE(NumberPayloadBucket(std::numeric_limits<std::int64_t>::min()), 33);
}

TEST(Lcrs, KindHistogramMatchesLabelHistogram) {
  Ast tree = SampleTree();
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  const std::vector<int> kinds = tree.KindHistogram();
  const std::vector<int> labels = binary.LabelHistogram();
  for (int k = 0; k < kNumNodeKinds; ++k) {
    EXPECT_EQ(kinds[static_cast<std::size_t>(k)],
              labels[static_cast<std::size_t>(NodeLabel(static_cast<NodeKind>(k)))]);
  }
}

// ---- randomized property sweep -------------------------------------------

namespace property {

// Random tree with mixed arity, payloads, and depth.
Ast RandomTree(util::Rng& rng, int max_nodes) {
  Ast tree;
  std::vector<NodeId> roots;
  const int nodes = static_cast<int>(rng.NextInt(1, max_nodes));
  for (int i = 0; i < nodes; ++i) {
    const auto kind =
        static_cast<NodeKind>(rng.NextBounded(static_cast<std::uint64_t>(kNumNodeKinds)));
    const int arity = static_cast<int>(
        rng.NextBounded(std::min<std::uint64_t>(roots.size() + 1, 4)));
    std::vector<NodeId> children;
    for (int a = 0; a < arity; ++a) {
      children.push_back(roots.back());
      roots.pop_back();
    }
    NodeId id;
    if (kind == NodeKind::kNum && arity == 0) {
      id = tree.AddNum(rng.NextInt(-1000000, 1000000));
    } else if (kind == NodeKind::kStr && arity == 0) {
      id = tree.AddStr("s" + std::to_string(rng.NextBounded(40)));
    } else {
      id = tree.AddNode(kind, std::move(children));
    }
    roots.push_back(id);
  }
  // Attach leftover roots under one block.
  if (roots.size() == 1) {
    tree.set_root(roots[0]);
  } else {
    tree.set_root(tree.AddNode(NodeKind::kBlock, roots));
  }
  return tree;
}

}  // namespace property

class AstProperty : public ::testing::TestWithParam<int> {};

TEST_P(AstProperty, InvariantsHoldOnRandomTrees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 3);
  Ast tree = property::RandomTree(rng, 200);
  std::string error;
  ASSERT_TRUE(tree.Validate(&error)) << error;

  // Digitalization covers every node with an in-vocabulary label.
  const auto labels = tree.Digitalize();
  EXPECT_EQ(static_cast<int>(labels.size()), tree.size());
  for (int label : labels) {
    EXPECT_GE(label, 1);
    EXPECT_LE(label, kMaxNodeLabel);
  }

  // LCRS: same node count, same label multiset, children before parents,
  // payload buckets in range.
  const BinaryAst binary = ToLeftChildRightSibling(tree);
  EXPECT_EQ(binary.size(), tree.size());
  std::vector<int> a = labels, b;
  for (NodeId id : binary.PostOrder()) {
    b.push_back(binary.node(id).label);
    EXPECT_GE(binary.node(id).payload_bucket, 0);
    EXPECT_LT(binary.node(id).payload_bucket, kPayloadVocab);
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(binary.PostOrder().back(), binary.root());

  // Serialization round trip preserves the digitalized sequence.
  Ast parsed;
  ASSERT_TRUE(Ast::FromSExpr(tree.ToSExpr(), &parsed));
  EXPECT_EQ(parsed.Digitalize(), labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AstProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace asteria::ast
